"""Unit tests for map-task measurement and simulation."""

import numpy as np
import pytest

from repro.hadoop.config import JobConfiguration
from repro.hadoop.mapper_engine import (
    measure_map_sample,
    partition_fractions,
    simulate_map_task,
)


def _measure(engine, job, dataset, split=0):
    return measure_map_sample(job, dataset, split)


def _simulate(cluster, job, dataset, measurement, config, profiled=False):
    node = cluster.workers[0]
    rng = np.random.default_rng(0)
    combined = config.use_combiner and job.has_combiner
    fractions = partition_fractions(
        measurement, job, max(1, config.num_reduce_tasks), combined
    )
    return simulate_map_task(
        task_id=0,
        split=dataset.split(0),
        measurement=measurement,
        job=job,
        config=config,
        node=node,
        rng=rng,
        fractions=fractions,
        profiled=profiled,
        profiling_overhead=0.10,
    )


class TestMeasurement:
    def test_wordcount_selectivities(self, engine, wordcount, small_text):
        m = _measure(engine, wordcount, small_text)
        assert m.map_records_sel > 1.0  # one pair per word, many words/line
        assert m.map_size_sel > 1.0
        assert m.sample_input_records == 120

    def test_combiner_reduces_records(self, engine, wordcount, small_text):
        m = _measure(engine, wordcount, small_text)
        assert m.combine_records_sel < 1.0
        assert m.combine_size_sel < 1.0
        assert len(m.sample_combined_pairs) < len(m.sample_map_pairs)

    def test_no_combiner_unity_selectivity(self, engine, maponly_job, small_text):
        m = _measure(engine, maponly_job, small_text)
        assert m.combine_records_sel == 1.0
        assert m.sample_combined_pairs == m.sample_map_pairs

    def test_measurement_deterministic(self, engine, wordcount, small_text):
        a = _measure(engine, wordcount, small_text)
        b = _measure(engine, wordcount, small_text)
        assert a.sample_output_records == b.sample_output_records
        assert a.sample_output_bytes == b.sample_output_bytes


class TestPartitionFractions:
    def test_fractions_sum_to_one(self, engine, wordcount, small_text):
        m = _measure(engine, wordcount, small_text)
        byte_frac, rec_frac = partition_fractions(m, wordcount, 8, combined=True)
        assert byte_frac.sum() == pytest.approx(1.0)
        assert rec_frac.sum() == pytest.approx(1.0)

    def test_single_partition_gets_everything(self, engine, wordcount, small_text):
        m = _measure(engine, wordcount, small_text)
        byte_frac, __ = partition_fractions(m, wordcount, 1, combined=False)
        assert byte_frac[0] == pytest.approx(1.0)


class TestSimulation:
    def test_volumes_scale_to_split(self, cluster, engine, wordcount, small_text):
        m = _measure(engine, wordcount, small_text)
        task = _simulate(cluster, wordcount, small_text, m, JobConfiguration())
        assert task.input_bytes == small_text.split(0).nominal_bytes
        ratio = task.map_output_bytes / task.input_bytes
        assert ratio == pytest.approx(m.map_size_sel, rel=0.01)

    def test_smaller_buffer_more_spills(self, cluster, engine, wordcount, small_text):
        m = _measure(engine, wordcount, small_text)
        small = _simulate(cluster, wordcount, small_text, m, JobConfiguration(io_sort_mb=16))
        large = _simulate(cluster, wordcount, small_text, m, JobConfiguration(io_sort_mb=512))
        assert small.num_spills > large.num_spills

    def test_compression_shrinks_materialized(self, cluster, engine, wordcount, small_text):
        m = _measure(engine, wordcount, small_text)
        plain = _simulate(cluster, wordcount, small_text, m, JobConfiguration())
        packed = _simulate(
            cluster, wordcount, small_text, m, JobConfiguration(compress_map_output=True)
        )
        assert packed.materialized_bytes < plain.materialized_bytes
        assert packed.spill_bytes == plain.spill_bytes

    def test_combiner_toggle(self, cluster, engine, wordcount, small_text):
        m = _measure(engine, wordcount, small_text)
        on = _simulate(cluster, wordcount, small_text, m, JobConfiguration(use_combiner=True))
        off = _simulate(cluster, wordcount, small_text, m, JobConfiguration(use_combiner=False))
        assert on.spill_records < off.spill_records
        assert off.combine_input_records == 0

    def test_profiling_overhead_inflates_phases(self, cluster, engine, wordcount, small_text):
        m = _measure(engine, wordcount, small_text)
        plain = _simulate(cluster, wordcount, small_text, m, JobConfiguration())
        profiled = _simulate(
            cluster, wordcount, small_text, m, JobConfiguration(), profiled=True
        )
        assert profiled.phase_times["MAP"] > plain.phase_times["MAP"]
        assert profiled.phase_times["SETUP"] == plain.phase_times["SETUP"]

    def test_all_phases_non_negative(self, cluster, engine, wordcount, small_text):
        m = _measure(engine, wordcount, small_text)
        task = _simulate(cluster, wordcount, small_text, m, JobConfiguration())
        assert all(v >= 0 for v in task.phase_times.values())
        assert task.duration > 0

    def test_partition_bytes_sum_to_materialized(self, cluster, engine, wordcount, small_text):
        m = _measure(engine, wordcount, small_text)
        config = JobConfiguration(num_reduce_tasks=4)
        task = _simulate(cluster, wordcount, small_text, m, config)
        assert task.partition_bytes.sum() == pytest.approx(task.materialized_bytes, rel=0.01)

    def test_record_percent_affects_spills_for_small_records(
        self, cluster, engine, wordcount, small_text
    ):
        # Word count emits tiny records, so meta-data space binds: raising
        # io.sort.record.percent cuts spill count (the §2.2 interaction).
        m = _measure(engine, wordcount, small_text)
        low = _simulate(
            cluster, wordcount, small_text, m,
            JobConfiguration(io_sort_record_percent=0.01),
        )
        high = _simulate(
            cluster, wordcount, small_text, m,
            JobConfiguration(io_sort_record_percent=0.3),
        )
        assert high.num_spills < low.num_spills
