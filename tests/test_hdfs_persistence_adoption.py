"""Tests for HDFS locality, store persistence, and the adoption driver."""

import numpy as np
import pytest

from repro.hadoop import ec2_cluster
from repro.hadoop.hdfs import expected_locality, place_blocks


class TestBlockPlacement:
    def test_replication_count(self, cluster):
        placement = place_blocks(20, cluster, replication=3, seed=1)
        assert placement.num_blocks == 20
        assert all(len(holders) == 3 for holders in placement.replicas)

    def test_replicas_on_distinct_nodes(self, cluster):
        placement = place_blocks(50, cluster, seed=2)
        for holders in placement.replicas:
            assert len(set(holders)) == len(holders)

    def test_replication_capped_by_cluster_size(self):
        tiny = ec2_cluster(num_workers=2)
        placement = place_blocks(5, tiny, replication=3)
        assert placement.replication == 2

    def test_is_local_and_blocks_on(self, cluster):
        placement = place_blocks(10, cluster, seed=3)
        node = placement.replicas[0][0]
        assert placement.is_local(0, node)
        assert 0 in placement.blocks_on(node)

    def test_deterministic_under_seed(self, cluster):
        a = place_blocks(10, cluster, seed=4)
        b = place_blocks(10, cluster, seed=4)
        assert a.replicas == b.replicas

    def test_negative_blocks_rejected(self, cluster):
        with pytest.raises(ValueError):
            place_blocks(-1, cluster)


class TestLocality:
    def test_all_tasks_scheduled(self, cluster):
        placement = place_blocks(100, cluster, seed=5)
        stats = expected_locality(placement, cluster, seed=5)
        assert stats.total == 100

    def test_mostly_local_with_three_replicas(self, cluster):
        placement = place_blocks(200, cluster, replication=3, seed=6)
        stats = expected_locality(placement, cluster, seed=6)
        assert stats.local_fraction > 0.8

    def test_single_replica_less_local(self, cluster):
        three = expected_locality(place_blocks(200, cluster, 3, seed=7), cluster, seed=7)
        one = expected_locality(place_blocks(200, cluster, 1, seed=7), cluster, seed=7)
        assert one.local_fraction <= three.local_fraction

    def test_engine_locality_penalty_slows_reads(self, cluster, wordcount, small_text):
        from repro.hadoop import HadoopEngine, JobConfiguration

        plain = HadoopEngine(cluster).run_job(wordcount, small_text, JobConfiguration())
        aware = HadoopEngine(cluster, locality_aware=True).run_job(
            wordcount, small_text, JobConfiguration()
        )
        plain_read = plain.map_phase_totals()["READ"]
        aware_read = aware.map_phase_totals()["READ"]
        assert aware_read >= plain_read


class TestPersistence:
    @pytest.fixture()
    def populated(self, engine, profiler, sampler, wordcount, maponly_job, small_text):
        from repro.core.features import extract_job_features
        from repro.core.store import ProfileStore

        store = ProfileStore()
        for job in (wordcount, maponly_job):
            profile, __ = profiler.profile_job(job, small_text)
            sample = sampler.collect(job, small_text, count=1)
            features = extract_job_features(job, small_text, sample.profile, engine)
            store.put(profile, features.static)
        return store

    def test_roundtrip_via_dict(self, populated):
        from repro.core.persistence import store_from_dict, store_to_dict

        snapshot = store_to_dict(populated)
        restored = store_from_dict(snapshot)
        assert restored.job_ids() == populated.job_ids()
        for job_id in populated.job_ids():
            assert restored.get_profile(job_id) == populated.get_profile(job_id)

    def test_roundtrip_via_file(self, populated, tmp_path):
        from repro.core.persistence import dump_store, load_store

        path = tmp_path / "store.json"
        dump_store(populated, path)
        restored = load_store(path)
        assert restored.job_ids() == populated.job_ids()

    def test_normalizers_replayed(self, populated):
        from repro.core.persistence import store_from_dict, store_to_dict

        restored = store_from_dict(store_to_dict(populated))
        original = populated.normalizer("map", "flow")
        replayed = restored.normalizer("map", "flow")
        assert replayed.minimums == original.minimums
        assert replayed.maximums == original.maximums

    def test_restored_store_matches_identically(self, populated, engine, sampler, wordcount, small_text):
        from repro.core.features import extract_job_features
        from repro.core.matcher import ProfileMatcher
        from repro.core.persistence import store_from_dict, store_to_dict

        restored = store_from_dict(store_to_dict(populated))
        sample = sampler.collect(wordcount, small_text, count=1)
        features = extract_job_features(wordcount, small_text, sample.profile, engine)
        original_match = ProfileMatcher(populated).match_job(features)
        restored_match = ProfileMatcher(restored).match_job(features)
        assert original_match.map_match.job_id == restored_match.map_match.job_id

    def test_bad_version_rejected(self):
        from repro.core.persistence import store_from_dict

        with pytest.raises(ValueError):
            store_from_dict({"version": 99, "entries": {}})

    def test_json_is_plain(self, populated, tmp_path):
        import json

        from repro.core.persistence import dump_store

        path = tmp_path / "store.json"
        dump_store(populated, path)
        payload = json.loads(path.read_text())
        assert payload["version"] == 1
        assert set(payload["entries"]) == set(populated.job_ids())


class TestAdoption:
    def test_stream_deterministic(self):
        from repro.experiments.adoption import submission_stream

        a = [job.name for job, __ in submission_stream(10, seed=3)]
        b = [job.name for job, __ in submission_stream(10, seed=3)]
        assert a == b

    def test_adoption_shapes(self):
        from repro.experiments import adoption

        result = adoption.run(stream_length=12)
        final = result.rows[-1]
        __, default_h, starfish_h, pstorm_h, starfish_tuned, pstorm_tuned, misses = final
        assert pstorm_h < default_h
        assert pstorm_tuned >= starfish_tuned
        assert misses >= 1  # the first-ever submission must miss
