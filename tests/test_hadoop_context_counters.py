"""Unit tests for task contexts, counters, and the job specification."""

import pytest

from repro.hadoop.context import TaskContext
from repro.hadoop.counters import FRAMEWORK_GROUP, Counters
from repro.hadoop.job import MapReduceJob, default_partitioner


class TestCounters:
    def test_missing_counter_reads_zero(self):
        assert Counters().value("g", "c") == 0

    def test_increment_accumulates(self):
        counters = Counters()
        counters.increment("g", "c")
        counters.increment("g", "c", 4)
        assert counters.value("g", "c") == 5

    def test_merge_adds_groups(self):
        a, b = Counters(), Counters()
        a.increment("g", "x", 1)
        b.increment("g", "x", 2)
        b.increment("h", "y", 3)
        a.merge(b)
        assert a.value("g", "x") == 3
        assert a.value("h", "y") == 3

    def test_items_sorted(self):
        counters = Counters()
        counters.increment("b", "z")
        counters.increment("a", "y")
        assert [g for g, __, __ in counters.items()] == ["a", "b"]

    def test_to_dict(self):
        counters = Counters()
        counters.increment(FRAMEWORK_GROUP, "MAP_INPUT_RECORDS", 10)
        assert counters.to_dict() == {FRAMEWORK_GROUP: {"MAP_INPUT_RECORDS": 10}}


class TestTaskContext:
    def test_emit_tracks_records_and_bytes(self):
        ctx = TaskContext()
        ctx.emit("word", 1)
        ctx.emit("word", 2)
        assert ctx.records_out == 2
        assert ctx.bytes_out > 0
        assert ctx.pairs == [("word", 1), ("word", 2)]

    def test_emit_counts_ops(self):
        ctx = TaskContext()
        ctx.emit("a", 1)
        assert ctx.ops == 1

    def test_report_ops(self):
        ctx = TaskContext()
        ctx.report_ops(5)
        assert ctx.ops == 5
        with pytest.raises(ValueError):
            ctx.report_ops(-1)

    def test_write_alias(self):
        ctx = TaskContext()
        ctx.write("k", "v")
        assert ctx.pairs == [("k", "v")]

    def test_params_visible(self):
        ctx = TaskContext(job_params={"window": 3})
        assert ctx.get_param("window") == 3
        assert ctx.get_param("missing", 7) == 7

    def test_reset_output_keeps_ops(self):
        ctx = TaskContext()
        ctx.emit("a", 1)
        ctx.reset_output()
        assert ctx.pairs == []
        assert ctx.ops == 1


class TestMapReduceJob:
    def test_requires_callable_mapper(self):
        with pytest.raises(TypeError):
            MapReduceJob(name="bad", mapper="not-callable")

    def test_map_only_job(self):
        job = MapReduceJob(name="m", mapper=lambda k, v, c: None)
        assert not job.has_reducer
        assert job.reducer_class == "IdentityReducer"
        assert job.combiner_class == "NULL"

    def test_class_names_from_qualnames(self):
        def my_map(k, v, c):
            pass

        def my_reduce(k, vs, c):
            pass

        job = MapReduceJob(name="j", mapper=my_map, reducer=my_reduce)
        assert "my_map" in job.mapper_class
        assert "my_reduce" in job.reducer_class

    def test_with_params_merges(self):
        job = MapReduceJob(name="j", mapper=lambda k, v, c: None, params={"a": 1})
        updated = job.with_params(b=2)
        assert dict(updated.params) == {"a": 1, "b": 2}
        assert dict(job.params) == {"a": 1}

    def test_make_context_carries_params(self):
        job = MapReduceJob(name="j", mapper=lambda k, v, c: None, params={"x": 9})
        assert job.make_context().get_param("x") == 9


class TestDefaultPartitioner:
    def test_deterministic_across_calls(self):
        assert default_partitioner("abc", 10) == default_partitioner("abc", 10)

    def test_within_range(self):
        for key in ("a", ("x", "y"), 123, 4.5):
            assert 0 <= default_partitioner(key, 7) < 7

    def test_spreads_keys(self):
        buckets = {default_partitioner(f"key{i}", 8) for i in range(100)}
        assert len(buckets) == 8
