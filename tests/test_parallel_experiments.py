"""The parallel experiment driver: determinism, failure surfacing.

The contract under test: fanning independent (job, dataset) cells over N
worker threads must be *observationally identical* to running them
sequentially — same keys, same order, same values — and a cell that
raises must surface a clear :class:`CellExecutionError` naming the cell
instead of hanging or silently dropping results.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.hadoop.cluster import ec2_cluster
from repro.hadoop.engine import HadoopEngine
from repro.experiments.common import (
    CellExecutionError,
    ExperimentContext,
    collect_suite,
    parallel_cells,
)
from repro.observability import MetricsRegistry
from repro.workloads.benchmark import compact_benchmark


class TestParallelCells:
    def test_results_keyed_and_sorted(self):
        tasks = {key: (lambda k=key: k.upper()) for key in ("c", "a", "b")}
        assert parallel_cells(tasks, workers=1) == {"a": "A", "b": "B", "c": "C"}
        merged = parallel_cells(tasks, workers=3)
        assert list(merged) == ["a", "b", "c"]

    def test_worker_counts_agree(self):
        def slow_square(value):
            time.sleep(0.01 * (value % 3))
            return value * value

        tasks = {f"cell-{i:02d}": (lambda v=i: slow_square(v)) for i in range(12)}
        sequential = parallel_cells(tasks, workers=1)
        threaded = parallel_cells(tasks, workers=4)
        assert sequential == threaded
        assert list(sequential) == list(threaded)

    def test_cells_actually_run_on_worker_threads(self):
        idents = set()

        def record():
            idents.add(threading.get_ident())
            time.sleep(0.02)
            return True

        parallel_cells({str(i): record for i in range(8)}, workers=4)
        assert len(idents) > 1

    def test_failure_names_the_cell(self):
        def boom():
            raise ValueError("bad cell")

        with pytest.raises(CellExecutionError, match="'broken'.*ValueError"):
            parallel_cells({"ok": lambda: 1, "broken": boom}, workers=4)

    def test_failure_sequential_path(self):
        def boom():
            raise RuntimeError("nope")

        with pytest.raises(CellExecutionError) as excinfo:
            parallel_cells({"solo": boom}, workers=1)
        assert excinfo.value.key == "solo"
        assert isinstance(excinfo.value.cause, RuntimeError)

    def test_metrics_recorded(self):
        registry = MetricsRegistry()
        parallel_cells(
            {"x": lambda: 1, "y": lambda: 2}, workers=2, registry=registry
        )
        assert registry.get("experiment_cells_total").value == 2
        assert registry.get("experiment_worker_seconds").count >= 1
        assert registry.get("experiment_cell_seconds").count == 2


class TestParallelSuiteCollection:
    def test_workers_produce_identical_tables(self):
        entries = compact_benchmark()[:4]
        sequential = collect_suite(
            ExperimentContext.create(0, workers=1), entries, seed=0
        )
        threaded = collect_suite(
            ExperimentContext.create(0, workers=4), entries, seed=0
        )
        assert list(sequential) == list(threaded)
        for key in sequential:
            a, b = sequential[key], threaded[key]
            assert a.full_profile.to_dict() == b.full_profile.to_dict(), key
            assert a.sample_profile.to_dict() == b.sample_profile.to_dict(), key
            assert a.features.static.categorical == b.features.static.categorical


class TestParallelSplitMeasurement:
    def test_measurements_identical(self, wordcount, small_text):
        cluster = ec2_cluster()
        sequential = HadoopEngine(cluster).map_measurements(wordcount, small_text)
        threaded = HadoopEngine(
            cluster, measurement_workers=4
        ).map_measurements(wordcount, small_text)
        assert [m.split_index for m in sequential] == [
            m.split_index for m in threaded
        ]
        for a, b in zip(sequential, threaded):
            assert a.sample_map_pairs == b.sample_map_pairs
            assert a.combine_records_sel == b.combine_records_sel

    def test_run_job_identical(self, wordcount, small_text, default_config):
        cluster = ec2_cluster()
        sequential = HadoopEngine(cluster).run_job(
            wordcount, small_text, default_config, seed=3
        )
        threaded = HadoopEngine(cluster, measurement_workers=4).run_job(
            wordcount, small_text, default_config, seed=3
        )
        assert sequential.runtime_seconds == threaded.runtime_seconds
