"""Chaos suite: fault plans, the injector, retries, and graceful degradation.

The three load-bearing properties (asserted with Hypothesis):

1. A seeded plan is deterministic — the same operation sequence suffers
   the identical fault sequence.
2. The retry layer never exceeds its attempt or deadline budgets.
3. ``PStorM.submit`` returns a completed :class:`SubmissionResult` under
   *any* store outage, and the same seed reproduces the same outcome.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.chaos import (
    PRESETS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    ServerCrash,
    StoreUnavailableError,
    VirtualClock,
    call_with_retry,
    crash_point_plan,
    default_injector,
    flaky_plan,
    outage_plan,
    plan_from_spec,
    replica_kill_plan,
    rolling_restart_plan,
    set_default_injector,
    slow_plan,
    worker_kill_plan,
)
from repro.core import PStorM, ProfileStore, ResilientProfileStore, SubmissionResult
from repro.hbase.errors import (
    ServerUnavailableError,
    TableNotFoundError,
    TransientError,
)
from repro.observability import MetricsRegistry


# ----------------------------------------------------------------------
# Plans
# ----------------------------------------------------------------------
class TestFaultSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(op="write")
        with pytest.raises(ValueError):
            FaultSpec(kind="explode")
        with pytest.raises(ValueError):
            FaultSpec(probability=1.5)
        with pytest.raises(ValueError):
            FaultSpec(delay_seconds=-1)
        with pytest.raises(ValueError):
            FaultSpec(start_after=-1)
        with pytest.raises(ValueError):
            FaultSpec(start_after=5, stop_after=5)

    def test_applies_matches_op_window_and_server(self):
        spec = FaultSpec(op="scan", start_after=10, stop_after=20, server_id=1)
        assert spec.applies("scan", 1, 10)
        assert spec.applies("scan", 1, 19)
        assert not spec.applies("scan", 1, 9)
        assert not spec.applies("scan", 1, 20)
        assert not spec.applies("put", 1, 15)
        assert not spec.applies("scan", 0, 15)

    def test_wildcard_op_matches_everything(self):
        spec = FaultSpec(op="*")
        for op in ("put", "get", "scan"):
            assert spec.applies(op, None, 0)


class TestServerCrash:
    def test_validation(self):
        with pytest.raises(ValueError):
            ServerCrash(server_id=-1, crash_at=0)
        with pytest.raises(ValueError):
            ServerCrash(server_id=0, crash_at=-1)
        with pytest.raises(ValueError):
            ServerCrash(server_id=0, crash_at=0, downtime=0)

    def test_window_covers_half_open_interval(self):
        crash = ServerCrash(server_id=2, crash_at=5, downtime=3)
        assert not crash.covers(2, 4)
        assert crash.covers(2, 5)
        assert crash.covers(2, 7)
        assert not crash.covers(2, 8)  # recovered
        assert not crash.covers(1, 6)  # other server

    def test_none_downtime_never_recovers(self):
        crash = ServerCrash(server_id=0, crash_at=3, downtime=None)
        assert crash.covers(0, 10_000)


class TestFaultPlan:
    def test_json_roundtrip(self):
        plan = FaultPlan(
            seed=7,
            faults=(FaultSpec(op="scan", kind="slow", delay_seconds=0.2),),
            crashes=(ServerCrash(server_id=0, crash_at=10, downtime=5),),
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_lists_coerced_to_tuples(self):
        plan = FaultPlan(faults=[FaultSpec()], crashes=[])
        assert isinstance(plan.faults, tuple)
        assert isinstance(plan.crashes, tuple)

    def test_presets_cover_cli_vocabulary(self):
        assert plan_from_spec("flaky", seed=3) == flaky_plan(3)
        assert plan_from_spec("flaky:0.5", seed=3) == flaky_plan(3, probability=0.5)
        assert plan_from_spec("outage") == outage_plan(0)
        assert plan_from_spec("slow:0.2") == slow_plan(0, delay_seconds=0.2)
        assert plan_from_spec("rolling-restart:25") == rolling_restart_plan(
            0, period=25
        )
        assert plan_from_spec("crash-point:37") == crash_point_plan(at=37)
        assert plan_from_spec("worker-kill:2") == worker_kill_plan(at=2)
        assert plan_from_spec("replica-kill") == replica_kill_plan(server_id=1)
        assert plan_from_spec("replica-kill:0") == replica_kill_plan(
            server_id=0
        )
        assert set(PRESETS) == {
            "flaky", "outage", "slow", "rolling-restart", "crash-point",
            "worker-kill", "replica-kill",
        }

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos preset"):
            plan_from_spec("meltdown")

    def test_spec_loads_json_plan_file(self, tmp_path):
        plan = outage_plan(seed=9)
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        assert plan_from_spec(str(path)) == plan

    def test_plan_document_is_plain_json(self):
        payload = json.loads(flaky_plan(1, probability=0.25).to_json())
        assert payload["seed"] == 1
        assert payload["faults"][0]["probability"] == 0.25


# ----------------------------------------------------------------------
# Injector
# ----------------------------------------------------------------------
def _drive(injector, ops):
    """Run an op sequence, recording what the injector did to each."""
    outcomes = []
    for op, server_id in ops:
        before = injector.clock.now()
        try:
            injector.on_operation(op, server_id=server_id)
        except TransientError:
            outcomes.append("transient")
        except ServerUnavailableError:
            outcomes.append("unavailable")
        else:
            delayed = injector.clock.now() > before
            outcomes.append("slow" if delayed else "ok")
    return outcomes


class TestFaultInjector:
    def test_certain_fault_always_fires(self):
        injector = FaultInjector(outage_plan(), registry=MetricsRegistry())
        for __ in range(5):
            with pytest.raises(ServerUnavailableError):
                injector.on_operation("scan")
        injector.on_operation("put")  # puts survive an outage plan
        assert injector.summary() == {"scan/unavailable": 5}
        assert injector.operations_seen == 6

    def test_crash_window_hits_only_target_server(self):
        plan = FaultPlan(crashes=(ServerCrash(server_id=1, crash_at=0, downtime=2),))
        injector = FaultInjector(plan, registry=MetricsRegistry())
        with pytest.raises(ServerUnavailableError):
            injector.on_operation("get", server_id=1)  # op 0: down
        injector.on_operation("get", server_id=0)  # op 1: other server fine
        injector.on_operation("get", server_id=1)  # op 2: recovered
        assert injector.summary() == {"get/crash": 1}

    def test_slow_fault_advances_virtual_clock(self):
        injector = FaultInjector(
            slow_plan(delay_seconds=0.25), registry=MetricsRegistry()
        )
        injector.on_operation("scan")
        injector.on_operation("put")  # unaffected
        assert injector.clock.now() == pytest.approx(0.25)
        assert injector.summary() == {"scan/slow": 1}

    def test_reset_rewinds_to_initial_state(self):
        injector = FaultInjector(
            flaky_plan(seed=5, probability=0.5), registry=MetricsRegistry()
        )
        ops = [("put", None)] * 40
        first = _drive(injector, ops)
        injector.reset()
        assert injector.operations_seen == 0
        assert injector.injected == {}
        assert _drive(injector, ops) == first

    @given(
        seed=st.integers(0, 2**16),
        probability=st.floats(0.0, 1.0),
        ops=st.lists(
            st.tuples(
                st.sampled_from(["put", "get", "scan"]),
                st.one_of(st.none(), st.integers(0, 2)),
            ),
            max_size=60,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_seeded_plan_is_deterministic(self, seed, probability, ops):
        """Property 1: same plan + same op sequence -> same fault sequence."""
        plan = FaultPlan(
            seed=seed,
            faults=(
                FaultSpec(op="*", kind="transient", probability=probability),
                FaultSpec(op="scan", kind="slow", probability=0.5,
                          delay_seconds=0.01),
            ),
            crashes=(ServerCrash(server_id=2, crash_at=10, downtime=5),),
        )
        registry = MetricsRegistry()
        a = FaultInjector(plan, registry=registry)
        b = FaultInjector(plan, registry=registry)
        assert _drive(a, ops) == _drive(b, ops)
        assert a.summary() == b.summary()
        assert a.clock.now() == b.clock.now()


# ----------------------------------------------------------------------
# Retry layer
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(deadline_seconds=0)

    def test_backoff_schedule_is_exponential_and_capped(self):
        policy = RetryPolicy(base_delay=0.01, multiplier=2.0, max_delay=0.05)
        assert [policy.backoff(i) for i in range(5)] == pytest.approx(
            [0.01, 0.02, 0.04, 0.05, 0.05]
        )
        with pytest.raises(ValueError):
            policy.backoff(-1)


class TestVirtualClock:
    def test_advances_monotonically(self):
        clock = VirtualClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now() == pytest.approx(2.0)
        with pytest.raises(ValueError):
            clock.advance(-0.1)


class TestCallWithRetry:
    def test_transient_errors_are_retried_to_success(self):
        attempts = []

        def fn():
            attempts.append(1)
            if len(attempts) < 3:
                raise TransientError("blip")
            return "ok"

        clock = VirtualClock()
        result = call_with_retry(
            fn, RetryPolicy(), clock, op="get", registry=MetricsRegistry()
        )
        assert result == "ok"
        assert len(attempts) == 3
        # Two backoffs were waited out on the virtual clock.
        assert clock.now() == pytest.approx(0.01 + 0.02)

    def test_gives_up_with_store_unavailable(self):
        def fn():
            raise ServerUnavailableError("down")

        with pytest.raises(StoreUnavailableError) as excinfo:
            call_with_retry(
                fn, RetryPolicy(max_attempts=3), VirtualClock(), op="scan",
                registry=MetricsRegistry(),
            )
        err = excinfo.value
        assert err.op == "scan"
        assert err.attempts == 3
        assert isinstance(err.last_error, ServerUnavailableError)
        assert err.__cause__ is err.last_error

    def test_non_retryable_errors_propagate_immediately(self):
        calls = []

        def fn():
            calls.append(1)
            raise TableNotFoundError("no such table")

        with pytest.raises(TableNotFoundError):
            call_with_retry(
                fn, RetryPolicy(), VirtualClock(), registry=MetricsRegistry()
            )
        assert len(calls) == 1

    def test_store_unavailable_is_not_retryable(self):
        # The give-up signal must never feed a second retry loop.
        calls = []

        def fn():
            calls.append(1)
            raise StoreUnavailableError("put", attempts=4, elapsed_seconds=1.0)

        with pytest.raises(StoreUnavailableError):
            call_with_retry(
                fn, RetryPolicy(), VirtualClock(), registry=MetricsRegistry()
            )
        assert len(calls) == 1

    def test_retry_metrics_counted(self):
        registry = MetricsRegistry()

        def fn():
            raise TransientError("blip")

        with pytest.raises(StoreUnavailableError):
            call_with_retry(
                fn, RetryPolicy(max_attempts=4), VirtualClock(), op="put",
                registry=registry,
            )
        counters = {
            (inst.name, tuple(sorted(inst.labels.items()))): inst.value
            for inst in registry.collect()
            if inst.kind == "counter"
        }
        assert counters[
            ("pstorm_store_retryable_errors_total", (("op", "put"),))
        ] == 4
        assert counters[("pstorm_store_retries_total", (("op", "put"),))] == 3
        assert counters[("pstorm_store_giveups_total", (("op", "put"),))] == 1

    @given(
        max_attempts=st.integers(1, 6),
        base_delay=st.floats(0.001, 0.5),
        multiplier=st.floats(1.0, 3.0),
        deadline=st.floats(0.01, 2.0),
        fail_count=st.integers(0, 10),
    )
    @settings(max_examples=80, deadline=None)
    def test_budgets_are_never_exceeded(
        self, max_attempts, base_delay, multiplier, deadline, fail_count
    ):
        """Property 2: attempts <= max_attempts and the clock never
        sleeps past the deadline, whatever the failure pattern."""
        policy = RetryPolicy(
            max_attempts=max_attempts, base_delay=base_delay,
            multiplier=multiplier, deadline_seconds=deadline,
        )
        clock = VirtualClock()
        calls = []

        def fn():
            calls.append(1)
            if len(calls) <= fail_count:
                raise TransientError("blip")
            return "ok"

        try:
            call_with_retry(
                fn, policy, clock, op="x", registry=MetricsRegistry()
            )
        except StoreUnavailableError as exc:
            assert exc.attempts <= max_attempts
        assert len(calls) <= max_attempts
        assert clock.now() <= deadline + 1e-9


# ----------------------------------------------------------------------
# Resilient store client
# ----------------------------------------------------------------------
class TestResilientProfileStore:
    def test_retries_transient_faults_transparently(self):
        # Half the substrate operations fail; the client must hide it.
        injector = FaultInjector(
            flaky_plan(seed=1, probability=0.5), registry=MetricsRegistry()
        )
        store = ProfileStore(chaos=injector, registry=MetricsRegistry())
        resilient = ResilientProfileStore(
            store, policy=RetryPolicy(max_attempts=10, deadline_seconds=100.0)
        )
        assert resilient.job_ids() == []
        assert len(resilient) == 0
        assert "nope" not in resilient
        assert injector.injected  # chaos actually fired

    def test_shares_injector_clock(self):
        injector = FaultInjector(outage_plan(), registry=MetricsRegistry())
        store = ProfileStore(chaos=injector, registry=MetricsRegistry())
        resilient = ResilientProfileStore(store)
        assert resilient.clock is injector.clock

    def test_delegates_unwrapped_attributes(self):
        store = ProfileStore(registry=MetricsRegistry())
        resilient = ResilientProfileStore(store)
        assert resilient.hbase is store.hbase
        assert resilient.pushdown is store.pushdown

    def test_exhausted_budget_surfaces_store_unavailable(self):
        plan = FaultPlan(faults=(FaultSpec(op="get", kind="transient"),))
        injector = FaultInjector(plan, registry=MetricsRegistry())
        store = ProfileStore(chaos=injector, registry=MetricsRegistry())
        resilient = ResilientProfileStore(store, policy=RetryPolicy(max_attempts=2))
        with pytest.raises(StoreUnavailableError):
            resilient.get_profile("missing")

    def test_scan_job_ids_survives_mid_scan_faults(
        self, engine, profiler, sampler, wordcount, maponly_job, small_text
    ):
        from repro.core.features import extract_job_features
        from repro.core.store import DYNAMIC_PREFIX

        def populate(store):
            ids = []
            for job in (wordcount, maponly_job):
                profile, __ = profiler.profile_job(job, small_text)
                sample = sampler.collect(job, small_text, count=1)
                features = extract_job_features(
                    job, small_text, sample.profile, engine
                )
                ids.append(store.put(profile, features.static))
            return ids

        # Rehearse the identical put sequence against an empty plan to
        # learn the op index where the probe scan starts, then open a
        # two-op transient window right there: the first two scan
        # attempts die mid-probe and the third replays cleanly.
        rehearsal = FaultInjector(FaultPlan(), registry=MetricsRegistry())
        clean_store = ProfileStore(chaos=rehearsal, registry=MetricsRegistry())
        expected = sorted(populate(clean_store))
        fault_at = rehearsal.operations_seen
        assert clean_store.scan_job_ids(DYNAMIC_PREFIX) == expected

        plan = FaultPlan(
            faults=(
                FaultSpec(
                    op="scan",
                    kind="transient",
                    start_after=fault_at,
                    stop_after=fault_at + 2,
                ),
            )
        )
        injector = FaultInjector(plan, registry=MetricsRegistry())
        store = ProfileStore(chaos=injector, registry=MetricsRegistry())
        populate(store)
        resilient = ResilientProfileStore(
            store, policy=RetryPolicy(max_attempts=6, deadline_seconds=100.0)
        )
        assert resilient.scan_job_ids(DYNAMIC_PREFIX) == expected
        assert injector.summary() == {"scan/transient": 2}


# ----------------------------------------------------------------------
# PStorM degradation (the acceptance scenario)
# ----------------------------------------------------------------------
def _chaotic_pstorm(engine, plan, registry=None):
    """A PStorM whose store substrate runs under *plan*."""
    registry = registry if registry is not None else MetricsRegistry()
    injector = FaultInjector(plan, registry=registry)
    store = ProfileStore(chaos=injector, registry=registry)
    daemon = PStorM(engine, store=store, registry=registry)
    return daemon, injector


class TestGracefulDegradation:
    def test_submit_completes_under_total_scan_outage(
        self, engine, wordcount, small_text
    ):
        # Puts survive the outage plan, so the store has content and the
        # probe genuinely reaches (and loses) the scan stage.
        daemon, injector = _chaotic_pstorm(engine, outage_plan(seed=0))
        daemon.remember(wordcount, small_text)
        result = daemon.submit(wordcount, small_text)
        assert isinstance(result, SubmissionResult)
        assert result.degraded
        assert result.degradation_reason == "store-probe"
        assert result.fallback_path == "rbo"
        assert not result.matched
        assert result.outcome.map_match.stage == "store-unavailable"
        assert result.runtime_seconds > 0
        # 1 poisoned match-index rebuild attempt (unretried) + the scan
        # path's 4 retried attempts under the default budget.
        assert injector.summary() == {"scan/unavailable": 5}

    def test_downgrade_visible_in_exported_metrics(
        self, engine, wordcount, small_text
    ):
        registry = MetricsRegistry()
        daemon, __ = _chaotic_pstorm(engine, outage_plan(seed=0), registry)
        daemon.remember(wordcount, small_text)
        result = daemon.submit(wordcount, small_text)
        counters = result.metrics["counters"]
        assert counters['pstorm_degraded_submissions_total{reason="store-probe"}'] == 1
        assert counters['pstorm_fallback_total{path="rbo"}'] == 1
        assert counters['pstorm_store_giveups_total{op="scan"}'] == 1
        assert any(key.startswith("chaos_faults_injected_total") for key in counters)

    def test_same_seed_reproduces_identical_outcome(
        self, engine, wordcount, small_text
    ):
        outcomes = []
        for __ in range(2):
            daemon, injector = _chaotic_pstorm(
                engine, flaky_plan(seed=11, probability=0.4)
            )
            try:
                daemon.remember(wordcount, small_text, seed=2)
                remembered = True
            except StoreUnavailableError:
                remembered = False
            result = daemon.submit(wordcount, small_text, seed=2)
            outcomes.append(
                (
                    remembered,
                    result.matched,
                    result.degraded,
                    result.fallback_path,
                    result.config,
                    result.runtime_seconds,
                    injector.summary(),
                )
            )
        assert outcomes[0] == outcomes[1]

    def test_store_put_failure_degrades_miss_path(
        self, engine, wordcount, small_text
    ):
        # Every put fails: the probe (scans on an empty store never run)
        # misses cleanly, then the profile write exhausts its budget.
        plan = FaultPlan(faults=(FaultSpec(op="put", kind="transient"),))
        daemon, __ = _chaotic_pstorm(engine, plan)
        result = daemon.submit(wordcount, small_text)
        assert result.degraded
        assert result.degradation_reason == "store-put"
        assert result.fallback_path is None  # the job already ran normally
        assert result.profile_stored_as is None
        assert result.runtime_seconds > 0

    def test_remember_propagates_store_unavailable(
        self, engine, wordcount, small_text
    ):
        plan = FaultPlan(faults=(FaultSpec(op="put", kind="transient"),))
        daemon, __ = _chaotic_pstorm(engine, plan)
        with pytest.raises(StoreUnavailableError):
            daemon.remember(wordcount, small_text)

    def test_healthy_store_is_not_degraded(self, engine, wordcount, small_text):
        daemon = PStorM(engine, registry=MetricsRegistry())
        daemon.remember(wordcount, small_text)
        result = daemon.submit(wordcount, small_text)
        assert result.matched
        assert not result.degraded
        assert result.degradation_reason is None

    @given(
        kind=st.sampled_from(["transient", "unavailable"]),
        probability=st.floats(0.5, 1.0),
        seed=st.integers(0, 1000),
    )
    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_submit_always_returns_under_any_outage(
        self, engine, wordcount, small_text, kind, probability, seed
    ):
        """Property 3: whatever the store suffers, submission completes."""
        plan = FaultPlan(
            seed=seed,
            faults=(FaultSpec(op="*", kind=kind, probability=probability),),
        )
        daemon, __ = _chaotic_pstorm(engine, plan)
        result = daemon.submit(wordcount, small_text, seed=1)
        assert isinstance(result, SubmissionResult)
        assert result.runtime_seconds > 0
        assert result.config is not None


# ----------------------------------------------------------------------
# The process-default injector (the CLI's --chaos mechanism)
# ----------------------------------------------------------------------
class TestDefaultInjector:
    def test_substrates_pick_up_the_default(self):
        injector = FaultInjector(outage_plan(), registry=MetricsRegistry())
        previous = set_default_injector(injector)
        try:
            store = ProfileStore(registry=MetricsRegistry())
            assert store.hbase.chaos is injector
        finally:
            set_default_injector(previous)

    def test_no_default_means_no_chaos(self):
        assert default_injector() is None
        store = ProfileStore(registry=MetricsRegistry())
        assert store.hbase.chaos is None

    def test_explicit_injector_wins_over_default(self):
        plan = FaultPlan()
        mine = FaultInjector(plan, registry=MetricsRegistry())
        other = FaultInjector(plan, registry=MetricsRegistry())
        previous = set_default_injector(other)
        try:
            store = ProfileStore(chaos=mine, registry=MetricsRegistry())
            assert store.hbase.chaos is mine
        finally:
            set_default_injector(previous)
