"""The tuner-family battery: protocol, determinism, bounds, league.

Every member of :mod:`repro.tuners` must be (a) a drop-in behind the
``Tuner`` protocol, (b) bit-identical across re-runs under a fixed seed,
and (c) bounded — every configuration an iterative tuner ever prices
stays inside the Table 2.1 parameter space.  The adapters carry a
stronger bar: the CBO adapter's decision must equal a direct
``CostBasedOptimizer.optimize`` call field for field, and the default
``PStorM(tuner="cbo")`` submit path must reproduce the pre-family
pipeline exactly.  The league harness on top must be a pure function of
``(seed, roster, entries, budgets)`` — same payload at any worker count.
"""

import pytest
from hypothesis import given, settings, strategies as st

from conftest import _text_lines, wc_map, wc_reduce
from repro.core.pstorm import PStorM
from repro.hadoop import (
    Dataset,
    FunctionRecordSource,
    HadoopEngine,
    MapReduceJob,
)
from repro.hadoop.config import CONFIGURATION_SPACE, JobConfiguration
from repro.observability import MetricsRegistry
from repro.starfish.cbo import CostBasedOptimizer
from repro.starfish.rbo import RuleBasedOptimizer
from repro.starfish.whatif import WhatIfEngine
from repro.tuners import (
    TUNER_NAMES,
    CboTuner,
    EnsembleTuner,
    SpsaTuner,
    SurrogateTuner,
    Tuner,
    TunerContext,
    make_tuner,
)
from repro.tuners.base import (
    DEFAULT_ROW,
    WhatIfObjective,
    row_from_unit,
    unit_from_row,
)
from repro.tuners.league import (
    QUICK_BUDGETS,
    LeagueConfig,
    leaderboard_json,
    quick_entries,
    run_league,
)

MB = 1 << 20

_settings = settings(max_examples=10, deadline=None)

#: Small search budgets: the properties hold at any budget, so the
#: battery runs at league quick-mode scale.
BUDGETS = QUICK_BUDGETS


@pytest.fixture(scope="module")
def wc_profile(profiler):
    job = MapReduceJob(
        name="tuners-wordcount", mapper=wc_map, reducer=wc_reduce,
        combiner=wc_reduce,
    )
    dataset = Dataset(
        "tuners-text",
        nominal_bytes=256 * MB,
        source=FunctionRecordSource(_text_lines),
        seed=5,
    )
    profile, __ = profiler.profile_job(job, dataset)
    return profile


@pytest.fixture(scope="module")
def maponly_profile(profiler):
    def identity(key, value, ctx):
        ctx.emit(key, value)

    job = MapReduceJob(name="tuners-maponly", mapper=identity)
    dataset = Dataset(
        "tuners-maponly-text",
        nominal_bytes=128 * MB,
        source=FunctionRecordSource(_text_lines),
        seed=6,
    )
    profile, __ = profiler.profile_job(job, dataset)
    return profile


def _decision_key(decision):
    return (
        decision.best_config,
        decision.predicted_runtime,
        decision.default_predicted_runtime,
        decision.evaluations,
        decision.memo_hits,
        decision.chosen,
    )


def assert_config_in_bounds(config: JobConfiguration) -> None:
    for spec in CONFIGURATION_SPACE:
        value = getattr(config, spec.attribute)
        if spec.kind == "bool":
            assert isinstance(value, bool)
        else:
            assert spec.low <= value <= spec.high, (
                f"{spec.name}={value!r} outside [{spec.low}, {spec.high}]"
            )
        if spec.kind == "int":
            assert value == int(value)


class TestCubeMapping:
    @_settings
    @given(
        unit=st.lists(
            st.floats(min_value=-0.5, max_value=1.5, allow_nan=False),
            min_size=len(CONFIGURATION_SPACE),
            max_size=len(CONFIGURATION_SPACE),
        )
    )
    def test_row_from_unit_always_in_bounds(self, unit):
        import numpy as np

        row = row_from_unit(np.asarray(unit, dtype=np.float64))
        from repro.tuners.base import config_from_row

        assert_config_in_bounds(config_from_row(row))

    def test_default_row_round_trip(self):
        import numpy as np

        row = row_from_unit(unit_from_row(DEFAULT_ROW))
        # Floats re-interpolate through log space (tiny ulp drift is
        # fine); int and bool dimensions must come back exactly.
        assert np.allclose(row, DEFAULT_ROW, rtol=1e-12, atol=1e-12)
        for position, spec in enumerate(CONFIGURATION_SPACE):
            if spec.kind in ("int", "bool"):
                assert row[position] == DEFAULT_ROW[position]


class TestFactory:
    def test_every_name_resolves(self, cluster):
        for name in TUNER_NAMES:
            tuner = make_tuner(name, WhatIfEngine(cluster), seed=1)
            assert tuner.name == name
            assert isinstance(tuner, Tuner)

    def test_unknown_name_rejected(self, cluster):
        with pytest.raises(ValueError, match="unknown tuner"):
            make_tuner("annealing", WhatIfEngine(cluster))

    def test_budgets_reach_constructors(self, cluster):
        tuner = make_tuner(
            "spsa", WhatIfEngine(cluster), budgets={"spsa": {"iterations": 3}}
        )
        assert tuner.iterations == 3


class TestDeterminism:
    """Same seed, same profile → bit-identical decision, every member."""

    @_settings
    @given(
        name=st.sampled_from(TUNER_NAMES),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_rerun_bit_identical(self, cluster, wc_profile, name, seed):
        def decide():
            tuner = make_tuner(
                name, WhatIfEngine(cluster), seed=seed, budgets=BUDGETS
            )
            return tuner.optimize(wc_profile, data_bytes=256 * MB)

        assert _decision_key(decide()) == _decision_key(decide())

    def test_league_rerun_byte_identical(self, tmp_path):
        entries = quick_entries()[:2]

        def race(workers):
            config = LeagueConfig(
                seed=11, quick=True, entries=entries, workers=workers
            )
            return leaderboard_json(run_league(config))

        assert race(1) == race(1)

    def test_league_worker_count_invisible(self):
        entries = quick_entries()[:2]

        def race(workers):
            config = LeagueConfig(
                seed=11, quick=True, entries=entries, workers=workers
            )
            return leaderboard_json(run_league(config))

        assert race(1) == race(3)


class TestBounds:
    """Iterative tuners never price an out-of-bounds configuration."""

    @_settings
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_spsa_history_in_bounds(self, cluster, wc_profile, seed):
        tuner = SpsaTuner(WhatIfEngine(cluster), iterations=6, seed=seed)
        decision = tuner.optimize(wc_profile, data_bytes=256 * MB)
        assert decision.history
        for config, __ in decision.history:
            assert_config_in_bounds(config)
        assert_config_in_bounds(decision.best_config)

    @_settings
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_surrogate_history_in_bounds(self, cluster, wc_profile, seed):
        tuner = SurrogateTuner(
            WhatIfEngine(cluster),
            initial_samples=4,
            rounds=3,
            candidate_pool=32,
            seed=seed,
        )
        decision = tuner.optimize(wc_profile, data_bytes=256 * MB)
        assert decision.history
        for config, __ in decision.history:
            assert_config_in_bounds(config)
        assert_config_in_bounds(decision.best_config)

    def test_best_never_worse_than_default(self, cluster, wc_profile):
        for name in ("spsa", "surrogate", "ensemble"):
            tuner = make_tuner(
                name, WhatIfEngine(cluster), seed=2, budgets=BUDGETS
            )
            decision = tuner.optimize(wc_profile, data_bytes=256 * MB)
            assert (
                decision.predicted_runtime
                <= decision.default_predicted_runtime
            )


class TestAdapters:
    def test_cbo_adapter_bit_identical_to_direct_call(self, cluster, wc_profile):
        """The acceptance bar: adapting the CBO changes nothing."""
        whatif = WhatIfEngine(cluster)
        direct = CostBasedOptimizer(
            whatif, seed=9, **QUICK_BUDGETS["cbo"]
        ).optimize(wc_profile, data_bytes=256 * MB)
        adapted = CboTuner(
            CostBasedOptimizer(whatif, seed=9, **QUICK_BUDGETS["cbo"])
        ).optimize(wc_profile, data_bytes=256 * MB)
        assert adapted.best_config == direct.best_config
        assert adapted.predicted_runtime == direct.predicted_runtime
        assert (
            adapted.default_predicted_runtime
            == direct.default_predicted_runtime
        )
        assert adapted.evaluations == direct.evaluations
        assert adapted.memo_hits == direct.memo_hits

    def test_rbo_adapter_carries_rule_config(self, cluster, wc_profile):
        whatif = WhatIfEngine(cluster)
        rules = RuleBasedOptimizer(cluster)
        decision = make_tuner("rbo", whatif, cluster=cluster).optimize(
            wc_profile, data_bytes=256 * MB
        )
        assert decision.best_config == rules.recommend(wc_profile).config
        assert decision.evaluations == 2


class TestEnsemble:
    def test_requires_cbo_member(self, cluster):
        whatif = WhatIfEngine(cluster)
        with pytest.raises(ValueError, match="cbo"):
            EnsembleTuner({"rbo": make_tuner("rbo", whatif, cluster=cluster)})

    def test_shortlist_routing(self, cluster, wc_profile, maponly_profile):
        ensemble = make_tuner(
            "ensemble", WhatIfEngine(cluster), seed=0, budgets=BUDGETS
        )
        # No match outcome -> uncertain -> the surrogate hedges.
        assert ensemble.shortlist(wc_profile, None) == ("cbo", "surrogate")
        # Map-only adds the rules.
        assert "rbo" in ensemble.shortlist(maponly_profile, None)
        # Shuffle-heavy (reduce side + big input) adds SPSA.
        import dataclasses

        big = dataclasses.replace(wc_profile, input_bytes=4 << 30)
        assert "spsa" in ensemble.shortlist(big, None)

    def test_never_worse_than_cbo(self, cluster, wc_profile):
        whatif = WhatIfEngine(cluster)
        cbo = make_tuner("cbo", whatif, seed=4, budgets=BUDGETS).optimize(
            wc_profile, data_bytes=256 * MB
        )
        ensemble = make_tuner(
            "ensemble", whatif, seed=4, budgets=BUDGETS
        ).optimize(wc_profile, data_bytes=256 * MB)
        assert ensemble.predicted_runtime <= cbo.predicted_runtime
        assert ensemble.chosen in TUNER_NAMES
        assert ensemble.evaluations >= cbo.evaluations

    def test_metrics_recorded(self, cluster, wc_profile):
        registry = MetricsRegistry()
        tuner = make_tuner(
            "ensemble",
            WhatIfEngine(cluster),
            seed=0,
            budgets=BUDGETS,
            registry=registry,
        )
        decision = tuner.optimize(wc_profile, data_bytes=256 * MB)
        assert (
            registry.counter(
                "tuner_optimizations_total", labels={"tuner": "ensemble"}
            ).value
            == 1
        )
        assert (
            registry.counter(
                "tuner_ensemble_selections_total",
                labels={"member": decision.chosen},
            ).value
            == 1
        )


class TestObjective:
    def test_counts_and_memoizes(self, cluster, wc_profile):
        objective = WhatIfObjective(
            WhatIfEngine(cluster), wc_profile, data_bytes=256 * MB
        )
        first = objective(DEFAULT_ROW)
        again = objective(DEFAULT_ROW)
        assert first == again
        # Every candidate counts toward the budget (the CBO's own
        # convention); the memo hit is tracked separately and the
        # duplicate never re-enters the history.
        assert objective.evaluations == 2
        assert objective.memo_hits == 1
        assert len(objective.history) == 1


class TestLeaguePayload:
    def test_well_formed(self):
        entries = quick_entries()[:2]
        payload = run_league(
            LeagueConfig(seed=5, quick=True, entries=entries)
        )
        assert payload["config"]["tuners"] == list(TUNER_NAMES)
        ranks = [row["rank"] for row in payload["leaderboard"]]
        assert ranks == list(range(1, len(TUNER_NAMES) + 1))
        for name in TUNER_NAMES:
            assert set(payload["cells"][name]) == {e.key for e in entries}
            row = payload["tuners"][name]
            assert row["total_evaluations"] > 0
            assert row["mean_speedup"] >= 1.0

    def test_roster_subset_and_validation(self):
        entries = quick_entries()[:1]
        payload = run_league(
            LeagueConfig(seed=5, quick=True, entries=entries, tuners=("rbo", "cbo"))
        )
        assert list(payload["cells"]) == ["rbo", "cbo"]
        with pytest.raises(ValueError, match="unknown tuners"):
            LeagueConfig(tuners=("cbo", "annealing"))
        with pytest.raises(ValueError, match="at least one"):
            LeagueConfig(tuners=())


class TestPStorMIntegration:
    def _pipeline(self, cluster, tuner):
        return PStorM(HadoopEngine(cluster), seed=3, tuner=tuner)

    def _workload(self):
        job = MapReduceJob(
            name="pstorm-tuner-wc", mapper=wc_map, reducer=wc_reduce,
            combiner=wc_reduce,
        )
        dataset = Dataset(
            "pstorm-tuner-text",
            nominal_bytes=256 * MB,
            source=FunctionRecordSource(_text_lines),
            seed=5,
        )
        return job, dataset

    def test_default_tuner_is_cbo_and_bit_identical(self, cluster):
        job, dataset = self._workload()
        results = []
        for pipeline in (
            PStorM(HadoopEngine(cluster), seed=3),
            self._pipeline(cluster, "cbo"),
        ):
            assert pipeline.tuner_impl.name == "cbo"
            pipeline.remember(job, dataset, seed=3)
            results.append(pipeline.submit(job, dataset, seed=3))
        first, second = results
        assert first.matched and second.matched
        assert first.config == second.config
        assert first.runtime_seconds == second.runtime_seconds

    @pytest.mark.parametrize("tuner", ["rbo", "spsa", "surrogate", "ensemble"])
    def test_alternate_tuners_complete(self, cluster, tuner):
        job, dataset = self._workload()
        pipeline = self._pipeline(cluster, tuner)
        pipeline.remember(job, dataset, seed=3)
        result = pipeline.submit(job, dataset, seed=3)
        assert result.matched
        assert result.runtime_seconds > 0
        assert_config_in_bounds(result.config)

    def test_unknown_tuner_rejected(self, cluster):
        with pytest.raises(ValueError, match="unknown tuner"):
            PStorM(HadoopEngine(cluster), tuner="annealing")
