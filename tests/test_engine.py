"""Integration tests for the HadoopEngine façade."""

import pytest

from repro.hadoop.config import JobConfiguration


class TestRunJob:
    def test_full_run_shape(self, engine, wordcount, small_text):
        execution = engine.run_job(wordcount, small_text, JobConfiguration())
        assert execution.num_map_tasks == small_text.num_splits
        assert execution.num_reduce_tasks == 1
        assert execution.runtime_seconds > 0
        assert not execution.sampled

    def test_map_only_job_has_no_reducers(self, engine, maponly_job, small_text):
        execution = engine.run_job(maponly_job, small_text, JobConfiguration())
        assert execution.num_reduce_tasks == 0

    def test_reducer_count_follows_config(self, engine, wordcount, small_text):
        execution = engine.run_job(
            wordcount, small_text, JobConfiguration(num_reduce_tasks=6)
        )
        assert execution.num_reduce_tasks == 6

    def test_sampled_run(self, engine, wordcount, small_text):
        execution = engine.run_job(
            wordcount, small_text, JobConfiguration(), map_task_ids=[1]
        )
        assert execution.sampled
        assert execution.num_map_tasks == 1
        assert execution.map_tasks[0].split_index == 1
        assert execution.input_bytes == small_text.split(1).nominal_bytes

    def test_sampled_run_rejects_bad_ids(self, engine, wordcount, small_text):
        with pytest.raises(IndexError):
            engine.run_job(wordcount, small_text, map_task_ids=[99])

    def test_deterministic_under_seed(self, engine, wordcount, small_text):
        a = engine.run_job(wordcount, small_text, JobConfiguration(), seed=7)
        b = engine.run_job(wordcount, small_text, JobConfiguration(), seed=7)
        assert a.runtime_seconds == b.runtime_seconds

    def test_seed_changes_node_noise(self, engine, wordcount, small_text):
        a = engine.run_job(wordcount, small_text, JobConfiguration(), seed=1)
        b = engine.run_job(wordcount, small_text, JobConfiguration(), seed=2)
        assert a.runtime_seconds != b.runtime_seconds

    def test_tuning_reduces_runtime(self, engine, wordcount, small_text):
        default = engine.run_job(wordcount, small_text, JobConfiguration())
        tuned = engine.run_job(
            wordcount,
            small_text,
            JobConfiguration(num_reduce_tasks=8, compress_map_output=True),
        )
        assert tuned.runtime_seconds < default.runtime_seconds

    def test_counters_aggregate(self, engine, wordcount, small_text):
        from repro.hadoop.counters import FRAMEWORK_GROUP

        execution = engine.run_job(wordcount, small_text, JobConfiguration())
        total = execution.counters.value(FRAMEWORK_GROUP, "MAP_INPUT_RECORDS")
        assert total == sum(t.input_records for t in execution.map_tasks)

    def test_profiled_run_slower(self, engine, wordcount, small_text):
        plain = engine.run_job(wordcount, small_text, JobConfiguration())
        profiled = engine.run_job(
            wordcount, small_text, JobConfiguration(), profile=True
        )
        assert profiled.runtime_seconds > plain.runtime_seconds

    def test_phase_totals_cover_phases(self, engine, wordcount, small_text):
        execution = engine.run_job(wordcount, small_text, JobConfiguration())
        assert set(execution.map_phase_totals()) == {
            "SETUP", "READ", "MAP", "COLLECT", "SPILL", "MERGE", "CLEANUP",
        }
        assert set(execution.reduce_phase_totals()) == {
            "SETUP", "SHUFFLE", "SORT", "REDUCE", "WRITE", "CLEANUP",
        }


class TestMeasurementCache:
    def test_measure_split_cached(self, engine, wordcount, small_text):
        first = engine.measure_split(wordcount, small_text, 0)
        second = engine.measure_split(wordcount, small_text, 0)
        assert first is second

    def test_clear_caches(self, engine, wordcount, small_text):
        first = engine.measure_split(wordcount, small_text, 0)
        engine.clear_caches()
        second = engine.measure_split(wordcount, small_text, 0)
        assert first is not second

    def test_representatives_within_range(self, engine, small_text):
        indices = engine.representative_indices(small_text)
        assert all(0 <= i < small_text.num_splits for i in indices)
        assert indices == sorted(indices)

    def test_params_change_cache_key(self, engine, small_text):
        from repro.hadoop.job import MapReduceJob

        def param_map(key, value, ctx):
            for __ in range(ctx.get_param("n", 1)):
                ctx.emit(key, value)

        one = MapReduceJob(name="p", mapper=param_map, params={"n": 1})
        three = MapReduceJob(name="p", mapper=param_map, params={"n": 3})
        m1 = engine.measure_split(one, small_text, 0)
        m3 = engine.measure_split(three, small_text, 0)
        assert m3.sample_output_records == 3 * m1.sample_output_records
