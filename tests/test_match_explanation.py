"""Tests for the match-trace API and the end-to-end §7.2.1 matcher."""

import pytest

from repro.core import (
    ParamAwareMatcher,
    ProfileMatcher,
    ProfileStore,
    explain_match,
    extract_job_features,
)


@pytest.fixture()
def make_features(engine, sampler):
    def build(job, dataset, seed=0):
        sample = sampler.collect(job, dataset, count=1, seed=seed)
        return extract_job_features(job, dataset, sample.profile, engine)

    return build


class TestExplainMatch:
    def test_trace_mentions_funnel_and_winner(
        self, engine, profiler, make_features, wordcount, small_text
    ):
        store = ProfileStore()
        profile, __ = profiler.profile_job(wordcount, small_text)
        store.put(profile, make_features(wordcount, small_text).static)
        matcher = ProfileMatcher(store)
        trace = explain_match(matcher, make_features(wordcount, small_text))
        assert "map side" in trace
        assert "after dynamic" in trace
        assert "wordcount-test@small-text" in trace
        assert "single-donor" in trace

    def test_trace_for_empty_store(self, make_features, wordcount, small_text):
        matcher = ProfileMatcher(ProfileStore())
        trace = explain_match(matcher, make_features(wordcount, small_text))
        assert "no match" in trace
        assert "run instrumented" in trace


class TestParamAwareMatching:
    def test_parameterizations_distinguished(
        self, engine, profiler, make_features, small_text
    ):
        """Store two window sizes of co-occurrence; the param-aware
        matcher must pick the matching parameterization, where the plain
        matcher cannot tell them apart statically."""
        from repro.core.extensions import augment_with_params
        from repro.workloads import cooccurrence_pairs_job

        store = ProfileStore()
        for window in (2, 5):
            job = cooccurrence_pairs_job(window=window)
            profile, __ = profiler.profile_job(job, small_text)
            features = make_features(job, small_text)
            augmented = augment_with_params(features.static, job)
            store.put(profile, augmented, job_id=f"cooc-w{window}@small-text")

        probe_job = cooccurrence_pairs_job(window=5)
        features = make_features(probe_job, small_text)
        probe = ParamAwareMatcher.augment(features, probe_job)

        outcome = ParamAwareMatcher(store, euclidean_threshold=2.0).match_job(probe)
        assert outcome.matched
        assert outcome.map_match.job_id == "cooc-w5@small-text"

    def test_augment_keeps_dynamic_features(self, make_features, small_text):
        from repro.workloads import grep_job

        job = grep_job("needle")
        features = make_features(job, small_text)
        augmented = ParamAwareMatcher.augment(features, job)
        assert augmented.map_data_flow == features.map_data_flow
        assert augmented.static.categorical["PARAM_pattern"] == "'needle'"
