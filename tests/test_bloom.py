"""Property tests for the per-SSTable Bloom filters.

The leveled read path is only as good as its filters: the measured
false-positive rate must track the designed target (within the usual
constant factor), serialization must round-trip bit-for-bit so a
snapshot restore reopens filters without rereading key blocks, and a
cold durable store must actually *skip* blocks on a point read.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hbase import BloomFilter, LsmStore
from repro.observability import MetricsRegistry


class TestFalsePositiveRate:
    @pytest.mark.parametrize("seed", [0, 1, 7, 42, 1337])
    @pytest.mark.parametrize("target_fpr", [0.01, 0.05])
    def test_measured_fpr_within_2x_target(self, seed, target_fpr):
        capacity = 2000
        bloom = BloomFilter(capacity, target_fpr=target_fpr, seed=seed)
        for i in range(capacity):
            bloom.add(f"member-{seed}-{i}")
        trials = 20_000
        false_positives = sum(
            bloom.might_contain(f"absent-{seed}-{i}") for i in range(trials)
        )
        measured = false_positives / trials
        assert measured <= 2.0 * target_fpr, (
            f"seed={seed}: measured FPR {measured:.4f} exceeds "
            f"2x target {target_fpr}"
        )

    def test_no_false_negatives_ever(self):
        bloom = BloomFilter(500, target_fpr=0.01)
        keys = [f"k{i}" for i in range(500)]
        for key in keys:
            bloom.add(key)
        assert all(bloom.might_contain(key) for key in keys)

    @given(st.lists(st.text(max_size=24), unique=True, max_size=64))
    @settings(max_examples=50)
    def test_membership_property(self, keys):
        bloom = BloomFilter(max(len(keys), 1))
        for key in keys:
            bloom.add(key)
        # The defining one-sided guarantee: members always pass.
        assert all(bloom.might_contain(key) for key in keys)


class TestSerialization:
    @given(
        st.lists(st.text(max_size=16), unique=True, max_size=40),
        st.integers(min_value=0, max_value=10),
    )
    @settings(max_examples=50)
    def test_round_trip_preserves_answers(self, keys, seed):
        bloom = BloomFilter(max(len(keys), 1), seed=seed)
        for key in keys:
            bloom.add(key)
        restored = BloomFilter.from_dict(bloom.to_dict())
        probes = keys + [f"probe-{i}" for i in range(50)]
        assert [restored.might_contain(p) for p in probes] == [
            bloom.might_contain(p) for p in probes
        ]
        assert restored.added == bloom.added
        assert restored.seed == bloom.seed

    def test_shape_mismatch_is_rejected(self):
        payload = BloomFilter(100).to_dict()
        payload["capacity"] = 10_000  # declared shape no longer matches bits
        with pytest.raises(ValueError, match="declared shape"):
            BloomFilter.from_dict(payload)

    def test_deterministic_across_instances(self):
        # Same keys + same seed => identical serialized bits, so filters
        # written by one process are valid in another.
        one, two = BloomFilter(64, seed=3), BloomFilter(64, seed=3)
        for key in ["a", "b", "c"]:
            one.add(key)
            two.add(key)
        assert one.to_dict() == two.to_dict()


class TestSaturation:
    def test_saturation_grows_monotonically(self):
        bloom = BloomFilter(100, target_fpr=0.01)
        assert bloom.saturation() == 0.0
        previous = 0.0
        for i in range(100):
            bloom.add(f"k{i}")
            current = bloom.saturation()
            assert current >= previous
            previous = current
        # At design capacity the textbook fill is ~50%; leave headroom.
        assert 0.2 < bloom.saturation() < 0.7

    def test_overfilled_filter_saturates(self):
        bloom = BloomFilter(10, target_fpr=0.01)
        for i in range(1000):
            bloom.add(f"k{i}")
        assert bloom.saturation() > 0.9


class TestColdProbeSkipsBlocks:
    @staticmethod
    def _populate(tmp_path):
        # Write in a strided order so every flush batch spans the whole
        # keyspace: the SSTables' key ranges all overlap, which makes
        # the Bloom filter (not min/max pruning) do the skipping.
        store = LsmStore(flush_threshold=8, compaction_threshold=100,
                         data_dir=tmp_path)
        for i in range(32):
            k = (i * 9) % 32
            store.put(f"k{k:04d}", k)
        assert len(store.hfiles) == 4
        store.close()

    def test_cold_restore_point_read_skips_non_matching_sstables(self, tmp_path):
        self._populate(tmp_path)
        registry = MetricsRegistry()
        cold = LsmStore(flush_threshold=8, compaction_threshold=100,
                        data_dir=tmp_path, registry=registry)
        # k0009 lives in the oldest table but sits inside every newer
        # table's key range, so only their Bloom filters can prune it.
        found, value, probed = cold.get("k0009")
        assert found and value == 9
        # The Bloom filters pruned the other tables without reading them.
        assert probed < len(cold.hfiles)
        assert registry.get("bloom_skipped_blocks_total").value >= 1
        assert registry.get("bloom_probes_total").value >= 1
        cold.close()

    def test_absent_key_in_range_is_skipped_by_filters(self, tmp_path):
        self._populate(tmp_path)
        registry = MetricsRegistry()
        cold = LsmStore(flush_threshold=8, compaction_threshold=100,
                        data_dir=tmp_path, registry=registry)
        # Inside every table's [min, max] range, but never written:
        # only the Bloom filters can rule it out without a block read.
        found, __, probed = cold.get("k0005x")
        assert not found
        assert registry.get("bloom_probes_total").value == 4
        skipped = registry.get("bloom_skipped_blocks_total").value
        assert probed + skipped == 4 and skipped >= 1
        cold.close()
