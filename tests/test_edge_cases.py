"""Edge-case tests across subsystems (boundary and degenerate inputs)."""

import numpy as np
import pytest

from repro.hadoop import (
    Dataset,
    FunctionRecordSource,
    HadoopEngine,
    JobConfiguration,
    MapReduceJob,
    ec2_cluster,
)

MB = 1 << 20


class TestDegenerateJobs:
    def test_empty_output_mapper(self, engine, small_text):
        """A mapper that filters everything still produces a runnable job."""
        def drop_all(key, value, ctx):
            ctx.report_ops(1)

        def count(key, values, ctx):
            ctx.emit(key, sum(1 for __ in values))

        job = MapReduceJob(name="drop-all", mapper=drop_all, reducer=count)
        execution = engine.run_job(job, small_text, JobConfiguration(num_reduce_tasks=2))
        assert execution.runtime_seconds > 0
        assert all(t.map_output_records == 0 for t in execution.map_tasks)
        assert all(t.reduce_input_records == 0 for t in execution.reduce_tasks)

    def test_explosive_mapper(self, engine, small_text):
        """A 50x-amplifying mapper keeps volumes consistent end to end."""
        def explode(key, line, ctx):
            for i in range(50):
                ctx.emit((key, i), line)

        job = MapReduceJob(name="explode", mapper=explode,
                           reducer=lambda k, vs, c: c.emit(k, len(list(vs))))
        execution = engine.run_job(job, small_text, JobConfiguration(num_reduce_tasks=4))
        for task in execution.map_tasks:
            assert task.map_output_records == pytest.approx(
                task.input_records * 50, rel=0.02
            )

    def test_single_split_dataset(self, engine, wordcount):
        tiny = Dataset(
            "tiny",
            nominal_bytes=1 * MB,
            source=FunctionRecordSource(
                lambda i, rng: [(0, "a b c"), (1, "b c d")]
            ),
        )
        execution = engine.run_job(wordcount, tiny, JobConfiguration())
        assert execution.num_map_tasks == 1

    def test_more_reducers_than_keys(self, engine):
        """R far above the distinct-key count leaves most reducers empty
        but the job still completes (as on real Hadoop)."""
        two_keys = Dataset(
            "two-keys",
            nominal_bytes=64 * MB,
            source=FunctionRecordSource(
                lambda i, rng: [(j, "x" if j % 2 else "y") for j in range(40)]
            ),
        )

        def keyed(key, value, ctx):
            ctx.emit(value, 1)

        def total(key, values, ctx):
            ctx.emit(key, sum(values))

        job = MapReduceJob(name="two-key-job", mapper=keyed, reducer=total)
        execution = engine.run_job(job, two_keys, JobConfiguration(num_reduce_tasks=16))
        non_empty = [t for t in execution.reduce_tasks if t.shuffle_records > 0]
        assert len(non_empty) <= 2
        assert execution.num_reduce_tasks == 16


class TestConfigurationBoundaries:
    def test_minimum_everything(self, engine, wordcount, small_text):
        config = JobConfiguration(
            io_sort_mb=16,
            io_sort_record_percent=0.01,
            io_sort_spill_percent=0.2,
            io_sort_factor=2,
            num_reduce_tasks=1,
            shuffle_input_buffer_percent=0.1,
        )
        execution = engine.run_job(wordcount, small_text, config)
        assert execution.runtime_seconds > 0
        assert all(t.num_spills >= 1 for t in execution.map_tasks)

    def test_maximum_everything(self, engine, wordcount, small_text):
        config = JobConfiguration(
            io_sort_mb=1024,
            io_sort_record_percent=0.5,
            io_sort_spill_percent=0.95,
            io_sort_factor=200,
            num_reduce_tasks=512,
            shuffle_input_buffer_percent=0.9,
            reduce_input_buffer_percent=0.8,
        )
        execution = engine.run_job(wordcount, small_text, config)
        assert execution.runtime_seconds > 0
        assert execution.num_reduce_tasks == 512

    def test_heap_clamps_giant_sort_buffer(self, engine, wordcount, small_text):
        """io.sort.mb above the task heap cannot buy extra capacity."""
        at_heap = engine.run_job(
            wordcount, small_text, JobConfiguration(io_sort_mb=210)
        )
        above_heap = engine.run_job(
            wordcount, small_text, JobConfiguration(io_sort_mb=1024)
        )
        spills_at = sum(t.num_spills for t in at_heap.map_tasks)
        spills_above = sum(t.num_spills for t in above_heap.map_tasks)
        assert spills_above == spills_at


class TestPerfXplainBoundaries:
    def test_tolerance_boundary_exact(self):
        from repro.perfxplain import Relation, relative_performance

        assert relative_performance(100.0, 125.0) == Relation.SIMILAR
        assert relative_performance(100.0, 125.1) == Relation.SLOWER
        assert relative_performance(125.1, 100.0) == Relation.FASTER


class TestHBaseBoundaries:
    def test_scan_empty_table(self):
        from repro.hbase import HBaseCluster, PrefixFilter

        table = HBaseCluster().create_table("empty", ("f",))
        assert list(table.scan()) == []
        assert list(table.scan(scan_filter=PrefixFilter("x"))) == []

    def test_locate_before_first_key(self):
        from repro.hbase import HBaseCluster

        cluster = HBaseCluster()
        table = cluster.create_table("t", ("f",))
        table.put("m", "f", "c", 1)
        # Keys below every stored key still route to the first region.
        assert table.get("a") is None
        table.put("a", "f", "c", 2)
        assert table.get("a") == {"f": {"c": 2}}


class TestVisualizerBoundaries:
    def test_timeline_single_task(self, engine, maponly_job):
        from repro.starfish import task_timeline

        tiny = Dataset(
            "one-split",
            nominal_bytes=1 * MB,
            source=FunctionRecordSource(lambda i, rng: [(0, "v")]),
        )
        execution = engine.run_job(maponly_job, tiny)
        text = task_timeline(execution, 30, 30)
        assert "m" in text


class TestLocalitySampledRuns:
    def test_locality_engine_handles_sampling(self, cluster, wordcount, small_text):
        engine = HadoopEngine(cluster, locality_aware=True)
        execution = engine.run_job(
            wordcount, small_text, JobConfiguration(), map_task_ids=[0]
        )
        assert execution.num_map_tasks == 1
