"""The sharded-store battery: equivalence, topology, chaos, shm, soak.

The profile store can split its row space across region servers and
probe one :class:`~repro.core.shard_index.ShardedMatchIndex` partition
per region, scatter-gather.  Nothing about that is allowed to be
observable in match results — so the heart of this module is the
Hypothesis equivalence suite: for arbitrary synthetic stores forced
through many region splits, the sharded indexed probe must return the
*same* ``MatchOutcome`` as the flat scan-path reference.

Around that core sit deterministic proofs for each topology transition
(split, merge, rebalance, durable reopen), the replica-kill chaos
regression (a dead region server reroutes reads to a surviving replica
instead of degrading the submission), the sharded shared-memory
publish/attach parity check, and an opt-in ``soak`` sweep that drives
a hundred thousand writes through repeated splits while bounding probe
latency and per-region row counts.
"""

import time

import pytest
from hypothesis import given, strategies as st

from repro.chaos import FaultInjector, FaultPlan, replica_kill_plan
from repro.core.match_index import MatchIndex
from repro.core.matcher import ProfileMatcher
from repro.core.pstorm import PStorM
from repro.core.shard_index import FrozenShardedView
from repro.core.shm_index import SharedIndexClient, SharedIndexPublisher
from repro.core.store import DYNAMIC_STOP, TABLE_NAME, ProfileStore
from repro.observability import MetricsRegistry
from repro.serving.procpool import SnapshotStoreProxy
from test_match_index import (
    _settings,
    _spec,
    assert_no_silent_fallback,
    build_store,
    job_spec,
    make_features,
    make_profile,
    make_static,
)

#: A put writes three data rows, so these thresholds force splits with
#: only a handful of jobs — every test here runs on a multi-region,
#: multi-partition topology unless it says otherwise.
SHARD_KW = dict(
    shard_index=True, split_threshold=4, num_region_servers=3, replication=2
)


def _sharded_store(job_specs, deletes=(), **overrides):
    kwargs = dict(SHARD_KW)
    kwargs.update(overrides)
    return build_store(job_specs, deletes, **kwargs)


def _many_specs(count):
    """Deterministic distinct specs (distance order == index order)."""
    return [_spec(input_bytes=(index + 1) << 26) for index in range(count)]


def _probe_pair(store, **kwargs):
    registry = MetricsRegistry()
    indexed = ProfileMatcher(store, registry=registry, **kwargs)
    scan = ProfileMatcher(
        store, registry=MetricsRegistry(), use_index=False, **kwargs
    )
    return indexed, scan, registry


def _replica_counter(registry, name):
    return sum(
        registry.counter(name, labels={"op": op}).value
        for op in ("get", "scan")
    )


class TestShardedEquivalence:
    """Sharded scatter-gather matching ≡ scan matching, for arbitrary
    stores — the partitioned twin of ``TestEquivalence`` in
    ``test_match_index.py``."""

    @_settings
    @given(
        jobs=st.lists(job_spec, max_size=6),
        deletes=st.lists(st.integers(min_value=0, max_value=5), max_size=2),
        probe=job_spec,
        jaccard=st.sampled_from([0.0, 0.4, 0.8, 1.0]),
        euclidean=st.sampled_from([None, 0.0, 0.3, 1.0, 3.0]),
    )
    def test_outcome_identical(self, jobs, deletes, probe, jaccard, euclidean):
        store, __ = _sharded_store(jobs, deletes)
        features = make_features(probe)
        indexed, scan, registry = _probe_pair(
            store, jaccard_threshold=jaccard, euclidean_threshold=euclidean
        )
        assert indexed.match_job(features) == scan.match_job(features)
        sides = 2 if features.has_reduce else 1
        assert_no_silent_fallback(registry, expected_hits=sides)

    @_settings
    @given(
        first=st.lists(job_spec, max_size=4),
        second=st.lists(job_spec, max_size=4),
        delete=st.integers(min_value=0, max_value=3),
        probe=job_spec,
    )
    def test_outcome_identical_across_splits(self, first, second, delete, probe):
        # One long-lived sharded matcher sees writes that split regions
        # (and deletes that may merge them) land between probes; a scan
        # matcher is consulted at each step as ground truth.
        store, job_ids = _sharded_store(first, merge_threshold=2)
        features = make_features(probe)
        indexed, scan, registry = _probe_pair(store)
        assert indexed.match_job(features) == scan.match_job(features)
        for number, spec in enumerate(second):
            store.put(make_profile(f"late{number}", spec), make_static(spec))
        if delete < len(job_ids):
            store.delete(job_ids[delete])
        assert indexed.match_job(features) == scan.match_job(features)
        sides = 2 if features.has_reduce else 1
        assert_no_silent_fallback(registry, expected_hits=2 * sides)


class TestTopologyOperations:
    """Each topology transition, pinned deterministically."""

    def test_split_produces_partitions_with_parity(self):
        registry = MetricsRegistry()
        store, __ = _sharded_store(_many_specs(16), registry=registry)
        index = store.match_index()
        index.ensure_fresh()
        assert registry.counter("hbase_region_splits_total").value > 0
        assert index.partition_count > 1
        # One partition per region overlapping the Dynamic/ row range.
        dynamic_regions = [
            region
            for region, __ in store.hbase.catalog.regions_of(TABLE_NAME)
            if region.start_key < DYNAMIC_STOP
            and (region.end_key is None or region.end_key > "Dynamic/")
        ]
        assert index.partition_count == len(dynamic_regions)
        assert (
            registry.gauge("pstorm_shard_index_partitions").value
            == index.partition_count
        )
        indexed, scan, probe_registry = _probe_pair(store)
        assert indexed.match_job(make_features(_spec())) == scan.match_job(
            make_features(_spec())
        )
        assert_no_silent_fallback(probe_registry, expected_hits=2)

    def test_merge_after_deletes_repartitions_with_parity(self):
        registry = MetricsRegistry()
        store, job_ids = _sharded_store(
            _many_specs(16), registry=registry, merge_threshold=3
        )
        index = store.match_index()
        index.ensure_fresh()
        parts_before = index.partition_count
        repartitions = registry.counter("pstorm_shard_index_repartitions_total")
        baseline = repartitions.value
        for job_id in job_ids[2:]:
            store.delete(job_id)
        assert registry.counter("hbase_region_merges_total").value > 0
        indexed, scan, __ = _probe_pair(store)
        features = make_features(_spec())
        assert indexed.match_job(features) == scan.match_job(features)
        # The topology bump escalated the index to a repartition, and the
        # shrunken row space needs fewer partitions.
        assert repartitions.value > baseline
        assert index.partition_count < parts_before

    def test_rebalance_moves_regions_and_keeps_parity(self):
        registry = MetricsRegistry()
        store, __ = _sharded_store(_many_specs(16), registry=registry)
        index = store.match_index()
        index.ensure_fresh()
        topology_before = store.topology_version
        features = make_features(_spec())
        indexed, scan, __ = _probe_pair(store)
        outcome_before = indexed.match_job(features)

        # Splits host daughters in creation order, so after a cascade the
        # placement differs from the canonical key-order round-robin and
        # rebalancing must move something.
        moved = store.hbase.rebalance()
        assert moved > 0
        assert registry.counter("hbase_region_moves_total").value == moved
        assert store.topology_version > topology_before
        assert indexed.match_job(features) == outcome_before
        assert scan.match_job(features) == outcome_before
        # Idempotence: the canonical placement is a fixed point.
        assert store.hbase.rebalance() == 0

    def test_durable_reopen_recovers_topology_and_parity(self, tmp_path):
        specs = _many_specs(12)
        store = ProfileStore(
            registry=MetricsRegistry(), data_dir=tmp_path, **SHARD_KW
        )
        for number, spec in enumerate(specs):
            store.put(make_profile(f"job{number}", spec), make_static(spec))
        index = store.match_index()
        index.ensure_fresh()
        parts_before = index.partition_count
        assert parts_before > 1
        features = make_features(_spec())
        outcome_before = ProfileMatcher(
            store, registry=MetricsRegistry()
        ).match_job(features)
        ranges_before = sorted(
            (region.start_key, region.end_key)
            for region, __ in store.hbase.catalog.regions_of(TABLE_NAME)
        )

        # Reopen with only the data directory (the original store is
        # simply abandoned, as a process exit would leave it): servers,
        # thresholds and replication all come back from the cluster meta
        # document.
        reopened = ProfileStore(
            registry=MetricsRegistry(), data_dir=tmp_path, shard_index=True
        )
        assert len(reopened.hbase.servers) == SHARD_KW["num_region_servers"]
        assert reopened.hbase.replication == SHARD_KW["replication"]
        ranges_after = sorted(
            (region.start_key, region.end_key)
            for region, __ in reopened.hbase.catalog.regions_of(TABLE_NAME)
        )
        assert ranges_after == ranges_before
        recovered_index = reopened.match_index()
        recovered_index.ensure_fresh()
        assert recovered_index.partition_count == parts_before
        indexed, scan, registry = _probe_pair(reopened)
        assert indexed.match_job(features) == outcome_before
        assert scan.match_job(features) == outcome_before
        assert_no_silent_fallback(registry, expected_hits=2)


class TestReplicaKillChaos:
    """A permanently dead region server must reroute reads to surviving
    replicas — never degrade results, never fall back to scanning."""

    def _kill_target(self, store):
        """A server that is primary for at least one multi-host region."""
        for __, hosts in store.hbase.catalog.replicas_of(TABLE_NAME):
            if len(hosts) > 1:
                return hosts[0]
        raise AssertionError("no replicated region to kill")

    def test_reads_survive_replica_kill(self):
        registry = MetricsRegistry()
        injector = FaultInjector(FaultPlan(), registry=registry)
        store, job_ids = _sharded_store(
            _many_specs(12), registry=registry, chaos=injector
        )
        features = make_features(_spec())
        indexed, scan, probe_registry = _probe_pair(store)
        outcome_before = indexed.match_job(features)
        profiles_before = {
            job_id: store.get_profile(job_id) for job_id in job_ids
        }

        # Flip the live plan to a permanent kill of a primary server.
        injector.plan = replica_kill_plan(
            server_id=self._kill_target(store), at=injector.operations_seen
        )
        assert _replica_counter(registry, "hbase_replica_read_fallbacks_total") == 0

        for job_id in job_ids:
            assert store.get_profile(job_id) == profiles_before[job_id]
        assert indexed.match_job(features) == outcome_before
        assert scan.match_job(features) == outcome_before
        assert_no_silent_fallback(probe_registry, expected_hits=2 * 2)
        assert _replica_counter(registry, "hbase_replica_read_fallbacks_total") > 0
        assert _replica_counter(registry, "hbase_replica_reads_total") > 0

    def test_submission_not_degraded_by_replica_kill(self, engine, wordcount, small_text):
        registry = MetricsRegistry()
        injector = FaultInjector(FaultPlan(), registry=registry)
        store = ProfileStore(registry=registry, chaos=injector, **SHARD_KW)
        daemon = PStorM(engine, store=store, registry=registry)
        daemon.remember(wordcount, small_text)

        injector.plan = replica_kill_plan(
            server_id=self._kill_target(store), at=injector.operations_seen
        )
        result = daemon.submit(wordcount, small_text)
        # The replica fallback sits *below* the retry ladder: the read
        # reroutes inside the table layer, so the submission neither
        # fails nor degrades to sample-profile tuning.
        assert result.matched
        assert result.degraded is False
        assert _replica_counter(registry, "hbase_replica_read_fallbacks_total") > 0
        assert (
            registry.counter("pstorm_degraded_submissions_total").value == 0
        )


class TestShardedSharedMemory:
    """A sharded generation crosses the shm transport intact."""

    def test_publish_attach_parity_and_teardown(self):
        registry = MetricsRegistry()
        store, __ = _sharded_store(_many_specs(12))
        index = store.match_index()
        index.ensure_fresh()
        assert index.partition_count > 1
        features = make_features(_spec())
        with SharedIndexPublisher(store, registry=registry) as publisher:
            publisher.publish()
            with SharedIndexClient(
                publisher.ctrl_name, registry=MetricsRegistry()
            ) as client:
                view = client.view()
                assert isinstance(view, FrozenShardedView)
                assert view.partition_count == index.partition_count
                proxy = SnapshotStoreProxy(client, registry=MetricsRegistry())
                shm_registry = MetricsRegistry()
                shm = ProfileMatcher(proxy, registry=shm_registry)
                scan = ProfileMatcher(
                    store, registry=MetricsRegistry(), use_index=False
                )
                assert shm.match_job(features) == scan.match_job(features)
                assert_no_silent_fallback(shm_registry, expected_hits=2)
        assert registry.gauge("shm_index_segments_active").value == 0


@pytest.mark.soak
class TestSoak:
    """Opt-in (``-m soak``) large-scale sweep: a hundred thousand writes
    drive repeated splits; probes stay fast and regions stay bounded."""

    WRITES = 100_000
    SPLIT_THRESHOLD = 8_192

    def test_soak_splits_bound_regions_and_probe_latency(self):
        registry = MetricsRegistry()
        store = ProfileStore(
            registry=registry,
            shard_index=True,
            num_region_servers=4,
            replication=2,
            split_threshold=self.SPLIT_THRESHOLD,
        )
        # A small near-probe cluster inside a huge far background, so a
        # probe's euclidean stage prunes the bulk and the funnel stays
        # realistic at scale (an all-identical table would push every
        # row into the per-candidate stages and measure only Python).
        near_spec = _spec()
        far_spec = _spec(
            map_flow=(4.0, 4.0, 0.0, 0.0),
            red_flow=(0.0, 0.05),
            map_cfg=1,
            red_cfg=2,
            statics={name: "beta" for name in near_spec["statics"]},
        )
        near = (make_profile("soak-near", near_spec), make_static(near_spec))
        far = (make_profile("soak-far", far_spec), make_static(far_spec))
        for number in range(self.WRITES):
            profile, static = near if number % 1563 == 0 else far
            store.put(profile, static, job_id=f"soak-{number:06d}")

        assert len(store) == self.WRITES
        assert registry.counter("hbase_region_splits_total").value >= 4
        regions = store.hbase.catalog.regions_of(TABLE_NAME)
        assert len(regions) >= 8
        for region, __ in regions:
            assert region.num_rows <= self.SPLIT_THRESHOLD

        sharded = store.match_index()
        sharded.ensure_fresh()
        assert sharded.partition_count >= 4

        # Probe latency: p99 over repeated full-funnel probes.
        matcher = ProfileMatcher(store, registry=MetricsRegistry())
        features = make_features(near_spec)
        matcher.match_job(features)  # warm the index caches
        samples = []
        for __ in range(200):
            start = time.perf_counter()
            outcome = matcher.match_job(features)
            samples.append(time.perf_counter() - start)
        assert outcome.matched
        samples.sort()
        p99 = samples[int(len(samples) * 0.99) - 1]
        assert p99 < 0.25, f"probe p99 {p99 * 1e3:.1f}ms"

        # Sample parity: the scatter-gather stages agree with a flat
        # MatchIndex built over the very same store.
        flat = MatchIndex(store, registry=MetricsRegistry())
        flat.ensure_fresh()
        probe = [float(value) for value in near_spec["map_flow"]]
        assert sorted(sharded.euclidean_stage("map", "flow", probe, 1.0)) == sorted(
            flat.euclidean_stage("map", "flow", probe, 1.0)
        )
        sample_ids = [f"soak-{number:06d}" for number in range(0, self.WRITES, 9973)]
        statics = dict(near_spec["statics"])
        assert sharded.tie_break(
            sample_ids, near_spec["input_bytes"], statics, "map"
        ) == flat.tie_break(sample_ids, near_spec["input_bytes"], statics, "map")


class TestParallelProbes:
    """``probe_workers > 1`` fans partition probes across a thread pool;
    nothing about the fan-out may be observable — not the outcome, not
    even the order of tie-break similarity observations."""

    @_settings
    @given(
        jobs=st.lists(job_spec, max_size=6),
        deletes=st.lists(st.integers(min_value=0, max_value=5), max_size=2),
        probe=job_spec,
        workers=st.sampled_from([2, 3, 4]),
    )
    def test_outcome_identical_any_width(self, jobs, deletes, probe, workers):
        sequential, __ = _sharded_store(jobs, deletes)
        fanned, __ = _sharded_store(jobs, deletes, probe_workers=workers)
        features = make_features(probe)
        seq_matcher, __, __ = _probe_pair(sequential)
        fan_matcher, __, registry = _probe_pair(fanned)
        assert fan_matcher.match_job(features) == seq_matcher.match_job(features)
        sides = 2 if features.has_reduce else 1
        assert_no_silent_fallback(registry, expected_hits=sides)

    def test_tie_break_observations_replay_in_range_order(self):
        # The tie-break similarity side channel feeds a histogram; the
        # pool buffers per-partition observations and replays them in
        # partition-range order, so the sequence must be bit-identical
        # to the sequential gather no matter the pool width.
        specs = _many_specs(8)
        probe = specs[0]
        features = make_features(probe)
        __, __, statics, __ = features.side_vectors("map")
        sequences = {}
        for workers in (1, 4):
            store, job_ids = _sharded_store(specs, probe_workers=workers)
            index = store.match_index()
            index.ensure_fresh()
            assert index.partition_count > 1
            seen = []
            winner = index.tie_break(
                job_ids, probe["input_bytes"], statics, "map",
                observe=seen.append,
            )
            assert len(seen) == len(job_ids)
            sequences[workers] = (winner, seen)
        assert sequences[1] == sequences[4]

    def test_probe_pool_threads_are_used(self):
        # Not just "same answer": prove the wide path really leaves the
        # calling thread when more than one partition is probed.
        import threading

        store, job_ids = _sharded_store(_many_specs(8), probe_workers=4)
        index = store.match_index()
        index.ensure_fresh()
        assert index.partition_count > 1
        assert index.probe_workers == 4
        assert index._probe_pool is not None
        threads = set()
        index._pmap(
            [
                (lambda: threads.add(threading.current_thread().name))
                for __ in range(index.partition_count)
            ]
        )
        assert any(name.startswith("shard-probe") for name in threads)

    def test_single_worker_keeps_sequential_path(self):
        store, __ = _sharded_store(_many_specs(6))
        index = store.match_index()
        assert index.probe_workers == 1
        assert index._probe_pool is None

    def test_export_view_inherits_probe_workers(self):
        store, __ = _sharded_store(_many_specs(6), probe_workers=3)
        index = store.match_index()
        index.ensure_fresh()
        view = index.export_view()
        assert isinstance(view, FrozenShardedView)
        assert view.probe_workers == 3

    def test_invalid_probe_workers_rejected(self):
        with pytest.raises(ValueError):
            ProfileStore(
                registry=MetricsRegistry(), probe_workers=0, **SHARD_KW
            )
