"""Binary block-sharded SSTables: codec, cache, counters, equivalence.

Four proofs for the ``sst_*.bin`` format:

* the block codec round-trips arbitrary runs (tombstones included) and
  turns every truncation or bit flip into a typed
  :class:`CorruptSSTableError`, never silently-wrong data;
* the shared LRU :class:`BlockCache` serves hits without touching the
  file, bounds its bytes, and invalidates per file;
* the Bloom counters are *block*-granular — a cold probe of an 8-block
  table consults one per-block filter, not eight, and a key falling in
  the gap between blocks consults none (the regression pin for the
  counter-semantics fix);
* Hypothesis: a binary durable store, a legacy-JSON durable store, and
  a plain dict agree on every get and scan — hot, after a cold reopen,
  and after a forced compaction — for arbitrary put/delete histories.

Plus the migration story: legacy ``sst_*.json`` tables are readable in
place and ``compact(force=True)`` rewrites them to binary, including on
a pre-upgrade ``ProfileStore`` directory whose cluster meta predates the
``sstable_format`` field.
"""

import json
import shutil

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import _synthetic_job
from repro.core.store import ProfileStore
from repro.hbase import (
    BlockCache,
    BlockFile,
    CorruptSSTableError,
    LsmStore,
    TOMBSTONE,
)
from repro.hbase.sstable import (
    MAGIC,
    TRAILER_SIZE,
    read_footer,
    write_block_file,
)
from repro.hbase.storage import MANIFEST_NAME, MANIFEST_VERSION
from repro.observability import MetricsRegistry

# ======================================================================
# Block codec
# ======================================================================

KEYS = tuple(f"k{i:03d}" for i in range(20))
VALUES = tuple(
    TOMBSTONE if i % 7 == 3 else {"n": i, "pad": "x" * (i % 5)}
    for i in range(20)
)


def _write(path, keys=KEYS, values=VALUES, **kwargs):
    with open(path, "wb") as handle:
        return write_block_file(handle, keys, values, **kwargs)


class TestBlockCodec:
    def test_multi_block_round_trip(self, tmp_path):
        path = tmp_path / "run.bin"
        metas, blooms = _write(path, block_size=64)
        assert len(metas) > 1, "block_size=64 must shard this run"
        assert len(blooms) == len(metas)
        # The footer reloads the same index the writer returned.
        footer_metas, footer_blooms, num_keys = read_footer(path)
        assert footer_metas == metas
        assert num_keys == len(KEYS)
        # Blocks tile the run: counts sum, key ranges are in order.
        assert sum(m.count for m in metas) == len(KEYS)
        for left, right in zip(metas, metas[1:]):
            assert left.last_key < right.first_key
            assert left.offset + left.length == right.offset
        # Every key is in its block's Bloom filter (no false negatives).
        block_file = BlockFile(path)
        assert block_file.read_all() == (KEYS, VALUES)
        cursor = 0
        for index, meta in enumerate(metas):
            keys, values = block_file.read_block(index)
            assert keys == KEYS[cursor : cursor + meta.count]
            assert values == VALUES[cursor : cursor + meta.count]
            assert all(footer_blooms[index].might_contain(k) for k in keys)
            cursor += meta.count

    def test_oversized_cell_gets_its_own_block(self, tmp_path):
        path = tmp_path / "big.bin"
        values = ("small", "y" * 4000, "small2")
        metas, __ = _write(path, keys=("a", "b", "c"), values=values,
                           block_size=64)
        # The 4000-byte cell never splits: it lands whole in the block
        # that was open when it arrived and closes it immediately, so
        # the next cell starts a fresh block.
        assert [m.count for m in metas] == [2, 1]
        assert BlockFile(path).read_all() == (("a", "b", "c"), values)

    def test_every_truncation_fails_typed(self, tmp_path):
        path = tmp_path / "run.bin"
        _write(path, block_size=64)
        data = path.read_bytes()
        target = tmp_path / "cut.bin"
        # The trailer is last, so every proper prefix loses it: the
        # footer load must raise typed at every cut point.
        for cut in range(0, len(data), max(1, len(data) // 40)):
            target.write_bytes(data[:cut])
            with pytest.raises(CorruptSSTableError):
                read_footer(target)

    def test_bit_flips_fail_typed_never_garbage(self, tmp_path):
        path = tmp_path / "run.bin"
        _write(path, block_size=64)
        data = path.read_bytes()
        target = tmp_path / "flip.bin"
        for pos in range(0, len(data), max(1, len(data) // 48)):
            mutated = bytearray(data)
            mutated[pos] ^= 0x10
            target.write_bytes(bytes(mutated))
            # Either the footer load or the full read detects the
            # damage; a clean result must be byte-identical data.
            try:
                result = BlockFile(target).read_all()
            except CorruptSSTableError:
                continue
            assert result == (KEYS, VALUES), f"pos={pos} returned garbage"

    def test_trailer_magic_is_checked(self, tmp_path):
        path = tmp_path / "run.bin"
        _write(path)
        data = bytearray(path.read_bytes())
        assert data[-len(MAGIC):] == MAGIC
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(CorruptSSTableError, match="magic"):
            read_footer(path)

    def test_short_file_fails_typed(self, tmp_path):
        path = tmp_path / "tiny.bin"
        path.write_bytes(b"\x00" * (TRAILER_SIZE - 1))
        with pytest.raises(CorruptSSTableError, match="too short"):
            read_footer(path)


# ======================================================================
# Block cache
# ======================================================================


class TestBlockCache:
    def test_hit_miss_metrics(self, tmp_path):
        registry = MetricsRegistry()
        cache = BlockCache(registry=registry)
        path = tmp_path / "run.bin"
        _write(path, block_size=64)
        block_file = BlockFile(path, cache=cache)
        first = block_file.read_block(0)
        assert block_file.read_block(0) == first
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        assert registry.get("sstable_block_cache_hits_total").value == 1
        assert registry.get("sstable_block_cache_misses_total").value == 1
        assert registry.get("sstable_block_cache_bytes").value == float(
            cache.current_bytes
        )

    def test_hot_block_survives_file_deletion(self, tmp_path):
        # The strongest no-reread proof: once cached, the block serves
        # even after the backing file is gone.
        cache = BlockCache()
        path = tmp_path / "run.bin"
        _write(path, block_size=64)
        block_file = BlockFile(path, cache=cache)
        hot = block_file.read_block(1)
        path.unlink()
        assert block_file.read_block(1) == hot

    def test_lru_eviction_respects_capacity(self, tmp_path):
        registry = MetricsRegistry()
        path = tmp_path / "run.bin"
        metas, __ = _write(path, block_size=64)
        cache = BlockCache(
            capacity_bytes=metas[0].length + metas[1].length,
            registry=registry,
        )
        block_file = BlockFile(path, cache=cache)
        for index in range(len(metas)):
            block_file.read_block(index)
        assert cache.current_bytes <= cache.capacity_bytes
        assert cache.evictions >= len(metas) - 2
        assert (
            registry.get("sstable_block_cache_evictions_total").value
            == cache.evictions
        )
        # LRU order: the oldest block was evicted, the newest survives.
        assert cache.get(block_file.token, metas[0].offset) is None
        assert cache.get(block_file.token, metas[-1].offset) is not None

    def test_drop_file_invalidates_only_that_file(self, tmp_path):
        cache = BlockCache()
        a_path, b_path = tmp_path / "a.bin", tmp_path / "b.bin"
        _write(a_path, block_size=64)
        _write(b_path, block_size=64)
        file_a = BlockFile(a_path, cache=cache)
        file_b = BlockFile(b_path, cache=cache)
        file_a.read_block(0)
        file_b.read_block(0)
        assert len(cache) == 2
        assert cache.drop_file(file_a.token) == 1
        assert cache.get(file_a.token, file_a.metas[0].offset) is None
        assert cache.get(file_b.token, file_b.metas[0].offset) is not None

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            BlockCache(capacity_bytes=0)


# ======================================================================
# Block-granular Bloom counters (the counter-semantics regression pin)
# ======================================================================

_COUNTER_KW = dict(flush_threshold=8, compaction_threshold=100)


def _counter_value(registry, name):
    metric = registry.get(name)
    return 0 if metric is None else metric.value


class TestBloomBlockCounters:
    @staticmethod
    def _one_cell_per_block(tmp_path):
        store = LsmStore(data_dir=tmp_path, block_size=1, **_COUNTER_KW)
        for i in range(8):
            store.put(f"k{i}", i * 10)
        store.close()

    def test_present_key_consults_one_block_bloom_not_eight(self, tmp_path):
        self._one_cell_per_block(tmp_path)
        registry = MetricsRegistry()
        cold = LsmStore(data_dir=tmp_path, block_size=1, registry=registry,
                        **_COUNTER_KW)
        [table] = cold.hfiles
        assert table.num_blocks == 8, "block_size=1 must shard per cell"
        assert cold.get("k3") == (True, 30, 1)
        # Block semantics: the index narrowed to one candidate block, so
        # exactly one of the table's eight Bloom filters was consulted
        # and exactly one block was searched.  (The old table-granular
        # counters would report one consult but could never distinguish
        # it from searching the whole table.)
        assert _counter_value(registry, "bloom_probes_total") == 1
        assert _counter_value(registry, "bloom_probed_blocks_total") == 1
        assert _counter_value(registry, "bloom_skipped_blocks_total") == 0
        cold.close()

    def test_gap_key_is_pruned_by_the_index_without_any_bloom(self, tmp_path):
        self._one_cell_per_block(tmp_path)
        registry = MetricsRegistry()
        cold = LsmStore(data_dir=tmp_path, block_size=1, registry=registry,
                        **_COUNTER_KW)
        # "k3x" sits inside the table's [k0, k7] range but between the
        # single-cell blocks "k3" and "k4": the first-key index proves
        # absence, so no Bloom filter and no block read happen at all.
        assert cold.get("k3x") == (False, None, 0)
        assert _counter_value(registry, "bloom_probes_total") == 0
        assert _counter_value(registry, "bloom_probed_blocks_total") == 0
        cold.close()

    def test_absent_key_counts_match_the_footer_bloom(self, tmp_path):
        # Two 4-cell blocks: "a c e g" and "i k m o" (11-byte cells,
        # the fourth crosses block_size=40).
        store = LsmStore(data_dir=tmp_path, block_size=40, **_COUNTER_KW)
        for i, key in enumerate("acegikmo"):
            store.put(key, i)
        store.close()
        registry = MetricsRegistry()
        cold = LsmStore(data_dir=tmp_path, block_size=40, registry=registry,
                        **_COUNTER_KW)
        [table] = cold.hfiles
        assert table.num_blocks == 2
        # "b" lands in block 0's [a, g] span; whether that one filter
        # passes is the filter's business — the counters must agree
        # with it exactly, and block 1's filter must stay untouched.
        passes = table.block_file.bloom(0).might_contain("b")
        found, __, probed = cold.get("b")
        assert not found
        assert _counter_value(registry, "bloom_probes_total") == 1
        assert probed == (1 if passes else 0)
        assert _counter_value(registry, "bloom_probed_blocks_total") == probed
        assert _counter_value(registry, "bloom_skipped_blocks_total") == (
            0 if passes else 1
        )
        assert _counter_value(registry, "bloom_false_positives_total") == (
            1 if passes else 0
        )
        cold.close()


# ======================================================================
# Hypothesis: binary == legacy JSON == dict, hot / cold / compacted
# ======================================================================

_OPS = st.lists(
    st.one_of(
        st.tuples(
            st.just("put"),
            st.text(alphabet="abcd", min_size=1, max_size=3),
            st.one_of(
                st.integers(-1000, 1000),
                st.text(max_size=8),
                st.none(),
                st.booleans(),
                st.lists(st.integers(0, 9), max_size=3),
            ),
        ),
        st.tuples(
            st.just("delete"),
            st.text(alphabet="abcd", min_size=1, max_size=3),
        ),
    ),
    max_size=40,
)

_EQUIV_KW = dict(
    flush_threshold=4, compaction_threshold=3, group_commit=8, block_size=64
)


def _apply(store, ops):
    for op in ops:
        if op[0] == "put":
            store.put(op[1], op[2])
        else:
            store.delete(op[1])


def _reference(ops):
    state = {}
    for op in ops:
        if op[0] == "put":
            state[op[1]] = op[2]
        else:
            state.pop(op[1], None)
    return state


def _assert_equivalent(binary, legacy, reference, probes):
    assert dict(binary.scan()) == reference
    assert dict(legacy.scan()) == reference
    for key in probes:
        expected = (key in reference, reference.get(key))
        assert binary.get(key)[:2] == expected, key
        assert legacy.get(key)[:2] == expected, key


class TestBinaryJsonEquivalence:
    @given(ops=_OPS)
    @settings(max_examples=25, deadline=None)
    def test_formats_agree_hot_cold_and_compacted(
        self, ops, tmp_path_factory
    ):
        base = tmp_path_factory.mktemp("equiv")
        reference = _reference(ops)
        probes = sorted({op[1] for op in ops} | {"", "a", "dd", "zz"})
        try:
            binary = LsmStore(data_dir=base / "bin", sstable_format="binary",
                              **_EQUIV_KW)
            legacy = LsmStore(data_dir=base / "json", sstable_format="json",
                              **_EQUIV_KW)
            _apply(binary, ops)
            _apply(legacy, ops)
            _assert_equivalent(binary, legacy, reference, probes)
            binary.close()
            legacy.close()

            # Cold reopen: gets go down the lazy block-probe path.
            binary = LsmStore(data_dir=base / "bin", sstable_format="binary",
                              **_EQUIV_KW)
            legacy = LsmStore(data_dir=base / "json", sstable_format="json",
                              **_EQUIV_KW)
            for key in probes:
                expected = (key in reference, reference.get(key))
                assert binary.get(key)[:2] == expected, key
                assert legacy.get(key)[:2] == expected, key
            _assert_equivalent(binary, legacy, reference, probes)

            binary.compact(force=True)
            legacy.compact(force=True)
            _assert_equivalent(binary, legacy, reference, probes)
            binary.close()
            legacy.close()
        finally:
            shutil.rmtree(base, ignore_errors=True)


# ======================================================================
# Legacy migration
# ======================================================================


class TestLegacyMigration:
    def test_binary_store_reads_legacy_json_tables_in_place(self, tmp_path):
        legacy = LsmStore(data_dir=tmp_path, sstable_format="json",
                          flush_threshold=4, compaction_threshold=100)
        for i in range(10):
            legacy.put(f"k{i:02d}", i)
        legacy.close()
        assert list(tmp_path.glob("sst_*.json"))

        # A binary-default reopen serves the old tables transparently.
        store = LsmStore(data_dir=tmp_path, flush_threshold=4,
                         compaction_threshold=100)
        assert dict(store.scan()) == {f"k{i:02d}": i for i in range(10)}
        assert store.get("k07")[:2] == (True, 7)
        # New writes flush binary while the legacy files stay put.
        for i in range(10, 14):
            store.put(f"k{i:02d}", i)
        store.flush()
        assert list(tmp_path.glob("sst_*.bin"))
        assert list(tmp_path.glob("sst_*.json"))

        # Forced compaction rewrites everything to the binary format.
        store.compact(force=True)
        assert not list(tmp_path.glob("sst_*.json"))
        assert list(tmp_path.glob("sst_*.bin"))
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        assert manifest["version"] == MANIFEST_VERSION
        entries = [e for level in manifest["levels"] for e in level]
        assert entries and all(e["format"] == "binary" for e in entries)
        assert all("bloom" not in e for e in entries)
        store.close()

        cold = LsmStore(data_dir=tmp_path, flush_threshold=4,
                        compaction_threshold=100)
        assert dict(cold.scan()) == {f"k{i:02d}": i for i in range(14)}
        cold.close()

    def test_explicit_json_store_keeps_writing_json(self, tmp_path):
        store = LsmStore(data_dir=tmp_path, sstable_format="json",
                         flush_threshold=2, compaction_threshold=100)
        for i in range(6):
            store.put(f"k{i}", i)
        store.compact(force=True)
        store.close()
        assert list(tmp_path.glob("sst_*.json"))
        assert not list(tmp_path.glob("sst_*.bin"))

    def test_pre_upgrade_profile_store_migrates_on_compact(self, tmp_path):
        jobs = {f"job-{n}@mig": _synthetic_job(n) for n in range(3)}
        store = ProfileStore(data_dir=tmp_path, registry=MetricsRegistry(),
                             sstable_format="json")
        for job_id, (profile, static) in jobs.items():
            store.put(profile, static, job_id=job_id)
        store.snapshot()
        assert list(tmp_path.rglob("sst_*.json"))

        # Simulate a directory written before the binary format existed:
        # its cluster meta predates the sstable_format/block_size keys.
        meta_path = tmp_path / "hbase" / "cluster.json"
        meta = json.loads(meta_path.read_text())
        meta.pop("sstable_format")
        meta.pop("block_size")
        meta_path.write_text(json.dumps(meta))

        reopened = ProfileStore(data_dir=tmp_path, registry=MetricsRegistry())
        summary = reopened.compact(force=True)
        assert summary["migrated_tables"] >= 1
        assert summary["tables"] >= 1
        assert summary["formats"] == {"binary": summary["tables"]}
        assert summary["blocks"] >= summary["tables"]
        assert sum(row["tables"] for row in summary["levels"]) == (
            summary["tables"]
        )
        assert not list(tmp_path.rglob("sst_*.json"))
        assert list(tmp_path.rglob("sst_*.bin"))

        # The meta now records the format, and the data survived whole.
        assert json.loads(meta_path.read_text())["sstable_format"] == "binary"
        restored = ProfileStore(data_dir=tmp_path, registry=MetricsRegistry())
        assert sorted(restored.job_ids()) == sorted(jobs)
        for job_id, (profile, __) in jobs.items():
            assert restored.get_profile(job_id).to_dict() == profile.to_dict()
