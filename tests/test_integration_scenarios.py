"""End-to-end organization scenarios across subsystems.

Each test plays out a realistic multi-step story — daemon restart,
capacity-bound store, cross-cluster bootstrap — exercising several
subsystems against each other rather than in isolation.
"""

import pytest

from repro.core import (
    LruEviction,
    MaintainedStore,
    PStorM,
    ProfileMatcher,
    ProfileStore,
    extract_job_features,
)
from repro.core.persistence import dump_store, load_store
from repro.core.transfer import transfer_profile
from repro.hadoop import HadoopEngine, JobConfiguration, ec2_cluster
from repro.hadoop.cluster import CostRates


class TestDaemonRestart:
    def test_snapshot_survives_restart(self, engine, wordcount, small_text, tmp_path):
        """Day 1: profiles collected; daemon restarts; day 2: matching
        works off the reloaded snapshot."""
        day1 = PStorM(engine)
        day1.remember(wordcount, small_text)
        snapshot = tmp_path / "pstorm.json"
        dump_store(day1.store, snapshot)

        day2 = PStorM(engine, store=load_store(snapshot))
        result = day2.submit(wordcount, small_text)
        assert result.matched


class TestCapacityBoundOperation:
    def test_store_stays_within_capacity_under_stream(
        self, engine, profiler, sampler, small_text
    ):
        """A capacity-2 store under a 4-job stream evicts but keeps
        matching the recently used profiles."""
        from repro.workloads import (
            bigram_relative_frequency_job,
            cooccurrence_pairs_job,
            inverted_index_job,
            word_count_job,
        )

        store = ProfileStore()
        maintained = MaintainedStore(store, capacity=2, policy=LruEviction())
        jobs = [
            word_count_job(),
            inverted_index_job(),
            bigram_relative_frequency_job(),
            cooccurrence_pairs_job(),
        ]
        for job in jobs:
            profile, __ = profiler.profile_job(job, small_text)
            sample = sampler.collect(job, small_text, count=1)
            features = extract_job_features(job, small_text, sample.profile, engine)
            maintained.put(profile, features.static)
        assert len(maintained) == 2
        assert len(maintained.evicted) == 2
        # The most recent job still matches.
        last = jobs[-1]
        sample = sampler.collect(last, small_text, count=1)
        features = extract_job_features(last, small_text, sample.profile, engine)
        outcome = ProfileMatcher(store).match_job(features)
        assert outcome.matched


class TestCrossClusterBootstrap:
    def test_new_cluster_bootstrapped_from_old(self, wordcount, small_text, tmp_path):
        """§7.2.6 end to end: a store snapshot from an old slow cluster
        seeds a new cluster's PStorM after cost-factor adjustment, and
        the first submission on the new cluster is already a hit."""
        slow_rates = CostRates(
            read_hdfs_ns_per_byte=32.0, write_hdfs_ns_per_byte=50.0,
            read_local_ns_per_byte=18.0, write_local_ns_per_byte=24.0,
            network_ns_per_byte=44.0, cpu_ns_per_record=700.0,
            compress_ns_per_byte=60.0, decompress_ns_per_byte=20.0,
        )
        old_cluster = ec2_cluster(base_rates=slow_rates, seed=33)
        old_engine = HadoopEngine(old_cluster)
        old_pstorm = PStorM(old_engine)
        old_pstorm.remember(wordcount, small_text)
        snapshot = tmp_path / "old-cluster.json"
        dump_store(old_pstorm.store, snapshot)

        new_cluster = ec2_cluster()
        new_engine = HadoopEngine(new_cluster)
        seeded_store = ProfileStore()
        staging = load_store(snapshot)
        for job_id in staging.job_ids():
            adjusted = transfer_profile(
                staging.get_profile(job_id), old_cluster, new_cluster
            )
            seeded_store.put(adjusted, staging.get_static(job_id), job_id=job_id)

        new_pstorm = PStorM(new_engine, store=seeded_store)
        result = new_pstorm.submit(wordcount, small_text)
        assert result.matched
        default = new_engine.run_job(wordcount, small_text, JobConfiguration())
        assert result.runtime_seconds < default.runtime_seconds


class TestFaultyTunedRuns:
    def test_tuning_benefit_survives_failures(self, engine, wordcount, small_text):
        """Tuned configurations keep their edge under a fault model."""
        from repro.hadoop import FaultModel
        from repro.starfish import CostBasedOptimizer, StarfishProfiler, WhatIfEngine

        profiler = StarfishProfiler(engine)
        profile, __ = profiler.profile_job(wordcount, small_text)
        best = CostBasedOptimizer(WhatIfEngine(engine.cluster), seed=1).optimize(profile)

        model = FaultModel(task_failure_probability=0.1)
        default_run, __, __ = engine.run_job_with_faults(
            wordcount, small_text, JobConfiguration(), fault_model=model, seed=5
        )
        tuned_run, __, __ = engine.run_job_with_faults(
            wordcount, small_text, best.best_config, fault_model=model, seed=5
        )
        assert tuned_run.runtime_seconds < default_run.runtime_seconds
