"""Tests for the filter-order, threshold, transfer, and weight ablations."""

import numpy as np
import pytest

from repro.experiments import ablations
from repro.experiments.common import ExperimentContext, collect_suite
from repro.workloads import standard_benchmark


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext.create()


@pytest.fixture(scope="module")
def records(ctx):
    return collect_suite(ctx, standard_benchmark(pigmix_queries=2))


class TestFilterOrder:
    def test_statics_first_loses_nj_matches(self, ctx, records):
        result = ablations.run_filter_order(ctx, records)
        by_order = {row[0]: row for row in result.rows}
        dynamics = by_order["dynamics-first (PStorM)"]
        statics = by_order["statics-first"]
        assert dynamics[2] > statics[2]  # NJ match rate
        assert dynamics[1] >= statics[1]  # DD accuracy no worse


class TestThresholdSensitivity:
    def test_paper_operating_point_on_plateau(self, ctx, records):
        result = ablations.run_threshold_sensitivity(ctx, records)
        by_setting = {(row[0], row[1]): row[2] for row in result.rows}
        paper_point = by_setting[(0.5, 1.0)]
        best = max(by_setting.values())
        assert paper_point >= best - 0.05

    def test_strict_euclid_hurts(self, ctx, records):
        result = ablations.run_threshold_sensitivity(ctx, records)
        by_setting = {(row[0], row[1]): row[2] for row in result.rows}
        assert by_setting[(0.5, 0.5)] <= by_setting[(0.5, 1.0)]


class TestClusterTransfer:
    def test_adjustment_shrinks_error(self, ctx):
        result = ablations.run_cluster_transfer(ctx)
        for row in result.rows:
            raw_err, adjusted_err = row[4], row[5]
            assert adjusted_err < raw_err


class TestGbrtWeights:
    def test_weights_normalized(self, ctx, records):
        result = ablations.run_gbrt_weights(ctx, records)
        weights = [row[1] for row in result.rows]
        assert len(weights) == 8
        assert sum(weights) == pytest.approx(1.0, abs=0.02)

    def test_dynamic_distance_dominates(self, ctx, records):
        """The learned Eq. 1 metric leans on the dynamic distances — the
        conclusion PStorM's filter order hand-encodes."""
        result = ablations.run_gbrt_weights(ctx, records)
        by_name = {row[0]: row[1] for row in result.rows}
        assert by_name["Eucl_DS_map"] > by_name["Jacc_map"]
        assert by_name["Eucl_DS_map"] > by_name["CFG_map"]


class TestGbrtImportancesUnit:
    def test_importances_track_signal_feature(self):
        from repro.core.gbrt import GbrtParams, fit_gbrt

        rng = np.random.default_rng(0)
        x = rng.uniform(0, 1, size=(300, 4))
        y = 5.0 * x[:, 2] + rng.normal(0, 0.01, 300)
        params = GbrtParams(n_trees=80, shrinkage=0.1, cv_folds=0, train_fraction=1.0)
        model = fit_gbrt(x, y, params, seed=1)
        importances = model.feature_importances(num_features=4, n_trees=80)
        assert int(np.argmax(importances)) == 2
        assert importances[2] > 0.8


class TestStoreScalability:
    def test_scans_grow_with_store(self, ctx, records):
        result = ablations.run_store_scalability(
            ctx, records, store_sizes=(30, 120)
        )
        small, large = result.rows
        assert large[2] > small[2]            # scanned rows grow
        assert large[3] < large[2]            # shipped stays a fraction
        assert large[1] < 5_000               # latency stays interactive (ms)


class TestCfgCostCorrelation:
    def test_positive_rank_correlation(self, ctx, records):
        result = ablations.run_cfg_cost_correlation(ctx, records)
        assert "rho=" in result.notes
        rho = float(result.notes.split("rho=")[1].split(" ")[0])
        assert rho > 0.5

    def test_one_row_per_job_family(self, ctx, records):
        result = ablations.run_cfg_cost_correlation(ctx, records)
        names = [row[0] for row in result.rows]
        assert len(names) == len(set(names))
