"""Tests for the multi-stage profile matcher (Fig 4.4)."""

import pytest

from repro.core.features import extract_job_features
from repro.core.matcher import ProfileMatcher
from repro.core.store import ProfileStore


@pytest.fixture()
def make_features(engine, sampler):
    def build(job, dataset, seed=0):
        sample = sampler.collect(job, dataset, count=1, seed=seed)
        return extract_job_features(job, dataset, sample.profile, engine)

    return build


@pytest.fixture()
def store_with(engine, profiler, make_features):
    def build(jobs_and_datasets):
        store = ProfileStore()
        for job, dataset in jobs_and_datasets:
            profile, __ = profiler.profile_job(job, dataset)
            features = make_features(job, dataset)
            store.put(profile, features.static)
        return store

    return build


class TestSameDataMatching:
    def test_own_profile_wins(self, store_with, make_features, wordcount, maponly_job, small_text):
        store = store_with([(wordcount, small_text), (maponly_job, small_text)])
        matcher = ProfileMatcher(store)
        outcome = matcher.match_job(make_features(wordcount, small_text))
        assert outcome.matched
        assert outcome.map_match.job_id == "wordcount-test@small-text"
        assert outcome.reduce_match.job_id == "wordcount-test@small-text"
        assert not outcome.is_composite
        assert outcome.map_match.stage == "static"

    def test_funnel_recorded(self, store_with, make_features, wordcount, small_text):
        store = store_with([(wordcount, small_text)])
        matcher = ProfileMatcher(store)
        match = matcher.match_side(make_features(wordcount, small_text), "map")
        assert match.funnel["dynamic"] >= 1
        assert "cfg" in match.funnel
        assert "jaccard" in match.funnel

    def test_map_only_probe_skips_reduce(self, store_with, make_features, maponly_job, small_text):
        store = store_with([(maponly_job, small_text)])
        matcher = ProfileMatcher(store)
        outcome = matcher.match_job(make_features(maponly_job, small_text))
        assert outcome.matched
        assert outcome.reduce_match is None
        assert not outcome.profile.has_reduce


class TestNoMatch:
    def test_empty_store_no_match(self, make_features, wordcount, small_text):
        matcher = ProfileMatcher(ProfileStore())
        outcome = matcher.match_job(make_features(wordcount, small_text))
        assert not outcome.matched
        assert outcome.profile is None

    def test_dissimilar_store_never_passes_static_stages(
        self, store_with, make_features, wordcount, maponly_job, small_text
    ):
        # Identity's CFG and statics differ from word count's, so a match
        # (if any, via the lenient cost fallback) can never claim the
        # "static" path.
        store = store_with([(maponly_job, small_text)])
        matcher = ProfileMatcher(store)
        match = matcher.match_side(make_features(wordcount, small_text), "map")
        assert match.stage != "static"

    def test_single_profile_store_is_degenerate_but_safe(
        self, store_with, make_features, wordcount, maponly_job, small_text
    ):
        # With one stored profile every min-max span is zero, so numeric
        # filters cannot discriminate; the matcher must still terminate
        # with a well-formed outcome.
        store = store_with([(maponly_job, small_text)])
        matcher = ProfileMatcher(store)
        outcome = matcher.match_job(make_features(wordcount, small_text))
        assert outcome.map_match.stage in (
            "static", "cost-fallback", "no-match", "no-match-dynamic"
        )


class TestThresholds:
    def test_stricter_jaccard_rejects_similar_jobs(
        self, store_with, make_features, wordcount, small_text
    ):
        from repro.hadoop.job import MapReduceJob
        from conftest import wc_map, wc_reduce

        clone = MapReduceJob(
            name="wordcount-clone",
            mapper=wc_map,
            reducer=wc_reduce,
            combiner=wc_reduce,
            input_format="KeyValueTextInputFormat",
            output_format="SequenceFileOutputFormat",
        )
        store = store_with([(clone, small_text)])
        lenient = ProfileMatcher(store, jaccard_threshold=0.5)
        strict = ProfileMatcher(store, jaccard_threshold=0.99)
        features = make_features(wordcount, small_text)
        lenient_match = lenient.match_side(features, "map")
        strict_match = strict.match_side(features, "map")
        # The clone shares mapper code (CFG + names) but differs in the
        # formatters: lenient Jaccard accepts, strict falls through.
        assert lenient_match.stage == "static"
        assert strict_match.stage in ("cost-fallback", "no-match")

    def test_euclidean_override(self, store_with, make_features, wordcount, small_text):
        store = store_with([(wordcount, small_text)])
        impossible = ProfileMatcher(store, euclidean_threshold=0.0)
        features = make_features(wordcount, small_text, seed=99)
        match = impossible.match_side(features, "map")
        assert match.stage in ("no-match-dynamic", "no-match", "static")


class TestTieBreak:
    def test_same_program_outranks_similar(self, engine, profiler, make_features, wordcount, small_text):
        """A stored profile with identical statics (the same program on
        other data) beats a behaviour-alike with closer input size."""
        from repro.hadoop.dataset import Dataset, FunctionRecordSource
        from conftest import _text_lines
        from repro.hadoop.job import MapReduceJob

        other_data = Dataset(
            "bigger-text",
            nominal_bytes=1 << 30,
            source=FunctionRecordSource(_text_lines),
            seed=5,
        )

        # A behavioural clone with its *own* map/reduce functions: same
        # CFG shapes and types, different class names.
        def clone_map(key, line, ctx):
            for token in line.split():
                ctx.emit(token, 1)

        def clone_reduce(token, counts, ctx):
            total = 0
            for count in counts:
                total += count
                ctx.report_ops(1)
            ctx.emit(token, total)

        lookalike = MapReduceJob(
            name="lookalike", mapper=clone_map, reducer=clone_reduce,
            combiner=clone_reduce,
        )
        store = ProfileStore()
        for job, dataset in ((wordcount, other_data), (lookalike, small_text)):
            profile, __ = profiler.profile_job(job, dataset)
            sample_features = make_features(job, dataset)
            store.put(profile, sample_features.static)

        # A wide θ keeps both candidates through the dynamic stage so the
        # test isolates the tie-break: identical statics must outrank the
        # size-closer lookalike.
        matcher = ProfileMatcher(store, euclidean_threshold=2.0)
        outcome = matcher.match_side(make_features(wordcount, small_text), "map")
        assert outcome.job_id == "wordcount-test@bigger-text"

    def test_size_tie_break_among_same_program(self, engine, profiler, make_features, wordcount, small_text):
        """Among twins of the same program, the closest size wins."""
        from repro.hadoop.dataset import Dataset, FunctionRecordSource
        from conftest import _text_lines

        near = Dataset("near", nominal_bytes=small_text.nominal_bytes * 2,
                       source=FunctionRecordSource(_text_lines), seed=5)
        far = Dataset("far", nominal_bytes=small_text.nominal_bytes * 64,
                      source=FunctionRecordSource(_text_lines), seed=5)
        store = ProfileStore()
        for dataset in (near, far):
            profile, __ = profiler.profile_job(wordcount, dataset)
            store.put(profile, make_features(wordcount, dataset).static)
        matcher = ProfileMatcher(store)
        outcome = matcher.match_side(make_features(wordcount, small_text), "map")
        assert outcome.job_id == "wordcount-test@near"
