"""Shared fixtures: a small cluster, small datasets, and simple jobs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hadoop import (
    Dataset,
    FunctionRecordSource,
    HadoopEngine,
    JobConfiguration,
    MapReduceJob,
    ec2_cluster,
)
from repro.starfish import Sampler, StarfishProfiler, WhatIfEngine

MB = 1 << 20


def pytest_configure(config):
    # Registered in pyproject.toml too; repeated here so the suite stays
    # warning-free when invoked with an explicit -c/-o that bypasses it.
    config.addinivalue_line(
        "markers", "slow: exhaustive sweeps (full crash-point/byte matrices)"
    )
    config.addinivalue_line(
        "markers", "soak: long-running endurance runs, never in default runs"
    )


def _text_lines(split_index, rng):
    words = [f"word{i:02d}" for i in range(40)]
    lines = []
    for i in range(120):
        count = int(rng.integers(4, 10))
        line = " ".join(words[int(rng.integers(0, 40))] for __ in range(count))
        lines.append((i, line))
    return lines


def wc_map(key, line, ctx):
    for word in line.split():
        ctx.emit(word, 1)


def wc_reduce(word, counts, ctx):
    total = 0
    for count in counts:
        total += count
        ctx.report_ops(1)
    ctx.emit(word, total)


def identity_map(key, value, ctx):
    ctx.emit(key, value)


@pytest.fixture(scope="session")
def cluster():
    return ec2_cluster()


@pytest.fixture(scope="session")
def engine(cluster):
    return HadoopEngine(cluster)


@pytest.fixture(scope="session")
def profiler(engine):
    return StarfishProfiler(engine)


@pytest.fixture(scope="session")
def sampler(profiler):
    return Sampler(profiler)


@pytest.fixture(scope="session")
def whatif(cluster):
    return WhatIfEngine(cluster)


@pytest.fixture()
def small_text():
    """A 256 MB (4-split) text dataset."""
    return Dataset(
        "small-text",
        nominal_bytes=256 * MB,
        source=FunctionRecordSource(_text_lines),
        seed=5,
    )


@pytest.fixture()
def wordcount():
    return MapReduceJob(
        name="wordcount-test",
        mapper=wc_map,
        reducer=wc_reduce,
        combiner=wc_reduce,
    )


@pytest.fixture()
def maponly_job():
    return MapReduceJob(name="identity-maponly", mapper=identity_map)


@pytest.fixture()
def default_config():
    return JobConfiguration()
