"""Seed-robustness: the headline claims must not be seed artifacts.

These re-run the key qualitative results under different RNG seeds (on
the reduced suite, to stay fast) and assert the *shapes*, not the
numbers.
"""

import pytest

from repro.experiments.accuracy import evaluate_nn_baseline, evaluate_pstorm
from repro.experiments.common import ExperimentContext, collect_suite
from repro.workloads import standard_benchmark

SEEDS = (7, 1234)


@pytest.fixture(scope="module", params=SEEDS)
def seeded(request):
    seed = request.param
    ctx = ExperimentContext.create(seed)
    records = collect_suite(ctx, standard_benchmark(pigmix_queries=2), seed=seed)
    return seed, ctx, records


class TestSeedRobustness:
    def test_sd_accuracy_is_perfect(self, seeded):
        __, __, records = seeded
        result = evaluate_pstorm(records, "SD")
        assert result.map_accuracy == 1.0
        assert result.reduce_accuracy == 1.0

    def test_dd_beats_baselines(self, seeded):
        __, __, records = seeded
        pstorm = evaluate_pstorm(records, "DD")
        p_features = evaluate_nn_baseline(records, "DD", include_static=False)
        assert pstorm.map_accuracy > p_features.map_accuracy

    def test_unseen_job_tuning_beats_rbo(self, seeded):
        seed, ctx, __ = seeded
        from repro.core import PStorM
        from repro.hadoop import JobConfiguration
        from repro.workloads import (
            bigram_relative_frequency_job,
            cooccurrence_pairs_job,
            wikipedia_35gb,
        )

        wiki = wikipedia_35gb()
        pstorm = PStorM(ctx.engine)
        pstorm.remember(bigram_relative_frequency_job(), wiki, seed=seed)
        result = pstorm.submit(cooccurrence_pairs_job(), wiki, seed=seed)
        assert result.matched

        default = ctx.engine.run_job(
            cooccurrence_pairs_job(), wiki, JobConfiguration(), seed=seed
        )
        sample = ctx.sampler.collect(cooccurrence_pairs_job(), wiki, count=1, seed=seed)
        rbo_config = ctx.make_rbo().recommend(sample.profile).config
        rbo_run = ctx.engine.run_job(
            cooccurrence_pairs_job(), wiki, rbo_config, seed=seed
        )
        pstorm_speedup = default.runtime_seconds / result.runtime_seconds
        rbo_speedup = default.runtime_seconds / rbo_run.runtime_seconds
        assert pstorm_speedup > 1.0
        assert pstorm_speedup >= rbo_speedup * 0.95
