"""Crash-point recovery: the durability proof for the profile store.

Two sweeps, one invariant — **a restored store equals the acked-write
prefix**:

* A *byte-boundary* sweep on a bare durable :class:`LsmStore`: the WAL
  is truncated at every byte offset (and bit-flipped), the store is
  reopened, and the recovered contents must be exactly the flushed
  state plus the clean frame prefix; torn tails surface as typed
  ``recovered_tail_error`` diagnoses, never a raise.

* A *chaos crash-point* sweep on a full :class:`ProfileStore`: a fault
  injector kills the process at operation index *k* for every *k* in a
  reference run — mid-put, mid-flush, mid-compaction, mid-snapshot —
  and after each kill the store is reopened and compared against the
  prefix of writes that were acknowledged before the crash (the
  in-flight write may legally have committed).  The recovered store's
  *indexed* probe must agree with its scan-path probe.

A third sweep damages a binary block-sharded ``sst_*.bin`` at sampled
byte offsets (truncations and bit flips): reads must either return the
exact pre-damage data or raise a typed ``CorruptSSTableError`` — never
garbage.

The default run samples the sweeps; ``-m slow`` runs them exhaustively.
"""

import json
import shutil

import pytest

from repro.chaos import FaultInjector, FaultPlan, crash_point_plan
from repro.cli import _synthetic_job
from repro.core.features import JobFeatures
from repro.core.matcher import ProfileMatcher
from repro.core.store import TABLE_NAME, ProfileStore
from repro.hbase import CorruptSSTableError, LsmStore, SimulatedCrashError
from repro.hbase.wal import HEADER_SIZE, decode_frames, decode_record
from repro.observability import MetricsRegistry
from repro.starfish.profile import (
    MAP_COST_FEATURES,
    MAP_DATA_FLOW_FEATURES,
    REDUCE_COST_FEATURES,
    REDUCE_DATA_FLOW_FEATURES,
)

# ======================================================================
# Part 1: WAL byte-boundary sweep on the bare LSM store
# ======================================================================

STORE_KW = dict(flush_threshold=6, compaction_threshold=3)


def _lsm_workload(store):
    for i in range(20):
        store.put(f"k{i:03d}", i * 10)
    store.delete("k003")
    store.put("k005", 999)
    store.delete("k017")


@pytest.fixture(scope="module")
def wal_fixture(tmp_path_factory):
    """A closed durable store with flushed SSTables plus a WAL tail,
    and everything the sweep needs precomputed: the tail's frame
    boundaries, its decoded records, and the expected recovered state
    for every clean-prefix length."""
    base = tmp_path_factory.mktemp("wal-sweep") / "base"
    store = LsmStore(data_dir=base, **STORE_KW)
    _lsm_workload(store)
    store.close()

    wal_bytes = (base / "wal.log").read_bytes()
    payloads, clean, error = decode_frames(wal_bytes)
    assert error is None and clean == len(wal_bytes)
    assert payloads, "workload must leave an unflushed WAL tail"
    boundaries = [0]
    for payload in payloads:
        boundaries.append(boundaries[-1] + HEADER_SIZE + len(payload))
    tail_records = [decode_record(p) for p in payloads]

    # State with the tail wiped = the flushed (SSTable-only) state.
    flushed_dir = base.parent / "flushed"
    shutil.copytree(base, flushed_dir)
    (flushed_dir / "wal.log").write_bytes(b"")
    flushed = LsmStore(data_dir=flushed_dir, **STORE_KW)
    prefix_states = [dict(flushed.scan())]
    flushed.close()
    for record in tail_records:
        state = dict(prefix_states[-1])
        if record.op == "put":
            state[record.key] = record.value
        else:
            state.pop(record.key, None)
        prefix_states.append(state)

    # Sanity: the full tail replays to the reference workload state.
    reference = {f"k{i:03d}": i * 10 for i in range(20)}
    del reference["k003"], reference["k017"]
    reference["k005"] = 999
    assert prefix_states[-1] == reference
    return base, wal_bytes, boundaries, prefix_states


def _check_truncation(base, wal_bytes, boundaries, prefix_states, cut, workdir):
    target = workdir / f"cut{cut}"
    shutil.copytree(base, target)
    (target / "wal.log").write_bytes(wal_bytes[:cut])
    recovered = LsmStore(data_dir=target, **STORE_KW)  # must never raise
    frames = sum(1 for b in boundaries[1:] if b <= cut)
    assert dict(recovered.scan()) == prefix_states[frames], f"cut={cut}"
    if cut in boundaries:
        assert recovered.recovered_tail_error is None, f"cut={cut}"
    else:
        assert recovered.recovered_tail_error is not None, f"cut={cut}"
        assert (
            "torn" in recovered.recovered_tail_error
            or "checksum" in recovered.recovered_tail_error
        )
    recovered.close()
    # Repair truncated the torn tail: a second open is always clean.
    again = LsmStore(data_dir=target, **STORE_KW)
    assert again.recovered_tail_error is None
    assert dict(again.scan()) == prefix_states[frames]
    again.close()
    shutil.rmtree(target)


def _check_bit_flip(base, wal_bytes, boundaries, prefix_states, pos, workdir):
    target = workdir / f"flip{pos}"
    shutil.copytree(base, target)
    mutated = bytearray(wal_bytes)
    mutated[pos] ^= 0x40
    (target / "wal.log").write_bytes(bytes(mutated))
    recovered = LsmStore(data_dir=target, **STORE_KW)  # must never raise
    # The damaged frame and everything after it are discarded; frames
    # before it are untouched.
    damaged = sum(1 for b in boundaries[1:] if b <= pos)
    assert dict(recovered.scan()) == prefix_states[damaged], f"pos={pos}"
    assert recovered.recovered_tail_error is not None, f"pos={pos}"
    recovered.close()
    shutil.rmtree(target)


class TestWalByteSweep:
    def test_sampled_truncations(self, wal_fixture, tmp_path):
        base, wal_bytes, boundaries, prefix_states = wal_fixture
        # Every frame boundary and its neighbours, plus an even spread.
        cuts = set(boundaries)
        for b in boundaries:
            cuts.update((max(0, b - 1), min(len(wal_bytes), b + 1)))
        cuts.update(range(0, len(wal_bytes) + 1, max(1, len(wal_bytes) // 16)))
        for cut in sorted(cuts):
            _check_truncation(
                base, wal_bytes, boundaries, prefix_states, cut, tmp_path
            )

    @pytest.mark.slow
    def test_every_truncation(self, wal_fixture, tmp_path):
        base, wal_bytes, boundaries, prefix_states = wal_fixture
        for cut in range(len(wal_bytes) + 1):
            _check_truncation(
                base, wal_bytes, boundaries, prefix_states, cut, tmp_path
            )

    def test_sampled_bit_flips(self, wal_fixture, tmp_path):
        base, wal_bytes, boundaries, prefix_states = wal_fixture
        positions = sorted(
            set(range(0, len(wal_bytes), max(1, len(wal_bytes) // 12)))
        )
        for pos in positions:
            _check_bit_flip(
                base, wal_bytes, boundaries, prefix_states, pos, tmp_path
            )

    @pytest.mark.slow
    def test_every_bit_flip(self, wal_fixture, tmp_path):
        base, wal_bytes, boundaries, prefix_states = wal_fixture
        for pos in range(len(wal_bytes)):
            _check_bit_flip(
                base, wal_bytes, boundaries, prefix_states, pos, tmp_path
            )


# ======================================================================
# Part 2: chaos crash-point sweep on the ProfileStore
# ======================================================================


class RecordingInjector(FaultInjector):
    """A fault injector that also records the op-name sequence, so the
    sampled sweep can target the first put/flush/compact/snapshot."""

    def __init__(self, plan, registry=None):
        super().__init__(plan, registry)
        self.ops = []

    def on_operation(self, op, server_id=None):
        self.ops.append(op)
        super().on_operation(op, server_id)


def _probe_features():
    profile, static = _synthetic_job(2)
    return JobFeatures(
        job_name="probe",
        static=static,
        map_data_flow=[
            profile.map_profile.data_flow[n] for n in MAP_DATA_FLOW_FEATURES
        ],
        map_costs=[
            profile.map_profile.cost_factors[n] for n in MAP_COST_FEATURES
        ],
        reduce_data_flow=[
            profile.reduce_profile.data_flow[n]
            for n in REDUCE_DATA_FLOW_FEATURES
        ],
        reduce_costs=[
            profile.reduce_profile.cost_factors[n] for n in REDUCE_COST_FEATURES
        ],
        input_bytes=profile.input_bytes,
    )


def _canonical(store):
    return json.loads(json.dumps(store.index_snapshot()))


def _run_workload(store, on_ack):
    """The reference write sequence: five puts, a mid-run snapshot, one
    delete.  ``on_ack`` fires after each acknowledged state-changing
    write (the snapshot is a checkpoint, not a write)."""
    jobs = [_synthetic_job(i) for i in range(5)]
    for number in (0, 1, 2):
        store.put(jobs[number][0], jobs[number][1], job_id=f"job-{number}@crash")
        on_ack(store)
    store.snapshot()
    store.put(jobs[3][0], jobs[3][1], job_id="job-3@crash")
    on_ack(store)
    store.delete("job-1@crash")
    on_ack(store)
    store.put(jobs[4][0], jobs[4][1], job_id="job-4@crash")
    on_ack(store)


@pytest.fixture(scope="module")
def chaos_reference(tmp_path_factory):
    """Two clean durable runs: one under a no-fault injector yielding
    the op sequence (so sweeps know every kill index — it must consult
    exactly like a crash run, so no extra reads), and one without chaos
    recording the canonical state after each acked write (state reads
    would perturb the op indices)."""
    ops_dir = tmp_path_factory.mktemp("chaos-ops")
    injector = RecordingInjector(FaultPlan(), registry=MetricsRegistry())
    counting = ProfileStore(
        data_dir=ops_dir, registry=MetricsRegistry(), chaos=injector
    )
    _run_workload(counting, lambda s: None)
    # The workload must actually cross every durability boundary the
    # harness claims to sweep — including the per-block and footer
    # write points inside a binary SSTable flush.
    seen = set(injector.ops)
    assert {
        "lsm-put",
        "lsm-flush",
        "sst-block",
        "sst-footer",
        "snapshot",
    } <= seen, sorted(seen)

    states_dir = tmp_path_factory.mktemp("chaos-states")
    store = ProfileStore(data_dir=states_dir, registry=MetricsRegistry())
    states = [_canonical(store)]
    _run_workload(store, lambda s: states.append(_canonical(s)))
    return injector.ops, states


def _crash_and_recover(data_dir, kill_at, states):
    """Kill a fresh store at op *kill_at*, reopen, and hold the prefix
    invariant.  Returns the recovered store (caller probes it)."""
    acked = 0

    def on_ack(_store):
        nonlocal acked
        acked += 1

    crashed = False
    try:
        store = ProfileStore(
            data_dir=data_dir,
            registry=MetricsRegistry(),
            chaos=FaultInjector(
                crash_point_plan(kill_at), registry=MetricsRegistry()
            ),
        )
        _run_workload(store, on_ack)
    except SimulatedCrashError:
        crashed = True
    # Deliberately no close(): a crash abandons the process mid-flight.

    recovered = ProfileStore(data_dir=data_dir, registry=MetricsRegistry())
    state = _canonical(recovered)
    if not crashed:
        assert state == states[-1], f"kill_at={kill_at}: clean run diverged"
        return recovered
    # Every acked write survived; the in-flight one either committed
    # whole or vanished whole.
    allowed = [states[acked]]
    if acked + 1 < len(states):
        allowed.append(states[acked + 1])
    assert state in allowed, (
        f"kill_at={kill_at}: recovered state is not the acked prefix "
        f"(acked={acked})"
    )
    return recovered


def _assert_probe_parity(recovered):
    features = _probe_features()
    indexed = ProfileMatcher(recovered, registry=MetricsRegistry())
    scan = ProfileMatcher(
        recovered, registry=MetricsRegistry(), use_index=False
    )
    assert indexed.match_job(features) == scan.match_job(features)


class TestChaosCrashPoints:
    def test_sampled_crash_points(self, chaos_reference, tmp_path):
        ops, states = chaos_reference
        total = len(ops)
        # First occurrence of each op kind + an even spread + both ends
        # + one index past the end (no crash fires: clean-run sanity).
        kills = {ops.index(op) for op in set(ops)}
        kills.update((0, 1, total - 1, total))
        kills.update(range(0, total, max(1, total // 8)))
        for kill_at in sorted(kills):
            recovered = _crash_and_recover(
                tmp_path / f"k{kill_at}", kill_at, states
            )
            _assert_probe_parity(recovered)

    @pytest.mark.slow
    def test_every_crash_point(self, chaos_reference, tmp_path):
        ops, states = chaos_reference
        for kill_at in range(len(ops) + 1):
            recovered = _crash_and_recover(
                tmp_path / f"k{kill_at}", kill_at, states
            )
            # Probe parity on a spread (the full matcher run per point
            # would dominate the sweep without adding coverage).
            if kill_at % 10 == 0:
                _assert_probe_parity(recovered)


# ======================================================================
# Part 3: crash points at sharded-topology boundaries
# ======================================================================

#: Thresholds small enough that the workload below crosses every
#: topology transition: splits while writing, merges while deleting,
#: and one explicit rebalance.
_SHARD_KW = dict(
    num_region_servers=3,
    replication=2,
    split_threshold=4,
    merge_threshold=3,
    shard_index=True,
)


def _run_sharded_workload(store, on_ack):
    """Writes that split regions, deletes that merge them back, a
    rebalance, and a final post-rebalance write — so the crash sweep
    kills the process on either side of every topology operation."""
    jobs = [_synthetic_job(i) for i in range(8)]
    for number in range(8):
        store.put(jobs[number][0], jobs[number][1], job_id=f"job-{number}@shard")
        on_ack(store)
    for number in (0, 2, 4, 6, 7):
        store.delete(f"job-{number}@shard")
        on_ack(store)
    store.hbase.rebalance()  # topology only: no acked data change
    store.put(jobs[0][0], jobs[0][1], job_id="job-0b@shard")
    on_ack(store)


def _assert_sharded_topology(store):
    """The recovered regions tile the key space: no gaps, no overlaps,
    and every region's host set is deduplicated and within bounds."""
    regions = sorted(
        (region for region, __ in store.hbase.catalog.regions_of(TABLE_NAME)),
        key=lambda region: region.start_key,
    )
    assert regions[0].start_key == ""
    assert regions[-1].end_key is None
    for left, right in zip(regions, regions[1:]):
        assert left.end_key == right.start_key
    servers = len(store.hbase.servers)
    for __, hosts in store.hbase.catalog.replicas_of(TABLE_NAME):
        assert len(set(hosts)) == len(hosts)
        assert all(0 <= server_id < servers for server_id in hosts)


@pytest.fixture(scope="module")
def sharded_chaos_reference(tmp_path_factory):
    """The sharded twin of ``chaos_reference``: one counting run that
    proves the workload actually crosses split/merge/rebalance
    boundaries, one chaos-free run recording the acked states."""
    ops_dir = tmp_path_factory.mktemp("shard-ops")
    injector = RecordingInjector(FaultPlan(), registry=MetricsRegistry())
    counting = ProfileStore(
        data_dir=ops_dir, registry=MetricsRegistry(), chaos=injector, **_SHARD_KW
    )
    _run_sharded_workload(counting, lambda s: None)
    seen = set(injector.ops)
    assert {"split", "merge", "rebalance"} <= seen, sorted(seen)

    states_dir = tmp_path_factory.mktemp("shard-states")
    store = ProfileStore(
        data_dir=states_dir, registry=MetricsRegistry(), **_SHARD_KW
    )
    states = [_canonical(store)]
    _run_sharded_workload(store, lambda s: states.append(_canonical(s)))
    return injector.ops, states


def _crash_and_recover_sharded(data_dir, kill_at, states):
    """Sharded twin of ``_crash_and_recover``; additionally holds the
    recovered-topology invariant.  The reopen passes only the data
    directory (plus the index flavour): server count, thresholds and
    replication must come back from the cluster meta document."""
    acked = 0

    def on_ack(_store):
        nonlocal acked
        acked += 1

    crashed = False
    try:
        store = ProfileStore(
            data_dir=data_dir,
            registry=MetricsRegistry(),
            chaos=FaultInjector(
                crash_point_plan(kill_at), registry=MetricsRegistry()
            ),
            **_SHARD_KW,
        )
        _run_sharded_workload(store, on_ack)
    except SimulatedCrashError:
        crashed = True
    # Deliberately no close(): a crash abandons the process mid-flight.

    recovered = ProfileStore(
        data_dir=data_dir, registry=MetricsRegistry(), shard_index=True
    )
    state = _canonical(recovered)
    if not crashed:
        assert state == states[-1], f"kill_at={kill_at}: clean run diverged"
    else:
        allowed = [states[acked]]
        if acked + 1 < len(states):
            allowed.append(states[acked + 1])
        assert state in allowed, (
            f"kill_at={kill_at}: recovered state is not the acked prefix "
            f"(acked={acked})"
        )
    _assert_sharded_topology(recovered)
    return recovered


class TestShardedTopologyCrashPoints:
    def test_sampled_topology_crash_points(self, sharded_chaos_reference, tmp_path):
        ops, states = sharded_chaos_reference
        total = len(ops)
        # Both sides of the first and the last of each topology op,
        # plus an even spread and the clean run past the end.
        kills = set()
        for kind in ("split", "merge", "rebalance"):
            first = ops.index(kind)
            kills.update((max(0, first - 1), first, min(total, first + 1)))
            kills.add(total - 1 - ops[::-1].index(kind))
        kills.update((0, total))
        kills.update(range(0, total, max(1, total // 10)))
        for kill_at in sorted(kills):
            recovered = _crash_and_recover_sharded(
                tmp_path / f"k{kill_at}", kill_at, states
            )
            _assert_probe_parity(recovered)

    @pytest.mark.slow
    def test_every_topology_crash_point(self, sharded_chaos_reference, tmp_path):
        ops, states = sharded_chaos_reference
        for kill_at in range(len(ops) + 1):
            recovered = _crash_and_recover_sharded(
                tmp_path / f"k{kill_at}", kill_at, states
            )
            # Probe parity on a spread (the full matcher run per point
            # would dominate the sweep without adding coverage).
            if kill_at % 10 == 0:
                _assert_probe_parity(recovered)


# ======================================================================
# Part 4: byte-damage sweep on a binary block-sharded SSTable
# ======================================================================

_SST_KW = dict(flush_threshold=64, compaction_threshold=100, block_size=48)


@pytest.fixture(scope="module")
def sst_fixture(tmp_path_factory):
    """A closed durable store whose whole state lives in one multi-block
    ``sst_*.bin`` (the WAL is empty after the flush), so every read must
    go through the block file — damage cannot hide behind a replay."""
    base = tmp_path_factory.mktemp("sst-sweep") / "base"
    store = LsmStore(data_dir=base, **_SST_KW)
    expected = {f"k{i:03d}": i * 10 for i in range(24)}
    for key, value in expected.items():
        store.put(key, value)
    store.flush()
    assert dict(store.scan()) == expected
    [table] = store.hfiles
    assert table.num_blocks > 2, "block_size must shard this run"
    store.close()
    [sst_path] = base.glob("sst_*.bin")
    return base, sst_path.name, sst_path.read_bytes(), expected


def _check_sst_damage(base, sst_name, mutated, expected, workdir, label):
    """Reads over a damaged block file either return exactly the
    pre-damage data or raise ``CorruptSSTableError`` — never garbage."""
    target = workdir / label
    shutil.copytree(base, target)
    (target / sst_name).write_bytes(mutated)
    store = LsmStore(data_dir=target, **_SST_KW)  # attach is lazy
    try:
        state = dict(store.scan())
    except CorruptSSTableError:
        state = None
    else:
        assert state == expected, f"{label}: scan returned garbage"
    for key in list(expected)[:2] + ["k011", "zz-absent"]:
        try:
            found, value, __ = store.get(key)
        except CorruptSSTableError:
            continue
        assert (found, value) == (key in expected, expected.get(key)), (
            f"{label}: get({key!r}) returned garbage"
        )
    store.close()
    shutil.rmtree(target)
    return state


class TestSSTableByteSweep:
    def test_sampled_truncations_fail_typed(self, sst_fixture, tmp_path):
        base, sst_name, data, expected = sst_fixture
        # Every proper prefix loses the trailer, so each truncated open
        # must surface as a typed corruption — never a partial answer.
        for cut in range(0, len(data), max(1, len(data) // 24)):
            state = _check_sst_damage(
                base, sst_name, data[:cut], expected, tmp_path, f"cut{cut}"
            )
            assert state is None, f"cut={cut}: torn file served a scan"

    def test_sampled_bit_flips_fail_typed_or_read_clean(
        self, sst_fixture, tmp_path
    ):
        base, sst_name, data, expected = sst_fixture
        for pos in range(0, len(data), max(1, len(data) // 32)):
            mutated = bytearray(data)
            mutated[pos] ^= 0x20
            _check_sst_damage(
                base, sst_name, bytes(mutated), expected, tmp_path, f"flip{pos}"
            )

    @pytest.mark.slow
    def test_every_bit_flip_fails_typed_or_reads_clean(
        self, sst_fixture, tmp_path
    ):
        base, sst_name, data, expected = sst_fixture
        for pos in range(len(data)):
            mutated = bytearray(data)
            mutated[pos] ^= 0x20
            _check_sst_damage(
                base, sst_name, bytes(mutated), expected, tmp_path, f"flip{pos}"
            )


class TestCrashDuringSnapshot:
    def test_kill_inside_snapshot_keeps_last_good_checkpoint(
        self, chaos_reference, tmp_path
    ):
        ops, states = chaos_reference
        kill_at = ops.index("snapshot")
        recovered = _crash_and_recover(tmp_path / "snap", kill_at, states)
        # The snapshot died after flush_all but before the checkpoint
        # file: recovery still serves the full acked prefix, and the
        # index (cold or warm) agrees with the scan path.
        _assert_probe_parity(recovered)
        assert sorted(recovered.job_ids()) == sorted(
            f"job-{n}@crash" for n in (0, 1, 2)
        )
