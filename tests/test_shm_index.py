"""Tests for the shared-memory match-index transport.

The load-bearing property is three-way equivalence: for arbitrary
synthetic stores, a matcher probing the *shared-memory* view (the worker
stack: ``SharedIndexClient`` → ``SnapshotStoreProxy``) must return the
same ``MatchOutcome`` as a matcher on the in-process ``MatchIndex`` and
as the scan-path reference.  Around that sit the generation protocol
(immutable segments, no torn views across a publish race, stale-view
fallback) and the leak proof: every segment provably unlinked after
close.
"""

import multiprocessing.shared_memory as shared_memory

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.matcher import ProfileMatcher
from repro.core.shm_index import (
    SharedIndexClient,
    SharedIndexPublisher,
    SharedIndexUnavailableError,
)
from repro.observability import MetricsRegistry
from repro.serving.procpool import SnapshotStoreProxy
from test_match_index import (
    assert_no_silent_fallback,
    build_store,
    job_spec,
    make_features,
    make_profile,
    make_static,
)

_settings = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _segment_gone(name: str) -> bool:
    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return True
    segment.close()
    return False


class TestEquivalence:
    """shm probe ≡ in-process index probe ≡ scan probe."""

    @_settings
    @given(
        jobs=st.lists(job_spec, max_size=5),
        deletes=st.lists(st.integers(min_value=0, max_value=4), max_size=2),
        probe=job_spec,
        jaccard=st.sampled_from([0.0, 0.4, 0.8, 1.0]),
        euclidean=st.sampled_from([None, 0.0, 0.3, 3.0]),
    )
    def test_three_way_outcome_identical(
        self, jobs, deletes, probe, jaccard, euclidean
    ):
        store, __ = build_store(jobs, deletes)
        features = make_features(probe)
        kwargs = dict(jaccard_threshold=jaccard, euclidean_threshold=euclidean)
        with SharedIndexPublisher(store, registry=MetricsRegistry()) as publisher:
            publisher.publish()
            with SharedIndexClient(
                publisher.ctrl_name, registry=MetricsRegistry()
            ) as client:
                proxy = SnapshotStoreProxy(client, registry=MetricsRegistry())
                shm_registry = MetricsRegistry()
                shm = ProfileMatcher(proxy, registry=shm_registry, **kwargs)
                indexed = ProfileMatcher(
                    store, registry=MetricsRegistry(), **kwargs
                )
                scan = ProfileMatcher(
                    store, registry=MetricsRegistry(), use_index=False, **kwargs
                )
                shm_outcome = shm.match_job(features)
                assert shm_outcome == indexed.match_job(features)
                assert shm_outcome == scan.match_job(features)
                # The proof is vacuous if the shm matcher silently fell
                # back to its replica scan path.
                sides = 2 if features.has_reduce else 1
                assert_no_silent_fallback(shm_registry, expected_hits=sides)

    @_settings
    @given(
        first=st.lists(job_spec, min_size=1, max_size=4),
        second=st.lists(job_spec, min_size=1, max_size=3),
        probe=job_spec,
    )
    def test_equivalence_across_republish(self, first, second, probe):
        """A long-lived worker stack tracks generation bumps: writes land
        in the parent store, the publisher flips, and the next probe
        answers from the new generation — still scan-identical."""
        store, __ = build_store(first)
        features = make_features(probe)
        with SharedIndexPublisher(store, registry=MetricsRegistry()) as publisher:
            publisher.publish()
            with SharedIndexClient(publisher.ctrl_name) as client:
                proxy = SnapshotStoreProxy(client)
                shm = ProfileMatcher(proxy, registry=MetricsRegistry())
                scan = ProfileMatcher(
                    store, registry=MetricsRegistry(), use_index=False
                )
                assert shm.match_job(features) == scan.match_job(features)
                generation_before = proxy.view_generation
                for number, spec in enumerate(second):
                    store.put(
                        make_profile(f"late{number}", spec), make_static(spec)
                    )
                publisher.publish()
                assert shm.match_job(features) == scan.match_job(features)
                assert proxy.view_generation > generation_before


class TestGenerationProtocol:
    def _store(self, count=3):
        specs = []
        for number in range(count):
            spec = {
                "map_flow": (0.5, 0.5, 1.0, float(number)),
                "map_costs": (1.0, 1.0, 1.0, 1.0, 1.0),
                "has_reduce": False,
                "red_flow": (0.0,) * 4,
                "red_costs": (0.0,) * 5,
                "input_bytes": 1 << 30,
                "map_cfg": number % 3,
                "red_cfg": None,
                "statics": {},
            }
            specs.append(spec)
        # make_static needs every categorical name present.
        from test_match_index import CATEGORICAL_NAMES

        for spec in specs:
            spec["statics"] = {name: "alpha" for name in CATEGORICAL_NAMES}
        store, __ = build_store(specs)
        return store, specs

    def test_pinned_view_survives_publish_race(self):
        """No torn view: a probe pinned to generation N keeps answering
        from N's immutable arrays even while the publisher flips to N+1
        and retires N's segments."""
        store, specs = self._store()
        with SharedIndexPublisher(
            store, registry=MetricsRegistry(), keep_generations=1
        ) as publisher:
            publisher.publish()
            with SharedIndexClient(publisher.ctrl_name) as client:
                pinned = client.view()
                rows_before = pinned.stats()
                generation = pinned.generation
                # A mid-probe write + republish (the race): old segments
                # are unlinked, the ctrl block flips.
                store.put(make_profile("raced", specs[0]), make_static(specs[0]))
                publisher.publish()
                assert publisher.published_generation > generation
                # The pinned view is untouched — same generation, same
                # rows, arrays still readable (the mapping survives the
                # unlink until the last attach closes).
                assert pinned.generation == generation
                assert pinned.stats() == rows_before
                fresh = client.view()
                assert fresh.generation > generation
                assert fresh.stats()["rows"] == rows_before["rows"] + 1

    def test_publish_is_idempotent_per_generation(self):
        store, __ = self._store()
        registry = MetricsRegistry()
        with SharedIndexPublisher(store, registry=registry) as publisher:
            publisher.publish()
            names = list(publisher.segment_names())
            publisher.publish()  # same store generation: no-op
            assert list(publisher.segment_names()) == names
            assert (
                registry.counter("shm_index_publishes_total").value == 1
            )

    def test_client_keeps_stale_view_when_segments_vanish(self):
        store, specs = self._store()
        publisher = SharedIndexPublisher(store, registry=MetricsRegistry())
        publisher.publish()
        registry = MetricsRegistry()
        client = SharedIndexClient(
            publisher.ctrl_name, registry=registry, attach_retries=2
        )
        stale = client.view()
        # Bump the generation, then destroy the new segments before the
        # client can attach: it must fall back to the stale view, counted.
        store.put(make_profile("bump", specs[0]), make_static(specs[0]))
        publisher.publish()
        for name in publisher.segment_names():
            if name != stale_segment_name(publisher, stale.generation):
                seg = shared_memory.SharedMemory(name=name)
                seg.close()
                seg.unlink()
        view = client.view()
        assert view is stale
        assert registry.counter("shm_index_stale_views_total").value >= 1
        client.close()
        publisher.close()

    def test_unpublished_ctrl_raises_unavailable(self):
        store, __ = self._store()
        publisher = SharedIndexPublisher(store, registry=MetricsRegistry())
        # ctrl exists but nothing was published yet.
        with SharedIndexClient(publisher.ctrl_name, attach_retries=1) as client:
            with pytest.raises(SharedIndexUnavailableError):
                client.view()
        publisher.close()


def stale_segment_name(publisher, generation):
    """The segment name belonging to *generation* (if still tracked)."""
    for name in publisher.segment_names():
        if f"g{generation}" in name:
            return name
    return None


class TestLeakProof:
    def test_all_segments_unlinked_on_close(self):
        store, specs = TestGenerationProtocol()._store()
        registry = MetricsRegistry()
        publisher = SharedIndexPublisher(store, registry=registry)
        names = set()
        publisher.publish()
        names.update(publisher.segment_names())
        names.add(publisher.ctrl_name)
        for round_number in range(3):
            store.put(
                make_profile(f"gen{round_number}", specs[0]),
                make_static(specs[0]),
            )
            publisher.publish()
            names.update(publisher.segment_names())
        client = SharedIndexClient(publisher.ctrl_name)
        client.view()
        client.close()
        publisher.close()
        leaked = sorted(name for name in names if not _segment_gone(name))
        assert leaked == []

    def test_retired_generations_unlink_as_publishes_advance(self):
        store, specs = TestGenerationProtocol()._store()
        publisher = SharedIndexPublisher(
            store, registry=MetricsRegistry(), keep_generations=1
        )
        publisher.publish()
        first = set(publisher.segment_names())
        store.put(make_profile("next", specs[0]), make_static(specs[0]))
        publisher.publish()
        current = set(publisher.segment_names())
        retired = first - current
        assert retired, "expected the old generation to retire"
        for name in retired:
            assert _segment_gone(name)
        publisher.close()


class TestReadYourWrites:
    def test_pending_local_writes_poison_the_shared_index(self):
        store, specs = TestGenerationProtocol()._store()
        with SharedIndexPublisher(store, registry=MetricsRegistry()) as publisher:
            publisher.publish()
            with SharedIndexClient(publisher.ctrl_name) as client:
                proxy = SnapshotStoreProxy(client)
                registry = MetricsRegistry()
                matcher = ProfileMatcher(proxy, registry=registry)
                probe = make_features(specs[0])
                matcher.match_job(probe)
                assert registry.counter(
                    "pstorm_matcher_index_hits_total"
                ).value == 1
                # A worker-local write: the shared view no longer covers
                # this worker's store, so the indexed path must poison
                # itself and the scan path (which sees the write) serves.
                proxy.put(
                    make_profile("local", specs[1]), make_static(specs[1])
                )
                assert proxy.has_pending_local()
                outcome = matcher.match_job(probe)
                scan = ProfileMatcher(
                    proxy._replica, registry=MetricsRegistry(), use_index=False
                )
                assert outcome == scan.match_job(probe)
                assert registry.counter(
                    "pstorm_matcher_index_misses_total",
                    labels={"reason": "poisoned"},
                ).value >= 1
                # Parent absorbs the write and republishes: pending
                # clears, the indexed path resumes.
                drained = proxy.drain_outbox()
                assert [job_id for job_id, __, __ in drained] == [
                    "local@synth"
                ]
                from repro.analysis.static_features import StaticFeatures
                from repro.starfish.profile import JobProfile

                for job_id, profile_dict, static_dict in drained:
                    store.put(
                        JobProfile.from_dict(profile_dict),
                        StaticFeatures.from_dict(static_dict),
                        job_id=job_id,
                    )
                publisher.publish()
                matcher.match_job(probe)
                assert not proxy.has_pending_local()
                assert registry.counter(
                    "pstorm_matcher_index_hits_total"
                ).value == 2
