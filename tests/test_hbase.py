"""Unit tests for the HBase substrate."""

import pytest
from hypothesis import given, strategies as st

from repro.hbase import (
    ColumnValueFilter,
    FilterList,
    HBaseCluster,
    PrefixFilter,
    RowRangeFilter,
    TableExistsError,
    TableNotFoundError,
    UnknownColumnFamilyError,
    UnknownFilterError,
    deserialize_filter,
    serialize_filter,
)
from repro.hbase.region import Region


@pytest.fixture()
def cluster():
    return HBaseCluster(num_region_servers=2, split_threshold=16)


@pytest.fixture()
def table(cluster):
    return cluster.create_table("t", ("f",))


class TestRegion:
    def test_put_get_latest_version(self):
        region = Region("t", ("f",))
        region.put("r1", "f", "c", 1)
        region.put("r1", "f", "c", 2)
        assert region.get("r1") == {"f": {"c": 2}}

    def test_unknown_family_rejected(self):
        region = Region("t", ("f",))
        with pytest.raises(UnknownColumnFamilyError):
            region.put("r1", "g", "c", 1)

    def test_scan_ordered_and_bounded(self):
        region = Region("t", ("f",))
        for key in ("c", "a", "b", "d"):
            region.put(key, "f", "x", key)
        keys = [k for k, __ in region.scan("b", "d")]
        assert keys == ["b", "c"]

    def test_delete_row(self):
        region = Region("t", ("f",))
        region.put("r", "f", "c", 1)
        assert region.delete_row("r")
        assert not region.delete_row("r")
        assert region.get("r") is None

    def test_split_partitions_rows(self):
        region = Region("t", ("f",))
        for i in range(10):
            region.put(f"r{i}", "f", "c", i)
        left, right = region.split()
        assert left.num_rows + right.num_rows == 10
        assert left.end_key == right.start_key
        assert all(k < left.end_key for k, __ in left.scan())
        assert all(k >= right.start_key for k, __ in right.scan())

    def test_split_requires_two_rows(self):
        region = Region("t", ("f",))
        region.put("only", "f", "c", 1)
        with pytest.raises(ValueError):
            region.split()


class TestTableLifecycle:
    def test_create_duplicate_rejected(self, cluster):
        cluster.create_table("dup", ("f",))
        with pytest.raises(TableExistsError):
            cluster.create_table("dup", ("f",))

    def test_open_missing_rejected(self, cluster):
        with pytest.raises(TableNotFoundError):
            cluster.table("missing")

    def test_drop_table(self, cluster):
        cluster.create_table("gone", ("f",))
        cluster.drop_table("gone")
        with pytest.raises(TableNotFoundError):
            cluster.table("gone")

    def test_families_required(self, cluster):
        with pytest.raises(ValueError):
            cluster.create_table("nf", ())


class TestPutGetScan:
    def test_roundtrip(self, table):
        table.put("row", "f", "col", {"nested": [1, 2]})
        assert table.get("row") == {"f": {"col": {"nested": [1, 2]}}}

    def test_get_missing_is_none(self, table):
        assert table.get("nope") is None

    def test_put_row_multiple_columns(self, table):
        table.put_row("r", "f", {"a": 1, "b": 2})
        assert table.get("r") == {"f": {"a": 1, "b": 2}}

    def test_scan_all_sorted(self, table):
        for key in ("z", "m", "a"):
            table.put(key, "f", "c", key)
        assert [k for k, __ in table.scan()] == ["a", "m", "z"]

    def test_num_rows(self, table):
        for i in range(5):
            table.put(f"k{i}", "f", "c", i)
        assert table.num_rows() == 5

    def test_region_splits_keep_data(self, cluster, table):
        for i in range(100):
            table.put(f"key{i:03d}", "f", "c", i)
        assert table.num_rows() == 100
        assert len(cluster.catalog.regions_of("t")) > 1
        assert [k for k, __ in table.scan()] == sorted(f"key{i:03d}" for i in range(100))

    def test_routing_after_split(self, cluster, table):
        for i in range(100):
            table.put(f"key{i:03d}", "f", "c", i)
        assert table.get("key050") == {"f": {"c": 50}}
        table.put("key050", "f", "c", -1)
        assert table.get("key050") == {"f": {"c": -1}}


class TestBatchedScan:
    @pytest.mark.parametrize("batch", [1, 3, 64])
    def test_batched_scan_equals_unbatched(self, cluster, table, batch):
        for i in range(100):  # enough rows to force region splits
            table.put(f"key{i:03d}", "f", "c", i)
        assert len(cluster.catalog.regions_of("t")) > 1
        unbatched = list(table.scan())
        assert list(table.scan(batch=batch)) == unbatched

    def test_batched_scan_with_range_and_filter(self, table):
        for i in range(30):
            table.put(f"key{i:03d}", "f", "c", i)
        scan_filter = ColumnValueFilter("f", "c", "<=", 20)
        unbatched = list(table.scan("key005", "key025", scan_filter))
        batched = list(table.scan("key005", "key025", scan_filter, batch=4))
        assert batched == unbatched
        assert [k for k, __ in batched] == [f"key{i:03d}" for i in range(5, 21)]

    def test_batch_must_be_positive(self, table):
        table.put("r", "f", "c", 1)
        with pytest.raises(ValueError):
            list(table.scan(batch=0))


class TestFilters:
    def test_prefix_filter(self, table):
        table.put("Static/j1", "f", "c", 1)
        table.put("Dynamic/j1", "f", "c", 2)
        rows = list(table.scan(scan_filter=PrefixFilter("Static/")))
        assert [k for k, __ in rows] == ["Static/j1"]

    def test_row_range_filter(self, table):
        for key in ("a", "b", "c"):
            table.put(key, "f", "c", 1)
        rows = list(table.scan(scan_filter=RowRangeFilter(start="b")))
        assert [k for k, __ in rows] == ["b", "c"]

    def test_column_value_filter_ops(self, table):
        table.put("r1", "f", "v", 5)
        table.put("r2", "f", "v", 10)
        rows = list(table.scan(scan_filter=ColumnValueFilter("f", "v", ">", 7)))
        assert [k for k, __ in rows] == ["r2"]

    def test_column_value_filter_missing_column_fails(self, table):
        table.put("r1", "f", "other", 1)
        rows = list(table.scan(scan_filter=ColumnValueFilter("f", "v", "==", 1)))
        assert rows == []

    def test_bad_operator_rejected(self):
        with pytest.raises(ValueError):
            ColumnValueFilter("f", "v", "~", 1)

    def test_filter_list_and_or(self, table):
        table.put("a1", "f", "v", 1)
        table.put("a2", "f", "v", 2)
        and_filter = FilterList(
            [PrefixFilter("a"), ColumnValueFilter("f", "v", "==", 2)], mode="AND"
        )
        or_filter = FilterList(
            [ColumnValueFilter("f", "v", "==", 1), ColumnValueFilter("f", "v", "==", 2)],
            mode="OR",
        )
        assert [k for k, __ in table.scan(scan_filter=and_filter)] == ["a2"]
        assert len(list(table.scan(scan_filter=or_filter))) == 2

    def test_serialization_roundtrip(self):
        original = FilterList(
            [PrefixFilter("x"), ColumnValueFilter("f", "v", "<=", 3)], mode="OR"
        )
        restored = deserialize_filter(serialize_filter(original))
        assert isinstance(restored, FilterList)
        assert restored.mode == "OR"
        assert len(restored.filters) == 2

    def test_unknown_filter_type_rejected(self):
        with pytest.raises(UnknownFilterError):
            deserialize_filter({"type": "no-such-filter"})

    @given(st.text(min_size=1, max_size=10), st.text(max_size=10))
    def test_prefix_filter_semantics(self, prefix, key):
        assert PrefixFilter(prefix).matches(key, {}) == key.startswith(prefix)


class TestPushdownMetrics:
    def test_pushdown_ships_fewer_rows(self, cluster, table):
        for i in range(50):
            table.put(f"k{i:02d}", "f", "v", i)
        filt = ColumnValueFilter("f", "v", "<", 5)

        cluster.reset_metrics()
        matched = list(table.scan(scan_filter=filt, pushdown=True))
        shipped_pushdown = sum(
            s.metrics.rows_shipped for s in cluster.servers.values()
        )

        cluster.reset_metrics()
        matched_client = list(table.scan(scan_filter=filt, pushdown=False))
        shipped_client = sum(
            s.metrics.rows_shipped for s in cluster.servers.values()
        )

        assert [k for k, __ in matched] == [k for k, __ in matched_client]
        assert shipped_pushdown == 5
        assert shipped_client == 50

    def test_store_objects_count(self, cluster):
        before = cluster.total_store_objects()
        cluster.create_table("another", ("f1", "f2"))
        assert cluster.total_store_objects() == before + 2

    def test_catalog_meta_rows(self, cluster, table):
        rows = cluster.catalog.meta_rows("t")
        assert rows
        assert rows[0].meta_key.startswith("t,")
