"""Tests for the PStorM profile store (Table 5.1 data model + pushdown)."""

import pytest

from repro.core.features import extract_job_features
from repro.core.store import (
    DYNAMIC_PREFIX,
    PROFILE_PREFIX,
    STATIC_PREFIX,
    CfgEqualityFilter,
    JaccardThresholdFilter,
    NormalizedEuclideanFilter,
    ProfileStore,
    RowKeySetFilter,
)
from repro.hbase import deserialize_filter, serialize_filter


@pytest.fixture()
def populated(engine, profiler, sampler, wordcount, maponly_job, small_text):
    """A store holding wordcount and a map-only job."""
    store = ProfileStore()
    entries = {}
    for job in (wordcount, maponly_job):
        profile, __ = profiler.profile_job(job, small_text)
        sample = sampler.collect(job, small_text, count=1)
        features = extract_job_features(job, small_text, sample.profile, engine)
        job_id = store.put(profile, features.static)
        entries[job.name] = (job_id, profile, features)
    return store, entries


class TestPutGet:
    def test_job_id_format(self, populated):
        store, entries = populated
        job_id, __, __ = entries["wordcount-test"]
        assert job_id == "wordcount-test@small-text"

    def test_profile_roundtrip(self, populated):
        store, entries = populated
        job_id, profile, __ = entries["wordcount-test"]
        assert store.get_profile(job_id) == profile

    def test_static_roundtrip(self, populated):
        store, entries = populated
        job_id, __, features = entries["wordcount-test"]
        restored = store.get_static(job_id)
        assert restored.categorical == dict(features.static.categorical)

    def test_dynamic_row_contents(self, populated):
        store, entries = populated
        job_id, profile, __ = entries["wordcount-test"]
        dynamic = store.get_dynamic(job_id)
        assert dynamic["MAP_SIZE_SEL"] == pytest.approx(
            profile.map_profile.data_flow["MAP_SIZE_SEL"]
        )
        assert dynamic["INPUT_BYTES"] == profile.input_bytes
        assert dynamic["HAS_REDUCE"] is True

    def test_map_only_row_lacks_reduce_columns(self, populated):
        store, entries = populated
        job_id, __, __ = entries["identity-maponly"]
        dynamic = store.get_dynamic(job_id)
        assert dynamic["HAS_REDUCE"] is False
        assert "RED_SIZE_SEL" not in dynamic

    def test_membership_and_len(self, populated):
        store, entries = populated
        assert len(store) == 2
        job_id, __, __ = entries["wordcount-test"]
        assert job_id in store
        assert "nope@never" not in store

    def test_get_missing_raises(self, populated):
        store, __ = populated
        with pytest.raises(KeyError):
            store.get_profile("nope@never")
        with pytest.raises(KeyError):
            store.get_static("nope@never")

    def test_delete(self, populated):
        store, entries = populated
        job_id, __, __ = entries["wordcount-test"]
        store.delete(job_id)
        assert job_id not in store
        assert len(store) == 1

    def test_three_rows_per_job(self, populated):
        store, entries = populated
        job_id, __, __ = entries["wordcount-test"]
        for prefix in (DYNAMIC_PREFIX, STATIC_PREFIX, PROFILE_PREFIX):
            assert store.table.get(prefix + job_id) is not None


class TestNormalizers:
    def test_bounds_updated_on_put(self, populated):
        store, __ = populated
        norm = store.normalizer("map", "flow")
        assert norm.num_features == 4
        assert any(mx > mn for mn, mx in zip(norm.minimums, norm.maximums))

    def test_reduce_bounds_only_from_reduce_jobs(self, engine, profiler, sampler, maponly_job, small_text):
        store = ProfileStore()
        profile, __ = profiler.profile_job(maponly_job, small_text)
        sample = sampler.collect(maponly_job, small_text, count=1)
        features = extract_job_features(maponly_job, small_text, sample.profile, engine)
        store.put(profile, features.static)
        assert store.normalizer("reduce", "flow").num_features == 0

    def test_persisted_bounds_cached_per_generation(
        self, engine, profiler, sampler, wordcount, small_text
    ):
        from repro.observability import MetricsRegistry

        registry = MetricsRegistry()
        store = ProfileStore(registry=registry)
        profile, __ = profiler.profile_job(wordcount, small_text)
        sample = sampler.collect(wordcount, small_text, count=1)
        features = extract_job_features(wordcount, small_text, sample.profile, engine)
        store.put(profile, features.static)

        loads = registry.counter("pstorm_store_normalizer_loads_total")
        first = store.load_normalizer("map", "flow")
        assert loads.value == 1
        for __ in range(5):  # every (side, kind) shares the one cached row read
            store.load_normalizer("map", "flow")
            store.load_normalizer("reduce", "cost")
        assert loads.value == 1
        assert first.minimums == store.normalizer("map", "flow").minimums

        # A put rewrites Meta/__normalizers__ *and* bumps the generation,
        # so the next load must refetch and see the updated bounds.
        store.put(profile, features.static, job_id="wordcount-copy@small-text")
        updated = store.load_normalizer("map", "flow")
        assert loads.value == 2
        assert updated.minimums == store.normalizer("map", "flow").minimums
        assert updated.maximums == store.normalizer("map", "flow").maximums


class TestStages:
    def test_euclidean_stage_finds_self(self, populated):
        store, entries = populated
        job_id, profile, __ = entries["wordcount-test"]
        probe = profile.map_profile.data_flow_vector()
        survivors = store.euclidean_stage("map", "flow", probe, threshold=1.0)
        assert job_id in survivors

    def test_euclidean_stage_respects_candidates(self, populated):
        store, entries = populated
        job_id, profile, __ = entries["wordcount-test"]
        probe = profile.map_profile.data_flow_vector()
        survivors = store.euclidean_stage(
            "map", "flow", probe, threshold=5.0, candidates=[]
        )
        assert survivors == []

    def test_cfg_stage(self, populated):
        store, entries = populated
        wc_id, __, wc_features = entries["wordcount-test"]
        id_id, __, __ = entries["identity-maponly"]
        survivors = store.cfg_stage(
            "map", wc_features.static.map_cfg, [wc_id, id_id]
        )
        assert survivors == [wc_id]

    def test_jaccard_stage(self, populated):
        store, entries = populated
        wc_id, __, wc_features = entries["wordcount-test"]
        id_id, __, __ = entries["identity-maponly"]
        survivors = store.jaccard_stage(
            wc_features.static.map_side(), 0.5, [wc_id, id_id]
        )
        assert wc_id in survivors


class TestCustomFilters:
    def test_euclidean_filter_roundtrip(self):
        original = NormalizedEuclideanFilter(
            columns=["a", "b"], probe=[1.0, 2.0],
            minimums=[0.0, 0.0], maximums=[2.0, 4.0], threshold=0.5,
        )
        restored = deserialize_filter(serialize_filter(original))
        assert restored.columns == ["a", "b"]
        assert restored.threshold == 0.5

    def test_euclidean_filter_misaligned_rejected(self):
        with pytest.raises(ValueError):
            NormalizedEuclideanFilter(["a"], [1.0, 2.0], [0.0], [1.0], 0.5)

    def test_euclidean_filter_missing_column_fails_row(self):
        filt = NormalizedEuclideanFilter(
            columns=["a"], probe=[0.5], minimums=[0.0], maximums=[1.0], threshold=1.0
        )
        assert not filt.matches("row", {"f": {"other": 1.0}})

    def test_jaccard_filter_roundtrip(self):
        original = JaccardThresholdFilter({"MAPPER": "X"}, 0.5)
        restored = deserialize_filter(serialize_filter(original))
        assert restored.probe == {"MAPPER": "X"}

    def test_rowset_filter_strips_prefix(self):
        filt = RowKeySetFilter(["job@ds"])
        assert filt.matches("Dynamic/job@ds", {})
        assert not filt.matches("Dynamic/other@ds", {})

    def test_cfg_filter_requires_stored_cfg(self, populated):
        store, entries = populated
        __, __, wc_features = entries["wordcount-test"]
        filt = CfgEqualityFilter("RED_CFG", wc_features.static.map_cfg.to_dict())
        # Row whose RED_CFG is missing/None never matches.
        assert not filt.matches("Static/x", {"f": {"RED_CFG": None}})


class TestPushdownToggle:
    def test_results_identical_either_way(self, engine, profiler, sampler, wordcount, small_text):
        results = {}
        for pushdown in (True, False):
            store = ProfileStore(pushdown=pushdown)
            profile, __ = profiler.profile_job(wordcount, small_text)
            sample = sampler.collect(wordcount, small_text, count=1)
            features = extract_job_features(wordcount, small_text, sample.profile, engine)
            store.put(profile, features.static)
            probe = profile.map_profile.data_flow_vector()
            results[pushdown] = store.euclidean_stage("map", "flow", probe, 1.0)
        assert results[True] == results[False]
