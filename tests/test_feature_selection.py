"""Tests for information-gain feature selection and the NN baselines."""

import pytest

from repro.core.feature_selection import (
    CATEGORICAL_FEATURE_COLUMNS,
    NUMERIC_FEATURE_COLUMNS,
    NearestNeighborMatcher,
    information_gain,
    profile_numeric_vector,
    rank_features,
)
from repro.core.features import extract_job_features
from repro.core.store import ProfileStore


@pytest.fixture()
def populated(engine, profiler, sampler, wordcount, maponly_job, small_text):
    store = ProfileStore()
    samples = {}
    for job in (wordcount, maponly_job):
        profile, __ = profiler.profile_job(job, small_text)
        sample = sampler.collect(job, small_text, count=1)
        features = extract_job_features(job, small_text, sample.profile, engine)
        job_id = store.put(profile, features.static)
        samples[job_id] = sample.profile
    return store, samples


class TestInformationGain:
    def test_perfectly_predictive_feature(self):
        gain = information_gain(["a", "a", "b", "b"], ["x", "x", "y", "y"])
        assert gain == pytest.approx(1.0)

    def test_uninformative_feature(self):
        gain = information_gain(["a", "a", "a", "a"], ["x", "x", "y", "y"])
        assert gain == pytest.approx(0.0)

    def test_numeric_feature_discretized(self):
        values = [0.1, 0.2, 10.0, 11.0]
        labels = ["x", "x", "y", "y"]
        assert information_gain(values, labels, bins=4) > 0.5

    def test_empty_inputs(self):
        assert information_gain([], []) == 0.0

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            information_gain([1.0], ["a", "b"])

    def test_gain_bounded_by_label_entropy(self):
        labels = ["x", "y", "z", "x", "y", "z"]
        values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        import math
        assert information_gain(values, labels) <= math.log2(3) + 1e-9


class TestRanking:
    def test_p_features_all_numeric(self, populated):
        store, __ = populated
        ranked = rank_features(store, include_static=False)
        assert {name for name, __ in ranked} <= set(NUMERIC_FEATURE_COLUMNS)

    def test_sp_features_include_categorical_candidates(self, populated):
        store, __ = populated
        ranked = rank_features(store, include_static=True)
        names = {name for name, __ in ranked}
        assert names & set(CATEGORICAL_FEATURE_COLUMNS)

    def test_gains_descending(self, populated):
        store, __ = populated
        ranked = rank_features(store, include_static=True)
        gains = [gain for __, gain in ranked]
        assert gains == sorted(gains, reverse=True)

    def test_top_of_sp_ranking_is_numeric(self, populated):
        """The paper's observation: the generic selector saturates on the
        fine-grained numeric features, so the top-F are all numeric."""
        store, __ = populated
        ranked = rank_features(store, include_static=True)
        top = [name for name, __ in ranked[:5]]
        assert all(name in set(NUMERIC_FEATURE_COLUMNS) for name in top)


class TestNearestNeighbor:
    def test_matches_own_profile_from_exact_vector(self, populated):
        store, __ = populated
        matcher = NearestNeighborMatcher(
            store, feature_names=list(NUMERIC_FEATURE_COLUMNS)
        )
        for job_id in store.job_ids():
            answer = matcher.match(store.get_profile(job_id))
            assert answer == job_id

    def test_exclusion(self, populated):
        store, __ = populated
        matcher = NearestNeighborMatcher(
            store, feature_names=list(NUMERIC_FEATURE_COLUMNS)
        )
        job_id = store.job_ids()[0]
        answer = matcher.match(store.get_profile(job_id), exclude={job_id})
        assert answer != job_id

    def test_empty_store_returns_none(self, populated):
        __, samples = populated
        matcher = NearestNeighborMatcher(
            ProfileStore(), feature_names=list(NUMERIC_FEATURE_COLUMNS)
        )
        probe = next(iter(samples.values()))
        assert matcher.match(probe) is None

    def test_profile_numeric_vector_covers_all_columns(self, populated):
        store, __ = populated
        vector = profile_numeric_vector(store.get_profile(store.job_ids()[0]))
        assert set(vector) == set(NUMERIC_FEATURE_COLUMNS)

    def test_map_only_profile_zero_reduce_features(self, populated):
        store, __ = populated
        map_only_id = next(
            j for j in store.job_ids() if not store.get_profile(j).has_reduce
        )
        vector = profile_numeric_vector(store.get_profile(map_only_id))
        assert vector["RED_SIZE_SEL"] == 0.0
