"""Tests for the §5.2 alternative store models and §7.2 extensions."""

import pytest

from repro.core.extensions import (
    augment_with_call_graphs,
    augment_with_params,
    call_graph_signature,
    extract_callee_names,
)
from repro.core.similarity import jaccard_index
from repro.core.store_models import OpenTsdbStore, TablePerTypeStore
from repro.analysis.static_features import extract_static_features
from repro.workloads.jobs import cooccurrence_pairs_job, grep_job, word_count_job


class TestOpenTsdbStore:
    def test_put_and_assemble_vector(self):
        store = OpenTsdbStore()
        store.put_features("job1", {"MAP_SIZE_SEL": 2.0, "MAP_PAIRS_SEL": 8.0})
        store.put_features("job2", {"MAP_SIZE_SEL": 1.0, "MAP_PAIRS_SEL": 1.0})
        vector = store.feature_vector("job1", ["MAP_SIZE_SEL", "MAP_PAIRS_SEL"])
        assert vector == {"MAP_SIZE_SEL": 2.0, "MAP_PAIRS_SEL": 8.0}

    def test_one_scan_per_feature(self):
        store = OpenTsdbStore()
        names = ["A", "B", "C"]
        assert store.scans_to_build_vector(names) == 3

    def test_feature_rows_collocated_by_feature(self):
        store = OpenTsdbStore()
        store.put_features("j1", {"A": 1})
        store.put_features("j2", {"A": 2})
        keys = [k for k, __ in store.table.scan()]
        assert all(k.startswith("A,") for k in keys)


class TestTablePerTypeStore:
    def test_roundtrip(self):
        store = TablePerTypeStore()
        store.put_features("j", {"MAPPER": "M"}, {"SEL": 1.5})
        vector = store.feature_vector("j")
        assert vector == {"MAPPER": "M", "SEL": 1.5}

    def test_two_tables_double_store_objects(self):
        store = TablePerTypeStore()
        assert store.total_store_objects() == 2


class TestCallGraphs:
    def test_extracts_callee_names(self):
        names = extract_callee_names(word_count_job().mapper)
        assert "split" in names
        assert "emit" in names

    def test_non_python_callable_empty(self):
        assert extract_callee_names(len) == frozenset()

    def test_signature_is_sorted_and_stable(self):
        a = call_graph_signature(word_count_job().mapper)
        b = call_graph_signature(word_count_job().mapper)
        assert a == b
        parts = a.split(",")
        assert parts == sorted(parts)

    def test_different_helpers_different_signatures(self):
        wc = call_graph_signature(word_count_job().mapper)
        cooc = call_graph_signature(cooccurrence_pairs_job().mapper)
        assert wc != cooc

    def test_augment_with_call_graphs(self):
        job = word_count_job()
        static = extract_static_features(job)
        extended = augment_with_call_graphs(static, job)
        assert "CALLGRAPH_MAP" in extended.categorical
        assert "CALLGRAPH_RED" in extended.categorical
        assert extended.map_side()["CALLGRAPH_MAP"] == call_graph_signature(job.mapper)


class TestParamFeatures:
    def test_params_become_categorical(self):
        job = cooccurrence_pairs_job(window=4)
        static = extract_static_features(job)
        extended = augment_with_params(static, job)
        assert extended.categorical["PARAM_window"] == "4"

    def test_identical_jobs_different_params_distinguishable(self):
        job2 = cooccurrence_pairs_job(window=2)
        job5 = cooccurrence_pairs_job(window=5)
        plain2 = extract_static_features(job2)
        plain5 = extract_static_features(job5)
        assert jaccard_index(plain2.map_side(), plain5.map_side()) == 1.0

        ext2 = augment_with_params(plain2, job2)
        ext5 = augment_with_params(plain5, job5)
        assert jaccard_index(ext2.map_side(), ext5.map_side()) < 1.0

    def test_same_params_still_match(self):
        job_a = grep_job("needle")
        job_b = grep_job("needle")
        ext_a = augment_with_params(extract_static_features(job_a), job_a)
        ext_b = augment_with_params(extract_static_features(job_b), job_b)
        assert jaccard_index(ext_a.map_side(), ext_b.map_side()) == 1.0

    def test_base_features_untouched(self):
        job = grep_job("x")
        static = extract_static_features(job)
        extended = augment_with_params(static, job)
        for name, value in static.categorical.items():
            assert extended.categorical[name] == value
