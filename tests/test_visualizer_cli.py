"""Tests for the visualizer and the CLI."""

import pytest

from repro.cli import build_parser, main
from repro.hadoop import JobConfiguration
from repro.starfish.visualizer import (
    compare_phase_breakdowns,
    phase_breakdown,
    task_timeline,
)


@pytest.fixture()
def execution(engine, wordcount, small_text):
    return engine.run_job(wordcount, small_text, JobConfiguration(num_reduce_tasks=2))


class TestVisualizer:
    def test_phase_breakdown_mentions_all_phases(self, execution):
        text = phase_breakdown(execution)
        for phase in ("READ", "MAP", "COLLECT", "SHUFFLE", "REDUCE"):
            assert phase in text
        assert execution.job_name in text

    def test_phase_breakdown_totals_mode(self, execution):
        per_task = phase_breakdown(execution, per_task=True)
        totals = phase_breakdown(execution, per_task=False)
        assert "s/task" in per_task
        assert "s total" in totals

    def test_map_only_breakdown(self, engine, maponly_job, small_text):
        execution = engine.run_job(maponly_job, small_text)
        text = phase_breakdown(execution)
        assert "reduce phases" not in text

    def test_compare_breakdowns(self, engine, wordcount, small_text, execution):
        other = engine.run_job(wordcount, small_text, JobConfiguration())
        text = compare_phase_breakdowns(execution, other)
        assert "map:MAP" in text
        assert "red:SHUFFLE" in text

    def test_task_timeline_shape(self, execution, cluster):
        text = task_timeline(
            execution, cluster.total_map_slots, cluster.total_reduce_slots
        )
        assert "m" in text
        assert "r" in text
        assert "runtime" in text

    def test_timeline_rows_bounded(self, execution, cluster):
        text = task_timeline(
            execution, cluster.total_map_slots, cluster.total_reduce_slots,
            max_rows=6,
        )
        assert len(text.splitlines()) <= 8  # header + ≤6 rows + slack


class TestCli:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_jobs(self, capsys):
        assert main(["list-jobs"]) == 0
        out = capsys.readouterr().out
        assert "word-cooccurrence-pairs" in out
        assert "pigmix-l17" in out

    def test_unknown_experiment_rejected(self, capsys):
        assert main(["experiments", "fig9_9"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiments" in err

    def test_single_experiment_runs(self, capsys):
        assert main(["experiments", "fig4_6"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4.6" in out

    def test_explain_unknown_job(self, capsys):
        code = main(["explain", "nope@never", "also@never"])
        assert code == 2

    def test_seed_flag_parsed(self):
        args = build_parser().parse_args(["--seed", "7", "list-jobs"])
        assert args.seed == 7
