"""Concurrency stress tests: many threads sharing one profile store.

Satellite of the serving PR: the store-level lock added for the service
must make interleaved submit/remember traffic safe — no lost updates, no
duplicate job ids, and cache invalidation staying consistent with what
the store actually holds.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.chaos import set_default_injector
from repro.core.resilient import ResilientProfileStore
from repro.core.store import ProfileStore
from repro.observability import MetricsRegistry
from repro.serving import ServiceConfig, TuningService, cache_key_for, job_signature

THREADS = 8
WRITES_PER_THREAD = 6


@pytest.fixture(autouse=True)
def _no_ambient_chaos():
    set_default_injector(None)
    yield
    set_default_injector(None)


@pytest.fixture()
def stored(engine, profiler, sampler, wordcount, small_text):
    from repro.core.features import extract_job_features

    profile, __ = profiler.profile_job(wordcount, small_text)
    sample = sampler.collect(wordcount, small_text, count=1)
    features = extract_job_features(wordcount, small_text, sample.profile, engine)
    return profile, features.static


class TestConcurrentStore:
    def test_parallel_puts_lose_nothing(self, stored):
        profile, static = stored
        store = ResilientProfileStore(ProfileStore())
        barrier = threading.Barrier(THREADS)

        def writer(worker: int) -> list[str]:
            barrier.wait()
            return [
                store.put(profile, static, job_id=f"w{worker}-j{i}")
                for i in range(WRITES_PER_THREAD)
            ]

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            batches = list(pool.map(writer, range(THREADS)))
        ids = [job_id for batch in batches for job_id in batch]
        assert len(ids) == THREADS * WRITES_PER_THREAD
        assert len(set(ids)) == len(ids), "duplicate job ids"
        assert sorted(store.job_ids()) == sorted(ids), "lost updates"

    def test_interleaved_puts_and_scans(self, stored):
        profile, static = stored
        store = ResilientProfileStore(ProfileStore())
        stop = threading.Event()
        scan_errors: list[BaseException] = []

        def scanner() -> None:
            while not stop.is_set():
                try:
                    for job_id in store.job_ids():
                        store.get_profile(job_id)
                except BaseException as exc:  # noqa: BLE001
                    scan_errors.append(exc)
                    return

        reader = threading.Thread(target=scanner)
        reader.start()
        try:
            with ThreadPoolExecutor(max_workers=4) as pool:
                list(
                    pool.map(
                        lambda i: store.put(profile, static, job_id=f"job-{i}"),
                        range(24),
                    )
                )
        finally:
            stop.set()
            reader.join(timeout=30.0)
        assert not reader.is_alive()
        assert not scan_errors
        assert len(store) == 24


class TestConcurrentService:
    def test_submit_remember_interleaving(self, cluster, wordcount, small_text):
        """N threads mixing submits and remembers: every future resolves,
        nothing hangs, and the store's contents stay consistent."""
        service = TuningService(
            cluster=cluster,
            config=ServiceConfig(workers=4, queue_capacity=64),
            registry=MetricsRegistry(),
        )
        service.start()
        errors: list[BaseException] = []
        futures = []
        futures_lock = threading.Lock()
        barrier = threading.Barrier(THREADS)

        def client(worker: int) -> None:
            try:
                barrier.wait()
                for i in range(4):
                    if (worker + i) % 4 == 0:
                        service.remember(
                            wordcount.with_params(v=worker), small_text
                        )
                    else:
                        future = service.submit_request(
                            wordcount, small_text, tenant=f"t{worker}"
                        )
                        with futures_lock:
                            futures.append(future)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(w,)) for w in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120.0)
        assert not any(t.is_alive() for t in threads)
        assert not errors
        responses = [f.result(timeout=120.0) for f in futures]
        assert service.stop(timeout=60.0)
        assert service.hung_workers == 0
        assert all(r.status in ("ok", "failed") for r in responses)
        assert all(r.status == "ok" for r in responses)
        job_ids = service.store.job_ids()
        assert len(job_ids) == len(set(job_ids)), "duplicate job ids"

    def test_remember_then_handle_is_fresh(self, cluster, wordcount, small_text):
        """Cache-invalidation consistency: after a remember() the next
        lookup for that program must re-match against the store."""
        from repro.serving import TuningRequest

        service = TuningService(
            cluster=cluster,
            config=ServiceConfig(workers=2),
            registry=MetricsRegistry(),
        )
        key = cache_key_for(wordcount, small_text, service.cluster)
        service.handle(TuningRequest(1, "t", wordcount, small_text), now=0.0)
        assert service.cache.get(key, now=1.0) is not None
        service.remember(wordcount, small_text)
        assert service.cache.get(key, now=2.0) is None
        response = service.handle(
            TuningRequest(2, "t", wordcount, small_text), now=3.0
        )
        assert not response.cache_hit
        assert job_signature(wordcount) == key.job_signature
