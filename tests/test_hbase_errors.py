"""The HBase substrate's error hierarchy and the paths that raise it."""

import pytest

from repro.hbase import (
    HBaseCluster,
    PrefixFilter,
    RowRangeFilter,
    deserialize_filter,
    serialize_filter,
)
from repro.hbase.errors import (
    RETRYABLE_ERRORS,
    HBaseError,
    ServerUnavailableError,
    TableExistsError,
    TableNotFoundError,
    TransientError,
    UnknownColumnFamilyError,
    UnknownFilterError,
)
from repro.hbase.filters import FilterList
from repro.observability import MetricsRegistry


@pytest.fixture()
def cluster():
    return HBaseCluster(registry=MetricsRegistry())


class TestHierarchy:
    def test_every_substrate_error_is_an_hbase_error(self):
        for exc_type in (
            TableExistsError,
            TableNotFoundError,
            UnknownColumnFamilyError,
            UnknownFilterError,
            TransientError,
            ServerUnavailableError,
        ):
            assert issubclass(exc_type, HBaseError)
            assert issubclass(exc_type, Exception)

    def test_one_except_clause_catches_the_substrate(self):
        with pytest.raises(HBaseError):
            raise TransientError("blip")
        with pytest.raises(HBaseError):
            raise UnknownFilterError("nope")

    def test_retryable_set_is_exactly_the_transient_pair(self):
        assert RETRYABLE_ERRORS == (TransientError, ServerUnavailableError)
        # The permanent errors must never be retried.
        for exc_type in (TableExistsError, TableNotFoundError,
                         UnknownColumnFamilyError, UnknownFilterError):
            assert not issubclass(exc_type, RETRYABLE_ERRORS)

    def test_retryable_errors_work_in_except_clauses(self):
        caught = []
        for exc in (TransientError("a"), ServerUnavailableError("b")):
            try:
                raise exc
            except RETRYABLE_ERRORS as err:
                caught.append(err)
        assert len(caught) == 2


class TestTableLifecycleErrors:
    def test_duplicate_create_raises_table_exists(self, cluster):
        cluster.create_table("profiles", ("f",))
        with pytest.raises(TableExistsError, match="profiles"):
            cluster.create_table("profiles", ("f",))

    def test_missing_table_raises_table_not_found(self, cluster):
        with pytest.raises(TableNotFoundError):
            cluster.table("ghost")
        with pytest.raises(TableNotFoundError):
            cluster.drop_table("ghost")

    def test_undeclared_family_rejected_on_write(self, cluster):
        # Fixed-at-creation column families: the §5.1 constraint.
        table = cluster.create_table("t", ("declared",))
        with pytest.raises(UnknownColumnFamilyError, match="undeclared"):
            table.put("row", "undeclared", "q", 1)
        table.put("row", "declared", "q", 1)  # the declared one is fine


class TestFilterDeserialization:
    def test_unregistered_type_raises_unknown_filter(self):
        with pytest.raises(UnknownFilterError, match="bloom"):
            deserialize_filter({"type": "bloom", "bits": 64})

    def test_missing_type_key_raises_unknown_filter(self):
        with pytest.raises(UnknownFilterError, match="None"):
            deserialize_filter({"prefix": "map!"})

    def test_registered_filter_roundtrips(self):
        filt = PrefixFilter(prefix="map!flow!")
        restored = deserialize_filter(serialize_filter(filt))
        assert isinstance(restored, PrefixFilter)
        assert restored.matches("map!flow!job-1", {})
        assert not restored.matches("reduce!flow!job-1", {})

    def test_filter_list_roundtrips_members(self):
        filt = FilterList(
            [PrefixFilter(prefix="map!"), RowRangeFilter(start="a", stop="z")],
            mode="AND",
        )
        restored = deserialize_filter(serialize_filter(filt))
        assert isinstance(restored, FilterList)
        assert restored.mode == "AND"
        assert len(restored.filters) == 2

    def test_bad_member_inside_filter_list_surfaces(self):
        payload = {
            "type": "filter-list",
            "mode": "OR",
            "filters": [{"type": "not-a-filter"}],
        }
        with pytest.raises(UnknownFilterError):
            deserialize_filter(payload)
