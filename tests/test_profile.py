"""Unit tests for Starfish profiles and profile composition."""

import pytest

from repro.starfish.profile import (
    MAP_COST_FEATURES,
    MAP_DATA_FLOW_FEATURES,
    REDUCE_DATA_FLOW_FEATURES,
    JobProfile,
    SideProfile,
)


def _map_side(**overrides):
    data_flow = {
        "MAP_SIZE_SEL": 2.0,
        "MAP_PAIRS_SEL": 8.0,
        "COMBINE_SIZE_SEL": 0.3,
        "COMBINE_PAIRS_SEL": 0.2,
    }
    data_flow.update(overrides)
    return SideProfile(
        side="map",
        data_flow=data_flow,
        cost_factors={name: 10.0 for name in MAP_COST_FEATURES},
        statistics={"INPUT_RECORD_BYTES": 100.0, "HAS_COMBINER": 1.0},
        phase_times={"MAP": 3.0},
        num_tasks=4,
    )


def _reduce_side():
    return SideProfile(
        side="reduce",
        data_flow={"RED_SIZE_SEL": 0.6, "RED_PAIRS_SEL": 0.1},
        cost_factors={"REDUCE_CPU_COST": 500.0},
        statistics={"RECORDS_PER_GROUP": 12.0},
        phase_times={"REDUCE": 9.0},
        num_tasks=2,
    )


def _profile(name="jobA", reduce_side=True, input_bytes=1 << 30):
    return JobProfile(
        job_name=name,
        dataset_name="ds",
        input_bytes=input_bytes,
        split_bytes=64 << 20,
        num_map_tasks=16,
        num_reduce_tasks=2 if reduce_side else 0,
        map_profile=_map_side(),
        reduce_profile=_reduce_side() if reduce_side else None,
    )


class TestSideProfile:
    def test_side_validated(self):
        with pytest.raises(ValueError):
            SideProfile(
                side="weird", data_flow={}, cost_factors={},
                statistics={}, phase_times={}, num_tasks=1,
            )

    def test_missing_data_flow_rejected(self):
        with pytest.raises(ValueError):
            SideProfile(
                side="map",
                data_flow={"MAP_SIZE_SEL": 1.0},
                cost_factors={}, statistics={}, phase_times={}, num_tasks=1,
            )

    def test_data_flow_vector_order(self):
        vector = _map_side().data_flow_vector()
        assert vector == [2.0, 8.0, 0.3, 0.2]
        assert len(vector) == len(MAP_DATA_FLOW_FEATURES)

    def test_reduce_vector_order(self):
        vector = _reduce_side().data_flow_vector()
        assert vector == [0.6, 0.1]
        assert len(vector) == len(REDUCE_DATA_FLOW_FEATURES)

    def test_cost_vector_defaults_missing_to_zero(self):
        vector = _reduce_side().cost_vector()
        assert 500.0 in vector
        assert 0.0 in vector

    def test_stat_default(self):
        assert _map_side().stat("NOT_THERE", 3.3) == 3.3

    def test_roundtrip(self):
        side = _map_side()
        assert SideProfile.from_dict(side.to_dict()) == side


class TestJobProfile:
    def test_has_reduce(self):
        assert _profile().has_reduce
        assert not _profile(reduce_side=False).has_reduce

    def test_roundtrip(self):
        profile = _profile()
        restored = JobProfile.from_dict(profile.to_dict())
        assert restored == profile

    def test_map_only_roundtrip(self):
        profile = _profile(reduce_side=False)
        assert JobProfile.from_dict(profile.to_dict()) == profile


class TestComposition:
    def test_compose_takes_map_from_self_reduce_from_donor(self):
        a = _profile("jobA")
        b = _profile("jobB")
        composite = a.compose_with(b)
        assert composite.map_profile is a.map_profile
        assert composite.reduce_profile is b.reduce_profile
        assert composite.source == "composite"
        assert "jobA" in composite.job_name
        assert "jobB" in composite.job_name

    def test_compose_keeps_own_input_size(self):
        a = _profile("jobA", input_bytes=123)
        b = _profile("jobB", input_bytes=456)
        assert a.compose_with(b).input_bytes == 123

    def test_compose_inherits_donor_reducer_count(self):
        a = _profile("jobA")
        b = JobProfile(
            job_name="jobB", dataset_name="ds", input_bytes=1, split_bytes=1,
            num_map_tasks=1, num_reduce_tasks=9,
            map_profile=_map_side(), reduce_profile=_reduce_side(),
        )
        assert a.compose_with(b).num_reduce_tasks == 9
