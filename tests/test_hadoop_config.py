"""Unit tests for the 14-parameter configuration model (Table 2.1)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.hadoop.config import (
    CONFIGURATION_SPACE,
    PARAMETER_NAMES,
    JobConfiguration,
    default_configuration,
)


class TestConfigurationSpace:
    def test_has_fourteen_parameters(self):
        assert len(CONFIGURATION_SPACE) == 14

    def test_parameter_names_match_table_2_1(self):
        assert "io.sort.mb" in PARAMETER_NAMES
        assert "mapred.reduce.tasks" in PARAMETER_NAMES
        assert "mapred.compress.map.output" in PARAMETER_NAMES
        assert "mapred.job.reduce.input.buffer.percent" in PARAMETER_NAMES

    def test_defaults_match_table_2_1(self):
        config = default_configuration()
        assert config.io_sort_mb == 100
        assert config.io_sort_record_percent == pytest.approx(0.05)
        assert config.io_sort_spill_percent == pytest.approx(0.8)
        assert config.io_sort_factor == 10
        assert config.num_reduce_tasks == 1
        assert config.reduce_slowstart == pytest.approx(0.05)
        assert config.shuffle_input_buffer_percent == pytest.approx(0.7)
        assert config.shuffle_merge_percent == pytest.approx(0.66)
        assert config.inmem_merge_threshold == 1000
        assert config.reduce_input_buffer_percent == pytest.approx(0.0)
        assert config.compress_map_output is False
        assert config.compress_output is False

    def test_every_spec_clamps_its_default(self):
        for spec in CONFIGURATION_SPACE:
            assert spec.clamp(spec.default) == spec.default


class TestJobConfiguration:
    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            JobConfiguration(io_sort_mb=4)
        with pytest.raises(ValueError):
            JobConfiguration(num_reduce_tasks=0)
        with pytest.raises(ValueError):
            JobConfiguration(io_sort_spill_percent=0.99)

    def test_get_by_hadoop_name(self):
        config = JobConfiguration(io_sort_mb=128)
        assert config.get("io.sort.mb") == 128

    def test_get_unknown_name_raises(self):
        with pytest.raises(KeyError):
            JobConfiguration().get("mapred.no.such.param")

    def test_with_params_clamps(self):
        config = JobConfiguration().with_params(io_sort_mb=99999)
        assert config.io_sort_mb == 1024

    def test_with_params_preserves_others(self):
        config = JobConfiguration(num_reduce_tasks=8).with_params(io_sort_mb=64)
        assert config.num_reduce_tasks == 8
        assert config.io_sort_mb == 64

    def test_dict_round_trip(self):
        config = JobConfiguration(
            io_sort_mb=200, num_reduce_tasks=27, compress_map_output=True
        )
        assert JobConfiguration.from_dict(config.to_dict()) == config

    def test_from_dict_rejects_unknown(self):
        with pytest.raises(KeyError):
            JobConfiguration.from_dict({"bogus.param": 1})

    def test_to_dict_order_is_table_order(self):
        assert list(JobConfiguration().to_dict()) == list(PARAMETER_NAMES)

    def test_iter_params_matches_to_dict(self):
        config = JobConfiguration()
        assert dict(config.iter_params()) == config.to_dict()

    def test_hashable_value_object(self):
        assert JobConfiguration() == JobConfiguration()
        assert hash(JobConfiguration()) == hash(JobConfiguration())
        assert JobConfiguration(io_sort_mb=128) != JobConfiguration()


class TestDerivedQuantities:
    def test_sort_buffer_bytes(self):
        assert JobConfiguration(io_sort_mb=100).sort_buffer_bytes() == 100 * 1024 * 1024

    def test_record_plus_data_buffer_is_total(self):
        config = JobConfiguration(io_sort_mb=64, io_sort_record_percent=0.2)
        total = config.sort_buffer_bytes()
        assert config.record_buffer_bytes() + config.data_buffer_bytes() == total

    def test_merge_passes_zero_for_single_spill(self):
        config = JobConfiguration()
        assert config.merge_passes(0) == 0
        assert config.merge_passes(1) == 0

    def test_merge_passes_single_pass_within_factor(self):
        config = JobConfiguration(io_sort_factor=10)
        assert config.merge_passes(10) == 1
        assert config.merge_passes(2) == 1

    def test_merge_passes_grows_logarithmically(self):
        config = JobConfiguration(io_sort_factor=10)
        assert config.merge_passes(100) == 2
        assert config.merge_passes(1000) == 3

    def test_larger_factor_fewer_passes(self):
        narrow = JobConfiguration(io_sort_factor=2)
        wide = JobConfiguration(io_sort_factor=100)
        assert narrow.merge_passes(64) > wide.merge_passes(64)

    @given(st.integers(min_value=2, max_value=10_000))
    def test_merge_passes_bounds(self, spills):
        config = JobConfiguration(io_sort_factor=10)
        passes = config.merge_passes(spills)
        assert passes >= 1
        assert passes <= math.ceil(math.log2(spills))

    @given(
        st.integers(min_value=16, max_value=1024),
        st.floats(min_value=0.01, max_value=0.5),
    )
    def test_buffers_always_partition(self, mb, record_percent):
        config = JobConfiguration(io_sort_mb=mb, io_sort_record_percent=record_percent)
        assert 0 < config.record_buffer_bytes() < config.sort_buffer_bytes()
        assert config.data_buffer_bytes() > 0
