"""Tests for the tuning-as-a-service layer (repro.serving)."""

from __future__ import annotations

import pytest

from repro.chaos import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    outage_plan,
    set_default_injector,
)
from repro.observability import MetricsRegistry
from repro.serving import (
    AdmissionController,
    CacheKey,
    ResultCache,
    ServiceClosedError,
    ServiceConfig,
    ServiceOverloadError,
    TenantPolicy,
    TokenBucket,
    TuningRequest,
    TuningService,
    cache_key_for,
    job_signature,
)


@pytest.fixture(autouse=True)
def _no_ambient_chaos():
    """Serving tests control chaos explicitly; clear the process default."""
    set_default_injector(None)
    yield
    set_default_injector(None)


def _key(sig="job#abc", dataset="d1", cluster="c/15"):
    return CacheKey(job_signature=sig, dataset=dataset, cluster=cluster)


class TestJobSignature:
    def test_stable_across_calls(self, wordcount):
        assert job_signature(wordcount) == job_signature(wordcount)

    def test_differs_between_programs(self, wordcount, maponly_job):
        assert job_signature(wordcount) != job_signature(maponly_job)

    def test_params_change_signature(self, wordcount):
        assert job_signature(wordcount) != job_signature(
            wordcount.with_params(window=5)
        )

    def test_key_includes_dataset_and_cluster(self, wordcount, small_text, cluster):
        key = cache_key_for(wordcount, small_text, cluster)
        assert key.dataset == "small-text"
        assert key.cluster.endswith(f"/{cluster.num_workers}")


class TestResultCache:
    def test_hit_after_put(self):
        cache = ResultCache(registry=MetricsRegistry())
        cache.put(_key(), "answer", now=0.0)
        assert cache.get(_key(), now=1.0) == "answer"

    def test_miss_when_empty(self):
        cache = ResultCache(registry=MetricsRegistry())
        assert cache.get(_key(), now=0.0) is None

    def test_ttl_expiry_on_simulated_clock(self):
        cache = ResultCache(ttl_seconds=100.0, registry=MetricsRegistry())
        cache.put(_key(), "answer", now=0.0)
        assert cache.get(_key(), now=99.0) == "answer"
        assert cache.get(_key(), now=100.0) is None
        assert cache.stats()["expired"] == 1

    def test_lru_eviction_order(self):
        cache = ResultCache(capacity=2, registry=MetricsRegistry())
        cache.put(_key("a"), 1, now=0.0)
        cache.put(_key("b"), 2, now=0.0)
        cache.get(_key("a"), now=1.0)  # refresh "a"
        cache.put(_key("c"), 3, now=2.0)  # evicts LRU "b"
        assert cache.get(_key("a"), now=3.0) == 1
        assert cache.get(_key("b"), now=3.0) is None
        assert cache.get(_key("c"), now=3.0) == 3

    def test_invalidate_job_scoped_by_signature(self):
        cache = ResultCache(registry=MetricsRegistry())
        cache.put(_key("sig", "d1"), 1, now=0.0)
        cache.put(_key("sig", "d2"), 2, now=0.0)
        cache.put(_key("other", "d1"), 3, now=0.0)
        assert cache.invalidate_job("sig") == 2
        assert cache.get(_key("other", "d1"), now=1.0) == 3
        assert len(cache) == 1

    def test_invalidate_keeps_writer_entry(self):
        cache = ResultCache(registry=MetricsRegistry())
        keep = _key("sig", "d1")
        cache.put(keep, 1, now=0.0)
        cache.put(_key("sig", "d2"), 2, now=0.0)
        assert cache.invalidate_job("sig", keep=keep) == 1
        assert cache.get(keep, now=1.0) == 1

    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=0)
        with pytest.raises(ValueError):
            ResultCache(ttl_seconds=0.0)


class TestTokenBucket:
    def test_burst_then_empty(self):
        bucket = TokenBucket(rate_per_second=1.0, burst=2.0)
        assert bucket.try_acquire(now=0.0)
        assert bucket.try_acquire(now=0.0)
        assert not bucket.try_acquire(now=0.0)

    def test_refills_at_rate(self):
        bucket = TokenBucket(rate_per_second=0.5, burst=1.0)
        assert bucket.try_acquire(now=0.0)
        assert not bucket.try_acquire(now=1.0)
        assert bucket.try_acquire(now=2.0)

    def test_retry_after_is_exact(self):
        bucket = TokenBucket(rate_per_second=0.25, burst=1.0)
        assert bucket.try_acquire(now=0.0)
        assert bucket.retry_after(now=0.0) == pytest.approx(4.0)


class TestAdmissionController:
    def test_admits_under_watermark(self):
        gate = AdmissionController(queue_capacity=4, registry=MetricsRegistry())
        gate.admit("t", queue_depth=3, now=0.0)  # no raise

    def test_queue_full_shed_carries_hint(self):
        gate = AdmissionController(
            queue_capacity=4, shed_watermark=2, registry=MetricsRegistry()
        )
        with pytest.raises(ServiceOverloadError) as err:
            gate.admit("t", queue_depth=2, now=0.0, backlog_seconds_hint=7.5)
        assert err.value.reason == "queue-full"
        assert err.value.retry_after_seconds == pytest.approx(7.5)
        assert err.value.tenant == "t"

    def test_rate_limit_shed(self):
        gate = AdmissionController(
            queue_capacity=8,
            tenant_policies={"hot": TenantPolicy(rate_per_second=0.1, burst=1.0)},
            registry=MetricsRegistry(),
        )
        gate.admit("hot", queue_depth=0, now=0.0)
        with pytest.raises(ServiceOverloadError) as err:
            gate.admit("hot", queue_depth=0, now=0.0)
        assert err.value.reason == "rate-limited"
        assert err.value.retry_after_seconds > 0

    def test_queue_check_runs_before_rate_limit(self):
        # A shed request must not also burn a token.
        gate = AdmissionController(
            queue_capacity=1,
            tenant_policies={"t": TenantPolicy(rate_per_second=0.1, burst=1.0)},
            registry=MetricsRegistry(),
        )
        with pytest.raises(ServiceOverloadError) as err:
            gate.admit("t", queue_depth=1, now=0.0)
        assert err.value.reason == "queue-full"
        gate.admit("t", queue_depth=0, now=0.0)  # token still there

    def test_watermark_validated(self):
        with pytest.raises(ValueError):
            AdmissionController(queue_capacity=4, shed_watermark=5)


@pytest.fixture()
def service(cluster):
    svc = TuningService(
        cluster=cluster,
        config=ServiceConfig(workers=2, queue_capacity=8),
        seed=0,
        registry=MetricsRegistry(),
    )
    yield svc
    svc.stop(timeout=30.0)


class TestTuningServiceInline:
    """handle() called directly (the loadgen frontend's contract)."""

    def test_repeat_submission_hits_cache(self, service, wordcount, small_text):
        first = service.handle(
            TuningRequest(1, "t", wordcount, small_text), now=0.0
        )
        second = service.handle(
            TuningRequest(2, "t", wordcount, small_text), now=1.0
        )
        assert first.ok and not first.cache_hit
        assert second.ok and second.cache_hit
        assert second.service_seconds == pytest.approx(
            service.config.cache_hit_cost_seconds
        )
        assert second.result is first.result

    def test_remember_invalidates_matching_signature(
        self, service, wordcount, small_text
    ):
        service.handle(TuningRequest(1, "t", wordcount, small_text), now=0.0)
        assert len(service.cache) == 1
        service.remember(wordcount, small_text, now=10.0)
        assert len(service.cache) == 0
        after = service.handle(
            TuningRequest(2, "t", wordcount, small_text), now=20.0
        )
        assert not after.cache_hit

    def test_post_remember_submission_sees_profile_via_index(
        self, service, wordcount, maponly_job, small_text
    ):
        registry = service.registry
        hits = registry.counter("pstorm_matcher_index_hits_total")
        rebuilds = registry.counter("pstorm_matcher_index_rebuilds_total")

        stored = service.remember(wordcount, small_text, now=0.0)
        assert stored is not None

        response = service.handle(
            TuningRequest(1, "t", wordcount, small_text), now=1.0
        )
        assert response.ok and response.result.matched
        assert response.result.outcome.map_match.job_id == stored
        assert hits.value >= 1  # the probe ran on the indexed path
        assert rebuilds.value == 1  # first probe built the cold index

        # With the index now hot, remember() must refresh it alongside
        # the result cache: the next submission sees the new profile on
        # the indexed path without paying another rebuild scan.
        stored_late = service.remember(maponly_job, small_text, now=10.0)
        assert stored_late is not None
        hits_before = hits.value
        late = service.handle(
            TuningRequest(2, "t", maponly_job, small_text), now=20.0
        )
        assert late.ok and not late.cache_hit
        assert late.result.matched
        assert late.result.outcome.map_match.job_id == stored_late
        assert hits.value > hits_before
        assert rebuilds.value == 1  # the remember-time refresh was incremental
        for reason in ("disabled", "unavailable", "poisoned"):
            assert (
                registry.counter(
                    "pstorm_matcher_index_misses_total", labels={"reason": reason}
                ).value
                == 0
            )

    def test_degraded_results_are_not_cached(self, cluster, wordcount, small_text):
        set_default_injector(FaultInjector(outage_plan(seed=3)))
        try:
            service = TuningService(
                cluster=cluster,
                config=ServiceConfig(workers=1),
                registry=MetricsRegistry(),
            )
            # Puts survive the outage preset (scans don't): seed the
            # store so the matcher actually probes — and degrades.
            service.remember(wordcount, small_text)
            response = service.handle(
                TuningRequest(1, "t", wordcount, small_text), now=0.0
            )
            assert response.ok
            assert response.degraded
            assert len(service.cache) == 0
        finally:
            set_default_injector(None)

    def test_response_to_dict_is_jsonable(self, service, wordcount, small_text):
        import json

        response = service.handle(
            TuningRequest(1, "t", wordcount, small_text), now=0.0
        )
        payload = json.loads(json.dumps(response.to_dict()))
        assert payload["status"] == "ok"
        assert payload["result"]["job_name"] == wordcount.name


class TestTuningServiceThreaded:
    def test_end_to_end_with_cache_hits(self, service, wordcount, small_text):
        service.start()
        futures = [
            service.submit_request(wordcount, small_text, tenant="t")
            for __ in range(6)
        ]
        responses = [f.result(timeout=60.0) for f in futures]
        assert service.stop(timeout=30.0)
        assert service.hung_workers == 0
        assert all(r.ok for r in responses)
        assert sum(1 for r in responses if r.cache_hit) >= 4

    def test_closed_service_refuses(self, service, wordcount, small_text):
        with pytest.raises(ServiceClosedError):
            service.submit_request(wordcount, small_text)

    def test_rate_limited_tenant_sheds(self, cluster, wordcount, small_text):
        service = TuningService(
            cluster=cluster,
            config=ServiceConfig(
                workers=1,
                queue_capacity=8,
                tenant_policies={
                    "hot": TenantPolicy(rate_per_second=0.001, burst=1.0)
                },
            ),
            registry=MetricsRegistry(),
        )
        service.start()
        try:
            service.submit_request(wordcount, small_text, tenant="hot")
            with pytest.raises(ServiceOverloadError) as err:
                service.submit_request(wordcount, small_text, tenant="hot")
            assert err.value.reason == "rate-limited"
        finally:
            assert service.stop(timeout=30.0)

    def test_outage_degrades_without_hanging(self, cluster, wordcount, small_text):
        set_default_injector(FaultInjector(outage_plan(seed=3)))
        try:
            service = TuningService(
                cluster=cluster,
                config=ServiceConfig(workers=2, queue_capacity=8),
                registry=MetricsRegistry(),
            )
            # Seed the store (puts survive) so every submission's probe
            # hits the failing scan path and must degrade.
            service.remember(wordcount, small_text)
            service.start()
            futures = [
                service.submit_request(wordcount, small_text, tenant="t")
                for __ in range(4)
            ]
            responses = [f.result(timeout=60.0) for f in futures]
            assert service.stop(timeout=30.0)
            assert service.hung_workers == 0
            assert all(r.status in ("ok", "failed") for r in responses)
            assert any(r.degraded for r in responses)
        finally:
            set_default_injector(None)

    def test_remember_failure_is_counted_not_raised(
        self, cluster, wordcount, small_text
    ):
        # The outage preset spares puts; fail them outright instead.
        put_outage = FaultPlan(
            seed=3,
            faults=(FaultSpec(op="put", kind="unavailable", probability=1.0),),
        )
        set_default_injector(FaultInjector(put_outage))
        try:
            service = TuningService(
                cluster=cluster,
                config=ServiceConfig(workers=1),
                registry=MetricsRegistry(),
            )
            assert service.remember(wordcount, small_text) is None
        finally:
            set_default_injector(None)

    def test_stop_idempotent(self, service):
        service.start()
        assert service.stop(timeout=30.0)
        assert service.stop(timeout=30.0)

    def test_store_capacity_bounds_profiles(self, cluster, wordcount, small_text):
        service = TuningService(
            cluster=cluster,
            config=ServiceConfig(workers=1, store_capacity=1),
            registry=MetricsRegistry(),
        )
        service.remember(wordcount, small_text)
        service.remember(wordcount.with_params(v=2), small_text)
        assert len(service.store) == 1
