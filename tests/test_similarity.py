"""Unit and property tests for the similarity measures (§4.2)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.similarity import (
    DEFAULT_JACCARD_THRESHOLD,
    MinMaxNormalizer,
    default_euclidean_threshold,
    euclidean_distance,
    jaccard_index,
)


class TestJaccard:
    def test_identical_vectors(self):
        features = {"A": "x", "B": "y"}
        assert jaccard_index(features, dict(features)) == 1.0

    def test_disjoint_values(self):
        assert jaccard_index({"A": "x"}, {"A": "z"}) == 0.0

    def test_partial_agreement(self):
        a = {"A": "x", "B": "y", "C": "z", "D": "w"}
        b = {"A": "x", "B": "y", "C": "q", "D": "r"}
        assert jaccard_index(a, b) == 0.5

    def test_mismatched_names_rejected(self):
        with pytest.raises(ValueError):
            jaccard_index({"A": "x"}, {"B": "x"})

    def test_empty_vectors_match(self):
        assert jaccard_index({}, {}) == 1.0

    def test_paper_threshold(self):
        assert DEFAULT_JACCARD_THRESHOLD == 0.5

    @given(
        st.dictionaries(
            st.sampled_from(["A", "B", "C", "D", "E"]),
            st.sampled_from(["1", "2"]),
            min_size=1,
        )
    )
    def test_symmetric_and_bounded(self, features):
        other = {k: "1" for k in features}
        score = jaccard_index(features, other)
        assert 0.0 <= score <= 1.0
        assert score == jaccard_index(other, features)


class TestEuclidean:
    def test_zero_distance_to_self(self):
        assert euclidean_distance([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_known_distance(self):
        assert euclidean_distance([0.0, 0.0], [3.0, 4.0]) == 5.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            euclidean_distance([1.0], [1.0, 2.0])

    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=8))
    def test_triangle_inequality_with_origin(self, vector):
        origin = [0.0] * len(vector)
        assert euclidean_distance(vector, origin) >= 0


class TestThreshold:
    def test_formula(self):
        assert default_euclidean_threshold(4) == 1.0
        assert default_euclidean_threshold(6) == pytest.approx(math.sqrt(6) / 2)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            default_euclidean_threshold(0)

    def test_threshold_is_half_max_distance(self):
        # Normalized features live in [0,1]^n, so max distance is sqrt(n).
        for n in (1, 2, 4, 6):
            assert default_euclidean_threshold(n) == pytest.approx(math.sqrt(n) / 2)


class TestMinMaxNormalizer:
    def test_normalizes_to_unit_interval(self):
        norm = MinMaxNormalizer()
        norm.update([0.0, 10.0])
        norm.update([10.0, 30.0])
        assert norm.normalize([5.0, 20.0]) == [0.5, 0.5]
        assert norm.normalize([0.0, 10.0]) == [0.0, 0.0]
        assert norm.normalize([10.0, 30.0]) == [1.0, 1.0]

    def test_clips_out_of_range(self):
        norm = MinMaxNormalizer()
        norm.update([0.0])
        norm.update([1.0])
        assert norm.normalize([5.0]) == [1.0]
        assert norm.normalize([-5.0]) == [0.0]

    def test_degenerate_span_maps_to_zero(self):
        norm = MinMaxNormalizer()
        norm.update([7.0])
        assert norm.normalize([7.0]) == [0.0]

    def test_dimension_change_rejected(self):
        norm = MinMaxNormalizer()
        norm.update([1.0, 2.0])
        with pytest.raises(ValueError):
            norm.update([1.0])
        with pytest.raises(ValueError):
            norm.normalize([1.0, 2.0, 3.0])

    def test_roundtrip(self):
        norm = MinMaxNormalizer()
        norm.update([1.0, 5.0])
        norm.update([3.0, 2.0])
        restored = MinMaxNormalizer.from_dict(norm.to_dict())
        assert restored.minimums == norm.minimums
        assert restored.maximums == norm.maximums

    @given(
        st.lists(
            st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=3, max_size=3),
            min_size=1,
            max_size=20,
        )
    )
    def test_property_outputs_in_unit_interval(self, vectors):
        norm = MinMaxNormalizer()
        for vector in vectors:
            norm.update(vector)
        for vector in vectors:
            assert all(0.0 <= v <= 1.0 for v in norm.normalize(vector))

    @given(
        st.lists(
            st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=2),
            min_size=2,
            max_size=20,
        )
    )
    def test_property_bounds_only_grow(self, vectors):
        norm = MinMaxNormalizer()
        norm.update(vectors[0])
        previous_min = list(norm.minimums)
        previous_max = list(norm.maximums)
        for vector in vectors[1:]:
            norm.update(vector)
            assert all(a <= b for a, b in zip(norm.minimums, previous_min))
            assert all(a >= b for a, b in zip(norm.maximums, previous_max))
            previous_min = list(norm.minimums)
            previous_max = list(norm.maximums)
