"""Unit tests for datasets and input splits."""

import numpy as np
import pytest

from repro.hadoop.dataset import (
    DEFAULT_SPLIT_BYTES,
    Dataset,
    FunctionRecordSource,
)

MB = 1 << 20


def _source():
    def generate(split_index, rng):
        return [(i, f"line-{split_index}-{int(rng.integers(0, 100))}") for i in range(20)]

    return FunctionRecordSource(generate)


class TestSplitArithmetic:
    def test_num_splits_rounds_up(self):
        ds = Dataset("d", nominal_bytes=100 * MB, source=_source(), split_bytes=64 * MB)
        assert ds.num_splits == 2

    def test_exact_multiple(self):
        ds = Dataset("d", nominal_bytes=128 * MB, source=_source(), split_bytes=64 * MB)
        assert ds.num_splits == 2

    def test_last_split_short(self):
        ds = Dataset("d", nominal_bytes=100 * MB, source=_source(), split_bytes=64 * MB)
        splits = ds.splits()
        assert splits[0].nominal_bytes == 64 * MB
        assert splits[1].nominal_bytes == 36 * MB
        assert sum(s.nominal_bytes for s in splits) == ds.nominal_bytes

    def test_split_accessor_matches_splits(self):
        ds = Dataset("d", nominal_bytes=200 * MB, source=_source())
        assert ds.split(1) == ds.splits()[1]

    def test_split_out_of_range(self):
        ds = Dataset("d", nominal_bytes=64 * MB, source=_source())
        with pytest.raises(IndexError):
            ds.split(5)

    def test_default_split_size_is_64mb(self):
        assert DEFAULT_SPLIT_BYTES == 64 * MB

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            Dataset("d", nominal_bytes=0, source=_source())
        with pytest.raises(ValueError):
            Dataset("d", nominal_bytes=10, source=_source(), split_bytes=0)

    def test_paper_wikipedia_has_about_571_splits(self):
        # 35 GB at 64 MB splits: the paper reports 571 (their block layout);
        # pure arithmetic gives 560.
        ds = Dataset("wiki", nominal_bytes=35 << 30, source=_source())
        assert 540 <= ds.num_splits <= 580


class TestMaterialization:
    def test_same_split_same_records(self):
        ds = Dataset("d", nominal_bytes=256 * MB, source=_source(), seed=3)
        assert ds.materialize(2) == ds.materialize(2)

    def test_different_splits_differ(self):
        ds = Dataset("d", nominal_bytes=256 * MB, source=_source(), seed=3)
        assert ds.materialize(0) != ds.materialize(1)

    def test_seed_changes_records(self):
        a = Dataset("d", nominal_bytes=256 * MB, source=_source(), seed=1)
        b = Dataset("d", nominal_bytes=256 * MB, source=_source(), seed=2)
        assert a.materialize(0) != b.materialize(0)

    def test_empty_split_rejected(self):
        empty = FunctionRecordSource(lambda i, rng: [])
        ds = Dataset("d", nominal_bytes=64 * MB, source=empty)
        with pytest.raises(ValueError):
            ds.materialize(0)

    def test_sample_split_bytes_positive(self):
        ds = Dataset("d", nominal_bytes=64 * MB, source=_source())
        records = ds.materialize(0)
        assert ds.sample_split_bytes(records) > 0
