"""End-to-end observability: real runs produce the expected telemetry.

A fresh registry/tracer pair is injected into each instrumented
component, a wordcount runs through ``HadoopEngine`` and a full
``PStorM.submit`` cycle, and the tests assert the metric names from
``docs/observability.md`` show up with plausible values.
"""

import math

import pytest

from repro.core import PStorM, ProfileStore
from repro.hadoop import HadoopEngine
from repro.observability import SIMULATED_CLOCK, WALL_CLOCK, MetricsRegistry, Tracer


@pytest.fixture()
def registry():
    return MetricsRegistry()


@pytest.fixture()
def tracer():
    return Tracer()


class TestEngineInstrumentation:
    def test_one_span_per_task_and_phase(
        self, cluster, wordcount, small_text, registry, tracer
    ):
        engine = HadoopEngine(cluster, registry=registry, tracer=tracer)
        execution = engine.run_job(wordcount, small_text, seed=1)

        run_spans = tracer.spans("hadoop.run_job")
        assert len(run_spans) == 1
        assert run_spans[0].clock == WALL_CLOCK
        assert run_spans[0].attrs["job"] == wordcount.name

        map_spans = tracer.spans("hadoop.map_task")
        assert len(map_spans) == len(execution.map_tasks)
        reduce_spans = tracer.spans("hadoop.reduce_task")
        assert len(reduce_spans) == len(execution.reduce_tasks)
        # Task spans live on the simulated clock, inside the run_job span,
        # within the job's simulated timeline.
        for span in map_spans + reduce_spans:
            assert span.clock == SIMULATED_CLOCK
            assert span.parent_id == run_spans[0].span_id
            assert 0.0 <= span.start <= span.end <= execution.runtime_seconds + 1e-9

        (map_phase,) = tracer.spans("hadoop.phase.map")
        assert map_phase.start == 0.0
        assert map_phase.end == pytest.approx(max(s.end for s in map_spans))
        (reduce_phase,) = tracer.spans("hadoop.phase.reduce")
        assert reduce_phase.end == pytest.approx(execution.runtime_seconds)
        (shuffle_phase,) = tracer.spans("hadoop.phase.shuffle")
        assert shuffle_phase.start <= map_phase.end

    def test_engine_counters_and_histograms(
        self, cluster, wordcount, small_text, registry
    ):
        engine = HadoopEngine(cluster, registry=registry)
        execution = engine.run_job(wordcount, small_text, seed=1)

        assert registry.get("hadoop_engine_jobs_total").value == 1
        assert (
            registry.get("hadoop_engine_map_tasks_total").value
            == len(execution.map_tasks)
        )
        assert (
            registry.get("hadoop_engine_reduce_tasks_total").value
            == len(execution.reduce_tasks)
        )

        runtime_hist = registry.get("hadoop_engine_job_runtime_seconds")
        assert runtime_hist.count == 1
        assert runtime_hist.sum == pytest.approx(execution.runtime_seconds)

        map_hist = registry.get("hadoop_engine_map_task_seconds")
        assert map_hist.count == len(execution.map_tasks)
        assert map_hist.sum == pytest.approx(
            sum(t.duration for t in execution.map_tasks)
        )

    def test_scheduler_gauges(self, cluster, wordcount, small_text, registry):
        engine = HadoopEngine(cluster, registry=registry)
        execution = engine.run_job(wordcount, small_text, seed=1)

        waves = registry.get("hadoop_scheduler_map_waves")
        expected = math.ceil(len(execution.map_tasks) / cluster.total_map_slots)
        assert waves.value == expected
        occupancy = registry.get("hadoop_scheduler_map_slot_occupancy")
        assert 0.0 < occupancy.value <= 1.0 + 1e-9

    def test_measurement_cache_counters(
        self, cluster, wordcount, small_text, registry
    ):
        engine = HadoopEngine(cluster, registry=registry)
        engine.run_job(wordcount, small_text, seed=1)
        misses = registry.get("hadoop_engine_map_cache_misses_total").value
        assert misses == len(engine.representative_indices(small_text))
        assert registry.get("hadoop_engine_reduce_cache_misses_total").value == 1

        hits_before = registry.get("hadoop_engine_map_cache_hits_total").value
        engine.run_job(wordcount, small_text, seed=1)
        # The second run is served entirely from cache.
        assert registry.get("hadoop_engine_map_cache_misses_total").value == misses
        assert registry.get("hadoop_engine_map_cache_hits_total").value > hits_before
        assert registry.get("hadoop_engine_reduce_cache_hits_total").value == 1

    def test_disabled_observability_records_nothing(
        self, cluster, wordcount, small_text
    ):
        registry = MetricsRegistry(enabled=False)
        tracer = Tracer(enabled=False)
        engine = HadoopEngine(cluster, registry=registry, tracer=tracer)
        engine.run_job(wordcount, small_text, seed=1)
        assert len(registry) == 0
        assert len(tracer) == 0


class TestPStorMInstrumentation:
    @pytest.fixture()
    def pstorm(self, cluster, registry, tracer):
        engine = HadoopEngine(cluster, registry=registry, tracer=tracer)
        store = ProfileStore(registry=registry, tracer=tracer)
        return PStorM(engine, store=store, registry=registry, tracer=tracer)

    def test_submit_cycle_metrics(
        self, pstorm, wordcount, small_text, registry, tracer
    ):
        pstorm.remember(wordcount, small_text, seed=1)
        result = pstorm.submit(wordcount, small_text, seed=1)
        assert result.matched

        # One store write from remember; the submit hit stores nothing.
        assert registry.get("pstorm_store_puts_total").value == 1
        assert registry.get("pstorm_remembers_total").value == 1
        # The matcher probes the store exactly once per submission.
        assert registry.get("pstorm_matcher_jobs_total").value == 1
        assert registry.get("pstorm_matcher_matches_total").value == 1
        assert registry.get("pstorm_submissions_total").value == 1
        assert registry.get("pstorm_submission_hits_total").value == 1
        assert registry.get("pstorm_submission_misses_total") is None

        sampling = registry.get("pstorm_sampling_seconds")
        assert sampling.count == 1
        assert sampling.sum == pytest.approx(result.sampling_seconds)

        assert len(tracer.spans("pstorm.remember")) == 1
        assert len(tracer.spans("pstorm.submit")) == 1
        assert tracer.spans("pstorm.submit")[0].attrs["matched"] is True
        assert len(tracer.spans("pstorm.match_job")) == 1
        assert tracer.spans("pstorm.store.probe")
        assert tracer.spans("pstorm.store.put")

    def test_miss_path_metrics(self, pstorm, wordcount, small_text, registry):
        result = pstorm.submit(wordcount, small_text, seed=1)
        assert not result.matched
        assert registry.get("pstorm_submission_misses_total").value == 1
        assert registry.get("pstorm_matcher_no_match_total").value == 1
        # The miss path stores the collected profile.
        assert registry.get("pstorm_store_puts_total").value == 1

    def test_submission_result_carries_metrics_snapshot(
        self, pstorm, wordcount, small_text
    ):
        pstorm.remember(wordcount, small_text, seed=1)
        result = pstorm.submit(wordcount, small_text, seed=1)
        assert result.metrics is not None
        counters = result.metrics["counters"]
        assert counters["pstorm_submissions_total"] == 1.0
        assert counters["hadoop_engine_jobs_total"] >= 1.0
        assert "hadoop_engine_job_runtime_seconds" in result.metrics["histograms"]

    def test_hbase_substrate_metrics(
        self, pstorm, wordcount, small_text, registry, tracer
    ):
        pstorm.remember(wordcount, small_text, seed=1)
        pstorm.submit(wordcount, small_text, seed=1)

        assert registry.get("hbase_scans_served_total").value > 0
        scanned = registry.get("hbase_rows_scanned_total").value
        shipped = registry.get("hbase_rows_shipped_total").value
        assert scanned >= shipped > 0

        put_hist = registry.get("hbase_put_seconds", labels={"table": "Jobs"})
        assert put_hist is not None and put_hist.count > 0
        get_hist = registry.get("hbase_get_seconds", labels={"table": "Jobs"})
        assert get_hist is not None and get_hist.count > 0

        scan_spans = tracer.spans("hbase.scan")
        assert scan_spans
        for span in scan_spans:
            assert span.clock == WALL_CLOCK
            assert span.attrs["table"] == "Jobs"
            assert span.end is not None
