"""Snapshot → restore: state fidelity and a warm match index.

The regression this file pins: after ``snapshot()`` and a reopen, the
*first* probe is served from the checkpointed columnar index —
``pstorm_matcher_index_rebuilds_total`` stays 0 — and the restored
store is row-for-row identical to the original.  WAL-tail writes made
after the snapshot warm the index incrementally; anything the tail
cannot prove (a flush after the snapshot) falls back to a rebuild that
must still be *correct*, just not free.
"""

import json

import pytest

from repro.cli import _synthetic_job, main
from repro.core.matcher import ProfileMatcher
from repro.core.persistence import restore_store, snapshot_store
from repro.core.store import ProfileStore
from repro.hbase import HBaseCluster
from repro.observability import MetricsRegistry
from repro.serving.service import TuningService

from test_crash_recovery import _probe_features


def _populate(store, count, offset=0):
    for number in range(offset, offset + count):
        profile, static = _synthetic_job(number)
        store.put(profile, static, job_id=f"job-{number}@snap")


def _canonical(store):
    return json.loads(json.dumps(store.index_snapshot()))


def _metric(registry, name):
    instrument = registry.get(name)
    return 0 if instrument is None else instrument.value


class TestWarmRestore:
    def test_first_probe_after_restore_needs_no_rebuild(self, tmp_path):
        store = ProfileStore(data_dir=tmp_path, registry=MetricsRegistry())
        _populate(store, 4)
        store.match_index().ensure_fresh()
        reference = _canonical(store)
        expected = ProfileMatcher(
            store, registry=MetricsRegistry()
        ).match_job(_probe_features())
        snapshot_store(store)

        registry = MetricsRegistry()
        restored = restore_store(tmp_path, registry=registry)
        assert _canonical(restored) == reference
        outcome = ProfileMatcher(restored, registry=registry).match_job(
            _probe_features()
        )
        assert outcome == expected
        # The headline regression: checkpoint-warm, zero rebuilds.
        assert _metric(registry, "pstorm_matcher_index_rebuilds_total") == 0
        assert _metric(registry, "pstorm_match_index_checkpoint_loads_total") == 1
        assert _metric(registry, "snapshot_restores_total") == 1

    def test_wal_tail_writes_warm_without_rebuild(self, tmp_path):
        store = ProfileStore(data_dir=tmp_path, registry=MetricsRegistry())
        _populate(store, 3)
        store.snapshot()
        # Post-snapshot writes land in the WAL tails; no flush happens
        # after the checkpoint, so the tail-warm path stays provable.
        profile, static = _synthetic_job(7)
        store.put(profile, static, job_id="job-7@snap")
        store.delete("job-1@snap")
        reference = _canonical(store)

        registry = MetricsRegistry()
        restored = ProfileStore(data_dir=tmp_path, registry=registry)
        assert _canonical(restored) == reference
        indexed = ProfileMatcher(restored, registry=registry)
        scan = ProfileMatcher(
            restored, registry=MetricsRegistry(), use_index=False
        )
        probe = _probe_features()
        assert indexed.match_job(probe) == scan.match_job(probe)
        assert _metric(registry, "pstorm_matcher_index_rebuilds_total") == 0

    def test_flush_after_snapshot_falls_back_to_rebuild(self, tmp_path):
        store = ProfileStore(data_dir=tmp_path, registry=MetricsRegistry())
        _populate(store, 2)
        store.snapshot()
        _populate(store, 3, offset=2)
        store.hbase.flush_all()  # WAL tails truncated: gap unprovable
        reference = _canonical(store)

        registry = MetricsRegistry()
        restored = ProfileStore(data_dir=tmp_path, registry=registry)
        assert _canonical(restored) == reference
        indexed = ProfileMatcher(restored, registry=registry)
        scan = ProfileMatcher(
            restored, registry=MetricsRegistry(), use_index=False
        )
        probe = _probe_features()
        assert indexed.match_job(probe) == scan.match_job(probe)
        # Correctness kept, free warm-up forfeited: exactly one rebuild.
        assert _metric(registry, "pstorm_matcher_index_rebuilds_total") == 1

    def test_snapshot_requires_a_durable_store(self):
        with pytest.raises(ValueError, match="data_dir"):
            snapshot_store(ProfileStore(registry=MetricsRegistry()))


class TestDurableCluster:
    def test_cluster_reopen_preserves_tables_and_rows(self, tmp_path):
        cluster = HBaseCluster(data_dir=tmp_path, split_threshold=8)
        table = cluster.create_table("t", ("f",))
        for i in range(30):
            table.put(f"row{i:03d}", "f", "col", i)
        expected = [
            (key, row["f"]["col"]) for key, row in table.scan()
        ]
        assert len(cluster.catalog.regions_of("t")) > 1  # splits happened
        cluster.flush_all()

        reopened = HBaseCluster(data_dir=tmp_path)
        got = [
            (key, row["f"]["col"]) for key, row in reopened.table("t").scan()
        ]
        assert got == expected
        assert len(reopened.catalog.regions_of("t")) == len(cluster.catalog.regions_of("t"))

    def test_unflushed_tail_survives_reopen(self, tmp_path):
        cluster = HBaseCluster(data_dir=tmp_path)
        table = cluster.create_table("t", ("f",))
        table.put("tail-row", "f", "col", "unflushed")
        # No flush_all: the row lives only in the WAL.
        reopened = HBaseCluster(data_dir=tmp_path)
        row = reopened.table("t").get("tail-row")
        assert row["f"]["col"] == "unflushed"


class TestServiceRestore:
    def test_tuning_service_reopens_a_durable_store(self, tmp_path):
        seed = ProfileStore(data_dir=tmp_path, registry=MetricsRegistry())
        _populate(seed, 3)
        seed.snapshot()

        service = TuningService(registry=MetricsRegistry(), data_dir=tmp_path)
        assert sorted(service.store.job_ids()) == [
            f"job-{n}@snap" for n in range(3)
        ]


class TestCliSnapshot:
    def test_snapshot_round_trip_via_cli(self, tmp_path, capsys):
        data_dir = str(tmp_path / "store")
        assert main(["snapshot", "--data-dir", data_dir, "--populate", "3"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["jobs"] == 3 and first["restored_jobs"] == 0

        assert main(["snapshot", "--data-dir", data_dir]) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["restored_jobs"] == 3
        assert second["index_checkpoint_loads"] == 1
        assert second["index_rebuilds"] == 0
