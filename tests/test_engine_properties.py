"""Property-based tests over the execution engine's invariants.

Hypothesis drives random (but legal) configurations through the engine
and asserts physics-level invariants the cost model must never violate.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.hadoop import (
    Dataset,
    FunctionRecordSource,
    HadoopEngine,
    JobConfiguration,
    MapReduceJob,
    ec2_cluster,
)

MB = 1 << 20


def _lines(split_index, rng):
    words = [f"w{i}" for i in range(25)]
    return [
        (i, " ".join(words[int(rng.integers(0, 25))] for __ in range(6)))
        for i in range(60)
    ]


def _wc_map(key, line, ctx):
    for word in line.split():
        ctx.emit(word, 1)


def _wc_reduce(word, counts, ctx):
    total = 0
    for count in counts:
        total += count
        ctx.report_ops(1)
    ctx.emit(word, total)


_ENGINE = HadoopEngine(ec2_cluster())
_DATASET = Dataset("prop-text", nominal_bytes=192 * MB,
                   source=FunctionRecordSource(_lines), seed=11)
_JOB = MapReduceJob(
    name="prop-wordcount", mapper=_wc_map, reducer=_wc_reduce, combiner=_wc_reduce
)

configurations = st.builds(
    JobConfiguration,
    io_sort_mb=st.integers(min_value=16, max_value=1024),
    io_sort_record_percent=st.floats(min_value=0.01, max_value=0.5),
    io_sort_spill_percent=st.floats(min_value=0.2, max_value=0.95),
    io_sort_factor=st.integers(min_value=2, max_value=200),
    use_combiner=st.booleans(),
    compress_map_output=st.booleans(),
    num_reduce_tasks=st.integers(min_value=1, max_value=64),
    reduce_slowstart=st.floats(min_value=0.0, max_value=1.0),
    shuffle_input_buffer_percent=st.floats(min_value=0.1, max_value=0.9),
    compress_output=st.booleans(),
)


@given(config=configurations)
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_runtime_positive_and_finite(config):
    execution = _ENGINE.run_job(_JOB, _DATASET, config, seed=1)
    assert 0 < execution.runtime_seconds < 1e7


@given(config=configurations)
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_data_flow_independent_of_configuration(config):
    """Selectivities are program/data properties: no configuration may
    change the map output volumes (§4.1.1's stability premise)."""
    execution = _ENGINE.run_job(_JOB, _DATASET, config, seed=1)
    baseline = _ENGINE.run_job(_JOB, _DATASET, JobConfiguration(), seed=1)
    for got, want in zip(execution.map_tasks, baseline.map_tasks):
        assert got.map_output_bytes == want.map_output_bytes
        assert got.map_output_records == want.map_output_records


@given(config=configurations)
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_conservation_of_shuffle_volume(config):
    """Bytes leaving the map side equal bytes arriving at reducers."""
    execution = _ENGINE.run_job(_JOB, _DATASET, config, seed=1)
    sent = sum(float(t.partition_bytes.sum()) for t in execution.map_tasks)
    received = sum(t.shuffle_bytes for t in execution.reduce_tasks)
    assert received == pytest.approx(sent, rel=0.01)


@given(config=configurations)
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_runtime_at_least_map_critical_path(config):
    """No configuration can beat the map-side critical path."""
    execution = _ENGINE.run_job(_JOB, _DATASET, config, seed=1)
    slots = _ENGINE.cluster.total_map_slots
    lower_bound = sum(t.duration for t in execution.map_tasks) / slots
    assert execution.runtime_seconds >= lower_bound * 0.99


@given(
    small=st.integers(min_value=1, max_value=4),
    large=st.integers(min_value=5, max_value=30),
)
@settings(max_examples=15, deadline=None)
def test_more_data_never_faster(small, large):
    small_data = Dataset("s", nominal_bytes=small * 64 * MB,
                         source=FunctionRecordSource(_lines), seed=11)
    large_data = Dataset("l", nominal_bytes=large * 64 * MB,
                         source=FunctionRecordSource(_lines), seed=11)
    config = JobConfiguration(num_reduce_tasks=8)
    small_run = _ENGINE.run_job(_JOB, small_data, config, seed=1)
    large_run = _ENGINE.run_job(_JOB, large_data, config, seed=1)
    assert large_run.runtime_seconds > small_run.runtime_seconds


@given(config=configurations)
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_whatif_agrees_with_engine_ranking(config):
    """For any configuration, the WIF prediction from the job's own full
    profile stays within a factor-2 band of the actual runtime."""
    from repro.starfish import StarfishProfiler, WhatIfEngine

    profiler = StarfishProfiler(_ENGINE)
    profile, __ = profiler.profile_job(_JOB, _DATASET, seed=1)
    whatif = WhatIfEngine(_ENGINE.cluster)
    predicted = whatif.predict(profile, config).runtime_seconds
    actual = _ENGINE.run_job(_JOB, _DATASET, config, seed=1).runtime_seconds
    assert predicted == pytest.approx(actual, rel=1.0)
