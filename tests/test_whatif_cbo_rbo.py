"""Tests for the What-If engine, CBO, and RBO."""

import pytest

from repro.hadoop.config import JobConfiguration
from repro.starfish.cbo import CostBasedOptimizer
from repro.starfish.rbo import RuleBasedOptimizer


@pytest.fixture()
def wc_profile(profiler, wordcount, small_text):
    profile, __ = profiler.profile_job(wordcount, small_text)
    return profile


class TestWhatIf:
    def test_prediction_close_to_actual(self, engine, whatif, wc_profile, wordcount, small_text):
        config = JobConfiguration()
        predicted = whatif.predict(wc_profile, config).runtime_seconds
        actual = engine.run_job(wordcount, small_text, config).runtime_seconds
        assert predicted == pytest.approx(actual, rel=0.35)

    def test_prediction_tracks_config_changes(self, engine, whatif, wc_profile, wordcount, small_text):
        """The WIF must rank configurations like the actual executions do."""
        configs = [
            JobConfiguration(),
            JobConfiguration(num_reduce_tasks=8),
            JobConfiguration(num_reduce_tasks=8, compress_map_output=True),
            JobConfiguration(use_combiner=False),
        ]
        predictions = [whatif.predict(wc_profile, c).runtime_seconds for c in configs]
        actuals = [
            engine.run_job(wordcount, small_text, c).runtime_seconds for c in configs
        ]
        predicted_order = sorted(range(len(configs)), key=lambda i: predictions[i])
        actual_order = sorted(range(len(configs)), key=lambda i: actuals[i])
        assert predicted_order == actual_order

    def test_scaling_data_size(self, whatif, wc_profile):
        small = whatif.predict(wc_profile, JobConfiguration(), data_bytes=64 << 20)
        large = whatif.predict(wc_profile, JobConfiguration(), data_bytes=10 << 30)
        assert large.runtime_seconds > small.runtime_seconds
        assert large.num_map_tasks > small.num_map_tasks

    def test_map_only_prediction(self, profiler, whatif, maponly_job, small_text):
        profile, __ = profiler.profile_job(maponly_job, small_text)
        prediction = whatif.predict(profile, JobConfiguration())
        assert prediction.num_reduce_tasks == 0
        assert prediction.reduce_task_seconds == 0.0
        assert prediction.runtime_seconds > 0

    def test_more_reducers_smaller_reduce_tasks(self, whatif, wc_profile):
        few = whatif.predict(wc_profile, JobConfiguration(num_reduce_tasks=2))
        many = whatif.predict(wc_profile, JobConfiguration(num_reduce_tasks=16))
        assert many.reduce_task_seconds < few.reduce_task_seconds

    def test_combiner_off_increases_shuffle(self, whatif, wc_profile):
        on = whatif.predict(wc_profile, JobConfiguration(use_combiner=True))
        off = whatif.predict(wc_profile, JobConfiguration(use_combiner=False))
        assert off.reduce_phases["SHUFFLE"] > on.reduce_phases["SHUFFLE"]

    def test_phases_non_negative(self, whatif, wc_profile):
        prediction = whatif.predict(wc_profile, JobConfiguration())
        assert all(v >= 0 for v in prediction.map_phases.values())
        assert all(v >= 0 for v in prediction.reduce_phases.values())


class TestCbo:
    def test_improves_over_default(self, whatif, wc_profile):
        cbo = CostBasedOptimizer(whatif, num_samples=60, seed=3)
        result = cbo.optimize(wc_profile)
        assert result.predicted_runtime <= result.default_predicted_runtime
        assert result.predicted_speedup >= 1.0

    def test_deterministic_under_seed(self, whatif, wc_profile):
        a = CostBasedOptimizer(whatif, num_samples=40, seed=5).optimize(wc_profile)
        b = CostBasedOptimizer(whatif, num_samples=40, seed=5).optimize(wc_profile)
        assert a.best_config == b.best_config

    def test_respects_reducer_cap(self, whatif, wc_profile):
        cbo = CostBasedOptimizer(whatif, num_samples=80, max_reducers=4, seed=1)
        result = cbo.optimize(wc_profile)
        assert result.best_config.num_reduce_tasks <= 4

    def test_counts_evaluations(self, whatif, wc_profile):
        cbo = CostBasedOptimizer(
            whatif, num_samples=10, refine_rounds=1, elite=2,
            perturbations_per_elite=3, seed=0,
        )
        result = cbo.optimize(wc_profile)
        assert result.evaluations == 1 + 10 + 2 * 3

    def test_recommendation_actually_faster(self, engine, whatif, wc_profile, wordcount, small_text):
        cbo = CostBasedOptimizer(whatif, seed=2)
        result = cbo.optimize(wc_profile)
        default = engine.run_job(wordcount, small_text, JobConfiguration())
        tuned = engine.run_job(wordcount, small_text, result.best_config)
        assert tuned.runtime_seconds < default.runtime_seconds


class TestRbo:
    def test_wordcount_rules(self, cluster, sampler, wordcount, small_text):
        sample = sampler.collect(wordcount, small_text, count=1)
        decision = RuleBasedOptimizer(cluster).recommend(sample.profile)
        assert "combiner" in decision.fired_rules
        assert "reduce-tasks" in decision.fired_rules
        # 90% of 30 reduce slots.
        assert decision.config.num_reduce_tasks == 27
        # Word count's intermediate exceeds its input: compression fires.
        assert decision.config.compress_map_output is True

    def test_small_records_raise_record_percent(self, cluster, sampler, wordcount, small_text):
        sample = sampler.collect(wordcount, small_text, count=1)
        decision = RuleBasedOptimizer(cluster).recommend(sample.profile)
        assert decision.config.io_sort_record_percent > 0.05

    def test_map_only_job_skips_reducer_rule(self, cluster, sampler, maponly_job, small_text):
        sample = sampler.collect(maponly_job, small_text, count=1)
        decision = RuleBasedOptimizer(cluster).recommend(sample.profile)
        assert "reduce-tasks" not in decision.fired_rules
        assert "combiner" not in decision.fired_rules

    def test_io_sort_mb_capped(self, cluster, sampler, wordcount, small_text):
        sample = sampler.collect(wordcount, small_text, count=1)
        rbo = RuleBasedOptimizer(cluster, io_sort_mb_cap=150)
        decision = rbo.recommend(sample.profile)
        assert decision.config.io_sort_mb <= 150
