"""Tests for the GBRT matcher pipeline (Appendix A)."""

import numpy as np
import pytest

from repro.core.features import extract_job_features
from repro.core.gbrt import GbrtParams
from repro.core.gbrt_matcher import GbrtMatcher, build_training_set, pair_distances
from repro.core.store import ProfileStore


@pytest.fixture()
def populated(engine, profiler, sampler, wordcount, maponly_job, small_text):
    store = ProfileStore()
    probes = {}
    for job in (wordcount, maponly_job):
        profile, __ = profiler.profile_job(job, small_text)
        sample = sampler.collect(job, small_text, count=1)
        features = extract_job_features(job, small_text, sample.profile, engine)
        job_id = store.put(profile, features.static)
        probes[job_id] = (sample.profile, features.static)
    return store, probes


class TestPairDistances:
    def test_eight_values(self, populated):
        store, probes = populated
        job_id = store.job_ids()[0]
        profile, static = probes[job_id]
        distances = pair_distances(store, profile, static, job_id, job_id)
        assert len(distances) == 8

    def test_self_pair_is_near_perfect(self, populated):
        store, probes = populated
        wc_id = "wordcount-test@small-text"
        profile = store.get_profile(wc_id)
        static = store.get_static(wc_id)
        d = pair_distances(store, profile, static, wc_id, wc_id)
        jacc_map, eucl_ds_map, __, cfg_map = d[:4]
        assert jacc_map == 1.0
        assert eucl_ds_map == pytest.approx(0.0, abs=1e-9)
        assert cfg_map == 1.0

    def test_map_only_pair_has_zero_reduce_block(self, populated):
        store, probes = populated
        map_only = "identity-maponly@small-text"
        profile, static = probes[map_only]
        d = pair_distances(store, profile, static, map_only, None)
        assert d[4:] == [0.0, 0.0, 0.0, 0.0]


class TestTrainingSet:
    def test_shapes_align(self, populated, whatif):
        store, __ = populated
        x, y = build_training_set(store, whatif, pairs_per_job=6, seed=0)
        assert x.shape[0] == y.shape[0]
        assert x.shape[1] == 8
        assert x.shape[0] >= 2  # at least the perfect pairs

    def test_contains_zero_target_perfect_pairs(self, populated, whatif):
        store, __ = populated
        __, y = build_training_set(store, whatif, pairs_per_job=6, seed=0)
        assert y.min() == pytest.approx(0.0, abs=1e-9)

    def test_targets_non_negative(self, populated, whatif):
        store, __ = populated
        __, y = build_training_set(store, whatif, pairs_per_job=8, seed=1)
        assert (y >= 0).all()


class TestGbrtMatcher:
    def test_trained_matcher_finds_own_profile(self, populated, whatif):
        store, probes = populated
        params = GbrtParams(n_trees=120, shrinkage=0.1, distribution="laplace",
                            cv_folds=0, train_fraction=1.0, n_minobsinnode=2)
        matcher = GbrtMatcher.train(store, whatif, params, pairs_per_job=10, seed=0)
        wc_id = "wordcount-test@small-text"
        profile = store.get_profile(wc_id)
        static = store.get_static(wc_id)
        answer = matcher.match(profile, static)
        assert answer is not None
        assert answer[0] == wc_id

    def test_reduce_probe_needs_reduce_capable_donor(self, populated, whatif):
        store, probes = populated
        params = GbrtParams(n_trees=60, shrinkage=0.1, distribution="laplace",
                            cv_folds=0, train_fraction=1.0, n_minobsinnode=2)
        matcher = GbrtMatcher.train(store, whatif, params, pairs_per_job=8, seed=0)
        wc_id = "wordcount-test@small-text"
        map_only = "identity-maponly@small-text"
        profile = store.get_profile(wc_id)
        static = store.get_static(wc_id)
        # Only a map-only donor available: no composite can serve a
        # reduce-side probe.
        assert matcher.match(profile, static, candidates=[map_only]) is None

    def test_candidate_restriction_map_only_probe(self, populated, whatif):
        store, probes = populated
        params = GbrtParams(n_trees=60, shrinkage=0.1, distribution="laplace",
                            cv_folds=0, train_fraction=1.0, n_minobsinnode=2)
        matcher = GbrtMatcher.train(store, whatif, params, pairs_per_job=8, seed=0)
        wc_id = "wordcount-test@small-text"
        map_only = "identity-maponly@small-text"
        profile = store.get_profile(map_only)
        static = store.get_static(map_only)
        answer = matcher.match(profile, static, candidates=[wc_id])
        assert answer is not None
        assert answer[0] == wc_id

    def test_empty_candidates_none(self, populated, whatif):
        store, probes = populated
        params = GbrtParams(n_trees=30, shrinkage=0.1, cv_folds=0,
                            train_fraction=1.0, n_minobsinnode=2)
        matcher = GbrtMatcher.train(store, whatif, params, pairs_per_job=6, seed=0)
        wc_id = "wordcount-test@small-text"
        answer = matcher.match(
            store.get_profile(wc_id), store.get_static(wc_id), candidates=[]
        )
        assert answer is None


class TestBatchParity:
    def test_batched_blocks_equal_scalar_reference(self, populated):
        # match() scores donors through the vectorized block builders;
        # pair_distances keeps the scalar ones.  They must agree bit for
        # bit on every (probe, donor) combination in the store.
        from repro.core.gbrt_matcher import _map_block, _reduce_block

        store, probes = populated
        matcher = GbrtMatcher(store=store, model=None)
        job_ids = sorted(store.job_ids())
        # match() only ever asks for reduce blocks of reduce-capable
        # donors — same restriction here.
        reduce_ids = [j for j in job_ids if matcher._cache.profiles[j].has_reduce]
        assert reduce_ids  # the fixture stores at least wordcount
        for probe_id, (profile, static) in probes.items():
            map_batch = matcher._map_blocks_batch(profile, static, job_ids)
            reduce_batch = matcher._reduce_blocks_batch(profile, static, reduce_ids)
            for donor in job_ids:
                assert map_batch[donor] == _map_block(
                    matcher._cache, profile, static, donor
                )
            for donor in reduce_ids:
                assert reduce_batch[donor] == _reduce_block(
                    matcher._cache, profile, static, donor
                )
