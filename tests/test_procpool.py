"""Tests for the multi-process serving backend (repro.serving.procpool).

The headline property is backend parity: a one-at-a-time request
sequence served by ``backend="processes"`` must produce responses
byte-identical (modulo real wall-clock wait) to the thread backend,
because the parent completes every result through the same response
helpers and the workers probe a published snapshot equal to the parent
store.  Around it: chaos worker-kill + respawn completing every request,
spawn-failure containment, clean shutdown with provably unlinked shm
segments, and in-process ``WorkerRuntime`` units.
"""

from __future__ import annotations

import multiprocessing.shared_memory as shared_memory
import time

import pytest

from repro.chaos import FaultInjector, set_default_injector, worker_kill_plan
from repro.core.shm_index import SharedIndexPublisher
from repro.core.store import ProfileStore
from repro.observability import MetricsRegistry
from repro.serving import (
    ServiceClosedError,
    ServiceConfig,
    TuningService,
    WorkerRuntime,
)

pytestmark = pytest.mark.filterwarnings(
    "ignore:overflow encountered in divide"
)


@pytest.fixture(autouse=True)
def _no_ambient_chaos():
    set_default_injector(None)
    yield
    set_default_injector(None)


def _service(cluster, backend, registry, **overrides):
    defaults = dict(workers=2, queue_capacity=32, backend=backend)
    defaults.update(overrides)
    return TuningService(
        cluster=cluster,
        config=ServiceConfig(**defaults),
        seed=0,
        registry=registry,
    )


def _normalized(response):
    """Wire dict with the wall-clock-dependent fields zeroed."""
    payload = response.to_dict()
    payload["wait_seconds"] = 0.0
    payload["request_id"] = 0
    return payload


def _segment_gone(name):
    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return True
    segment.close()
    return False


def _run_scenario(service, wordcount, maponly_job, small_text):
    """One mixed sequence: misses, a hit, a remember-invalidated re-miss."""
    responses = []
    for job in (wordcount, wordcount, maponly_job):
        responses.append(
            service.submit_request(job, small_text, tenant="t").result(
                timeout=120.0
            )
        )
    service.remember(wordcount, small_text)
    responses.append(
        service.submit_request(wordcount, small_text, tenant="t").result(
            timeout=120.0
        )
    )
    return responses


class TestBackendParity:
    def test_processes_match_threads_bit_for_bit(
        self, cluster, wordcount, maponly_job, small_text
    ):
        threads = _service(cluster, "threads", MetricsRegistry())
        try:
            threads.start()
            expected = _run_scenario(
                threads, wordcount, maponly_job, small_text
            )
        finally:
            assert threads.stop(timeout=60.0)

        proc_registry = MetricsRegistry()
        processes = _service(cluster, "processes", proc_registry)
        try:
            processes.start()
            actual = _run_scenario(
                processes, wordcount, maponly_job, small_text
            )
        finally:
            assert processes.stop(timeout=60.0)

        assert [_normalized(r) for r in actual] == [
            _normalized(r) for r in expected
        ]
        # Same cache economics, not just the same payloads: miss, hit,
        # miss, then the remember-invalidated re-miss.
        assert [r.cache_hit for r in actual] == [False, True, False, False]
        # The second miss's profile travelled back through the outbox and
        # landed in the parent's authoritative store.
        assert (
            proc_registry.counter("serving_outbox_profiles_total").value >= 1
        )

    def test_remember_republishes_for_workers(
        self, cluster, wordcount, small_text
    ):
        registry = MetricsRegistry()
        service = _service(cluster, "processes", registry, workers=1)
        try:
            service.start()
            generation = service._procpool._publisher.published_generation
            stored = service.remember(wordcount, small_text)
            assert stored is not None
            assert (
                service._procpool._publisher.published_generation > generation
            )
            response = service.submit_request(
                wordcount, small_text, tenant="t"
            ).result(timeout=120.0)
            assert response.ok and response.result.matched
            assert response.result.outcome.map_match.job_id == stored
        finally:
            assert service.stop(timeout=60.0)


class TestWorkerKill:
    def test_killed_worker_respawns_and_all_requests_complete(
        self, cluster, wordcount, maponly_job, small_text
    ):
        registry = MetricsRegistry()
        service = _service(cluster, "processes", registry)
        injector = FaultInjector(worker_kill_plan(at=1), registry=registry)
        try:
            service.start()
            service._procpool._injector = injector
            jobs = [wordcount, maponly_job, wordcount.with_params(round=2)]
            responses = [
                service.submit_request(job, small_text, tenant="t").result(
                    timeout=120.0
                )
                for job in jobs
            ]
        finally:
            assert service.stop(timeout=60.0)
        # Every request completed ok — including the one whose dispatch
        # triggered the SIGKILL (re-dispatched to the replacement).
        assert [r.status for r in responses] == ["ok"] * 3
        assert registry.counter("serving_worker_kills_total").value == 1
        assert registry.counter("serving_worker_respawns_total").value == 1
        assert registry.counter("serving_worker_spawns_total").value == 3
        assert injector.summary() == {"dispatch/kill": 1}


class TestSpawnFailure:
    def test_boot_failure_fails_requests_without_hanging(
        self, cluster, wordcount, small_text, monkeypatch
    ):
        # Fork inherits the patched module state, so every child's boot
        # raises before it can serve.
        def _refuse(*args, **kwargs):
            raise RuntimeError("synthetic boot failure")

        monkeypatch.setattr(
            "repro.serving.procpool.WorkerRuntime", _refuse
        )
        registry = MetricsRegistry()
        service = _service(cluster, "processes", registry, workers=1)
        try:
            service.start()
            response = service.submit_request(
                wordcount, small_text, tenant="t"
            ).result(timeout=60.0)
            assert response.status == "failed"
            assert "RuntimeError" in response.error
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if registry.counter(
                    "serving_worker_spawn_errors_total"
                ).value:
                    break
                time.sleep(0.02)
            assert (
                registry.counter("serving_worker_spawn_errors_total").value
                == 1
            )
            # The slot stays dead (a worker that cannot boot must not
            # respawn-loop); later requests fail fast.
            later = service.submit_request(
                wordcount, small_text, tenant="t"
            ).result(timeout=60.0)
            assert later.status == "failed"
        finally:
            assert service.stop(timeout=60.0)
        assert registry.counter("serving_worker_respawns_total").value == 0


class TestShutdown:
    def test_stop_unlinks_every_segment(self, cluster, wordcount, small_text):
        service = _service(cluster, "processes", MetricsRegistry())
        service.start()
        publisher = service._procpool._publisher
        names = set(publisher.segment_names())
        names.add(publisher.ctrl_name)
        response = service.submit_request(
            wordcount, small_text, tenant="t"
        ).result(timeout=120.0)
        assert response.ok
        names.update(publisher.segment_names())
        assert service.stop(timeout=60.0)
        leaked = sorted(name for name in names if not _segment_gone(name))
        assert leaked == []
        with pytest.raises(ServiceClosedError):
            service.submit_request(wordcount, small_text, tenant="t")


class TestWorkerRuntime:
    """The worker's serving core, driven in-process for coverage."""

    @pytest.fixture()
    def published(self):
        store = ProfileStore(registry=MetricsRegistry())
        publisher = SharedIndexPublisher(store, registry=MetricsRegistry())
        publisher.publish()
        yield store, publisher
        publisher.close()

    def test_single_task_returns_wire_payload(
        self, published, cluster, wordcount, small_text
    ):
        __, publisher = published
        runtime = WorkerRuntime(publisher.ctrl_name, cluster)
        try:
            entry = runtime.serve(
                {
                    "request_id": 7,
                    "job": wordcount,
                    "dataset": small_text,
                    "config": None,
                    "seed": 0,
                }
            )
            generation = runtime.proxy.view_generation
        finally:
            runtime.close()
        assert entry["request_id"] == 7 and entry["ok"]
        assert entry["result"]["job_name"] == wordcount.name
        # The miss-path profile write rode the outbox, not the store.
        assert len(entry["outbox"]) == 1
        assert entry["outbox"][0][0] == entry["result"]["profile_stored_as"]
        assert entry["generation"] == generation >= 0

    def test_batch_task_serves_every_item(
        self, published, cluster, wordcount, maponly_job, small_text
    ):
        __, publisher = published
        runtime = WorkerRuntime(publisher.ctrl_name, cluster)
        try:
            payload = runtime.serve(
                {
                    "batch": [
                        {
                            "request_id": 1,
                            "job": wordcount,
                            "dataset": small_text,
                        },
                        {
                            "request_id": 2,
                            "job": maponly_job,
                            "dataset": small_text,
                        },
                    ]
                }
            )
        finally:
            runtime.close()
        entries = payload["batch"]
        assert [e["request_id"] for e in entries] == [1, 2]
        assert all(e["ok"] for e in entries)
        # Exactly the miss-path writes ride the outbox (a later batch
        # item may match an earlier item's fresh local profile).
        stored = [
            e["result"]["profile_stored_as"]
            for e in entries
            if e["result"]["profile_stored_as"]
        ]
        assert [job_id for job_id, __, __ in payload["outbox"]] == stored
        assert stored  # at least the first item was a genuine miss

    def test_failure_entry_uses_thread_backend_error_format(
        self, published, cluster, small_text
    ):
        __, publisher = published
        runtime = WorkerRuntime(publisher.ctrl_name, cluster)
        try:
            entry = runtime.serve(
                {
                    "request_id": 3,
                    "job": None,  # no such job: the pipeline raises
                    "dataset": small_text,
                }
            )
        finally:
            runtime.close()
        assert not entry["ok"] and entry["result"] is None
        # "TypeName: message" — exactly what _failure_response expects.
        error_type = entry["error"].split(":", 1)[0]
        assert error_type.isidentifier() and error_type.endswith("Error")
