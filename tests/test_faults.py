"""Tests for failure injection and speculative execution."""

import numpy as np
import pytest

from repro.hadoop.faults import FaultModel, schedule_with_faults


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


class TestFaultModel:
    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            FaultModel(task_failure_probability=1.0)
        with pytest.raises(ValueError):
            FaultModel(task_failure_probability=-0.1)

    def test_attempts_validated(self):
        with pytest.raises(ValueError):
            FaultModel(max_attempts=0)


class TestScheduleWithFaults:
    def test_no_failures_matches_list_schedule(self, rng):
        model = FaultModel(task_failure_probability=0.0, speculative_execution=False)
        result = schedule_with_faults([2.0] * 6, 3, model, rng)
        assert result.makespan == pytest.approx(4.0)
        assert result.failures == 0
        assert result.wasted_seconds == 0.0

    def test_failures_inflate_makespan(self, rng):
        durations = [5.0] * 40
        clean = schedule_with_faults(
            durations, 4,
            FaultModel(task_failure_probability=0.0, speculative_execution=False),
            np.random.default_rng(1),
        )
        faulty = schedule_with_faults(
            durations, 4,
            FaultModel(task_failure_probability=0.3, speculative_execution=False),
            np.random.default_rng(1),
        )
        assert faulty.failures > 0
        assert faulty.makespan > clean.makespan
        assert faulty.wasted_seconds > 0

    def test_speculation_trims_stragglers(self):
        # One 10x straggler among uniform tasks.
        durations = [1.0] * 20 + [10.0]
        model_on = FaultModel(task_failure_probability=0.0, speculative_execution=True)
        model_off = FaultModel(task_failure_probability=0.0, speculative_execution=False)
        with_spec = schedule_with_faults(durations, 4, model_on, np.random.default_rng(2))
        without = schedule_with_faults(durations, 4, model_off, np.random.default_rng(2))
        assert with_spec.speculative_attempts == 1
        assert with_spec.makespan < without.makespan

    def test_empty_population(self, rng):
        result = schedule_with_faults([], 4, FaultModel(), rng)
        assert result.makespan == 0.0
        assert result.finish_times == ()

    def test_zero_slots_rejected(self, rng):
        with pytest.raises(ValueError):
            schedule_with_faults([1.0], 0, FaultModel(), rng)

    def test_bounded_attempts_terminate(self):
        # Even with a near-certain failure probability the forced final
        # attempt keeps the makespan finite and defined.
        model = FaultModel(task_failure_probability=0.99, max_attempts=3,
                           speculative_execution=False)
        result = schedule_with_faults([1.0] * 5, 2, model, np.random.default_rng(3))
        assert result.makespan > 0
        assert result.failures <= 5 * 2  # at most (max_attempts-1) per task

    def test_deterministic_under_seed(self):
        model = FaultModel(task_failure_probability=0.2)
        a = schedule_with_faults([3.0] * 10, 2, model, np.random.default_rng(7))
        b = schedule_with_faults([3.0] * 10, 2, model, np.random.default_rng(7))
        assert a == b


class TestEngineIntegration:
    def test_run_job_with_faults(self, engine, wordcount, small_text):
        from repro.hadoop import FaultModel

        model = FaultModel(task_failure_probability=0.15)
        execution, faulty_map, faulty_reduce = engine.run_job_with_faults(
            wordcount, small_text, fault_model=model, seed=1
        )
        clean = engine.run_job(wordcount, small_text, seed=1)
        assert execution.runtime_seconds >= clean.runtime_seconds
        assert faulty_reduce is not None

    def test_map_only_job_no_reduce_schedule(self, engine, maponly_job, small_text):
        execution, __, faulty_reduce = engine.run_job_with_faults(
            maponly_job, small_text, seed=1
        )
        assert faulty_reduce is None

    def test_faulty_run_does_not_perturb_later_clean_runs(
        self, cluster, wordcount, small_text
    ):
        """Regression: run_job_with_faults inflates its own execution's
        runtime in place; that must never leak into the engine's
        measurement caches and taint subsequent clean runs."""
        from repro.hadoop import FaultModel, HadoopEngine

        cold = HadoopEngine(cluster).run_job(wordcount, small_text, seed=3)

        engine = HadoopEngine(cluster)
        faulty, __, __ = engine.run_job_with_faults(
            wordcount, small_text,
            fault_model=FaultModel(task_failure_probability=0.2), seed=3,
        )
        assert faulty.runtime_seconds >= cold.runtime_seconds
        warm = engine.run_job(wordcount, small_text, seed=3)

        assert warm.runtime_seconds == cold.runtime_seconds
        assert warm.counters == cold.counters
        assert [t.duration for t in warm.map_tasks] == [
            t.duration for t in cold.map_tasks
        ]
        assert [t.duration for t in warm.reduce_tasks] == [
            t.duration for t in cold.reduce_tasks
        ]
