"""Tests for failure injection and speculative execution."""

import numpy as np
import pytest

from repro.hadoop.faults import FaultModel, schedule_with_faults


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


class TestFaultModel:
    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            FaultModel(task_failure_probability=1.0)
        with pytest.raises(ValueError):
            FaultModel(task_failure_probability=-0.1)

    def test_attempts_validated(self):
        with pytest.raises(ValueError):
            FaultModel(max_attempts=0)

    def test_wasted_fraction_validated(self):
        with pytest.raises(ValueError):
            FaultModel(wasted_fraction=-0.1)
        with pytest.raises(ValueError):
            FaultModel(wasted_fraction=1.1)
        # Both endpoints are legal: free failures and total loss.
        FaultModel(wasted_fraction=0.0)
        FaultModel(wasted_fraction=1.0)

    def test_speculation_threshold_validated(self):
        with pytest.raises(ValueError):
            FaultModel(speculation_threshold=0.0)
        with pytest.raises(ValueError):
            FaultModel(speculation_threshold=-1.5)


class TestScheduleWithFaults:
    def test_no_failures_matches_list_schedule(self, rng):
        model = FaultModel(task_failure_probability=0.0, speculative_execution=False)
        result = schedule_with_faults([2.0] * 6, 3, model, rng)
        assert result.makespan == pytest.approx(4.0)
        assert result.failures == 0
        assert result.wasted_seconds == 0.0

    def test_failures_inflate_makespan(self, rng):
        durations = [5.0] * 40
        clean = schedule_with_faults(
            durations, 4,
            FaultModel(task_failure_probability=0.0, speculative_execution=False),
            np.random.default_rng(1),
        )
        faulty = schedule_with_faults(
            durations, 4,
            FaultModel(task_failure_probability=0.3, speculative_execution=False),
            np.random.default_rng(1),
        )
        assert faulty.failures > 0
        assert faulty.makespan > clean.makespan
        assert faulty.wasted_seconds > 0

    def test_speculation_trims_stragglers(self):
        # One 10x straggler among uniform tasks.
        durations = [1.0] * 20 + [10.0]
        model_on = FaultModel(task_failure_probability=0.0, speculative_execution=True)
        model_off = FaultModel(task_failure_probability=0.0, speculative_execution=False)
        with_spec = schedule_with_faults(durations, 4, model_on, np.random.default_rng(2))
        without = schedule_with_faults(durations, 4, model_off, np.random.default_rng(2))
        assert with_spec.speculative_attempts == 1
        assert with_spec.makespan < without.makespan

    def test_empty_population(self, rng):
        result = schedule_with_faults([], 4, FaultModel(), rng)
        assert result.makespan == 0.0
        assert result.finish_times == ()

    def test_zero_slots_rejected(self, rng):
        with pytest.raises(ValueError):
            schedule_with_faults([1.0], 0, FaultModel(), rng)

    def test_bounded_attempts_terminate(self):
        # Even with a near-certain failure probability the forced final
        # attempt keeps the makespan finite and defined.
        model = FaultModel(task_failure_probability=0.99, max_attempts=3,
                           speculative_execution=False)
        result = schedule_with_faults([1.0] * 5, 2, model, np.random.default_rng(3))
        assert result.makespan > 0
        assert result.failures <= 5 * 2  # at most (max_attempts-1) per task

    def test_deterministic_under_seed(self):
        model = FaultModel(task_failure_probability=0.2)
        a = schedule_with_faults([3.0] * 10, 2, model, np.random.default_rng(7))
        b = schedule_with_faults([3.0] * 10, 2, model, np.random.default_rng(7))
        assert a == b


class TestScheduleRegressions:
    """Fixed-seed golden values and structural invariants.

    The golden numbers pin the exact schedule a seed produces; any change
    to the failure/speculation arithmetic shows up as a diff here rather
    than as a silent drift in every experiment built on top.
    """

    def test_golden_schedule_with_failures(self):
        model = FaultModel(
            task_failure_probability=0.25, wasted_fraction=0.5,
            speculative_execution=False,
        )
        result = schedule_with_faults(
            [4.0, 2.0, 6.0, 3.0, 5.0], 2, model, np.random.default_rng(42)
        )
        assert result.finish_times == pytest.approx((4.0, 2.0, 8.0, 7.0, 14.5))
        assert result.makespan == pytest.approx(14.5)
        assert result.failures == 1
        assert result.speculative_attempts == 0
        assert result.wasted_seconds == pytest.approx(2.5)

    def test_golden_schedule_with_speculation(self):
        model = FaultModel(
            task_failure_probability=0.1, wasted_fraction=0.25,
            speculative_execution=True, speculation_threshold=1.5,
        )
        result = schedule_with_faults(
            [1.0] * 8 + [9.0], 3, model, np.random.default_rng(7)
        )
        assert result.finish_times == pytest.approx(
            (1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 3.25, 3.0, 3.0)
        )
        assert result.makespan == pytest.approx(3.25)
        assert result.failures == 1
        assert result.speculative_attempts == 1
        assert result.wasted_seconds == pytest.approx(1.25)

    @pytest.mark.parametrize("seed", [0, 1, 17])
    def test_structural_invariants(self, seed):
        durations = [float(d) for d in range(1, 13)]
        model = FaultModel(task_failure_probability=0.3)
        result = schedule_with_faults(
            durations, 4, model, np.random.default_rng(seed)
        )
        # One finish time per task, and the makespan is their maximum.
        assert len(result.finish_times) == len(durations)
        assert result.makespan == pytest.approx(max(result.finish_times))
        assert all(t > 0 for t in result.finish_times)
        assert result.failures >= 0
        assert result.wasted_seconds >= 0

    def test_no_failures_no_speculation_wastes_nothing(self, rng):
        # Speculation wastes backup time even at p=0 (the backup runs and
        # loses the race), so the zero-waste invariant needs it off.
        model = FaultModel(
            task_failure_probability=0.0, speculative_execution=False
        )
        result = schedule_with_faults([2.0, 4.0, 8.0], 2, model, rng)
        assert result.wasted_seconds == 0.0
        assert result.failures == 0
        assert result.speculative_attempts == 0


class TestEngineIntegration:
    def test_run_job_with_faults(self, engine, wordcount, small_text):
        from repro.hadoop import FaultModel

        model = FaultModel(task_failure_probability=0.15)
        execution, faulty_map, faulty_reduce = engine.run_job_with_faults(
            wordcount, small_text, fault_model=model, seed=1
        )
        clean = engine.run_job(wordcount, small_text, seed=1)
        assert execution.runtime_seconds >= clean.runtime_seconds
        assert faulty_reduce is not None

    def test_map_only_job_no_reduce_schedule(self, engine, maponly_job, small_text):
        execution, __, faulty_reduce = engine.run_job_with_faults(
            maponly_job, small_text, seed=1
        )
        assert faulty_reduce is None

    def test_faulty_run_does_not_perturb_later_clean_runs(
        self, cluster, wordcount, small_text
    ):
        """Regression: run_job_with_faults inflates its own execution's
        runtime in place; that must never leak into the engine's
        measurement caches and taint subsequent clean runs."""
        from repro.hadoop import FaultModel, HadoopEngine

        cold = HadoopEngine(cluster).run_job(wordcount, small_text, seed=3)

        engine = HadoopEngine(cluster)
        faulty, __, __ = engine.run_job_with_faults(
            wordcount, small_text,
            fault_model=FaultModel(task_failure_probability=0.2), seed=3,
        )
        assert faulty.runtime_seconds >= cold.runtime_seconds
        warm = engine.run_job(wordcount, small_text, seed=3)

        assert warm.runtime_seconds == cold.runtime_seconds
        assert warm.counters == cold.counters
        assert [t.duration for t in warm.map_tasks] == [
            t.duration for t in cold.map_tasks
        ]
        assert [t.duration for t in warm.reduce_tasks] == [
            t.duration for t in cold.reduce_tasks
        ]
