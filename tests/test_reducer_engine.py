"""Unit tests for reduce-task measurement and simulation."""

import numpy as np
import pytest

from repro.hadoop.config import JobConfiguration
from repro.hadoop.mapper_engine import measure_map_sample
from repro.hadoop.reducer_engine import (
    ReduceSampleMeasurement,
    measure_reduce_from_pairs,
    simulate_reduce_task,
)


@pytest.fixture()
def wc_measurement(engine, wordcount, small_text):
    map_measurement = measure_map_sample(wordcount, small_text, 0)
    return measure_reduce_from_pairs(
        wordcount, list(map_measurement.intermediate_pairs(combined=True))
    )


def _simulate(cluster, measurement, config, shuffle_bytes=50 << 20, shuffle_records=100_000):
    return simulate_reduce_task(
        task_id=1,
        partition=0,
        shuffle_bytes=float(shuffle_bytes),
        shuffle_records=float(shuffle_records),
        measurement=measurement,
        num_map_tasks=16,
        config=config,
        node=cluster.workers[0],
        rng=np.random.default_rng(0),
    )


class TestReduceMeasurement:
    def test_wordcount_one_output_per_group(self, wc_measurement):
        assert wc_measurement.output_records_per_group == pytest.approx(1.0)
        assert wc_measurement.sample_groups > 0

    def test_selectivities_below_one_for_aggregation(self, wc_measurement):
        assert wc_measurement.reduce_records_sel <= 1.0
        assert wc_measurement.reduce_size_sel <= 1.0

    def test_empty_pairs_yield_zero_measurement(self, wordcount):
        m = measure_reduce_from_pairs(wordcount, [])
        assert m.sample_groups == 0
        assert m.reduce_records_sel == 0.0

    def test_map_only_job_zero_measurement(self, maponly_job):
        m = measure_reduce_from_pairs(maponly_job, [("a", 1)])
        assert m.sample_input_records == 0


class TestReduceSimulation:
    def test_output_follows_groups(self, cluster, wc_measurement):
        task = _simulate(cluster, wc_measurement, JobConfiguration())
        assert task.output_records == pytest.approx(task.reduce_input_groups, rel=0.01)
        assert task.reduce_input_groups <= task.reduce_input_records

    def test_shuffle_time_scales_with_bytes(self, cluster, wc_measurement):
        small = _simulate(cluster, wc_measurement, JobConfiguration(), shuffle_bytes=10 << 20)
        large = _simulate(cluster, wc_measurement, JobConfiguration(), shuffle_bytes=1 << 30)
        assert large.phase_times["SHUFFLE"] > small.phase_times["SHUFFLE"]

    def test_overflow_triggers_disk_merges(self, cluster, wc_measurement):
        # 300 MB heap * 0.7 buffer = 210 MB; shuffle 2 GB overflows.
        task = _simulate(cluster, wc_measurement, JobConfiguration(), shuffle_bytes=2 << 30)
        assert task.disk_merge_passes >= 1
        in_memory = _simulate(cluster, wc_measurement, JobConfiguration(), shuffle_bytes=20 << 20)
        assert in_memory.disk_merge_passes == 0

    def test_bigger_shuffle_buffer_less_sort_io(self, cluster, wc_measurement):
        small_buffer = _simulate(
            cluster, wc_measurement,
            JobConfiguration(shuffle_input_buffer_percent=0.1),
            shuffle_bytes=1 << 30,
        )
        big_buffer = _simulate(
            cluster, wc_measurement,
            JobConfiguration(shuffle_input_buffer_percent=0.9),
            shuffle_bytes=1 << 30,
        )
        assert big_buffer.phase_times["SORT"] < small_buffer.phase_times["SORT"]

    def test_output_compression_shrinks_write(self, cluster, wc_measurement):
        plain = _simulate(cluster, wc_measurement, JobConfiguration())
        packed = _simulate(cluster, wc_measurement, JobConfiguration(compress_output=True))
        assert packed.materialized_bytes < plain.materialized_bytes

    def test_map_compression_adds_decompress_cost_but_smaller_wire(self, cluster, wc_measurement):
        # Same wire bytes: with compression they decode to more plain data.
        compressed = _simulate(
            cluster, wc_measurement, JobConfiguration(compress_map_output=True)
        )
        plain = _simulate(cluster, wc_measurement, JobConfiguration())
        assert compressed.phase_times["SHUFFLE"] > plain.phase_times["SHUFFLE"]

    def test_phases_non_negative(self, cluster, wc_measurement):
        task = _simulate(cluster, wc_measurement, JobConfiguration())
        assert all(v >= 0 for v in task.phase_times.values())

    def test_reduce_input_buffer_cuts_final_read(self, cluster, wc_measurement):
        without = _simulate(
            cluster, wc_measurement,
            JobConfiguration(reduce_input_buffer_percent=0.0),
            shuffle_bytes=1 << 30,
        )
        with_retain = _simulate(
            cluster, wc_measurement,
            JobConfiguration(reduce_input_buffer_percent=0.8),
            shuffle_bytes=1 << 30,
        )
        assert with_retain.phase_times["SORT"] <= without.phase_times["SORT"]
