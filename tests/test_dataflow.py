"""Tests for the dataflow (mini Pig Latin) layer."""

import pytest

from repro.dataflow import (
    DataflowScript,
    DistinctOp,
    FilterOp,
    GroupOp,
    OrderOp,
    ProjectOp,
    compile_script,
    compile_to_chain,
    dataflow_map,
    dataflow_reduce,
)
from repro.hadoop.context import TaskContext

# A page_views-style record: (user, action, timespent, term, revenue, links)
ROW = ("u01", 2, 120, "t1", 9.5, ("p1", "p2", "p3"))


def run_map(job, records):
    ctx = job.make_context()
    for key, value in records:
        job.mapper(key, value, ctx)
    return ctx


def run_reduce(job, pairs):
    groups = {}
    for key, value in pairs:
        groups.setdefault(key, []).append(value)
    ctx = job.make_context()
    for key, values in groups.items():
        job.reducer(key, values, ctx)
    return ctx


class TestOperators:
    def test_filter_validates_comparator(self):
        with pytest.raises(ValueError):
            FilterOp(field=0, op="~=", literal=1)

    def test_project_flatten_bounds(self):
        with pytest.raises(ValueError):
            ProjectOp(fields=(0, 1), flatten=5)

    def test_group_needs_keys_and_aggs(self):
        with pytest.raises(ValueError):
            GroupOp(keys=(), aggregations=())

    def test_descriptors_are_plain_tuples(self):
        ops = [
            FilterOp(1, "==", 2),
            ProjectOp((0, 5), flatten=1),
            DistinctOp((0,)),
            OrderOp(3, descending=True),
        ]
        for op in ops:
            descriptor = op.descriptor()
            assert isinstance(descriptor, tuple)
            assert repr(descriptor) == repr(eval(repr(descriptor)))


class TestScript:
    def test_empty_script_rejected(self):
        with pytest.raises(ValueError):
            DataflowScript("empty").stages()

    def test_stage_partitioning(self):
        script = (
            DataflowScript("s")
            .filter(1, "==", 2)
            .project(0, 4)
            .group_by(0, aggregations=[("sum", 1)])
            .order_by(1)
        )
        stages = script.stages()
        assert len(stages) == 2
        pipeline, blocking = stages[0]
        assert len(pipeline) == 2
        assert isinstance(blocking, GroupOp)
        assert isinstance(stages[1][1], OrderOp)

    def test_trailing_pipeline_is_maponly_stage(self):
        script = DataflowScript("s").filter(2, ">", 10)
        stages = script.stages()
        assert len(stages) == 1
        assert stages[0][1] is None


class TestCompiler:
    def test_one_job_per_stage(self):
        script = (
            DataflowScript("two-stage")
            .group_by(0, aggregations=[("count", 0)])
            .order_by(1)
        )
        jobs = compile_script(script)
        assert len(jobs) == 2
        assert jobs[0].name.endswith("-s0")
        assert jobs[1].name.endswith("-s1")

    def test_generic_operators_shared(self):
        a = compile_script(DataflowScript("a").filter(1, "==", 1).distinct(0))[0]
        b = compile_script(
            DataflowScript("b").project(0, 4).group_by(0, aggregations=[("sum", 1)])
        )[0]
        assert a.mapper is b.mapper
        assert a.reducer is b.reducer
        assert a.input_format == b.input_format == "PigStorage"

    def test_maponly_stage_has_no_reducer(self):
        job = compile_script(DataflowScript("m").filter(1, "==", 1))[0]
        assert not job.has_reducer

    def test_chain_wiring(self):
        script = (
            DataflowScript("c")
            .group_by(0, aggregations=[("count", 0)])
            .order_by(0)
        )
        chain = compile_to_chain(script)
        assert chain[0].input_from == "source"
        assert chain[1].input_from == "previous"


class TestRuntime:
    def test_filter_and_project(self):
        job = compile_script(
            DataflowScript("fp").filter(1, "==", 2).project(0, 4).distinct(0, 1)
        )[0]
        ctx = run_map(job, [(0, ROW), (1, ("u02", 1, 5, "t2", 0.5, ()))])
        assert ctx.pairs == [(("u01", 9.5), None)]

    def test_flatten(self):
        job = compile_script(
            DataflowScript("fl").project(0, 5, flatten=1).distinct(1)
        )[0]
        ctx = run_map(job, [(0, ROW)])
        assert [key for key, __ in ctx.pairs] == [("p1",), ("p2",), ("p3",)]

    def test_group_aggregations(self):
        job = compile_script(
            DataflowScript("agg").project(0, 4).group_by(
                0, aggregations=[("sum", 1), ("count", 1), ("avg", 1),
                                 ("min", 1), ("max", 1)]
            )
        )[0]
        mapped = run_map(job, [(0, ROW), (1, ("u01", 1, 10, "t2", 0.5, ()))])
        reduced = run_reduce(job, mapped.pairs)
        key, (user, total, count, avg, lo, hi) = reduced.pairs[0]
        assert key == ("u01",)
        assert user == "u01"
        assert total == pytest.approx(10.0)
        assert count == 2
        assert avg == pytest.approx(5.0)
        assert lo == 0.5
        assert hi == 9.5

    def test_collect_aggregation(self):
        job = compile_script(
            DataflowScript("col").project(0, 3).group_by(
                0, aggregations=[("collect", 1)]
            )
        )[0]
        mapped = run_map(job, [(0, ROW), (1, ("u01", 1, 10, "t2", 0.5, ()))])
        reduced = run_reduce(job, mapped.pairs)
        __, (__, collected) = reduced.pairs[0]
        assert set(collected) == {"t1", "t2"}

    def test_distinct_dedupes(self):
        job = compile_script(DataflowScript("d").distinct(0))[0]
        mapped = run_map(job, [(0, ROW), (1, ROW)])
        reduced = run_reduce(job, mapped.pairs)
        assert reduced.pairs == [(("u01",), ("u01",))]

    def test_order_emits_keyed_rows(self):
        job = compile_script(DataflowScript("o").order_by(2))[0]
        mapped = run_map(job, [(0, ROW)])
        assert mapped.pairs[0][0] == 120

    def test_contains_comparator(self):
        job = compile_script(
            DataflowScript("grep").filter(3, "contains", "t").distinct(3)
        )[0]
        ctx = run_map(job, [(0, ROW)])
        assert ctx.pairs

    def test_bad_shuffle_descriptor_rejected(self):
        ctx = TaskContext(job_params={"pipeline": (), "shuffle": ("weird",)})
        with pytest.raises(ValueError):
            dataflow_map(0, ROW, ctx)


class TestEndToEnd:
    def test_compiled_chain_runs_through_pstorm(self, engine):
        from repro.core import PStorM
        from repro.core.workflows import run_chain
        from repro.workloads import pigmix_dataset

        pstorm = PStorM(engine)
        script = (
            DataflowScript("e2e")
            .filter(1, "==", 2)
            .project(0, 4)
            .group_by(0, aggregations=[("sum", 1)])
        )
        result = run_chain(pstorm, compile_to_chain(script), pigmix_dataset(1))
        assert len(result.stages) == 1
        assert result.total_runtime_seconds > 0

    def test_generated_jobs_share_static_features(self, engine):
        from repro.analysis.static_features import extract_static_features
        from repro.core.similarity import jaccard_index

        a = compile_script(
            DataflowScript("x").filter(1, "==", 2).group_by(0, aggregations=[("count", 0)])
        )[0]
        b = compile_script(
            DataflowScript("y").project(3, 4).group_by(0, aggregations=[("sum", 1)])
        )[0]
        fa = extract_static_features(a)
        fb = extract_static_features(b)
        # Same generic operators: identical class names, formatters, CFGs.
        assert fa.categorical["MAPPER"] == fb.categorical["MAPPER"]
        assert fa.map_cfg.signature() == fb.map_cfg.signature()
