"""Tests for the Table 6.1 workload jobs and synthetic datasets."""

import numpy as np
import pytest

from repro.hadoop.context import TaskContext
from repro.workloads import (
    PIGMIX_QUERY_COUNT,
    bigram_relative_frequency_job,
    cf_similarity_job,
    cf_user_vectors_job,
    cloudburst_job,
    compact_benchmark,
    cooccurrence_pairs_job,
    cooccurrence_stripes_job,
    fim_aggregate_job,
    fim_item_count_job,
    fim_pair_count_job,
    genome_dataset,
    grep_job,
    inverted_index_job,
    join_job,
    movielens_dataset,
    pigmix_all_jobs,
    pigmix_dataset,
    pigmix_job,
    random_text_1gb,
    sort_job,
    standard_benchmark,
    teragen_dataset,
    tpch_dataset,
    webdocs_dataset,
    wikipedia_35gb,
    word_count_job,
)


def run_mapper(job, records):
    ctx = job.make_context()
    for key, value in records:
        job.mapper(key, value, ctx)
    return ctx


def run_reducer(job, pairs):
    groups = {}
    for key, value in pairs:
        groups.setdefault(key, []).append(value)
    ctx = job.make_context()
    for key, values in groups.items():
        job.reducer(key, values, ctx)
    return ctx


class TestDatasets:
    def test_nominal_sizes(self):
        assert wikipedia_35gb().nominal_bytes == 35 << 30
        assert random_text_1gb().nominal_bytes == 1 << 30
        assert webdocs_dataset().nominal_bytes == int(1.5 * (1 << 30))

    def test_movielens_variants(self):
        small = movielens_dataset(1)
        large = movielens_dataset(10)
        assert large.nominal_bytes > small.nominal_bytes
        with pytest.raises(ValueError):
            movielens_dataset(5)

    def test_all_sources_deterministic(self):
        for dataset in (
            random_text_1gb(), wikipedia_35gb(), tpch_dataset(1),
            teragen_dataset(1), movielens_dataset(1), webdocs_dataset(),
            genome_dataset("sample", 200), pigmix_dataset(1),
        ):
            assert dataset.materialize(0) == dataset.materialize(0)

    def test_teragen_records_are_100_chars(self):
        record = teragen_dataset(1).materialize(0)[0]
        assert len(record[0]) == 10
        assert len(record[1]) == 90

    def test_tpch_mixes_tables(self):
        tables = {row[0] for __, row in tpch_dataset(1).materialize(0)}
        assert tables == {"ORDERS", "LINEITEM"}

    def test_genome_mixes_reads_and_reference(self):
        tags = {rec[0] for __, rec in genome_dataset("sample", 200).materialize(0)}
        assert tags == {"REF", "READ"}


class TestTextJobs:
    def test_wordcount_counts(self):
        job = word_count_job()
        ctx = run_mapper(job, [(0, "a b a")])
        assert ctx.pairs == [("a", 1), ("b", 1), ("a", 1)]
        reduced = run_reducer(job, ctx.pairs)
        assert dict(reduced.pairs) == {"a": 2, "b": 1}

    def test_cooccurrence_window(self):
        ctx2 = run_mapper(cooccurrence_pairs_job(window=2), [(0, "a b c d")])
        ctx1 = run_mapper(cooccurrence_pairs_job(window=1), [(0, "a b c d")])
        assert ctx2.records_out > ctx1.records_out
        assert ("a", "b") in dict(ctx1.pairs)

    def test_stripes_emit_dicts(self):
        ctx = run_mapper(cooccurrence_stripes_job(), [(0, "a b b")])
        key, stripe = ctx.pairs[0]
        assert key == "a"
        assert isinstance(stripe, dict)

    def test_stripes_reduce_merges(self):
        job = cooccurrence_stripes_job()
        reduced = run_reducer(job, [("a", {"b": 1}), ("a", {"b": 2, "c": 1})])
        assert dict(reduced.pairs)["a"] == {"b": 3, "c": 1}

    def test_bigram_emits_marginals(self):
        ctx = run_mapper(bigram_relative_frequency_job(), [(0, "x y z")])
        keys = [k for k, __ in ctx.pairs]
        assert ("x", "*") in keys
        assert ("x", "y") in keys

    def test_bigram_partitioner_routes_by_first_word(self):
        job = bigram_relative_frequency_job()
        assert job.partitioner(("x", "*"), 8) == job.partitioner(("x", "zz"), 8)

    def test_bigram_relative_frequency_values(self):
        job = bigram_relative_frequency_job()
        # Marginal first (HBase-like sort puts '*' first), then pairs.
        ctx = job.make_context()
        job.reducer(("x", "*"), [4], ctx)
        job.reducer(("x", "y"), [1], ctx)
        assert ctx.pairs == [(("x", "y"), 0.25)]

    def test_inverted_index_posting_lists(self):
        job = inverted_index_job()
        ctx = run_mapper(job, [(3, "w w v")])
        assert ctx.pairs == [("w", 3), ("v", 3)]  # distinct words only
        reduced = run_reducer(job, [("w", 3), ("w", 1)])
        assert reduced.pairs == [("w", (1, 3))]

    def test_grep_selectivity_depends_on_pattern(self):
        records = [(0, "hello world"), (1, "nothing here")]
        hit = run_mapper(grep_job("hello"), records)
        miss = run_mapper(grep_job("zzz"), records)
        assert hit.records_out == 1
        assert miss.records_out == 0


class TestOtherJobs:
    def test_sort_is_identity(self):
        job = sort_job()
        ctx = run_mapper(job, [("k1", "v1"), ("k2", "v2")])
        assert ctx.pairs == [("k1", "v1"), ("k2", "v2")]

    def test_join_pairs_orders_with_lineitems(self):
        job = join_job()
        rows = [
            (0, ("ORDERS", 7, "cust", 10.0, "1996-01-01")),
            (1, ("LINEITEM", 7, 1, 2, 3.0, 0.0)),
            (2, ("LINEITEM", 7, 2, 5, 6.0, 0.1)),
        ]
        ctx = run_mapper(job, rows)
        reduced = run_reducer(job, ctx.pairs)
        assert len(reduced.pairs) == 2
        assert all(key == 7 for key, __ in reduced.pairs)

    def test_fim_chain_distinct_jobs(self):
        names = {fim_item_count_job().name, fim_pair_count_job().name, fim_aggregate_job().name}
        assert len(names) == 3

    def test_fim_pair_count_respects_support(self):
        job = fim_pair_count_job(frequent_item_cutoff=100, min_support=2)
        ctx = run_mapper(job, [(0, (1, 2, 500)), (1, (1, 2))])
        reduced = run_reducer(job, ctx.pairs)
        assert dict(reduced.pairs) == {(1, 2): 2}

    def test_cf_user_vectors_quadratic_pairs(self):
        job = cf_user_vectors_job()
        reduced = run_reducer(job, [(9, (1, 5.0)), (9, (2, 4.0)), (9, (3, 3.0))])
        assert len(reduced.pairs) == 3  # C(3,2)

    def test_cf_similarity_averages(self):
        job = cf_similarity_job()
        reduced = run_reducer(job, [((1, 2), 4.0), ((1, 2), 2.0)])
        assert reduced.pairs == [((1, 2), 3.0)]

    def test_cloudburst_alignment(self):
        job = cloudburst_job(max_mismatches=1)
        ref = ("REF", "ACGTACGTACGTACGT")
        read = ("READ", "ACGTACGTACGT")
        ctx = run_mapper(job, [(0, ref), (1, read)])
        reduced = run_reducer(job, ctx.pairs)
        assert any(mismatches <= 1 for __, (__, __, mismatches) in reduced.pairs)


class TestPigMix:
    def test_seventeen_queries(self):
        jobs = pigmix_all_jobs()
        assert len(jobs) == PIGMIX_QUERY_COUNT == 17
        assert len({job.name for job in jobs}) == 17

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            pigmix_job(0)
        with pytest.raises(ValueError):
            pigmix_job(18)

    def test_every_query_runs_on_page_views(self):
        records = pigmix_dataset(1).materialize(0)
        for job in pigmix_all_jobs():
            ctx = run_mapper(job, records)
            if ctx.pairs:
                reduced = run_reducer(job, ctx.pairs)
                assert reduced.records_out >= 0

    def test_l1_explodes_links(self):
        row = ("u000001", 1, 10, "t0001", 1.0, ("p1", "p2"))
        ctx = run_mapper(pigmix_job(1), [(0, row)])
        assert ctx.records_out == 2


class TestBenchmarkAssembly:
    def test_standard_size(self):
        entries = standard_benchmark()
        assert len(entries) == 56

    def test_compact_smaller(self):
        assert len(compact_benchmark()) < len(standard_benchmark())

    def test_keys_unique(self):
        keys = [entry.key for entry in standard_benchmark()]
        assert len(set(keys)) == len(keys)

    def test_twinless_entries_present(self):
        names = [entry.job.name for entry in standard_benchmark()]
        assert names.count("word-cooccurrence-stripes") == 1
        assert names.count("fim-item-count") == 1
        assert names.count("word-count") == 2
