"""Unit tests for the wave-based slot scheduler."""

import numpy as np
import pytest

from repro.hadoop.config import JobConfiguration
from repro.hadoop.scheduler import _list_schedule, schedule_job
from repro.hadoop.tasks import MapTaskExecution, ReduceTaskExecution


def _map_task(task_id, seconds):
    return MapTaskExecution(
        task_id=task_id, split_index=task_id, node_id=0,
        input_records=10, input_bytes=100, map_output_records=10,
        map_output_bytes=100, spill_records=10, spill_bytes=100,
        materialized_bytes=100, num_spills=1, merge_passes=0,
        combine_input_records=0, combine_output_records=0, combine_ops=0,
        partition_bytes=np.array([100.0]), partition_records=np.array([10.0]),
        user_ops=10,
        phase_times={"SETUP": 0.0, "READ": 0.0, "MAP": seconds, "COLLECT": 0.0,
                     "SPILL": 0.0, "MERGE": 0.0, "CLEANUP": 0.0},
        rates=None,
    )


def _reduce_task(task_id, shuffle, rest):
    return ReduceTaskExecution(
        task_id=task_id, partition=task_id, node_id=0,
        shuffle_bytes=100, shuffle_records=10, reduce_input_records=10,
        reduce_input_groups=5, output_records=5, output_bytes=50,
        materialized_bytes=50, disk_merge_passes=0, user_ops=5,
        phase_times={"SETUP": 0.0, "SHUFFLE": shuffle, "SORT": 0.0,
                     "REDUCE": rest, "WRITE": 0.0, "CLEANUP": 0.0},
        rates=None,
    )


class TestListSchedule:
    def test_single_slot_serializes(self):
        finishes = _list_schedule([1.0, 2.0, 3.0], num_slots=1)
        assert finishes == [1.0, 3.0, 6.0]

    def test_enough_slots_parallelizes(self):
        finishes = _list_schedule([1.0, 2.0, 3.0], num_slots=3)
        assert finishes == [1.0, 2.0, 3.0]

    def test_wave_structure(self):
        finishes = _list_schedule([2.0] * 6, num_slots=3)
        assert max(finishes) == pytest.approx(4.0)

    def test_zero_slots_rejected(self):
        with pytest.raises(ValueError):
            _list_schedule([1.0], num_slots=0)


class TestScheduleJob:
    def test_map_only_runtime_is_map_makespan(self):
        maps = [_map_task(i, 5.0) for i in range(4)]
        result = schedule_job(maps, [], map_slots=2, reduce_slots=2, config=JobConfiguration())
        assert result.runtime_seconds == pytest.approx(10.0)
        assert result.reduce_finish_times == ()

    def test_reducers_wait_for_last_map(self):
        maps = [_map_task(i, 10.0) for i in range(2)]
        reduces = [_reduce_task(10, shuffle=0.1, rest=1.0)]
        config = JobConfiguration(reduce_slowstart=0.0)
        result = schedule_job(maps, reduces, 2, 2, config)
        # Shuffle can't complete before map makespan (10s), then 1s reduce.
        assert result.runtime_seconds == pytest.approx(11.0)

    def test_post_map_shuffle_not_stalled(self):
        maps = [_map_task(0, 1.0)]
        reduces = [_reduce_task(1, shuffle=50.0, rest=5.0)]
        result = schedule_job(maps, reduces, 2, 2, JobConfiguration())
        assert result.runtime_seconds >= 55.0

    def test_reduce_waves(self):
        maps = [_map_task(0, 1.0)]
        reduces = [_reduce_task(i, shuffle=0.0, rest=10.0) for i in range(4)]
        one_wave = schedule_job(maps, reduces, 2, 4, JobConfiguration())
        two_waves = schedule_job(maps, reduces, 2, 2, JobConfiguration())
        assert two_waves.runtime_seconds > one_wave.runtime_seconds

    def test_slowstart_zero_starts_immediately(self):
        maps = [_map_task(i, 10.0) for i in range(2)]
        reduces = [_reduce_task(2, shuffle=3.0, rest=1.0)]
        eager = schedule_job(maps, reduces, 2, 2, JobConfiguration(reduce_slowstart=0.0))
        lazy = schedule_job(maps, reduces, 2, 2, JobConfiguration(reduce_slowstart=1.0))
        assert eager.slowstart_time == 0.0
        assert lazy.slowstart_time == pytest.approx(10.0)
        assert eager.runtime_seconds <= lazy.runtime_seconds

    def test_runtime_at_least_map_makespan(self):
        maps = [_map_task(i, 7.0) for i in range(5)]
        reduces = [_reduce_task(9, shuffle=0.0, rest=0.0)]
        result = schedule_job(maps, reduces, 2, 2, JobConfiguration())
        assert result.runtime_seconds >= result.map_makespan
