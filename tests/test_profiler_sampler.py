"""Tests for the Starfish profiler and sampler."""

import pytest

from repro.hadoop.config import JobConfiguration
from repro.starfish.profile import MAP_COST_FEATURES, MAP_STATISTICS
from repro.starfish.profiler import build_profile


class TestProfiler:
    def test_full_profile_shape(self, profiler, wordcount, small_text):
        profile, execution = profiler.profile_job(wordcount, small_text)
        assert profile.source == "full"
        assert profile.num_map_tasks == small_text.num_splits
        assert profile.input_bytes == small_text.nominal_bytes
        assert profile.has_reduce

    def test_selectivities_match_execution(self, profiler, wordcount, small_text):
        profile, execution = profiler.profile_job(wordcount, small_text)
        total_in = sum(t.input_bytes for t in execution.map_tasks)
        total_out = sum(t.map_output_bytes for t in execution.map_tasks)
        assert profile.map_profile.data_flow["MAP_SIZE_SEL"] == pytest.approx(
            total_out / total_in
        )

    def test_combiner_selectivities_measured(self, profiler, wordcount, small_text):
        profile, __ = profiler.profile_job(wordcount, small_text)
        mp = profile.map_profile
        assert mp.data_flow["COMBINE_PAIRS_SEL"] < 1.0
        assert mp.stat("HAS_COMBINER") == 1.0

    def test_no_combiner_unity(self, profiler, maponly_job, small_text):
        profile, __ = profiler.profile_job(maponly_job, small_text)
        assert profile.map_profile.data_flow["COMBINE_PAIRS_SEL"] == 1.0
        assert profile.map_profile.stat("HAS_COMBINER") == 0.0
        assert profile.reduce_profile is None

    def test_cost_factors_present_and_positive(self, profiler, wordcount, small_text):
        profile, __ = profiler.profile_job(wordcount, small_text)
        for name in MAP_COST_FEATURES:
            assert profile.map_profile.cost_factors[name] > 0

    def test_statistics_present(self, profiler, wordcount, small_text):
        profile, __ = profiler.profile_job(wordcount, small_text)
        for name in MAP_STATISTICS:
            assert name in profile.map_profile.statistics

    def test_small_record_jobs_have_higher_io_cost(
        self, profiler, wordcount, maponly_job, small_text
    ):
        """Per-byte spill cost folds per-record overhead: word count's tiny
        intermediate records must cost more per byte than identity's."""
        wc_profile, __ = profiler.profile_job(wordcount, small_text)
        id_profile, __ = profiler.profile_job(maponly_job, small_text)
        assert (
            wc_profile.map_profile.cost_factors["WRITE_LOCAL_IO_COST"]
            > id_profile.map_profile.cost_factors["WRITE_LOCAL_IO_COST"]
        )

    def test_reduce_side_statistics(self, profiler, wordcount, small_text):
        profile, __ = profiler.profile_job(wordcount, small_text)
        rp = profile.reduce_profile
        assert rp.stat("RECORDS_PER_GROUP") >= 1.0
        assert rp.stat("OUT_RECORDS_PER_GROUP") == pytest.approx(1.0)
        assert rp.stat("REDUCE_SKEW") >= 1.0

    def test_build_profile_from_execution(self, engine, wordcount, small_text):
        config = JobConfiguration()
        execution = engine.run_job(wordcount, small_text, config, profile=True)
        profile = build_profile(execution, config, "full", small_text.split_bytes)
        assert profile.job_name == wordcount.name


class TestSampler:
    def test_one_task_sample(self, sampler, wordcount, small_text):
        result = sampler.collect(wordcount, small_text, count=1)
        assert result.map_slots_consumed == 1
        assert result.profile.source == "sample"
        assert result.execution.sampled

    def test_fraction_sample(self, sampler, wordcount, small_text):
        result = sampler.collect(wordcount, small_text, fraction=0.5)
        assert result.map_slots_consumed == small_text.num_splits // 2

    def test_fraction_at_least_one(self, sampler, wordcount, small_text):
        result = sampler.collect(wordcount, small_text, fraction=0.01)
        assert result.map_slots_consumed == 1

    def test_exactly_one_mode_required(self, sampler, small_text):
        with pytest.raises(ValueError):
            sampler.choose_task_ids(small_text)
        with pytest.raises(ValueError):
            sampler.choose_task_ids(small_text, fraction=0.1, count=1)

    def test_invalid_fraction(self, sampler, small_text):
        with pytest.raises(ValueError):
            sampler.choose_task_ids(small_text, fraction=1.5)

    def test_choices_within_range_and_unique(self, sampler, small_text):
        ids = sampler.choose_task_ids(small_text, count=3, seed=1)
        assert len(set(ids)) == len(ids)
        assert all(0 <= i < small_text.num_splits for i in ids)

    def test_deterministic_under_seed(self, sampler, small_text):
        assert sampler.choose_task_ids(small_text, count=2, seed=5) == \
            sampler.choose_task_ids(small_text, count=2, seed=5)

    def test_sample_selectivity_close_to_full(self, profiler, sampler, wordcount, small_text):
        """The 1-task sample's data flow stats must be stable enough for
        matching (§4.1.1): close to the full profile's."""
        full, __ = profiler.profile_job(wordcount, small_text)
        sample = sampler.collect(wordcount, small_text, count=1)
        full_sel = full.map_profile.data_flow["MAP_PAIRS_SEL"]
        sample_sel = sample.profile.map_profile.data_flow["MAP_PAIRS_SEL"]
        assert sample_sel == pytest.approx(full_sel, rel=0.15)

    def test_sample_cheaper_than_ten_percent(self, sampler, wordcount, small_text):
        one = sampler.collect(wordcount, small_text, count=1)
        half = sampler.collect(wordcount, small_text, fraction=0.5)
        assert one.overhead_seconds < half.overhead_seconds
