"""Tests for store maintenance (eviction) and the bottleneck analyzer."""

import pytest

from repro.core.features import extract_job_features
from repro.core.maintenance import FifoEviction, LruEviction, MaintainedStore
from repro.core.store import ProfileStore
from repro.hadoop.config import JobConfiguration
from repro.starfish.analyzer import analyze_profile


def _profile_and_static(engine, profiler, sampler, job, dataset):
    profile, __ = profiler.profile_job(job, dataset)
    sample = sampler.collect(job, dataset, count=1)
    features = extract_job_features(job, dataset, sample.profile, engine)
    return profile, features.static


@pytest.fixture()
def stored_items(engine, profiler, sampler, wordcount, maponly_job, small_text):
    wc = _profile_and_static(engine, profiler, sampler, wordcount, small_text)
    ident = _profile_and_static(engine, profiler, sampler, maponly_job, small_text)
    return {"wc": wc, "ident": ident}


class TestMaintainedStore:
    def test_capacity_enforced(self, stored_items):
        maintained = MaintainedStore(ProfileStore(), capacity=1)
        maintained.put(*stored_items["wc"], job_id="first")
        maintained.put(*stored_items["ident"], job_id="second")
        assert len(maintained) == 1
        assert maintained.evicted == ["first"]
        assert "second" in maintained.store

    def test_lru_hits_protect(self, stored_items):
        maintained = MaintainedStore(ProfileStore(), capacity=2, policy=LruEviction())
        maintained.put(*stored_items["wc"], job_id="a")
        maintained.put(*stored_items["ident"], job_id="b")
        maintained.record_hit("a")  # refresh the older entry
        maintained.put(*stored_items["wc"], job_id="c")
        assert "a" in maintained.store
        assert maintained.evicted == ["b"]

    def test_fifo_ignores_hits(self, stored_items):
        maintained = MaintainedStore(ProfileStore(), capacity=2, policy=FifoEviction())
        maintained.put(*stored_items["wc"], job_id="a")
        maintained.put(*stored_items["ident"], job_id="b")
        maintained.record_hit("a")
        maintained.put(*stored_items["wc"], job_id="c")
        assert maintained.evicted == ["a"]

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            MaintainedStore(ProfileStore(), capacity=0)

    def test_preexisting_entries_registered(self, stored_items):
        store = ProfileStore()
        profile, static = stored_items["wc"]
        store.put(profile, static, job_id="old")
        maintained = MaintainedStore(store, capacity=1)
        maintained.put(*stored_items["ident"], job_id="new")
        assert maintained.evicted == ["old"]

    def test_newest_insert_never_self_evicts(self, stored_items):
        maintained = MaintainedStore(ProfileStore(), capacity=1)
        stored_id = maintained.put(*stored_items["wc"], job_id="only")
        assert stored_id in maintained.store


class TestMaintainedStoreComposition:
    """Regression: MaintainedStore must compose with the resilient
    client in either order (the serving layer uses resilient-outside)."""

    def test_resilient_over_maintained(self, stored_items):
        from repro.core.resilient import ResilientProfileStore

        store = ResilientProfileStore(MaintainedStore(ProfileStore(), capacity=1))
        store.put(*stored_items["wc"], job_id="first")
        store.put(*stored_items["ident"], job_id="second")
        assert len(store) == 1
        assert "second" in store
        assert "first" not in store
        # Maintenance attributes remain reachable through the wrapper.
        assert store.evicted == ["first"]
        store.record_hit("second")
        assert store.get_profile("second") is not None

    def test_maintained_over_resilient(self, stored_items):
        from repro.core.resilient import ResilientProfileStore

        store = MaintainedStore(
            ResilientProfileStore(ProfileStore()), capacity=1
        )
        store.put(*stored_items["wc"], job_id="first")
        store.put(*stored_items["ident"], job_id="second")
        assert len(store) == 1
        assert "second" in store
        assert store.evicted == ["first"]

    def test_delete_keeps_policy_in_sync(self, stored_items):
        maintained = MaintainedStore(ProfileStore(), capacity=2)
        maintained.put(*stored_items["wc"], job_id="a")
        maintained.put(*stored_items["ident"], job_id="b")
        maintained.delete("a")
        # Capacity slot freed: the next two puts must not evict "b"'s
        # replacement prematurely.
        maintained.put(*stored_items["wc"], job_id="c")
        assert sorted(maintained.job_ids()) == ["b", "c"]
        assert maintained.evicted == []

    def test_build_store_capacity_bound(self, engine, profiler, sampler,
                                        wordcount, maponly_job, small_text):
        from repro.experiments.common import build_store
        from repro.core.resilient import ResilientProfileStore
        from repro.core.features import extract_job_features

        def record_for(job):
            profile, __ = profiler.profile_job(job, small_text)
            sample = sampler.collect(job, small_text, count=1)
            features = extract_job_features(job, small_text, sample.profile, engine)

            class _Rec:
                def __init__(self):
                    self.full_profile = profile
                    self.static = features.static
                    self.job_name = job.name

            return _Rec()

        records = {"a@d": record_for(wordcount), "b@d": record_for(maponly_job)}
        store = build_store(records, capacity=1)
        assert isinstance(store, ResilientProfileStore)
        assert len(store) == 1


class TestAnalyzer:
    def test_single_reducer_job_surfaces_reduce_side(self, profiler, wordcount, small_text):
        profile, __ = profiler.profile_job(
            wordcount, small_text, JobConfiguration(num_reduce_tasks=1)
        )
        bottlenecks = analyze_profile(profile, top_k=5)
        assert bottlenecks
        assert any(b.side == "reduce" and b.share > 0.2 for b in bottlenecks)
        assert all(0 < b.share <= 1 for b in bottlenecks)

    def test_levers_mention_tunable_params(self, profiler, wordcount, small_text):
        profile, __ = profiler.profile_job(wordcount, small_text)
        bottlenecks = analyze_profile(profile, top_k=5)
        all_levers = {lever for b in bottlenecks for lever in b.levers}
        assert all_levers & {"mapred.reduce.tasks", "io.sort.mb",
                             "mapred.compress.map.output"}

    def test_map_only_profile(self, profiler, maponly_job, small_text):
        profile, __ = profiler.profile_job(maponly_job, small_text)
        bottlenecks = analyze_profile(profile)
        assert all(b.side == "map" for b in bottlenecks)

    def test_shares_descending(self, profiler, wordcount, small_text):
        profile, __ = profiler.profile_job(wordcount, small_text)
        shares = [b.share for b in analyze_profile(profile, top_k=6)]
        assert shares == sorted(shares, reverse=True)

    def test_render_readable(self, profiler, wordcount, small_text):
        profile, __ = profiler.profile_job(wordcount, small_text)
        text = analyze_profile(profile)[0].render()
        assert "s/task" in text
        assert "tune:" in text


class TestStaticsFirstMatcher:
    def test_loses_nj_composition(self, engine, profiler, sampler, small_text):
        """The §4.3 argument in miniature: with only behaviour-compatible
        *other* jobs stored, statics-first finds nothing."""
        from repro.core.matcher import ProfileMatcher, StaticsFirstMatcher
        from repro.workloads import bigram_relative_frequency_job, cooccurrence_pairs_job

        store = ProfileStore()
        donor = bigram_relative_frequency_job()
        profile, static = _profile_and_static(engine, profiler, sampler, donor, small_text)
        store.put(profile, static)

        probe_job = cooccurrence_pairs_job()
        sample = sampler.collect(probe_job, small_text, count=1)
        features = extract_job_features(probe_job, small_text, sample.profile, engine)

        dynamics_first = ProfileMatcher(store).match_job(features)
        statics_first = StaticsFirstMatcher(store).match_job(features)
        assert dynamics_first.matched
        assert not statics_first.matched
