"""Unit and property tests for CFG extraction, normalization, matching."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.bytecode import basic_blocks
from repro.analysis.cfg import ControlFlowGraph, NodeKind
from repro.analysis.cfg_match import cfg_match, cfg_similarity


# ----------------------------------------------------------------------
# Sample functions spanning the control-flow shapes in the benchmark.
# ----------------------------------------------------------------------
def straight(k, v, c):
    c.emit(k, v)


def one_loop(k, line, c):
    for word in line.split():
        c.emit(word, 1)


def one_loop_while(k, line, c):
    it = iter(line.split())
    while True:
        word = next(it, None)
        if word is None:
            break
        c.emit(word, 1)


def loop_with_condition(k, line, c):
    for word in line.split():
        if word:
            c.emit(word, 1)


def nested_loops(k, line, c):
    words = line.split()
    for i in range(len(words)):
        if words[i]:
            for j in range(i + 1, len(words)):
                c.emit((words[i], words[j]), 1)


class TestBasicBlocks:
    def test_straight_line_single_block_chain(self):
        blocks = basic_blocks(straight)
        branch_blocks = [b for b in blocks.values() if b.is_branch]
        assert branch_blocks == []

    def test_loop_has_branch_block(self):
        blocks = basic_blocks(one_loop)
        assert any(b.is_branch for b in blocks.values())

    def test_edges_point_to_existing_blocks(self):
        for fn in (straight, one_loop, loop_with_condition, nested_loops):
            blocks = basic_blocks(fn)
            for block in blocks.values():
                for successor in block.successors:
                    assert successor in blocks

    def test_branch_blocks_have_two_distinct_successors(self):
        for fn in (one_loop, nested_loops):
            blocks = basic_blocks(fn)
            for block in blocks.values():
                if block.is_branch:
                    assert len(set(block.successors)) == 2

    def test_non_python_callable_rejected(self):
        with pytest.raises(TypeError):
            basic_blocks(len)


class TestControlFlowGraph:
    def test_straight_line_normalizes_to_single_exit(self):
        cfg = ControlFlowGraph.from_callable(straight)
        assert cfg.num_nodes == 1
        assert cfg.nodes[cfg.entry] == NodeKind.EXIT

    def test_loop_counts(self):
        cfg = ControlFlowGraph.from_callable(one_loop)
        assert cfg.num_loops == 1
        assert cfg.num_branches == 1

    def test_nested_loop_counts(self):
        cfg = ControlFlowGraph.from_callable(nested_loops)
        assert cfg.num_loops == 2
        assert cfg.num_branches >= 3  # two loops + the condition

    def test_grammar_invariants(self):
        for fn in (straight, one_loop, loop_with_condition, nested_loops):
            cfg = ControlFlowGraph.from_callable(fn)
            for node, kind in cfg.nodes.items():
                degree = len(cfg.edges[node])
                expected = {NodeKind.EXIT: 0, NodeKind.NORMAL: 1, NodeKind.BRANCH: 2}
                assert degree == expected[kind]

    def test_nodes_renumbered_from_zero(self):
        cfg = ControlFlowGraph.from_callable(nested_loops)
        assert set(cfg.nodes) == set(range(cfg.num_nodes))
        assert cfg.entry == 0

    def test_invalid_graph_rejected(self):
        with pytest.raises(ValueError):
            ControlFlowGraph(entry=0, nodes={0: NodeKind.EXIT}, edges={0: (0,)})
        with pytest.raises(ValueError):
            ControlFlowGraph(entry=0, nodes={0: NodeKind.BRANCH}, edges={0: (0,)})

    def test_dict_roundtrip(self):
        cfg = ControlFlowGraph.from_callable(nested_loops)
        restored = ControlFlowGraph.from_dict(cfg.to_dict())
        assert restored.nodes == dict(cfg.nodes)
        assert restored.edges == dict(cfg.edges)
        assert cfg_match(cfg, restored)

    def test_signature_distinguishes_shapes(self):
        signatures = {
            ControlFlowGraph.from_callable(fn).signature()
            for fn in (straight, one_loop, loop_with_condition, nested_loops)
        }
        assert len(signatures) == 4


class TestCfgMatch:
    def test_self_match(self):
        for fn in (straight, one_loop, loop_with_condition, nested_loops):
            cfg = ControlFlowGraph.from_callable(fn)
            assert cfg_match(cfg, cfg)

    def test_for_matches_equivalent_while(self):
        a = ControlFlowGraph.from_callable(one_loop)
        b = ControlFlowGraph.from_callable(one_loop_while)
        assert cfg_match(a, b)
        assert cfg_match(b, a)

    def test_different_shapes_mismatch(self):
        loop = ControlFlowGraph.from_callable(one_loop)
        nested = ControlFlowGraph.from_callable(nested_loops)
        cond = ControlFlowGraph.from_callable(loop_with_condition)
        assert not cfg_match(loop, nested)
        assert not cfg_match(loop, cond)
        assert not cfg_match(cond, nested)

    def test_match_is_symmetric(self):
        graphs = [
            ControlFlowGraph.from_callable(fn)
            for fn in (straight, one_loop, loop_with_condition, nested_loops)
        ]
        for a in graphs:
            for b in graphs:
                assert cfg_match(a, b) == cfg_match(b, a)

    def test_similarity_is_binary(self):
        a = ControlFlowGraph.from_callable(one_loop)
        b = ControlFlowGraph.from_callable(nested_loops)
        assert cfg_similarity(a, a) == 1.0
        assert cfg_similarity(a, b) == 0.0

    def test_benchmark_map_cfgs_distinct(self):
        """The suite's map functions must be mutually distinguishable
        where the matcher relies on it."""
        from repro.workloads.jobs.wordcount import word_count_map
        from repro.workloads.jobs.cooccurrence import cooccurrence_pairs_map
        from repro.workloads.jobs.bigram import bigram_map

        wc = ControlFlowGraph.from_callable(word_count_map)
        cooc = ControlFlowGraph.from_callable(cooccurrence_pairs_map)
        bigram = ControlFlowGraph.from_callable(bigram_map)
        assert not cfg_match(wc, cooc)
        assert not cfg_match(cooc, bigram)


# ----------------------------------------------------------------------
# Property tests over randomly generated normalized CFGs.
# ----------------------------------------------------------------------
@st.composite
def normalized_cfgs(draw):
    """Random graphs satisfying the normalized grammar."""
    size = draw(st.integers(min_value=1, max_value=8))
    kinds = {}
    edges = {}
    kinds[size - 1] = NodeKind.EXIT
    edges[size - 1] = ()
    for node in range(size - 1):
        is_branch = draw(st.booleans())
        if is_branch:
            a = draw(st.integers(min_value=0, max_value=size - 1))
            b = draw(st.integers(min_value=0, max_value=size - 1))
            if a == b:
                b = (b + 1) % size
            kinds[node] = NodeKind.BRANCH
            edges[node] = (a, b)
        else:
            target = draw(st.integers(min_value=0, max_value=size - 1))
            kinds[node] = NodeKind.NORMAL
            edges[node] = (target,)
    return ControlFlowGraph(entry=0, nodes=kinds, edges=edges)


@given(normalized_cfgs())
@settings(max_examples=60)
def test_property_self_match(cfg):
    assert cfg_match(cfg, cfg)


@given(normalized_cfgs(), normalized_cfgs())
@settings(max_examples=60)
def test_property_match_symmetric(a, b):
    assert cfg_match(a, b) == cfg_match(b, a)


@given(normalized_cfgs())
@settings(max_examples=60)
def test_property_roundtrip_preserves_match(cfg):
    assert cfg_match(cfg, ControlFlowGraph.from_dict(cfg.to_dict()))
