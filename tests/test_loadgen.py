"""Tests for the deterministic load harness (repro.serving.loadgen)."""

from __future__ import annotations

import json

import pytest

from repro.chaos import FaultInjector, outage_plan, set_default_injector
from repro.observability import MetricsRegistry
from repro.serving import LoadConfig, TenantSpec, run_load
from repro.serving.loadgen import _percentiles, loadgen_zoo


@pytest.fixture(autouse=True)
def _no_ambient_chaos():
    set_default_injector(None)
    yield
    set_default_injector(None)


def _config(**overrides):
    defaults = dict(requests=40, workers=2, seed=7)
    defaults.update(overrides)
    return LoadConfig(**defaults)


class TestDeterminism:
    def test_same_seed_byte_identical(self):
        first = run_load(_config(), registry=MetricsRegistry())
        second = run_load(_config(), registry=MetricsRegistry())
        assert first.to_json() == second.to_json()

    def test_different_seed_differs(self):
        first = run_load(_config(), registry=MetricsRegistry())
        second = run_load(_config(seed=8), registry=MetricsRegistry())
        assert first.to_json() != second.to_json()

    def test_closed_mode_deterministic(self):
        first = run_load(_config(mode="closed"), registry=MetricsRegistry())
        second = run_load(_config(mode="closed"), registry=MetricsRegistry())
        assert first.to_json() == second.to_json()

    def test_json_is_sorted_and_parseable(self):
        report = run_load(_config(requests=10), registry=MetricsRegistry())
        parsed = json.loads(report.to_json())
        assert list(parsed) == sorted(parsed)


class TestSummaryShape:
    def test_counts_reconcile(self):
        report = run_load(_config(), registry=MetricsRegistry())
        counts = report.summary["counts"]
        assert counts["requests"] == 40
        assert (
            counts["ok"] + counts["failed"] + counts["shed_total"]
            == counts["requests"]
        )
        assert counts["cache_hits"] <= counts["ok"]

    def test_mixed_outcomes_at_ci_scale(self):
        # The CI smoke's contract: default knobs produce hits AND sheds.
        report = run_load(
            _config(requests=200, workers=4), registry=MetricsRegistry()
        )
        counts = report.summary["counts"]
        assert counts["cache_hits"] > 0
        assert counts["shed_total"] > 0
        assert counts["remembers"] > 0

    def test_per_tenant_totals_match(self):
        report = run_load(_config(), registry=MetricsRegistry())
        per_tenant = report.summary["per_tenant"]
        total = sum(t["requests"] for t in per_tenant.values())
        assert total == report.summary["counts"]["requests"]

    def test_latency_percentiles_ordered(self):
        report = run_load(_config(), registry=MetricsRegistry())
        for block in report.summary["latency"].values():
            assert block["p50"] <= block["p95"] <= block["p99"] <= block["max"]

    def test_zoo_is_stable(self):
        names = [(job.name, ds.name) for job, ds in loadgen_zoo()]
        assert names == [(job.name, ds.name) for job, ds in loadgen_zoo()]
        assert len(set(names)) == len(names)


class TestChaosUnderLoad:
    def test_outage_finishes_with_degradations(self):
        set_default_injector(FaultInjector(outage_plan(seed=7)))
        report = run_load(
            _config(requests=60, workers=4), registry=MetricsRegistry()
        )
        counts = report.summary["counts"]
        assert counts["requests"] == 60
        # Every request resolved: served, degraded, or typed-shed —
        # never hung.
        assert (
            counts["ok"] + counts["failed"] + counts["shed_total"] == 60
        )
        assert counts["degraded"] + counts["shed_total"] > 0

    def test_outage_run_is_deterministic(self):
        set_default_injector(FaultInjector(outage_plan(seed=7)))
        first = run_load(_config(requests=30), registry=MetricsRegistry())
        set_default_injector(FaultInjector(outage_plan(seed=7)))
        second = run_load(_config(requests=30), registry=MetricsRegistry())
        assert first.to_json() == second.to_json()


class TestPercentiles:
    def test_empty(self):
        assert _percentiles([]) == {
            "max": 0.0,
            "mean": 0.0,
            "p50": 0.0,
            "p95": 0.0,
            "p99": 0.0,
        }

    def test_single_value(self):
        block = _percentiles([3.0])
        assert block["p50"] == block["p99"] == block["max"] == 3.0

    def test_known_values(self):
        block = _percentiles([float(i) for i in range(101)])
        assert block["p50"] == 50.0
        assert block["max"] == 100.0
        assert block["mean"] == 50.0


class TestCli:
    def test_loadgen_verb_prints_summary(self, capsys):
        from repro.cli import main

        assert main(["loadgen", "--requests", "15", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        summary = json.loads(out)
        assert summary["counts"]["requests"] == 15

    def test_loadgen_verb_deterministic_across_calls(self, capsys):
        from repro.cli import main

        main(["loadgen", "--requests", "15", "--seed", "7"])
        first = capsys.readouterr().out
        main(["loadgen", "--requests", "15", "--seed", "7"])
        second = capsys.readouterr().out
        assert first == second

    def test_loadgen_seed_flag_position_equivalent(self, capsys):
        from repro.cli import main

        main(["--seed", "7", "loadgen", "--requests", "15"])
        global_seed = capsys.readouterr().out
        main(["loadgen", "--requests", "15", "--seed", "7"])
        verb_seed = capsys.readouterr().out
        assert global_seed == verb_seed

    def test_serve_verb_clean_shutdown(self, capsys):
        from repro.cli import main

        assert main(["serve", "--requests", "8", "--workers", "2",
                     "--seed", "7"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["hung_workers"] == 0
        assert summary["served"] + summary["shed"] == 8

    def test_serve_verb_under_chaos(self, capsys):
        from repro.cli import main

        assert main(["serve", "--requests", "6", "--workers", "2",
                     "--seed", "7", "--chaos", "outage"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["hung_workers"] == 0


class TestConfigValidation:
    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            LoadConfig(mode="sideways")

    def test_zero_requests_rejected(self):
        with pytest.raises(ValueError):
            LoadConfig(requests=0)

    def test_tenant_policy_plumbed(self):
        config = _config(
            tenants=[TenantSpec("only", weight=1.0, rate_per_second=9.0, burst=5.0)]
        )
        service_config = config.service_config()
        assert service_config.tenant_policies["only"].rate_per_second == 9.0
