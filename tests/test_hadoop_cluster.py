"""Unit tests for the cluster model."""

import numpy as np
import pytest

from repro.hadoop.cluster import ClusterSpec, CostRates, WorkerNode, ec2_cluster


@pytest.fixture()
def rates():
    return CostRates(
        read_hdfs_ns_per_byte=16.0,
        write_hdfs_ns_per_byte=25.0,
        read_local_ns_per_byte=9.0,
        write_local_ns_per_byte=12.0,
        network_ns_per_byte=22.0,
        cpu_ns_per_record=350.0,
        compress_ns_per_byte=30.0,
        decompress_ns_per_byte=10.0,
    )


class TestCostRates:
    def test_scaled_multiplies_every_field(self, rates):
        doubled = rates.scaled(2.0)
        assert doubled.read_hdfs_ns_per_byte == 32.0
        assert doubled.cpu_ns_per_record == 700.0
        assert doubled.network_ns_per_byte == 44.0


class TestWorkerNode:
    def test_sample_rates_deterministic_under_seed(self, rates):
        node = WorkerNode(0, 2, 2, 300 << 20, rates, utilization_sigma=0.1)
        a = node.sample_rates(np.random.default_rng(42))
        b = node.sample_rates(np.random.default_rng(42))
        assert a == b

    def test_sample_rates_vary_across_draws(self, rates):
        node = WorkerNode(0, 2, 2, 300 << 20, rates, utilization_sigma=0.2)
        rng = np.random.default_rng(0)
        draws = [node.sample_rates(rng).cpu_ns_per_record for __ in range(20)]
        assert len(set(draws)) > 1

    def test_resource_groups_draw_independently(self, rates):
        node = WorkerNode(0, 2, 2, 300 << 20, rates, utilization_sigma=0.3)
        rng = np.random.default_rng(1)
        sample = node.sample_rates(rng)
        disk_factor = sample.read_local_ns_per_byte / rates.read_local_ns_per_byte
        cpu_factor = sample.cpu_ns_per_record / rates.cpu_ns_per_record
        net_factor = sample.network_ns_per_byte / rates.network_ns_per_byte
        assert disk_factor != pytest.approx(cpu_factor)
        assert disk_factor != pytest.approx(net_factor)

    def test_disk_rates_move_together(self, rates):
        node = WorkerNode(0, 2, 2, 300 << 20, rates, utilization_sigma=0.3)
        sample = node.sample_rates(np.random.default_rng(2))
        read_factor = sample.read_hdfs_ns_per_byte / rates.read_hdfs_ns_per_byte
        write_factor = sample.write_local_ns_per_byte / rates.write_local_ns_per_byte
        assert read_factor == pytest.approx(write_factor)


class TestClusterSpec:
    def test_paper_cluster_shape(self):
        cluster = ec2_cluster()
        assert cluster.num_workers == 15
        assert cluster.total_map_slots == 30
        assert cluster.total_reduce_slots == 30
        assert cluster.task_heap_bytes == 300 * 1024 * 1024

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            ClusterSpec(workers=())

    def test_nodes_have_permanent_skew(self):
        cluster = ec2_cluster(node_skew_sigma=0.2)
        base = [w.base_rates.cpu_ns_per_record for w in cluster.workers]
        assert len(set(base)) > 1

    def test_node_for_task_uniform(self):
        cluster = ec2_cluster(num_workers=4)
        rng = np.random.default_rng(3)
        picks = {cluster.node_for_task(i, rng).node_id for i in range(200)}
        assert picks == {0, 1, 2, 3}

    def test_custom_cluster_sizing(self):
        cluster = ec2_cluster(num_workers=5, map_slots_per_node=3, reduce_slots_per_node=1)
        assert cluster.total_map_slots == 15
        assert cluster.total_reduce_slots == 5

    def test_same_seed_same_cluster(self):
        a = ec2_cluster(seed=9)
        b = ec2_cluster(seed=9)
        assert [w.base_rates for w in a.workers] == [w.base_rates for w in b.workers]
