"""Tests for the columnar match index.

The heart of this module is the Hypothesis equivalence suite: for
arbitrary synthetic stores and probes, ``ProfileMatcher`` must return the
*same* ``MatchOutcome`` — survivor funnel, terminal stage, winning donor,
composite picks — whether it probes the columnar index or runs the
scan-path reference.  The remaining classes pin the coherence protocol
(incremental put/delete, overwrite-triggered rebuild, generation
tracking) and the fallback ladder (disabled / unavailable / poisoned).
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.cfg import ControlFlowGraph
from repro.analysis.static_features import STATIC_FEATURE_NAMES, StaticFeatures
from repro.chaos import FaultInjector, FaultPlan, FaultSpec
from repro.core.features import JobFeatures
from repro.core.matcher import ProfileMatcher, StaticsFirstMatcher
from repro.core.store import ProfileStore
from repro.observability import MetricsRegistry
from repro.starfish.profile import (
    MAP_COST_FEATURES,
    MAP_DATA_FLOW_FEATURES,
    REDUCE_COST_FEATURES,
    REDUCE_DATA_FLOW_FEATURES,
    JobProfile,
    SideProfile,
)

CATEGORICAL_NAMES = tuple(
    name for name in STATIC_FEATURE_NAMES if name not in ("MAP_CFG", "RED_CFG")
)


# Three distinct CFG shapes so the CFG stage actually discriminates.
def _cfg_linear(x):
    return x + 1


def _cfg_branchy(x):
    if x > 0:
        return x
    return -x


def _cfg_loopy(x):
    total = 0
    for item in range(3):
        total += item
    return total


CFGS = tuple(
    ControlFlowGraph.from_callable(fn)
    for fn in (_cfg_linear, _cfg_branchy, _cfg_loopy)
)


def make_profile(name, spec):
    map_profile = SideProfile(
        side="map",
        data_flow=dict(zip(MAP_DATA_FLOW_FEATURES, spec["map_flow"])),
        cost_factors=dict(zip(MAP_COST_FEATURES, spec["map_costs"])),
        statistics={},
        phase_times={},
        num_tasks=1,
    )
    reduce_profile = None
    if spec["has_reduce"]:
        reduce_profile = SideProfile(
            side="reduce",
            data_flow=dict(zip(REDUCE_DATA_FLOW_FEATURES, spec["red_flow"])),
            cost_factors=dict(zip(REDUCE_COST_FEATURES, spec["red_costs"])),
            statistics={},
            phase_times={},
            num_tasks=1,
        )
    return JobProfile(
        job_name=name,
        dataset_name="synth",
        input_bytes=spec["input_bytes"],
        split_bytes=128 << 20,
        num_map_tasks=2,
        num_reduce_tasks=1 if reduce_profile else 0,
        map_profile=map_profile,
        reduce_profile=reduce_profile,
    )


def make_static(spec):
    red_cfg = spec["red_cfg"]
    return StaticFeatures(
        categorical=dict(spec["statics"]),
        map_cfg=CFGS[spec["map_cfg"]],
        reduce_cfg=None if red_cfg is None else CFGS[red_cfg],
    )


def make_features(spec):
    return JobFeatures(
        job_name="probe",
        static=make_static(spec),
        map_data_flow=spec["map_flow"],
        map_costs=spec["map_costs"],
        reduce_data_flow=spec["red_flow"] if spec["has_reduce"] else None,
        reduce_costs=spec["red_costs"] if spec["has_reduce"] else None,
        input_bytes=spec["input_bytes"],
    )


def build_store(job_specs, delete_indices=(), **kwargs):
    kwargs.setdefault("registry", MetricsRegistry())
    store = ProfileStore(**kwargs)
    job_ids = []
    for number, spec in enumerate(job_specs):
        job_ids.append(store.put(make_profile(f"job{number}", spec), make_static(spec)))
    for index in delete_indices:
        if index < len(job_ids):
            store.delete(job_ids[index])
    return store, job_ids


# Values drawn from a small pool so distances collide and ties happen.
_value = st.sampled_from([0.0, 0.25, 0.5, 0.9, 1.0, 2.0]) | st.floats(
    min_value=0.0, max_value=4.0, allow_nan=False
)
_static_value = st.sampled_from(["alpha", "beta", "TextInputFormat", ""])

job_spec = st.fixed_dictionaries(
    {
        "map_flow": st.tuples(*[_value] * len(MAP_DATA_FLOW_FEATURES)),
        "map_costs": st.tuples(*[_value] * len(MAP_COST_FEATURES)),
        "has_reduce": st.booleans(),
        "red_flow": st.tuples(*[_value] * len(REDUCE_DATA_FLOW_FEATURES)),
        "red_costs": st.tuples(*[_value] * len(REDUCE_COST_FEATURES)),
        "input_bytes": st.integers(min_value=0, max_value=1 << 34),
        "map_cfg": st.integers(min_value=0, max_value=len(CFGS) - 1),
        "red_cfg": st.sampled_from([None, 0, 1, 2]),
        "statics": st.fixed_dictionaries(
            {name: _static_value for name in CATEGORICAL_NAMES}
        ),
    }
)

_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def assert_no_silent_fallback(registry, expected_hits):
    """The equivalence proof is vacuous if the indexed path silently fell
    back to the scan path — pin that it really answered the probes."""
    assert registry.counter("pstorm_matcher_index_hits_total").value == expected_hits
    for reason in ("disabled", "unavailable", "poisoned"):
        misses = registry.counter(
            "pstorm_matcher_index_misses_total", labels={"reason": reason}
        )
        assert misses.value == 0


class TestEquivalence:
    """Indexed matching ≡ scan matching, for arbitrary stores."""

    @_settings
    @given(
        jobs=st.lists(job_spec, max_size=6),
        deletes=st.lists(st.integers(min_value=0, max_value=5), max_size=2),
        probe=job_spec,
        jaccard=st.sampled_from([0.0, 0.4, 0.8, 1.0]),
        euclidean=st.sampled_from([None, 0.0, 0.3, 1.0, 3.0]),
    )
    def test_outcome_identical(self, jobs, deletes, probe, jaccard, euclidean):
        store, __ = build_store(jobs, deletes)
        features = make_features(probe)
        indexed_registry = MetricsRegistry()
        indexed = ProfileMatcher(
            store,
            jaccard_threshold=jaccard,
            euclidean_threshold=euclidean,
            registry=indexed_registry,
        )
        scan = ProfileMatcher(
            store,
            jaccard_threshold=jaccard,
            euclidean_threshold=euclidean,
            registry=MetricsRegistry(),
            use_index=False,
        )
        indexed_outcome = indexed.match_job(features)
        scan_outcome = scan.match_job(features)
        assert indexed_outcome == scan_outcome
        sides = 2 if features.has_reduce else 1
        assert_no_silent_fallback(indexed_registry, expected_hits=sides)

    @_settings
    @given(
        first=st.lists(job_spec, max_size=4),
        second=st.lists(job_spec, max_size=3),
        delete=st.integers(min_value=0, max_value=3),
        probe=job_spec,
    )
    def test_outcome_identical_across_incremental_writes(
        self, first, second, delete, probe
    ):
        # One long-lived indexed matcher sees puts and deletes land
        # between probes (the incremental ensure_fresh path); a fresh
        # scan matcher is consulted at each step as ground truth.
        store, job_ids = build_store(first)
        features = make_features(probe)
        registry = MetricsRegistry()
        indexed = ProfileMatcher(store, registry=registry)
        scan = ProfileMatcher(store, registry=MetricsRegistry(), use_index=False)

        assert indexed.match_job(features) == scan.match_job(features)
        for number, spec in enumerate(second):
            store.put(make_profile(f"late{number}", spec), make_static(spec))
        if delete < len(job_ids):
            store.delete(job_ids[delete])
        assert indexed.match_job(features) == scan.match_job(features)
        sides = 2 if features.has_reduce else 1
        assert_no_silent_fallback(registry, expected_hits=2 * sides)


def _spec(**overrides):
    """A deterministic baseline job spec for the unit tests."""
    spec = {
        "map_flow": (0.5, 0.5, 1.0, 1.0),
        "map_costs": (1.0, 1.0, 1.0, 1.0, 1.0),
        "has_reduce": True,
        "red_flow": (0.7, 0.7),
        "red_costs": (1.0, 1.0, 1.0, 1.0),
        "input_bytes": 1 << 30,
        "map_cfg": 0,
        "red_cfg": 1,
        "statics": {name: "alpha" for name in CATEGORICAL_NAMES},
    }
    spec.update(overrides)
    return spec


class TestCoherence:
    def test_incremental_put_is_visible_without_rebuild(self):
        registry = MetricsRegistry()
        store, __ = build_store([_spec()], registry=registry)
        index = store.match_index()
        index.ensure_fresh()
        rebuilds = registry.counter("pstorm_matcher_index_rebuilds_total")
        assert rebuilds.value == 1

        late = _spec(input_bytes=2 << 30)
        new_id = store.put(make_profile("late", late), make_static(late))
        index.ensure_fresh()
        assert rebuilds.value == 1  # applied incrementally, no snapshot scan
        assert index.generation == store.generation
        survivors = index.euclidean_stage("map", "flow", [0.5, 0.5, 1.0, 1.0], 10.0)
        assert new_id in survivors

    def test_delete_marks_row_dead_without_rebuild(self):
        registry = MetricsRegistry()
        store, job_ids = build_store([_spec(), _spec(input_bytes=42)], registry=registry)
        index = store.match_index()
        index.ensure_fresh()
        rebuilds = registry.counter("pstorm_matcher_index_rebuilds_total")
        store.delete(job_ids[0])
        index.ensure_fresh()
        assert rebuilds.value == 1
        survivors = index.euclidean_stage("map", "flow", [0.5, 0.5, 1.0, 1.0], 10.0)
        assert job_ids[0] not in survivors
        assert job_ids[1] in survivors

    def test_overwrite_escalates_to_rebuild(self):
        registry = MetricsRegistry()
        store, job_ids = build_store([_spec()], registry=registry)
        index = store.match_index()
        index.ensure_fresh()
        rebuilds = registry.counter("pstorm_matcher_index_rebuilds_total")
        updated = _spec(input_bytes=7)
        store.put(make_profile("job0", updated), make_static(updated), job_id=job_ids[0])
        index.ensure_fresh()
        assert rebuilds.value == 2  # in-place history is not replayable
        assert index.generation == store.generation
        tie = index.tie_break(job_ids, 7, {}, "map")
        assert tie == job_ids[0]

    def test_generation_tracks_every_write(self):
        store, job_ids = build_store([_spec(), _spec()])
        index = store.match_index()
        index.ensure_fresh()
        before = index.generation
        store.delete(job_ids[1])
        assert store.generation == before + 1
        index.ensure_fresh()
        assert index.generation == store.generation

    def test_cold_index_builds_on_first_probe(self):
        registry = MetricsRegistry()
        store, __ = build_store([_spec()], registry=registry)
        matcher = ProfileMatcher(store, registry=registry)
        outcome = matcher.match_job(make_features(_spec()))
        assert outcome.matched
        assert registry.counter("pstorm_matcher_index_rebuilds_total").value == 1
        assert store.match_index().stats()["live_rows"] == 1


class TestFallbackLadder:
    def test_matcher_opt_out_counts_disabled_miss(self):
        store, __ = build_store([_spec()])
        registry = MetricsRegistry()
        matcher = ProfileMatcher(store, registry=registry, use_index=False)
        assert matcher.match_job(make_features(_spec())).matched
        assert registry.counter("pstorm_matcher_index_hits_total").value == 0
        disabled = registry.counter(
            "pstorm_matcher_index_misses_total", labels={"reason": "disabled"}
        )
        assert disabled.value == 2  # one miss per side

    def test_store_opt_out_counts_disabled_miss(self):
        store, __ = build_store([_spec()], enable_index=False)
        assert store.match_index() is None
        registry = MetricsRegistry()
        matcher = ProfileMatcher(store, registry=registry)
        assert matcher.match_job(make_features(_spec())).matched
        disabled = registry.counter(
            "pstorm_matcher_index_misses_total", labels={"reason": "disabled"}
        )
        assert disabled.value == 2

    def test_duck_typed_store_without_accessor_is_unavailable(self):
        store, __ = build_store([_spec()])

        class ScanOnly:
            """A store double exposing only the scan-path surface."""

            def __init__(self, inner):
                for name in (
                    "euclidean_stage",
                    "cfg_stage",
                    "jaccard_stage",
                    "get_dynamic",
                    "get_static",
                    "get_profile",
                    "job_ids",
                ):
                    setattr(self, name, getattr(inner, name))

        registry = MetricsRegistry()
        matcher = ProfileMatcher(ScanOnly(store), registry=registry)
        assert matcher.match_job(make_features(_spec())).matched
        unavailable = registry.counter(
            "pstorm_matcher_index_misses_total", labels={"reason": "unavailable"}
        )
        assert unavailable.value == 2
        assert registry.counter("pstorm_matcher_index_hits_total").value == 0

    def test_statics_first_ablation_never_probes_the_index(self):
        store, __ = build_store([_spec()])
        registry = MetricsRegistry()
        matcher = StaticsFirstMatcher(store, registry=registry)
        matcher.match_job(make_features(_spec()))
        assert registry.counter("pstorm_matcher_index_hits_total").value == 0

    def test_poisoned_rebuild_falls_back_then_recovers(self):
        # Replay the population against an empty plan to learn the op
        # index of the first probe-time substrate operation, then poison
        # exactly that operation: the index rebuild's snapshot scan.
        specs = [_spec(), _spec(input_bytes=123)]
        rehearsal = FaultInjector(FaultPlan(), registry=MetricsRegistry())
        build_store(specs, chaos=rehearsal)
        fault_at = rehearsal.operations_seen

        plan = FaultPlan(
            faults=(
                FaultSpec(
                    op="scan",
                    kind="transient",
                    start_after=fault_at,
                    stop_after=fault_at + 1,
                ),
            )
        )
        injector = FaultInjector(plan, registry=MetricsRegistry())
        store, __ = build_store(specs, chaos=injector)
        registry = MetricsRegistry()
        matcher = ProfileMatcher(store, registry=registry)
        features = make_features(_spec())

        # Probe 1: the rebuild scan faults -> poisoned -> scan fallback.
        assert matcher.match_side(features, "map").matched
        poisoned = registry.counter(
            "pstorm_matcher_index_misses_total", labels={"reason": "poisoned"}
        )
        assert poisoned.value == 1
        assert injector.summary() == {"scan/transient": 1}

        # Probe 2: the fault window has passed; the index heals and
        # answers, no further misses.
        assert matcher.match_side(features, "map").matched
        assert poisoned.value == 1
        assert registry.counter("pstorm_matcher_index_hits_total").value == 1


class TestStageParityEdges:
    """Deterministic pins for the trickiest scan-path corner cases."""

    def test_probe_column_missing_from_store_fails_jaccard(self):
        spec = _spec()
        store, job_ids = build_store([spec])
        index = store.match_index()
        index.ensure_fresh()
        probe = dict(spec["statics"])
        probe["PARAM_window"] = "10"  # never stored -> row must fail
        assert index.jaccard_stage(probe, 0.0, job_ids) == []
        assert store.jaccard_stage(probe, 0.0, job_ids) == []

    def test_empty_probe_statics_passes_everyone(self):
        store, job_ids = build_store([_spec()])
        index = store.match_index()
        index.ensure_fresh()
        assert index.jaccard_stage({}, 1.0, job_ids) == sorted(job_ids)

    def test_tie_break_empty_value_reads_missing_as_agreement(self):
        spec = _spec()
        store, job_ids = build_store([spec])
        index = store.match_index()
        index.ensure_fresh()
        # A probe key the store never saw, with value "": the scan path
        # reads the missing stored value as "" and calls that agreement.
        statics = {"PARAM_window": ""}
        matcher = ProfileMatcher(store, use_index=False, registry=MetricsRegistry())
        scan_winner = matcher._tie_break(job_ids, 0, statics, "map")
        assert index.tie_break(job_ids, 0, statics, "map") == scan_winner
