"""Tests for the from-scratch GBRT learner."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.gbrt import GbrtModel, GbrtParams, fit_gbrt


def _toy_data(n=250, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, 1, size=(n, 5))
    y = 3.0 * x[:, 0] - 2.0 * x[:, 2] + rng.normal(0, 0.05, n)
    return x, y


class TestParams:
    def test_invalid_distribution_rejected(self):
        with pytest.raises(ValueError):
            GbrtParams(distribution="poisson")

    def test_invalid_fractions_rejected(self):
        with pytest.raises(ValueError):
            GbrtParams(train_fraction=0.0)
        with pytest.raises(ValueError):
            GbrtParams(bag_fraction=1.5)


class TestFit:
    def test_learns_linear_signal(self):
        x, y = _toy_data()
        params = GbrtParams(n_trees=200, shrinkage=0.1, cv_folds=0, train_fraction=1.0)
        model = fit_gbrt(x, y, params, seed=1)
        residual = np.abs(model.predict(x, n_trees=200) - y).mean()
        assert residual < 0.25

    def test_laplace_learns_too(self):
        x, y = _toy_data()
        params = GbrtParams(
            n_trees=200, shrinkage=0.1, distribution="laplace",
            cv_folds=0, train_fraction=1.0,
        )
        model = fit_gbrt(x, y, params, seed=1)
        assert np.abs(model.predict(x, n_trees=200) - y).mean() < 0.4

    def test_more_trees_fit_better(self):
        x, y = _toy_data()
        params = GbrtParams(n_trees=150, shrinkage=0.05, cv_folds=0, train_fraction=1.0)
        model = fit_gbrt(x, y, params, seed=2)
        few = np.abs(model.predict(x, n_trees=10) - y).mean()
        many = np.abs(model.predict(x, n_trees=150) - y).mean()
        assert many < few

    def test_cv_selects_iteration(self):
        x, y = _toy_data()
        params = GbrtParams(n_trees=80, shrinkage=0.1, cv_folds=4, train_fraction=1.0)
        model = fit_gbrt(x, y, params, seed=3)
        assert 1 <= model.best_iteration <= 80
        assert model.cv_curve is not None
        assert len(model.cv_curve) == 80

    def test_default_predict_uses_best_iteration(self):
        x, y = _toy_data()
        params = GbrtParams(n_trees=60, shrinkage=0.1, cv_folds=3, train_fraction=1.0)
        model = fit_gbrt(x, y, params, seed=4)
        default = model.predict(x)
        explicit = model.predict(x, n_trees=model.best_iteration)
        assert np.allclose(default, explicit)

    def test_train_fraction_limits_rows(self):
        x, y = _toy_data(n=300)
        x[200:] += 100.0  # held-out rows live elsewhere in feature space
        params = GbrtParams(n_trees=30, shrinkage=0.1, cv_folds=0, train_fraction=0.5)
        model = fit_gbrt(x, y, params, seed=5)
        assert model.predict(x[:5]).shape == (5,)

    def test_deterministic_under_seed(self):
        x, y = _toy_data()
        params = GbrtParams(n_trees=40, shrinkage=0.1, cv_folds=0, train_fraction=1.0)
        a = fit_gbrt(x, y, params, seed=7).predict(x, 40)
        b = fit_gbrt(x, y, params, seed=7).predict(x, 40)
        assert np.array_equal(a, b)

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(ValueError):
            fit_gbrt(np.zeros((5, 2)), np.zeros(4), GbrtParams())

    def test_single_row_prediction(self):
        x, y = _toy_data()
        params = GbrtParams(n_trees=20, shrinkage=0.1, cv_folds=0, train_fraction=1.0)
        model = fit_gbrt(x, y, params, seed=8)
        assert model.predict(x[0]).shape == (1,)

    @given(st.integers(min_value=30, max_value=120))
    @settings(max_examples=5, deadline=None)
    def test_constant_target_predicts_constant(self, n):
        rng = np.random.default_rng(n)
        x = rng.uniform(0, 1, size=(n, 3))
        y = np.full(n, 4.2)
        params = GbrtParams(n_trees=10, shrinkage=0.1, cv_folds=0, train_fraction=1.0)
        model = fit_gbrt(x, y, params, seed=0)
        assert np.allclose(model.predict(x, 10), 4.2, atol=1e-6)
