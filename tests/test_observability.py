"""Unit tests for the observability subsystem.

Covers instrument semantics (counter/gauge/histogram, bucket edges,
quantiles, reset), registry behaviour (get-or-create, kind conflicts,
disabled no-ops), span production (nesting, ordering, ring-buffer
eviction), and the three export formats.
"""

import json
import math

import pytest

from repro.observability import (
    DEFAULT_BUCKETS,
    DISABLED_REGISTRY,
    DISABLED_TRACER,
    SIMULATED_CLOCK,
    WALL_CLOCK,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Tracer,
    default_registry,
    default_tracer,
    get_registry,
    get_tracer,
    set_default_registry,
    set_default_tracer,
)
from repro.observability import export


# ----------------------------------------------------------------------
# Counters and gauges
# ----------------------------------------------------------------------
class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("requests_total")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_rejected(self):
        counter = Counter("requests_total")
        with pytest.raises(ValueError):
            counter.inc(-1.0)
        assert counter.value == 0.0

    def test_reset(self):
        counter = Counter("requests_total")
        counter.inc(7)
        counter.reset()
        assert counter.value == 0.0


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("in_flight")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13.0
        gauge.dec(20)
        assert gauge.value == -7.0  # gauges may go negative

    def test_reset(self):
        gauge = Gauge("in_flight")
        gauge.set(42)
        gauge.reset()
        assert gauge.value == 0.0


# ----------------------------------------------------------------------
# Histograms
# ----------------------------------------------------------------------
class TestHistogram:
    def test_bucket_edges_are_le_inclusive(self):
        hist = Histogram("h", buckets=(1.0, 2.0))
        for value in (1.0, 1.5, 2.0, 3.0, 0.5):
            hist.observe(value)
        # 0.5 and 1.0 fall in le=1; 1.5 and 2.0 in le=2; 3.0 overflows.
        assert hist.bucket_counts() == [
            (1.0, 2),
            (2.0, 4),
            (math.inf, 5),
        ]

    def test_count_sum_min_max(self):
        hist = Histogram("h", buckets=(10.0,))
        for value in (2.0, 4.0, 6.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.sum == pytest.approx(12.0)
        assert hist.minimum == 2.0
        assert hist.maximum == 6.0

    def test_empty_histogram(self):
        hist = Histogram("h")
        assert hist.count == 0
        assert hist.minimum is None
        assert hist.maximum is None
        assert hist.quantile(0.5) is None
        assert hist.bucket_counts()[-1] == (math.inf, 0)

    def test_single_observation_quantiles_exact(self):
        hist = Histogram("h", buckets=DEFAULT_BUCKETS)
        hist.observe(0.42)
        for q in (0.0, 0.5, 0.9, 0.99, 1.0):
            assert hist.quantile(q) == pytest.approx(0.42)

    def test_quantiles_ordered_and_bounded(self):
        hist = Histogram("h", buckets=(1.0, 5.0, 10.0, 50.0, 100.0))
        for value in range(1, 100):
            hist.observe(float(value))
        p50, p90, p99 = (hist.quantile(q) for q in (0.5, 0.9, 0.99))
        assert hist.minimum <= p50 <= p90 <= p99 <= hist.maximum
        # The interpolated median of 1..99 lands near 50.
        assert p50 == pytest.approx(50.0, rel=0.25)

    def test_quantile_out_of_range(self):
        hist = Histogram("h")
        with pytest.raises(ValueError):
            hist.quantile(1.5)
        with pytest.raises(ValueError):
            hist.quantile(-0.1)

    def test_summary_keys(self):
        hist = Histogram("h")
        hist.observe(0.3)
        summary = hist.summary()
        assert set(summary) == {"count", "sum", "min", "max", "p50", "p90", "p99"}
        assert summary["count"] == 1

    def test_reset(self):
        hist = Histogram("h", buckets=(1.0,))
        hist.observe(0.5)
        hist.reset()
        assert hist.count == 0
        assert hist.sum == 0.0
        assert hist.bucket_counts() == [(1.0, 0), (math.inf, 0)]

    def test_invalid_boundaries_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, math.inf))


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        a = registry.counter("jobs_total", "jobs")
        b = registry.counter("jobs_total")
        assert a is b
        assert len(registry) == 1

    def test_labels_distinguish_instruments(self):
        registry = MetricsRegistry()
        a = registry.counter("ops_total", labels={"table": "Jobs"})
        b = registry.counter("ops_total", labels={"table": "Meta"})
        assert a is not b
        a.inc(3)
        assert registry.get("ops_total", labels={"table": "Jobs"}).value == 3
        assert registry.get("ops_total", labels={"table": "Meta"}).value == 0

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ValueError):
            registry.gauge("x_total")
        with pytest.raises(ValueError):
            registry.histogram("x_total")

    def test_invalid_name_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad name")
        with pytest.raises(ValueError):
            registry.counter("0starts_with_digit")

    def test_names_and_collect_sorted(self):
        registry = MetricsRegistry()
        registry.gauge("zeta")
        registry.counter("alpha")
        assert registry.names() == ["alpha", "zeta"]
        assert [i.name for i in registry.collect()] == ["alpha", "zeta"]

    def test_reset_keeps_registrations(self):
        registry = MetricsRegistry()
        registry.counter("a_total").inc(5)
        registry.reset()
        assert len(registry) == 1
        assert registry.get("a_total").value == 0.0

    def test_clear_forgets_everything(self):
        registry = MetricsRegistry()
        registry.counter("a_total")
        registry.clear()
        assert len(registry) == 0
        assert registry.get("a_total") is None

    def test_disabled_registry_is_noop(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("a_total")
        counter.inc(100)
        gauge = registry.gauge("g")
        gauge.set(5)
        hist = registry.histogram("h")
        hist.observe(1.0)
        assert len(registry) == 0
        assert counter.value == 0.0
        assert hist.count == 0
        assert hist.summary()["count"] == 0
        # Shared singletons: no per-call allocation on the disabled path.
        assert registry.counter("b_total") is counter
        assert DISABLED_REGISTRY.counter("c_total") is counter


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_span_nesting_and_completion_order(self):
        tracer = Tracer()
        with tracer.span("outer", job="wc") as outer:
            assert tracer.current_span() is outer
            with tracer.span("inner") as inner:
                assert tracer.current_span() is inner
            assert tracer.current_span() is outer
        assert tracer.current_span() is None
        # Children complete (and are buffered) before their parents.
        completed = tracer.spans()
        assert [s.name for s in completed] == ["inner", "outer"]
        assert completed[0].parent_id == completed[1].span_id
        assert completed[1].parent_id is None
        assert completed[1].attrs == {"job": "wc"}
        for span in completed:
            assert span.end is not None
            assert span.duration >= 0.0
            assert span.clock == WALL_CLOCK

    def test_set_attr_inside_block(self):
        tracer = Tracer()
        with tracer.span("probe") as span:
            span.set_attr("matched", True)
        assert tracer.spans("probe")[0].attrs["matched"] is True

    def test_record_span_parented_under_active_span(self):
        tracer = Tracer()
        with tracer.span("run_job") as parent:
            recorded = tracer.record_span(
                "map_task", start=0.0, end=12.5, attrs={"task_id": 3}
            )
        assert recorded.parent_id == parent.span_id
        assert recorded.clock == SIMULATED_CLOCK
        assert recorded.duration == pytest.approx(12.5)
        # Simulated spans are buffered immediately, before the parent.
        assert [s.name for s in tracer.spans()] == ["map_task", "run_job"]

    def test_spans_filtering(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.record_span("b", 0.0, 1.0)
        assert [s.name for s in tracer.spans(name="a")] == ["a"]
        assert [s.name for s in tracer.spans(clock=SIMULATED_CLOCK)] == ["b"]
        assert [s.name for s in tracer.spans(clock=WALL_CLOCK)] == ["a"]

    def test_ring_buffer_eviction(self):
        tracer = Tracer(capacity=3)
        for i in range(5):
            tracer.record_span(f"s{i}", 0.0, 1.0)
        assert len(tracer) == 3
        assert tracer.dropped == 2
        assert [s.name for s in tracer.spans()] == ["s2", "s3", "s4"]

    def test_reset(self):
        tracer = Tracer(capacity=1)
        tracer.record_span("a", 0.0, 1.0)
        tracer.record_span("b", 0.0, 1.0)
        tracer.reset()
        assert len(tracer) == 0
        assert tracer.dropped == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("a") as span:
            span.set_attr("k", "v")  # must not raise
        assert tracer.record_span("b", 0.0, 1.0) is None
        assert len(tracer) == 0
        assert len(DISABLED_TRACER) == 0


# ----------------------------------------------------------------------
# Module defaults and dependency injection
# ----------------------------------------------------------------------
class TestDefaults:
    def test_get_registry_prefers_explicit(self):
        mine = MetricsRegistry()
        assert get_registry(mine) is mine
        assert get_registry(None) is default_registry()
        tracer = Tracer()
        assert get_tracer(tracer) is tracer
        assert get_tracer(None) is default_tracer()

    def test_set_default_roundtrip(self):
        replacement = MetricsRegistry()
        previous = set_default_registry(replacement)
        try:
            assert default_registry() is replacement
        finally:
            set_default_registry(previous)
        assert default_registry() is previous

        new_tracer = Tracer()
        old_tracer = set_default_tracer(new_tracer)
        try:
            assert default_tracer() is new_tracer
        finally:
            set_default_tracer(old_tracer)


# ----------------------------------------------------------------------
# Export formats
# ----------------------------------------------------------------------
def _populated_registry():
    registry = MetricsRegistry()
    registry.counter("jobs_total", "jobs run").inc(4)
    registry.counter("rows_total", labels={"table": "Jobs"}).inc(7)
    registry.gauge("waves", "map waves").set(2)
    hist = registry.histogram("latency_seconds", "op latency", buckets=(0.1, 1.0))
    hist.observe(0.05)
    hist.observe(0.5)
    hist.observe(5.0)
    return registry


class TestExport:
    def test_registry_to_dict(self):
        snapshot = export.registry_to_dict(_populated_registry())
        assert snapshot["counters"]["jobs_total"] == 4.0
        assert snapshot["counters"]['rows_total{table="Jobs"}'] == 7.0
        assert snapshot["gauges"]["waves"] == 2.0
        hist = snapshot["histograms"]["latency_seconds"]
        assert hist["count"] == 3
        assert hist["buckets"] == [
            {"le": "0.1", "count": 1},
            {"le": "1", "count": 2},
            {"le": "+Inf", "count": 3},
        ]
        assert hist["min"] == 0.05
        assert hist["max"] == 5.0

    def test_json_roundtrips(self):
        registry = _populated_registry()
        tracer = Tracer()
        with tracer.span("outer"):
            tracer.record_span("task", 0.0, 3.0, attrs={"task_id": 1})
        text = export.to_json(registry, tracer)
        parsed = json.loads(text)
        assert parsed == export.snapshot(registry, tracer)
        assert parsed["trace"]["capacity"] == tracer.capacity
        assert parsed["trace"]["dropped"] == 0
        names = [s["name"] for s in parsed["trace"]["spans"]]
        assert names == ["task", "outer"]
        spans = parsed["trace"]["spans"]
        assert spans[0]["parent_id"] == spans[1]["span_id"]
        assert spans[0]["duration"] == pytest.approx(3.0)

    def test_prometheus_text_format(self):
        text = export.to_prometheus(_populated_registry())
        lines = text.splitlines()
        assert "# HELP jobs_total jobs run" in lines
        assert "# TYPE jobs_total counter" in lines
        assert "jobs_total 4" in lines
        assert 'rows_total{table="Jobs"} 7' in lines
        assert "# TYPE waves gauge" in lines
        assert "waves 2" in lines
        assert "# TYPE latency_seconds histogram" in lines
        assert 'latency_seconds_bucket{le="0.1"} 1' in lines
        assert 'latency_seconds_bucket{le="1"} 2' in lines
        assert 'latency_seconds_bucket{le="+Inf"} 3' in lines
        assert "latency_seconds_count 3" in lines
        assert any(line.startswith("latency_seconds_sum ") for line in lines)
        assert text.endswith("\n")

    def test_empty_registry_exports(self):
        registry = MetricsRegistry()
        assert export.registry_to_dict(registry) == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        assert export.to_prometheus(registry) == ""
        parsed = json.loads(export.to_json(registry, Tracer()))
        assert parsed["trace"]["spans"] == []
