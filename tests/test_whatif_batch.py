"""Property tests: the batched What-If path is bit-identical to scalar.

The batched engine mirrors the scalar operation tree exactly (same
association order, same truncation points, scalar libm for the
transcendentals), so every comparison here is exact ``==`` — no
tolerances anywhere.  Random profiles/configs come from hypothesis;
the CBO equivalence test additionally walks both search paths end to
end and demands byte-identical recommendations.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hadoop.cluster import ec2_cluster
from repro.hadoop.config import CONFIGURATION_SPACE, JobConfiguration
from repro.starfish.cbo import CostBasedOptimizer
from repro.starfish.profile import JobProfile, SideProfile
from repro.starfish.whatif import WhatIfEngine

CLUSTER = ec2_cluster()


def _finite(low: float, high: float):
    return st.floats(low, high, allow_nan=False, allow_infinity=False)


@st.composite
def map_profiles(draw) -> SideProfile:
    return SideProfile(
        side="map",
        data_flow={
            "MAP_SIZE_SEL": draw(_finite(0.05, 20.0)),
            "MAP_PAIRS_SEL": draw(_finite(0.1, 20.0)),
            "COMBINE_SIZE_SEL": draw(_finite(0.1, 1.0)),
            "COMBINE_PAIRS_SEL": draw(_finite(0.05, 1.0)),
        },
        cost_factors={
            "READ_HDFS_IO_COST": draw(_finite(1.0, 200.0)),
            "READ_LOCAL_IO_COST": draw(_finite(1.0, 100.0)),
            "WRITE_LOCAL_IO_COST": draw(_finite(1.0, 100.0)),
            "MAP_CPU_COST": draw(_finite(10.0, 5000.0)),
            "COMBINE_CPU_COST": draw(_finite(10.0, 2000.0)),
        },
        statistics={
            "INPUT_RECORD_BYTES": draw(_finite(1.0, 2000.0)),
            # 0.0 exercises the avg-record fallback path in the model.
            "INTERMEDIATE_RECORD_BYTES": draw(
                st.one_of(st.just(0.0), _finite(1.0, 500.0))
            ),
            "FRAMEWORK_CPU_COST": draw(_finite(50.0, 2000.0)),
            "NETWORK_COST": draw(_finite(1.0, 100.0)),
            "COMPRESS_CPU_COST": draw(_finite(0.5, 20.0)),
            "DECOMPRESS_CPU_COST": draw(_finite(0.5, 20.0)),
            "HAS_COMBINER": float(draw(st.booleans())),
        },
        phase_times={},
        num_tasks=draw(st.integers(1, 64)),
    )


@st.composite
def reduce_profiles(draw) -> SideProfile:
    return SideProfile(
        side="reduce",
        data_flow={
            "RED_SIZE_SEL": draw(_finite(0.05, 5.0)),
            "RED_PAIRS_SEL": draw(_finite(0.05, 5.0)),
        },
        cost_factors={
            "READ_LOCAL_IO_COST": draw(_finite(1.0, 100.0)),
            "WRITE_LOCAL_IO_COST": draw(_finite(1.0, 100.0)),
            "WRITE_HDFS_IO_COST": draw(_finite(1.0, 200.0)),
            "REDUCE_CPU_COST": draw(_finite(10.0, 5000.0)),
        },
        statistics={
            "RECORDS_PER_GROUP": draw(_finite(1.0, 1000.0)),
            "OUT_RECORDS_PER_GROUP": draw(_finite(0.0, 10.0)),
            "OUTPUT_RECORD_BYTES": draw(_finite(0.0, 2000.0)),
            "REDUCE_SKEW": draw(_finite(1.0, 4.0)),
            "FRAMEWORK_CPU_COST": draw(_finite(50.0, 2000.0)),
            "NETWORK_COST": draw(_finite(1.0, 100.0)),
            "COMPRESS_CPU_COST": draw(_finite(0.5, 20.0)),
            "DECOMPRESS_CPU_COST": draw(_finite(0.5, 20.0)),
        },
        phase_times={},
        num_tasks=draw(st.integers(1, 64)),
    )


@st.composite
def job_profiles(draw) -> JobProfile:
    return JobProfile(
        job_name="prop",
        dataset_name="prop-data",
        input_bytes=draw(st.integers(1 << 20, 4 << 30)),
        split_bytes=draw(st.integers(1 << 20, 256 << 20)),
        num_map_tasks=draw(st.integers(1, 512)),
        num_reduce_tasks=draw(st.integers(0, 64)),
        map_profile=draw(map_profiles()),
        reduce_profile=draw(st.one_of(st.none(), reduce_profiles())),
    )


@st.composite
def configurations(draw) -> JobConfiguration:
    attrs = {}
    for spec in CONFIGURATION_SPACE:
        if spec.kind == "bool":
            attrs[spec.attribute] = draw(st.booleans())
        elif spec.kind == "int":
            attrs[spec.attribute] = draw(st.integers(int(spec.low), int(spec.high)))
        else:
            attrs[spec.attribute] = draw(_finite(float(spec.low), float(spec.high)))
    return JobConfiguration(**attrs)


def _as_matrix(configs: list[JobConfiguration]) -> np.ndarray:
    return np.array(
        [
            [float(getattr(config, spec.attribute)) for spec in CONFIGURATION_SPACE]
            for config in configs
        ]
    )


data_sizes = st.one_of(st.none(), st.integers(1_000, 10**11))


class TestBatchBitIdentity:
    @settings(max_examples=120, deadline=None)
    @given(
        profile=job_profiles(),
        configs=st.lists(configurations(), min_size=1, max_size=6),
        data_bytes=data_sizes,
    )
    def test_predict_batch_matches_scalar(self, profile, configs, data_bytes):
        engine = WhatIfEngine(CLUSTER)
        batch = engine.predict_batch(profile, configs, data_bytes)
        assert len(batch) == len(configs)
        for index, config in enumerate(configs):
            scalar = engine.predict(profile, config, data_bytes)
            batched = batch.prediction(index)
            assert batched.runtime_seconds == scalar.runtime_seconds
            assert batched.map_task_seconds == scalar.map_task_seconds
            assert batched.reduce_task_seconds == scalar.reduce_task_seconds
            assert batched.num_map_tasks == scalar.num_map_tasks
            assert batched.num_reduce_tasks == scalar.num_reduce_tasks
            assert batched.map_phases == scalar.map_phases
            assert batched.reduce_phases == scalar.reduce_phases

    @settings(max_examples=60, deadline=None)
    @given(
        profile=job_profiles(),
        configs=st.lists(configurations(), min_size=1, max_size=6),
        data_bytes=data_sizes,
    )
    def test_predict_matrix_matches_batch(self, profile, configs, data_bytes):
        engine = WhatIfEngine(CLUSTER)
        from_configs = engine.predict_batch(profile, configs, data_bytes)
        from_matrix = engine.predict_matrix(profile, _as_matrix(configs), data_bytes)
        assert list(from_matrix.runtime_seconds) == list(
            from_configs.runtime_seconds
        )
        assert list(from_matrix.reduce_task_seconds) == list(
            from_configs.reduce_task_seconds
        )


class TestCboEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(profile=job_profiles(), seed=st.integers(0, 2**32 - 1))
    def test_batched_search_matches_sequential(self, profile, seed):
        cbo = CostBasedOptimizer(
            WhatIfEngine(CLUSTER),
            num_samples=20,
            refine_rounds=2,
            elite=3,
            perturbations_per_elite=4,
            seed=seed,
        )
        batched = cbo.optimize(profile)
        sequential = cbo.optimize_sequential(profile)
        assert batched.best_config == sequential.best_config
        assert batched.predicted_runtime == sequential.predicted_runtime
        assert batched.evaluations == sequential.evaluations
        assert (
            batched.default_predicted_runtime
            == sequential.default_predicted_runtime
        )

    @settings(max_examples=10, deadline=None)
    @given(profile=job_profiles(), seed=st.integers(0, 2**16))
    def test_reducer_cap_respected_both_paths(self, profile, seed):
        cbo = CostBasedOptimizer(
            WhatIfEngine(CLUSTER),
            num_samples=12,
            refine_rounds=1,
            elite=2,
            perturbations_per_elite=3,
            max_reducers=4,
            seed=seed,
        )
        batched = cbo.optimize(profile)
        sequential = cbo.optimize_sequential(profile)
        assert batched.best_config == sequential.best_config
        assert batched.best_config.num_reduce_tasks <= 4
