"""Property-based tests: observability must never change behaviour.

Instrumentation is only trustworthy if it is invisible to the system it
watches.  Hypothesis drives random configurations through a shared
warm-cache engine and asserts (a) turning observability on or off leaves
the execution bit-identical, and (b) because every engine metric lives
on the *simulated* clock, two instrumented runs under the same seed
produce identical metric snapshots and identical simulated span traces.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.hadoop import (
    Dataset,
    FunctionRecordSource,
    HadoopEngine,
    JobConfiguration,
    MapReduceJob,
    ec2_cluster,
)
from repro.observability import SIMULATED_CLOCK, MetricsRegistry, Tracer
from repro.observability.export import registry_to_dict

MB = 1 << 20


def _lines(split_index, rng):
    words = [f"w{i}" for i in range(25)]
    return [
        (i, " ".join(words[int(rng.integers(0, 25))] for __ in range(6)))
        for i in range(60)
    ]


def _wc_map(key, line, ctx):
    for word in line.split():
        ctx.emit(word, 1)


def _wc_reduce(word, counts, ctx):
    total = 0
    for count in counts:
        total += count
        ctx.report_ops(1)
    ctx.emit(word, total)


_ENGINE = HadoopEngine(ec2_cluster())
_DATASET = Dataset("obs-prop-text", nominal_bytes=192 * MB,
                   source=FunctionRecordSource(_lines), seed=11)
_JOB = MapReduceJob(
    name="obs-prop-wordcount", mapper=_wc_map, reducer=_wc_reduce,
    combiner=_wc_reduce,
)

configurations = st.builds(
    JobConfiguration,
    io_sort_mb=st.integers(min_value=16, max_value=1024),
    io_sort_spill_percent=st.floats(min_value=0.2, max_value=0.95),
    use_combiner=st.booleans(),
    compress_map_output=st.booleans(),
    num_reduce_tasks=st.integers(min_value=1, max_value=64),
    reduce_slowstart=st.floats(min_value=0.0, max_value=1.0),
)


def _run(config, registry, tracer, seed=1):
    _ENGINE.registry = registry
    _ENGINE.tracer = tracer
    try:
        return _ENGINE.run_job(_JOB, _DATASET, config, seed=seed)
    finally:
        _ENGINE.registry = None
        _ENGINE.tracer = None


def _fingerprint(execution):
    """Every numeric outcome of a run, exact (no tolerances)."""
    return (
        execution.runtime_seconds,
        execution.input_bytes,
        tuple(
            (t.task_id, t.node_id, t.duration,
             t.map_output_bytes, t.map_output_records,
             tuple(float(b) for b in t.partition_bytes))
            for t in execution.map_tasks
        ),
        tuple(
            (t.task_id, t.partition, t.duration,
             t.shuffle_bytes, t.shuffle_records)
            for t in execution.reduce_tasks
        ),
        execution.counters.to_dict(),
    )


def _simulated_trace(tracer):
    return [
        (s.name, s.start, s.end, tuple(sorted(s.attrs.items())))
        for s in tracer.spans(clock=SIMULATED_CLOCK)
    ]


@given(config=configurations)
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_results_identical_with_observability_on_or_off(config):
    off = _run(config, MetricsRegistry(enabled=False), Tracer(enabled=False))
    on = _run(config, MetricsRegistry(), Tracer())
    assert _fingerprint(off) == _fingerprint(on)


@given(config=configurations)
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_metrics_deterministic_under_fixed_seed(config):
    # Warm the measurement caches for this config's (combined) variant so
    # both instrumented runs see identical cache hit/miss counts.
    _run(config, MetricsRegistry(enabled=False), Tracer(enabled=False))

    first_registry, first_tracer = MetricsRegistry(), Tracer()
    _run(config, first_registry, first_tracer)
    second_registry, second_tracer = MetricsRegistry(), Tracer()
    _run(config, second_registry, second_tracer)

    assert registry_to_dict(first_registry) == registry_to_dict(second_registry)
    trace = _simulated_trace(first_tracer)
    assert trace == _simulated_trace(second_tracer)
    assert trace  # the engine actually emitted simulated spans


@given(config=configurations)
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_disabled_observability_allocates_nothing(config):
    registry = MetricsRegistry(enabled=False)
    tracer = Tracer(enabled=False)
    _run(config, registry, tracer)
    assert len(registry) == 0
    assert len(tracer) == 0
    assert tracer.dropped == 0
