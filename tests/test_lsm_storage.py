"""Tests for the LSM write path (WAL, memstore, HFiles, compaction)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hbase import LsmStore


class TestWritePath:
    def test_put_lands_in_memstore_and_wal(self):
        store = LsmStore(flush_threshold=10)
        store.put("k", 1)
        assert store.memstore == {"k": 1}
        assert len(store.wal) == 1
        assert store.hfiles == []

    def test_flush_at_threshold(self):
        store = LsmStore(flush_threshold=3, compaction_threshold=100)
        for i in range(3):
            store.put(f"k{i}", i)
        assert store.memstore == {}
        assert store.wal == []
        assert len(store.hfiles) == 1
        assert store.flushes == 1

    def test_hfiles_are_sorted(self):
        store = LsmStore(flush_threshold=3, compaction_threshold=100)
        for key in ("c", "a", "b"):
            store.put(key, key)
        hfile = store.hfiles[0]
        assert list(hfile.keys) == sorted(hfile.keys)

    def test_manual_flush_empty_is_noop(self):
        store = LsmStore()
        store.flush()
        assert store.flushes == 0


class TestReadPath:
    def test_memstore_read_costs_no_files(self):
        store = LsmStore(flush_threshold=100)
        store.put("k", 1)
        found, value, probed = store.get("k")
        assert (found, value, probed) == (True, 1, 0)

    def test_newest_version_wins(self):
        store = LsmStore(flush_threshold=2, compaction_threshold=100)
        store.put("k", 1)
        store.put("pad1", 0)   # flush 1 contains k=1
        store.put("k", 2)
        store.put("pad2", 0)   # flush 2 contains k=2
        found, value, __ = store.get("k")
        assert (found, value) == (True, 2)

    def test_read_amplification_grows_with_files(self):
        store = LsmStore(flush_threshold=2, compaction_threshold=100)
        for i in range(8):
            store.put(f"k{i}", i)
        assert store.read_amplification() == 4
        # The worst case is every file, but the per-SSTable Bloom
        # filters skip blocks that cannot hold the key — reaching the
        # oldest file probes far fewer than all four.
        found, value, probed = store.get("k0")
        assert (found, value) == (True, 0)
        assert 1 <= probed <= store.read_amplification()

    def test_missing_key(self):
        store = LsmStore(flush_threshold=2, compaction_threshold=100)
        store.put("a", 1)
        store.put("b", 2)
        found, value, probed = store.get("zzz")
        assert not found
        # "zzz" is outside every table's key range: zero blocks probed.
        assert probed == 0

    def test_bloom_skips_are_counted(self):
        from repro.observability import MetricsRegistry

        registry = MetricsRegistry()
        store = LsmStore(
            flush_threshold=2, compaction_threshold=100, registry=registry
        )
        # The newer file's key range covers the probe key, so only its
        # Bloom filter can rule it out.
        store.put("b", 1)
        store.put("y", 2)   # flush 1 covers [b, y]
        store.put("a", 3)
        store.put("z", 4)   # flush 2 covers [a, z]
        found, value, probed = store.get("b")  # lives in the older file
        assert (found, value) == (True, 1)

        def metric(name):
            instrument = registry.get(name)
            return 0 if instrument is None else instrument.value

        assert metric("bloom_probes_total") >= 1
        assert probed + metric("bloom_skipped_blocks_total") >= 2

    def test_scan_merges_all_sources(self):
        store = LsmStore(flush_threshold=2, compaction_threshold=100)
        for i in range(5):
            store.put(f"k{i}", i)
        assert dict(store.scan()) == {f"k{i}": i for i in range(5)}


class TestCompaction:
    def test_compaction_at_threshold(self):
        store = LsmStore(flush_threshold=2, compaction_threshold=3)
        for i in range(6):
            store.put(f"k{i}", i)
        assert store.compactions >= 1
        assert store.read_amplification() == 1
        assert dict(store.scan()) == {f"k{i}": i for i in range(6)}

    def test_compaction_keeps_newest(self):
        store = LsmStore(flush_threshold=2, compaction_threshold=100)
        store.put("k", "old")
        store.put("p1", 0)
        store.put("k", "new")
        store.put("p2", 0)
        store.compact()
        found, value, probed = store.get("k")
        assert (found, value, probed) == (True, "new", 1)

    def test_single_file_compaction_noop(self):
        store = LsmStore(flush_threshold=2, compaction_threshold=100)
        store.put("a", 1)
        store.put("b", 2)
        store.compact()
        assert store.compactions == 0


class TestRecovery:
    def test_wal_replay_restores_unflushed_writes(self):
        store = LsmStore(flush_threshold=100)
        store.put("durable", 42)
        recovered = store.recover()
        found, value, __ = recovered.get("durable")
        assert (found, value) == (True, 42)

    def test_recovery_preserves_hfiles(self):
        store = LsmStore(flush_threshold=2, compaction_threshold=100)
        store.put("a", 1)
        store.put("b", 2)   # flushed
        store.put("c", 3)   # in memstore/WAL only
        recovered = store.recover()
        assert dict(recovered.scan()) == {"a": 1, "b": 2, "c": 3}


@given(
    st.lists(
        st.tuples(st.sampled_from([f"k{i}" for i in range(12)]), st.integers()),
        max_size=60,
    )
)
@settings(max_examples=50)
def test_property_lsm_equals_dict(writes):
    """The LSM store must behave exactly like a dict, at any flush and
    compaction cadence."""
    store = LsmStore(flush_threshold=5, compaction_threshold=3)
    reference = {}
    for key, value in writes:
        store.put(key, value)
        reference[key] = value
    assert dict(store.scan()) == reference
    for key, expected in reference.items():
        found, value, __ = store.get(key)
        assert found and value == expected
