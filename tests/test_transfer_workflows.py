"""Tests for cross-cluster transfer (§7.2.6) and workflows (§7.2.5)."""

import pytest

from repro.core import PStorM
from repro.core.transfer import calibration_ratios, transfer_profile
from repro.core.workflows import ChainStage, run_chain
from repro.hadoop import HadoopEngine, JobConfiguration, ec2_cluster
from repro.hadoop.cluster import CostRates
from repro.starfish import StarfishProfiler, WhatIfEngine


@pytest.fixture(scope="module")
def slow_cluster():
    rates = CostRates(
        read_hdfs_ns_per_byte=32.0, write_hdfs_ns_per_byte=50.0,
        read_local_ns_per_byte=18.0, write_local_ns_per_byte=24.0,
        network_ns_per_byte=44.0, cpu_ns_per_record=700.0,
        compress_ns_per_byte=60.0, decompress_ns_per_byte=20.0,
    )
    return ec2_cluster(base_rates=rates, seed=21)


class TestCalibration:
    def test_identity_ratios(self, cluster):
        ratios = calibration_ratios(cluster, cluster)
        assert ratios.disk == pytest.approx(1.0)
        assert ratios.network == pytest.approx(1.0)
        assert ratios.cpu == pytest.approx(1.0)

    def test_slow_to_fast_ratios_below_one(self, slow_cluster, cluster):
        ratios = calibration_ratios(slow_cluster, cluster)
        assert ratios.disk < 1.0
        assert ratios.cpu < 1.0
        assert ratios.network < 1.0

    def test_unknown_names_pass_through(self, slow_cluster, cluster):
        ratios = calibration_ratios(slow_cluster, cluster)
        assert ratios.for_name("RECORDS_PER_GROUP") == 1.0


class TestTransferProfile:
    @pytest.fixture()
    def source_profile(self, slow_cluster, wordcount, small_text):
        profiler = StarfishProfiler(HadoopEngine(slow_cluster))
        profile, __ = profiler.profile_job(wordcount, small_text)
        return profile

    def test_data_flow_untouched(self, source_profile, slow_cluster, cluster):
        adjusted = transfer_profile(source_profile, slow_cluster, cluster)
        assert dict(adjusted.map_profile.data_flow) == dict(
            source_profile.map_profile.data_flow
        )

    def test_cost_factors_scaled_down(self, source_profile, slow_cluster, cluster):
        adjusted = transfer_profile(source_profile, slow_cluster, cluster)
        for name, value in source_profile.map_profile.cost_factors.items():
            assert adjusted.map_profile.cost_factors[name] < value

    def test_source_tagged(self, source_profile, slow_cluster, cluster):
        adjusted = transfer_profile(source_profile, slow_cluster, cluster)
        assert adjusted.source.startswith("transferred(")

    def test_prediction_error_shrinks(
        self, source_profile, slow_cluster, cluster, engine, wordcount, small_text
    ):
        whatif = WhatIfEngine(cluster)
        actual = engine.run_job(wordcount, small_text, JobConfiguration()).runtime_seconds
        raw = whatif.predict(source_profile, JobConfiguration()).runtime_seconds
        adjusted_profile = transfer_profile(source_profile, slow_cluster, cluster)
        adjusted = whatif.predict(adjusted_profile, JobConfiguration()).runtime_seconds
        assert abs(adjusted - actual) < abs(raw - actual)


class TestWorkflows:
    @pytest.fixture()
    def pstorm(self, engine):
        return PStorM(engine)

    def test_chain_validation(self, pstorm, small_text):
        with pytest.raises(ValueError):
            run_chain(pstorm, [], small_text)
        with pytest.raises(ValueError):
            ChainStage(job=None, input_from="sideways")

    def test_two_stage_chain_runs(self, pstorm, wordcount, small_text):
        from repro.hadoop.job import MapReduceJob

        def top_map(word, count, ctx):
            if count > 1:
                ctx.emit(count, word)
            else:
                ctx.report_ops(1)

        def top_reduce(count, words, ctx):
            for word in words:
                ctx.emit(count, word)

        ranker = MapReduceJob(name="rank-by-count", mapper=top_map, reducer=top_reduce)
        result = run_chain(
            pstorm,
            [ChainStage(wordcount, input_from="source"), ChainStage(ranker)],
            small_text,
        )
        assert len(result.stages) == 2
        # Stage 2 consumed stage 1's (word, count) output.
        assert result.stages[1].dataset.name == "wordcount-test-output"
        assert result.total_runtime_seconds > 0

    def test_derived_dataset_size_follows_selectivity(self, pstorm, wordcount, small_text):
        from repro.hadoop.job import MapReduceJob

        def count_map(word, count, ctx):
            ctx.emit("total", count)

        def count_reduce(key, counts, ctx):
            ctx.emit(key, sum(counts))

        totaler = MapReduceJob(name="totaler", mapper=count_map, reducer=count_reduce)
        result = run_chain(
            pstorm,
            [ChainStage(wordcount, input_from="source"), ChainStage(totaler)],
            small_text,
        )
        derived = result.stages[1].dataset
        # Word count aggressively aggregates: output ≪ input.
        assert derived.nominal_bytes < small_text.nominal_bytes

    def test_source_stages_reread_input(self, pstorm, wordcount, small_text):
        result = run_chain(
            pstorm,
            [
                ChainStage(wordcount, input_from="source"),
                ChainStage(wordcount, input_from="source"),
            ],
            small_text,
        )
        assert result.stages[1].dataset is small_text

    def test_second_run_hits_the_store(self, pstorm, wordcount, small_text):
        stages = [ChainStage(wordcount, input_from="source")]
        first = run_chain(pstorm, stages, small_text)
        second = run_chain(pstorm, stages, small_text)
        assert first.matched_stages() == 0
        assert second.matched_stages() == 1

    def test_fim_chain_end_to_end(self, engine):
        from repro.workloads import (
            fim_aggregate_job,
            fim_item_count_job,
            fim_pair_count_job,
            webdocs_dataset,
        )

        pstorm = PStorM(engine)
        stages = [
            ChainStage(fim_item_count_job(), input_from="source"),
            ChainStage(fim_pair_count_job(), input_from="source"),
            ChainStage(fim_aggregate_job(), input_from="source"),
        ]
        result = run_chain(pstorm, stages, webdocs_dataset())
        assert len(result.stages) == 3
        # Every stage either hit the store or was stored on the miss path;
        # behaviour-alike stages may legitimately match earlier ones.
        stored = sum(
            1 for s in result.stages if s.submission.profile_stored_as is not None
        )
        assert stored + result.matched_stages() == 3
        assert stored >= 1
