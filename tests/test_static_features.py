"""Unit tests for Table 4.3 static feature extraction."""

import pytest

from repro.analysis.static_features import (
    STATIC_FEATURE_NAMES,
    StaticFeatures,
    extract_static_features,
)
from repro.workloads.jobs import (
    cooccurrence_pairs_job,
    inverted_index_job,
    word_count_job,
)


@pytest.fixture()
def wc_features():
    return extract_static_features(
        word_count_job(),
        input_pairs=[(0, "hello world")],
        intermediate_pairs=[("hello", 1)],
        output_pairs=[("hello", 2)],
    )


class TestExtraction:
    def test_thirteen_features(self):
        assert len(STATIC_FEATURE_NAMES) == 13

    def test_class_name_features(self, wc_features):
        cat = wc_features.categorical
        assert cat["IN_FORMATTER"] == "TextInputFormat"
        assert "word_count_map" in cat["MAPPER"]
        assert "word_count_reduce" in cat["REDUCER"]
        assert "word_count_reduce" in cat["COMBINER"]
        assert cat["OUT_FORMATTER"] == "TextOutputFormat"

    def test_type_features_observed(self, wc_features):
        cat = wc_features.categorical
        assert cat["MAP_IN_KEY"] == "LongWritable"
        assert cat["MAP_IN_VAL"] == "Text"
        assert cat["MAP_OUT_KEY"] == "Text"
        assert cat["MAP_OUT_VAL"] == "LongWritable"
        assert cat["RED_OUT_KEY"] == "Text"
        assert cat["RED_OUT_VAL"] == "LongWritable"

    def test_unknown_types_without_examples(self):
        features = extract_static_features(word_count_job())
        assert features.categorical["MAP_IN_KEY"] == "UNKNOWN"

    def test_cfgs_attached(self, wc_features):
        assert wc_features.map_cfg.num_loops == 1
        assert wc_features.reduce_cfg is not None

    def test_map_only_job_has_no_reduce_cfg(self):
        from repro.hadoop.job import MapReduceJob

        job = MapReduceJob(name="m", mapper=lambda k, v, c: c.emit(k, v))
        features = extract_static_features(job)
        assert features.reduce_cfg is None

    def test_missing_feature_rejected(self, wc_features):
        broken = dict(wc_features.categorical)
        del broken["MAPPER"]
        with pytest.raises(ValueError):
            StaticFeatures(
                categorical=broken,
                map_cfg=wc_features.map_cfg,
                reduce_cfg=wc_features.reduce_cfg,
            )


class TestSideViews:
    def test_map_side_names(self, wc_features):
        assert set(wc_features.map_side()) == {
            "IN_FORMATTER", "MAPPER", "MAP_IN_KEY", "MAP_IN_VAL",
            "MAP_OUT_KEY", "MAP_OUT_VAL", "COMBINER",
        }

    def test_reduce_side_names(self, wc_features):
        assert set(wc_features.reduce_side()) == {
            "MAP_OUT_KEY", "MAP_OUT_VAL", "COMBINER", "REDUCER",
            "RED_OUT_KEY", "RED_OUT_VAL", "OUT_FORMATTER",
        }

    def test_extension_features_appear_in_both_sides(self, wc_features):
        categorical = dict(wc_features.categorical)
        categorical["PARAM_window"] = "2"
        extended = StaticFeatures(
            categorical=categorical,
            map_cfg=wc_features.map_cfg,
            reduce_cfg=wc_features.reduce_cfg,
        )
        assert extended.map_side()["PARAM_window"] == "2"
        assert extended.reduce_side()["PARAM_window"] == "2"


class TestSerialization:
    def test_roundtrip(self, wc_features):
        restored = StaticFeatures.from_dict(wc_features.to_dict())
        assert restored.categorical == dict(wc_features.categorical)
        assert restored.map_cfg.signature() == wc_features.map_cfg.signature()

    def test_map_only_roundtrip(self):
        from repro.hadoop.job import MapReduceJob

        job = MapReduceJob(name="m", mapper=lambda k, v, c: c.emit(k, v))
        features = extract_static_features(job)
        restored = StaticFeatures.from_dict(features.to_dict())
        assert restored.reduce_cfg is None


class TestJobDistinguishability:
    def test_different_jobs_different_features(self):
        wc = extract_static_features(word_count_job())
        invidx = extract_static_features(inverted_index_job())
        cooc = extract_static_features(cooccurrence_pairs_job())
        assert wc.categorical["MAPPER"] != invidx.categorical["MAPPER"]
        assert wc.categorical["COMBINER"] != invidx.categorical["COMBINER"]
        assert invidx.categorical["OUT_FORMATTER"] == "MapFileOutputFormat"
        assert wc.map_cfg.signature() != cooc.map_cfg.signature()
