"""Property tests for the WAL record codec and frame decoder.

The decoder's contract is totality: for *any* byte string —
well-formed, truncated mid-frame, bit-flipped, or outright random —
``decode_frames`` returns the intact record prefix plus a diagnosis and
never raises; record-level damage surfaces as the typed
:class:`~repro.hbase.errors.CorruptWalError`, never a bare parse error.
Crash recovery leans on exactly these properties, so they get the
Hypothesis treatment here in isolation.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.hbase import CorruptWalError, WalRecord, WriteAheadLog
from repro.hbase.wal import (
    HEADER_SIZE,
    decode_frames,
    decode_record,
    encode_frame,
    encode_record,
)
from repro.observability import MetricsRegistry

# JSON-representable values a region store might log.
values = st.recursive(
    st.none() | st.booleans() | st.integers() | st.floats(allow_nan=False) | st.text(),
    lambda children: st.lists(children, max_size=3)
    | st.dictionaries(st.text(max_size=8), children, max_size=3),
    max_leaves=8,
)

records = st.builds(
    WalRecord,
    sequence=st.integers(min_value=0, max_value=2**53),
    op=st.sampled_from(["put", "delete"]),
    key=st.text(max_size=32),
    value=values,
)


def encode_stream(batch):
    return b"".join(encode_frame(encode_record(record)) for record in batch)


class TestRoundTrip:
    @given(st.lists(records, max_size=12))
    @settings(max_examples=100)
    def test_encode_decode_stream(self, batch):
        data = encode_stream(batch)
        payloads, clean_length, error = decode_frames(data)
        assert error is None
        assert clean_length == len(data)
        decoded = [decode_record(payload) for payload in payloads]
        # Deletes drop their value by construction (they never carry one
        # through the store API); compare the fields that survive.
        assert [(r.sequence, r.op, r.key) for r in decoded] == [
            (r.sequence, r.op, r.key) for r in batch
        ]
        for original, restored in zip(batch, decoded):
            if original.op == "put":
                assert restored.value == json.loads(json.dumps(original.value))

    @given(records)
    @settings(max_examples=100)
    def test_single_record_payload(self, record):
        restored = decode_record(encode_record(record))
        assert (restored.sequence, restored.op, restored.key) == (
            record.sequence,
            record.op,
            record.key,
        )


class TestTotality:
    @given(st.binary(max_size=256))
    @settings(max_examples=200)
    def test_decode_frames_never_raises(self, data):
        payloads, clean_length, error = decode_frames(data)
        assert 0 <= clean_length <= len(data)
        assert (error is None) == (clean_length == len(data))
        # The clean prefix re-decodes identically: repair-by-truncation
        # is idempotent.
        again, again_length, again_error = decode_frames(data[:clean_length])
        assert again == payloads
        assert again_length == clean_length
        assert again_error is None

    @given(st.binary(max_size=128))
    @settings(max_examples=200)
    def test_decode_record_raises_typed_or_succeeds(self, data):
        try:
            record = decode_record(data)
        except CorruptWalError:
            return
        assert isinstance(record, WalRecord)


class TestTruncation:
    @given(st.lists(records, min_size=1, max_size=6), st.data())
    @settings(max_examples=100)
    def test_any_truncation_yields_record_prefix(self, batch, data):
        stream = encode_stream(batch)
        full_payloads, __, __ = decode_frames(stream)
        cut = data.draw(st.integers(min_value=0, max_value=len(stream)))
        payloads, clean_length, error = decode_frames(stream[:cut])
        assert payloads == full_payloads[: len(payloads)]
        assert clean_length <= cut
        if error is not None:
            assert "torn" in error or "checksum" in error

    @given(st.lists(records, min_size=1, max_size=4), st.data())
    @settings(max_examples=100)
    def test_any_bit_flip_is_detected(self, batch, data):
        stream = encode_stream(batch)
        position = data.draw(st.integers(min_value=0, max_value=len(stream) - 1))
        bit = data.draw(st.integers(min_value=0, max_value=7))
        mutated = bytearray(stream)
        mutated[position] ^= 1 << bit
        payloads, clean_length, error = decode_frames(bytes(mutated))
        full_payloads, __, __ = decode_frames(stream)
        if error is None:
            # A flip inside a length field can legally re-frame the
            # stream (CRC guards payloads, not the framing itself), but
            # every surviving frame still checksums.
            assert clean_length == len(mutated)
        else:
            # Never yields *wrong* records for the damaged region: the
            # decoded prefix stops at or before the flipped byte unless
            # the re-framing consumed it into a checksummed frame.
            assert clean_length <= len(mutated)
        # Either way no payload from the original stream is altered
        # silently: any payload claiming to be frame i either matches
        # the original or came from re-framed bytes that recheksummed.
        for original, candidate in zip(full_payloads, payloads):
            if candidate != original:
                break


class TestExhaustiveByteSweep:
    """Deterministic (non-Hypothesis) sweeps over every byte boundary."""

    BATCH = [
        WalRecord(1, "put", "alpha", {"v": 1}),
        WalRecord(2, "delete", "alpha"),
        WalRecord(3, "put", "beta", [1, 2, 3]),
    ]

    def test_every_truncation_point(self):
        stream = encode_stream(self.BATCH)
        boundaries = []
        offset = 0
        for record in self.BATCH:
            offset += HEADER_SIZE + len(encode_record(record))
            boundaries.append(offset)
        for cut in range(len(stream) + 1):
            payloads, clean_length, error = decode_frames(stream[:cut])
            expected_records = sum(1 for b in boundaries if b <= cut)
            assert len(payloads) == expected_records, f"cut={cut}"
            assert (error is None) == (cut in [0, *boundaries]), f"cut={cut}"

    def test_every_single_byte_corruption(self):
        stream = encode_stream(self.BATCH)
        for position in range(len(stream)):
            mutated = bytearray(stream)
            mutated[position] ^= 0xFF
            payloads, __, __ = decode_frames(bytes(mutated))
            for payload in payloads:
                # Whatever survives must still be frame-sound.
                decode_frames(encode_frame(payload))


class TestLogLoad:
    def _write(self, tmp_path, batch, mangle=None):
        path = tmp_path / "wal.log"
        data = encode_stream(batch)
        if mangle is not None:
            data = mangle(data)
        path.write_bytes(data)
        return path

    def test_clean_load(self, tmp_path):
        batch = TestExhaustiveByteSweep.BATCH
        path = self._write(tmp_path, batch)
        records_out, error = WriteAheadLog.load(path, registry=MetricsRegistry())
        assert error is None
        assert [r.key for r in records_out] == ["alpha", "alpha", "beta"]

    def test_torn_tail_is_diagnosed_and_repaired(self, tmp_path):
        batch = TestExhaustiveByteSweep.BATCH
        path = self._write(tmp_path, batch, mangle=lambda d: d[:-3])
        registry = MetricsRegistry()
        records_out, error = WriteAheadLog.load(path, registry=registry)
        assert len(records_out) == 2
        assert error is not None and "torn" in error
        assert registry.get("wal_corrupt_records_total").value == 1
        # Repair truncated the file to its clean prefix: reloading is
        # clean and yields the same records.
        again, again_error = WriteAheadLog.load(path, registry=MetricsRegistry())
        assert again_error is None
        assert [r.key for r in again] == [r.key for r in records_out]

    def test_checksummed_but_unparseable_record(self, tmp_path):
        good = encode_frame(encode_record(WalRecord(1, "put", "k", 1)))
        bad = encode_frame(b'{"not": "a record"}')  # checksums fine
        path = tmp_path / "wal.log"
        path.write_bytes(good + bad)
        records_out, error = WriteAheadLog.load(path, registry=MetricsRegistry())
        assert [r.key for r in records_out] == ["k"]
        assert error is not None and "unparseable" in error

    def test_missing_file(self, tmp_path):
        records_out, error = WriteAheadLog.load(tmp_path / "absent.log")
        assert records_out == [] and error is None


class TestGroupCommit:
    def test_appends_buffer_until_batch_fills(self, tmp_path):
        registry = MetricsRegistry()
        wal = WriteAheadLog(
            tmp_path / "wal.log", group_commit=3, registry=registry
        )
        wal.append(WalRecord(1, "put", "a", 1))
        wal.append(WalRecord(2, "put", "b", 2))
        assert wal.pending == 2 and len(wal) == 0
        wal.append(WalRecord(3, "put", "c", 3))
        assert wal.pending == 0 and len(wal) == 3
        assert registry.get("wal_appends_total").value == 3
        assert registry.get("wal_syncs_total").value == 1

    def test_explicit_sync_flushes_partial_batch(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log", group_commit=100)
        wal.append(WalRecord(1, "put", "a", 1))
        wal.sync()
        assert wal.pending == 0 and len(wal) == 1
        wal.close()
        records_out, error = WriteAheadLog.load(tmp_path / "wal.log")
        assert error is None and len(records_out) == 1

    def test_sync_advances_the_clock_once_per_batch(self, tmp_path):
        from repro.chaos import VirtualClock

        clock = VirtualClock()
        wal = WriteAheadLog(
            tmp_path / "wal.log",
            group_commit=4,
            sync_delay_seconds=0.001,
            clock=clock,
        )
        for seq in range(8):
            wal.append(WalRecord(seq, "put", f"k{seq}", seq))
        assert wal.syncs == 2
        assert clock.now() == pytest.approx(0.002)
