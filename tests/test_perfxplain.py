"""Tests for the PerfXplain subsystem."""

import pytest

from repro.perfxplain import (
    ExecutionLog,
    PerfQuery,
    PerfXplain,
    Relation,
    relative_performance,
)


@pytest.fixture(scope="module")
def mini_log():
    """A log of five profiled executions."""
    from repro.experiments.common import ExperimentContext
    from repro.workloads import (
        cooccurrence_pairs_job,
        inverted_index_job,
        random_text_1gb,
        sort_job,
        teragen_dataset,
        wikipedia_35gb,
        word_count_job,
    )

    ctx = ExperimentContext.create()
    log = ExecutionLog()
    for job, dataset in (
        (word_count_job(), wikipedia_35gb()),
        (cooccurrence_pairs_job(), wikipedia_35gb()),
        (inverted_index_job(), wikipedia_35gb()),
        (sort_job(), teragen_dataset(35)),
        (word_count_job(), random_text_1gb()),
    ):
        profile, execution = ctx.profiler.profile_job(job, dataset)
        log.add_execution(profile, execution)
    return log


class TestRelativePerformance:
    def test_similar_within_tolerance(self):
        assert relative_performance(100.0, 110.0) == Relation.SIMILAR

    def test_slower_and_faster(self):
        assert relative_performance(100.0, 200.0) == Relation.SLOWER
        assert relative_performance(200.0, 100.0) == Relation.FASTER

    def test_invalid_runtimes(self):
        with pytest.raises(ValueError):
            relative_performance(0.0, 1.0)


class TestQuery:
    def test_relations_validated(self):
        with pytest.raises(ValueError):
            PerfQuery("a", "b", expected="weird")
        with pytest.raises(ValueError):
            PerfQuery("a", "b", observed="weird")


class TestLog:
    def test_entries_keyed(self, mini_log):
        assert "word-count@wikipedia-35gb" in mini_log.keys()
        assert len(mini_log) == 5

    def test_features_present(self, mini_log):
        entry = mini_log.get("word-count@wikipedia-35gb")
        assert entry.feature("runtime_seconds") > 0
        assert entry.feature("map_output_bytes") > entry.feature("input_bytes")

    def test_missing_entry_raises(self, mini_log):
        with pytest.raises(KeyError):
            mini_log.get("nope@never")

    def test_from_profile_store(self, engine, profiler, sampler, wordcount, small_text, whatif):
        from repro.core.features import extract_job_features
        from repro.core.store import ProfileStore

        store = ProfileStore()
        profile, __ = profiler.profile_job(wordcount, small_text)
        sample = sampler.collect(wordcount, small_text, count=1)
        features = extract_job_features(wordcount, small_text, sample.profile, engine)
        store.put(profile, features.static)

        log = ExecutionLog.from_profile_store(store, whatif)
        entry = log.get("wordcount-test@small-text")
        assert entry.feature("runtime_seconds") > 0
        assert entry.statics["IN_FORMATTER"] == "TextInputFormat"


class TestExplanations:
    def test_surprising_pair_gets_predicates(self, mini_log):
        explainer = PerfXplain(mini_log)
        query = PerfQuery(
            "word-count@wikipedia-35gb",
            "word-cooccurrence-pairs@wikipedia-35gb",
            expected=Relation.SIMILAR,
        )
        explanation = explainer.explain(query)
        assert explanation.observed == Relation.SLOWER
        assert explanation.predicates
        rendered = explanation.render()
        assert "because" in rendered

    def test_expected_behaviour_needs_no_explanation(self, mini_log):
        explainer = PerfXplain(mini_log)
        query = PerfQuery(
            "word-count@wikipedia-35gb",
            "word-cooccurrence-pairs@wikipedia-35gb",
            expected=Relation.SLOWER,
        )
        explanation = explainer.explain(query)
        assert explanation.predicates == ()

    def test_despite_clause_suppresses_feature(self, mini_log):
        explainer = PerfXplain(mini_log)
        base = PerfQuery(
            "word-count@wikipedia-35gb",
            "word-cooccurrence-pairs@wikipedia-35gb",
        )
        baseline = explainer.explain(base)
        suppressed_feature = baseline.predicates[0].feature
        query = PerfQuery(
            base.job_a, base.job_b, despite=suppressed_feature
        )
        explanation = explainer.explain(query)
        assert all(p.feature != suppressed_feature for p in explanation.predicates)

    def test_predicates_ranked_by_gain(self, mini_log):
        explainer = PerfXplain(mini_log)
        explanation = explainer.explain(
            PerfQuery("word-count@wikipedia-35gb",
                      "word-cooccurrence-pairs@wikipedia-35gb")
        )
        gains = [p.gain for p in explanation.predicates]
        assert gains == sorted(gains, reverse=True)

    def test_tiny_log_rejected(self):
        with pytest.raises(ValueError):
            PerfXplain(ExecutionLog())

    def test_static_differences(self, engine, profiler, sampler, wordcount, maponly_job, small_text, whatif):
        from repro.core.features import extract_job_features
        from repro.core.store import ProfileStore

        store = ProfileStore()
        for job in (wordcount, maponly_job):
            profile, __ = profiler.profile_job(job, small_text)
            sample = sampler.collect(job, small_text, count=1)
            features = extract_job_features(job, small_text, sample.profile, engine)
            store.put(profile, features.static)
        log = ExecutionLog.from_profile_store(store, whatif)
        explainer = PerfXplain(log)
        query = PerfQuery(
            "wordcount-test@small-text", "identity-maponly@small-text"
        )
        differences = explainer.static_differences(query)
        assert any(p.feature == "MAPPER" for p in differences)
        assert all(p.kind == "static" for p in differences)
