"""Unit tests for record sizing and writable type naming."""

import pytest
from hypothesis import given, strategies as st

from repro.hadoop.records import pair_size, serialized_size, writable_type_name


class TestSerializedSize:
    def test_primitives(self):
        assert serialized_size(None) == 0
        assert serialized_size(True) == 1
        assert serialized_size(7) == 8
        assert serialized_size(3.14) == 8

    def test_string_counts_length_plus_header(self):
        assert serialized_size("") == 4
        assert serialized_size("abcd") == 8

    def test_bytes(self):
        assert serialized_size(b"xyz") == 7

    def test_tuple_recurses(self):
        assert serialized_size((1, "ab")) == 4 + 8 + (4 + 2)

    def test_dict_counts_keys_and_values(self):
        assert serialized_size({"a": 1}) == 4 + (4 + 1) + 8

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            serialized_size(object())

    def test_pair_size_sums(self):
        assert pair_size("ab", 1) == serialized_size("ab") + serialized_size(1)

    @given(st.text(max_size=200))
    def test_string_size_monotone_in_length(self, text):
        assert serialized_size(text) == 4 + len(text)

    @given(st.lists(st.integers(), max_size=30))
    def test_list_size_linear(self, values):
        assert serialized_size(values) == 4 + 8 * len(values)

    @given(
        st.recursive(
            st.one_of(st.integers(), st.floats(allow_nan=False), st.text(max_size=5)),
            lambda inner: st.tuples(inner, inner),
            max_leaves=10,
        )
    )
    def test_size_always_non_negative(self, value):
        assert serialized_size(value) >= 0


class TestWritableTypeName:
    def test_scalar_names(self):
        assert writable_type_name(1) == "LongWritable"
        assert writable_type_name(1.5) == "DoubleWritable"
        assert writable_type_name("x") == "Text"
        assert writable_type_name(None) == "NullWritable"
        assert writable_type_name(True) == "BooleanWritable"

    def test_tuple_carries_element_types(self):
        assert writable_type_name(("a", 1)) == "TupleWritable<Text,LongWritable>"

    def test_nested_tuple_bounded_depth(self):
        name = writable_type_name((("a", "b"), 1))
        assert name == "TupleWritable<TupleWritable,LongWritable>"

    def test_long_tuple_truncated(self):
        name = writable_type_name((1, 2, 3, 4, 5, 6))
        assert name.endswith(",...>")

    def test_dict_carries_key_value_types(self):
        assert writable_type_name({"w": 3}) == "MapWritable<Text,LongWritable>"

    def test_empty_dict_is_plain(self):
        assert writable_type_name({}) == "MapWritable"

    def test_same_shape_same_name(self):
        assert writable_type_name(("x", 2)) == writable_type_name(("hello", 99))
