"""Smoke and shape tests for every experiment driver.

These run with the reduced suite (4 PigMix queries) to stay fast while
still asserting the paper's qualitative shapes.
"""

import pytest

from repro.experiments import (
    ablations,
    accuracy,
    build_store,
    collect_suite,
    fig1_3,
    fig4_1,
    fig4_3,
    fig4_5,
    fig4_6,
    fig6_1,
    fig6_3,
    table6_1,
    twin_of,
)
from repro.experiments.common import ExperimentContext
from repro.workloads import standard_benchmark


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext.create()


@pytest.fixture(scope="module")
def records(ctx):
    return collect_suite(ctx, standard_benchmark(pigmix_queries=4))


class TestCommon:
    def test_collect_suite_keys(self, records):
        assert "word-count@wikipedia-35gb" in records
        record = records["word-count@wikipedia-35gb"]
        assert record.full_profile.has_reduce
        assert record.features.has_reduce

    def test_build_store_exclusions(self, records):
        full = build_store(records)
        without_key = build_store(records, exclude_keys={"word-count@wikipedia-35gb"})
        without_job = build_store(records, exclude_jobs={"word-count"})
        assert len(without_key) == len(full) - 1
        assert len(without_job) == len(full) - 2

    def test_twin_of(self, records):
        assert twin_of(records, "word-count@wikipedia-35gb") == "word-count@random-text-1gb"
        assert twin_of(records, "word-cooccurrence-stripes@random-text-1gb") is None


class TestAccuracyShapes:
    def test_pstorm_sd_is_perfect(self, records):
        result = accuracy.evaluate_pstorm(records, "SD")
        assert result.map_accuracy == 1.0
        assert result.reduce_accuracy == 1.0

    def test_pstorm_dd_misses_only_twinless(self, records):
        result = accuracy.evaluate_pstorm(records, "DD")
        twinless = sum(
            1 for key in records if twin_of(records, key) is None
        )
        assert result.map_correct == result.map_total - twinless

    def test_pstorm_beats_baselines(self, records):
        for state in ("SD", "DD"):
            pstorm = accuracy.evaluate_pstorm(records, state)
            p_features = accuracy.evaluate_nn_baseline(records, state, include_static=False)
            sp_features = accuracy.evaluate_nn_baseline(records, state, include_static=True)
            assert pstorm.map_accuracy > p_features.map_accuracy
            assert pstorm.map_accuracy > sp_features.map_accuracy
            # The paper: baselines fail for more than 35% of submissions.
            assert p_features.map_accuracy < 0.65
            assert sp_features.map_accuracy < 0.65


class TestFigureDrivers:
    def test_fig1_3_shape(self, ctx):
        result = fig1_3.run(ctx)
        speedups = {row[0]: row[1] for row in result.rows}
        assert speedups["CBO (own profile)"] > speedups["RBO"]
        reuse = speedups["CBO (bigram rel. freq. profile)"]
        own = speedups["CBO (own profile)"]
        assert reuse > speedups["RBO"]
        assert reuse == pytest.approx(own, rel=0.25)

    def test_fig4_1_shape(self, ctx):
        result = fig4_1.run(ctx)
        for row in result.rows:
            __, splits, ten_pct, one_task, ten_slots, one_slot = row
            assert one_task < ten_pct
            assert one_slot == 1
            assert ten_slots == pytest.approx(splits * 0.1, rel=0.2)

    def test_fig4_3_shape(self, ctx):
        result = fig4_3.run(ctx)
        by_job = {row[0]: row for row in result.rows}
        wc = by_job["word-count"]
        cooc = by_job["word-cooccurrence-pairs"]
        map_index = result.headers.index("MAP")
        assert cooc[map_index] > wc[map_index]

    def test_fig4_5_shape(self, ctx):
        result = fig4_5.run(ctx)
        cooc, bigram = result.rows
        for index in range(1, len(result.headers)):
            if float(bigram[index]) > 0:
                ratio = float(cooc[index]) / float(bigram[index])
                assert 0.4 < ratio < 2.5

    def test_fig4_6_shape(self, ctx):
        result = fig4_6.run(ctx)
        shuffle_column = result.headers.index("shuffle s/reducer")
        small, large = result.rows
        assert large[shuffle_column] > small[shuffle_column]

    def test_fig6_1_driver(self, ctx, records):
        result = fig6_1.run(ctx, records)
        assert len(result.rows) == 6
        pstorm_sd = next(r for r in result.rows if r[0] == "PStorM" and r[1] == "SD")
        assert pstorm_sd[2] == 1.0

    def test_table6_1_covers_suite(self, ctx):
        result = table6_1.run(ctx)
        assert len(result.rows) == 56

    def test_result_rendering(self, ctx):
        result = fig4_6.run(ctx)
        text = str(result)
        assert "Figure 4.6" in text
        assert result.as_dicts()[0]["dataset"] == "random-text-1gb"


class TestFig63:
    @pytest.fixture(scope="class")
    def outcome(self, ctx, records):
        return fig6_3.run(ctx, records)

    def test_pstorm_at_least_rbo(self, outcome):
        for row in outcome.rows:
            __, __, rbo, sd, dd, nj, __ = row
            assert max(sd, dd, nj) >= rbo * 0.95

    def test_cooccurrence_largest_speedup(self, outcome):
        by_job = {row[0]: row for row in outcome.rows}
        cooc_sd = by_job["word-cooccurrence-pairs"][3]
        for name, row in by_job.items():
            if name != "word-cooccurrence-pairs":
                assert cooc_sd > row[3]

    def test_inverted_index_near_one(self, outcome):
        by_job = {row[0]: row for row in outcome.rows}
        assert by_job["inverted-index"][3] < 1.5
        assert by_job["inverted-index"][2] < 1.05  # RBO hurts or ties

    def test_nj_close_to_sd(self, outcome):
        for row in outcome.rows:
            __, __, __, sd, __, nj, __ = row
            assert nj == pytest.approx(sd, rel=0.35)


class TestAblations:
    def test_pushdown_ships_less(self, ctx, records):
        result = ablations.run_pushdown(ctx, records)
        by_mode = {row[0]: row for row in result.rows}
        assert by_mode["pushdown"][2] < by_mode["client-side"][2]
        assert by_mode["pushdown"][1] == by_mode["client-side"][1]  # same scans

    def test_store_models(self, ctx, records):
        result = ablations.run_store_models(ctx, records)
        by_model = {row[0]: row for row in result.rows}
        adopted = by_model["feature-type prefix (adopted)"]
        per_type = by_model["table per feature type (§5.2.2)"]
        tsdb = by_model["OpenTSDB keys (§5.2.1)"]
        assert per_type[1] > adopted[1]
        assert tsdb[2] > adopted[2]

    def test_param_features(self, ctx):
        result = ablations.run_param_features(ctx)
        for __, plain, augmented in result.rows:
            assert augmented < plain
