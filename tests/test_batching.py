"""Deterministic-ordering tests for batched serving.

``handle_batch`` exists so the process backend can coalesce a window of
submissions into one vectorized stage-1 probe — but only if the batched
responses stay *byte-identical* to serving the same requests one by one,
cache accounting included.  These tests pin that equivalence (with
duplicate-signature windows exercising the segment barriers), pin the
batched load harness against the sequential one, and guard the latency
reporting fixes: warm-path percentiles resolve off the 0.01 cache-hit
grid and shed retry-after hints are recorded at full resolution.
"""

from __future__ import annotations

import pytest

from repro.chaos import set_default_injector
from repro.observability import MetricsRegistry
from repro.serving import (
    LoadConfig,
    ServiceConfig,
    TuningRequest,
    TuningService,
    run_load,
)
from repro.serving.loadgen import _percentiles


@pytest.fixture(autouse=True)
def _no_ambient_chaos():
    set_default_injector(None)
    yield
    set_default_injector(None)


def _inline_service(cluster):
    return TuningService(
        cluster=cluster,
        config=ServiceConfig(workers=2, queue_capacity=32),
        seed=0,
        registry=MetricsRegistry(),
    )


class TestHandleBatchEquivalence:
    def _requests(self, wordcount, maponly_job, small_text):
        # Duplicate signatures inside the window force segment barriers:
        # [wc, maponly] | [wc] | [wc-params, maponly].
        jobs = [
            wordcount,
            maponly_job,
            wordcount,
            wordcount.with_params(round=2),
            maponly_job,
        ]
        return [
            TuningRequest(number + 1, "t", job, small_text)
            for number, job in enumerate(jobs)
        ]

    def test_batched_equals_sequential_byte_for_byte(
        self, cluster, wordcount, maponly_job, small_text
    ):
        nows = [0.0, 0.5, 1.0, 1.5, 2.0]

        sequential = _inline_service(cluster)
        expected = [
            sequential.handle(request, now=now)
            for request, now in zip(
                self._requests(wordcount, maponly_job, small_text), nows
            )
        ]

        batched = _inline_service(cluster)
        actual = batched.handle_batch(
            self._requests(wordcount, maponly_job, small_text), nows=nows
        )

        assert [r.to_dict() for r in actual] == [
            r.to_dict() for r in expected
        ]
        # The duplicate wordcount submission was a genuine cache hit in
        # both orders — accounting parity, not just payload parity.
        assert [r.cache_hit for r in actual] == [
            False, False, True, False, True,
        ]
        assert batched.cache.stats() == sequential.cache.stats()
        assert len(batched.store) == len(sequential.store)

    def test_barrier_preserves_remember_invalidation_order(
        self, cluster, wordcount, small_text
    ):
        """A window that is *all* one signature degenerates to sequential:
        every element after the first is its own segment."""
        sequential = _inline_service(cluster)
        batched = _inline_service(cluster)
        requests = [
            TuningRequest(n + 1, "t", wordcount, small_text) for n in range(3)
        ]
        expected = [sequential.handle(r, now=0.0) for r in requests]
        actual = batched.handle_batch(requests, nows=[0.0] * 3)
        assert [r.to_dict() for r in actual] == [
            r.to_dict() for r in expected
        ]
        assert [r.cache_hit for r in actual] == [False, True, True]


class TestLoadgenBatching:
    def _config(self, **overrides):
        defaults = dict(
            requests=60,
            workers=4,
            seed=7,
            backend="processes",
        )
        defaults.update(overrides)
        return LoadConfig(**defaults)

    def test_batched_replay_matches_sequential_report(self):
        sequential = run_load(self._config(), registry=MetricsRegistry())
        batched = run_load(
            self._config(batch_window_seconds=0.5, batch_max=4),
            registry=MetricsRegistry(),
        )
        assert batched.summary == sequential.summary

    def test_batches_actually_form(self, cluster):
        """The equality above is vacuous if no group ever coalesces."""
        config = self._config(batch_window_seconds=0.5, batch_max=4)
        service = TuningService(
            cluster=cluster,
            config=config.service_config(),
            seed=config.seed,
            registry=MetricsRegistry(),
        )
        sizes: list[int] = []
        inner = service.handle_batch

        def spy(requests, nows=None):
            sizes.append(len(requests))
            return inner(requests, nows=nows)

        service.handle_batch = spy  # type: ignore[method-assign]
        run_load(config, cluster=cluster, service=service)
        assert sizes and max(sizes) > 1


class TestLatencyResolution:
    def test_warm_hits_resolve_off_the_tick_grid(self):
        """Regression: warm p50/p99 used to clamp at the 0.01 tick because
        every hit cost exactly cache_hit_cost_seconds.  The lookup tax
        puts hits at 0.0103 — representable only at full resolution."""
        config = LoadConfig(requests=60, workers=4, seed=7)
        report = run_load(config, registry=MetricsRegistry())
        hits = [
            r
            for r in report.responses
            if r.status == "ok" and r.cache_hit
        ]
        assert hits
        for response in hits:
            assert response.service_seconds == pytest.approx(0.0103)
        warm = _percentiles([r.service_seconds for r in hits])
        assert warm["p50"] == 0.0103 != 0.01
        assert warm["p99"] == 0.0103

    def test_shed_retry_after_recorded_at_full_resolution(self):
        config = LoadConfig(
            requests=80, workers=2, seed=7, arrival_rate=20.0
        )
        report = run_load(config, registry=MetricsRegistry())
        hints = [
            r.retry_after_seconds
            for r in report.responses
            if r.status == "shed" and r.retry_after_seconds
        ]
        assert hints
        # At least one hint lives off the 0.01 grid — rounding them at
        # record time (the old bug) would snap every one onto it.
        assert any(abs(h * 100 - round(h * 100)) > 1e-9 for h in hints)

    def test_percentiles_keep_six_decimals(self):
        assert _percentiles([0.0103, 0.0103, 0.0103])["p50"] == 0.0103
        assert _percentiles([1e-6])["max"] == 1e-6
