"""Integration tests for the PStorM daemon workflow (Chapter 3)."""

import pytest

from repro.core.pstorm import PStorM
from repro.hadoop.config import JobConfiguration


@pytest.fixture()
def pstorm(engine):
    # A fresh store per test; the engine (and its caches) are shared.
    return PStorM(engine)


class TestSubmissionWorkflow:
    def test_miss_stores_profile(self, pstorm, wordcount, small_text):
        result = pstorm.submit(wordcount, small_text)
        assert not result.matched
        assert result.profile_stored_as == "wordcount-test@small-text"
        assert len(pstorm.store) == 1

    def test_second_submission_hits(self, pstorm, wordcount, small_text):
        first = pstorm.submit(wordcount, small_text)
        second = pstorm.submit(wordcount, small_text)
        assert not first.matched
        assert second.matched
        assert second.profile_stored_as is None
        assert len(pstorm.store) == 1  # nothing new stored on a hit

    def test_hit_is_tuned_better_than_default(self, pstorm, engine, wordcount, small_text):
        pstorm.remember(wordcount, small_text)
        result = pstorm.submit(wordcount, small_text)
        default = engine.run_job(wordcount, small_text, JobConfiguration())
        assert result.matched
        assert result.runtime_seconds < default.runtime_seconds

    def test_sampling_cost_accounted(self, pstorm, wordcount, small_text):
        result = pstorm.submit(wordcount, small_text)
        assert result.sampling_seconds > 0
        assert result.total_seconds == pytest.approx(
            result.runtime_seconds + result.sampling_seconds
        )

    def test_miss_runs_with_submitted_config(self, pstorm, wordcount, small_text):
        submitted = JobConfiguration(num_reduce_tasks=4)
        result = pstorm.submit(wordcount, small_text, config=submitted)
        assert result.config == submitted
        assert result.execution.num_reduce_tasks == 4

    def test_remember_prepopulates(self, pstorm, wordcount, small_text):
        job_id = pstorm.remember(wordcount, small_text)
        assert job_id in pstorm.store

    def test_extract_features_runs_one_task(self, pstorm, wordcount, small_text):
        features, sampling_seconds = pstorm.extract_features(wordcount, small_text)
        assert features.job_name == wordcount.name
        assert features.has_reduce
        assert len(features.map_data_flow) == 4
        assert sampling_seconds > 0

    def test_map_only_submission(self, pstorm, maponly_job, small_text):
        pstorm.remember(maponly_job, small_text)
        result = pstorm.submit(maponly_job, small_text)
        assert result.matched
        assert result.outcome.reduce_match is None
