"""Integration tests for the PStorM daemon workflow (Chapter 3)."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.matcher import MatchOutcome, SideMatch
from repro.core.pstorm import PStorM, SubmissionResult, WireExecution
from repro.hadoop.config import JobConfiguration


@pytest.fixture()
def pstorm(engine):
    # A fresh store per test; the engine (and its caches) are shared.
    return PStorM(engine)


class TestSubmissionWorkflow:
    def test_miss_stores_profile(self, pstorm, wordcount, small_text):
        result = pstorm.submit(wordcount, small_text)
        assert not result.matched
        assert result.profile_stored_as == "wordcount-test@small-text"
        assert len(pstorm.store) == 1

    def test_second_submission_hits(self, pstorm, wordcount, small_text):
        first = pstorm.submit(wordcount, small_text)
        second = pstorm.submit(wordcount, small_text)
        assert not first.matched
        assert second.matched
        assert second.profile_stored_as is None
        assert len(pstorm.store) == 1  # nothing new stored on a hit

    def test_hit_is_tuned_better_than_default(self, pstorm, engine, wordcount, small_text):
        pstorm.remember(wordcount, small_text)
        result = pstorm.submit(wordcount, small_text)
        default = engine.run_job(wordcount, small_text, JobConfiguration())
        assert result.matched
        assert result.runtime_seconds < default.runtime_seconds

    def test_sampling_cost_accounted(self, pstorm, wordcount, small_text):
        result = pstorm.submit(wordcount, small_text)
        assert result.sampling_seconds > 0
        assert result.total_seconds == pytest.approx(
            result.runtime_seconds + result.sampling_seconds
        )

    def test_miss_runs_with_submitted_config(self, pstorm, wordcount, small_text):
        submitted = JobConfiguration(num_reduce_tasks=4)
        result = pstorm.submit(wordcount, small_text, config=submitted)
        assert result.config == submitted
        assert result.execution.num_reduce_tasks == 4

    def test_remember_prepopulates(self, pstorm, wordcount, small_text):
        job_id = pstorm.remember(wordcount, small_text)
        assert job_id in pstorm.store

    def test_extract_features_runs_one_task(self, pstorm, wordcount, small_text):
        features, sampling_seconds = pstorm.extract_features(wordcount, small_text)
        assert features.job_name == wordcount.name
        assert features.has_reduce
        assert len(features.map_data_flow) == 4
        assert sampling_seconds > 0

    def test_map_only_submission(self, pstorm, maponly_job, small_text):
        pstorm.remember(maponly_job, small_text)
        result = pstorm.submit(maponly_job, small_text)
        assert result.matched
        assert result.outcome.reduce_match is None


# ----------------------------------------------------------------------
# Wire codec (to_dict / from_dict) — the serving layer's response format
# ----------------------------------------------------------------------
_names = st.text(
    alphabet="abcdefghij-@0123456789", min_size=1, max_size=16
)
_stages = st.sampled_from(
    ["static", "cost-fallback", "no-match-dynamic", "no-match"]
)
_funnels = st.dictionaries(
    st.sampled_from(["dynamic", "static", "euclidean", "cost"]),
    st.integers(min_value=0, max_value=99),
    max_size=4,
)


def _side(side: str):
    return st.builds(
        SideMatch,
        side=st.just(side),
        job_id=st.one_of(st.none(), _names),
        stage=_stages,
        funnel=_funnels,
    )


_results = st.builds(
    SubmissionResult,
    job_name=_names,
    dataset_name=_names,
    matched=st.booleans(),
    outcome=st.builds(
        MatchOutcome,
        profile=st.none(),
        map_match=_side("map"),
        reduce_match=st.one_of(st.none(), _side("reduce")),
    ),
    config=st.builds(
        JobConfiguration,
        num_reduce_tasks=st.integers(min_value=1, max_value=64),
        io_sort_mb=st.integers(min_value=32, max_value=512),
    ),
    execution=st.builds(
        WireExecution,
        job_name=_names,
        dataset_name=_names,
        input_bytes=st.integers(min_value=0, max_value=1 << 40),
        runtime_seconds=st.floats(
            min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
        ),
        num_map_tasks=st.integers(min_value=0, max_value=2048),
        num_reduce_tasks=st.integers(min_value=0, max_value=512),
        sampled=st.booleans(),
    ),
    sampling_seconds=st.floats(
        min_value=0.0, max_value=1e5, allow_nan=False, allow_infinity=False
    ),
    profile_stored_as=st.one_of(st.none(), _names),
    degraded=st.booleans(),
    degradation_reason=st.one_of(
        st.none(), st.sampled_from(["store-probe", "store-put"])
    ),
    fallback_path=st.one_of(st.none(), st.sampled_from(["rbo", "default"])),
)


class TestWireCodec:
    @settings(max_examples=60, deadline=None)
    @given(result=_results)
    def test_round_trip_is_identity(self, result):
        wire = result.to_dict()
        assert SubmissionResult.from_dict(wire).to_dict() == wire

    @settings(max_examples=25, deadline=None)
    @given(result=_results)
    def test_wire_form_survives_json(self, result):
        wire = result.to_dict()
        rehydrated = json.loads(json.dumps(wire))
        assert SubmissionResult.from_dict(rehydrated).to_dict() == wire

    def test_missing_map_match_rejected(self):
        wire = SubmissionResult(
            job_name="j",
            dataset_name="d",
            matched=False,
            outcome=MatchOutcome(
                None, SideMatch(side="map", job_id=None, stage="no-match"), None
            ),
            config=JobConfiguration(),
            execution=WireExecution(
                job_name="j",
                dataset_name="d",
                input_bytes=0,
                runtime_seconds=1.0,
                num_map_tasks=1,
                num_reduce_tasks=0,
            ),
            sampling_seconds=0.0,
            profile_stored_as=None,
        ).to_dict()
        wire["outcome"]["map_match"] = None
        with pytest.raises(ValueError):
            SubmissionResult.from_dict(wire)

    def test_real_submission_round_trips(self, pstorm, wordcount, small_text):
        result = pstorm.submit(wordcount, small_text)
        wire = result.to_dict()
        again = SubmissionResult.from_dict(json.loads(json.dumps(wire)))
        assert again.to_dict() == wire
        assert again.job_name == wordcount.name
        assert again.config == result.config
        assert again.runtime_seconds == pytest.approx(result.runtime_seconds)

    def test_degraded_flags_round_trip(self, pstorm, wordcount, small_text):
        result = pstorm.submit(wordcount, small_text)
        wire = result.to_dict()
        wire.update(
            degraded=True,
            degradation_reason="store-probe",
            fallback_path="rbo",
        )
        again = SubmissionResult.from_dict(wire)
        assert again.degraded
        assert again.degradation_reason == "store-probe"
        assert again.fallback_path == "rbo"
