"""The tuner league benchmark: race the family, freeze the leaderboard.

Runs the full roster (rbo, cbo, spsa, surrogate, ensemble) across the
workload zoo under identical per-entry seeds and asserts the properties
the league is allowed to promise:

- **determinism** — two seeded runs render byte-identical leaderboard
  JSON (the payload is a pure function of seed, roster, and budgets);
- **adapter fidelity** — the CBO adapter's decision is bit-identical to
  calling ``CostBasedOptimizer.optimize`` directly, so racing the CBO
  through the league measures the same search users get on the submit
  path;
- **ensemble dominance** — the ensemble's mean predicted speedup ties or
  beats the best single tuner on at least two workload families (it
  shortlists members per job, so per-family it should never trail the
  member it picked).

Results land in ``BENCH_league.json`` at the repo root so future PRs
have a leaderboard trajectory to compare against.  ``LEAGUE_BENCH_QUICK=1``
switches to the first-per-family workload subset with reduced search
budgets for CI smoke runs; every assertion still holds, only the
scale shrinks.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.hadoop.cluster import ec2_cluster
from repro.hadoop.engine import HadoopEngine
from repro.starfish import CostBasedOptimizer, StarfishProfiler, WhatIfEngine
from repro.tuners import TUNER_NAMES, make_tuner
from repro.tuners.league import (
    QUICK_BUDGETS,
    LeagueConfig,
    leaderboard_json,
    run_league,
)
from repro.workloads import word_count_job
from repro.workloads.datasets import Dataset, random_text_source

QUICK = os.environ.get("LEAGUE_BENCH_QUICK", "") not in ("", "0")
#: The ensemble must tie-or-beat the best single tuner on at least this
#: many workload families (acceptance floor from the league design).
DOMINANCE_FLOOR = 2
_RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_league.json"


def _merge_results(update: dict) -> dict:
    payload = {}
    if _RESULT_PATH.exists():
        payload = json.loads(_RESULT_PATH.read_text())
    payload.update(update)
    payload["quick_mode"] = QUICK
    _RESULT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


@pytest.fixture(scope="module")
def season():
    """One full league season, plus its wall time and rendering."""
    config = LeagueConfig(seed=0, quick=QUICK, workers=4)
    started = time.perf_counter()
    payload = run_league(config)
    elapsed = time.perf_counter() - started
    return config, payload, elapsed


def test_league_is_deterministic(season):
    """A second seeded season renders byte-identical leaderboard JSON,
    even at a different worker fan-out."""
    config, payload, __ = season
    rerun = run_league(
        LeagueConfig(seed=config.seed, quick=config.quick, workers=1)
    )
    assert leaderboard_json(rerun) == leaderboard_json(payload)


def test_full_roster_raced(season):
    __, payload, __ = season
    raced = {row["tuner"] for row in payload["leaderboard"]}
    assert raced == set(TUNER_NAMES)
    ranks = [row["rank"] for row in payload["leaderboard"]]
    assert ranks == list(range(1, len(TUNER_NAMES) + 1))
    for name in TUNER_NAMES:
        assert set(payload["cells"][name]) == set(payload["config"]["entries"])


def test_ensemble_ties_or_beats_best_single(season):
    """Per family, the ensemble should match the member it shortlists;
    across the zoo it must tie-or-beat the best single tuner on at
    least ``DOMINANCE_FLOOR`` families."""
    __, payload, __ = season
    singles = [name for name in TUNER_NAMES if name != "ensemble"]
    dominated = []
    for family in payload["families"]:
        best_single = max(
            payload["tuners"][name]["families"][family] for name in singles
        )
        ensemble = payload["tuners"]["ensemble"]["families"][family]
        if ensemble >= best_single:
            dominated.append(family)
    assert len(dominated) >= DOMINANCE_FLOOR, (
        f"ensemble tied-or-beat the best single tuner on {dominated!r} only"
    )


def test_cbo_adapter_bit_identical():
    """The adapter is a pure delegation: same profile, same seed, same
    budgets must yield the same recommendation field-for-field."""
    engine = HadoopEngine(ec2_cluster())
    dataset = Dataset(
        "league-text",
        nominal_bytes=64 * 2**20,
        source=random_text_source(),
        seed=3,
    )
    profile, __ = StarfishProfiler(engine).profile_job(word_count_job(), dataset)
    whatif = WhatIfEngine(engine.cluster)
    budgets = QUICK_BUDGETS["cbo"] if QUICK else {}
    direct = CostBasedOptimizer(whatif, seed=11, **budgets).optimize(profile)
    adapted = make_tuner(
        "cbo", WhatIfEngine(engine.cluster), seed=11,
        budgets={"cbo": budgets},
    ).optimize(profile)
    assert adapted.best_config == direct.best_config
    assert adapted.predicted_runtime == direct.predicted_runtime
    assert adapted.default_predicted_runtime == direct.default_predicted_runtime
    assert adapted.evaluations == direct.evaluations
    assert adapted.memo_hits == direct.memo_hits


def test_emit_leaderboard(season):
    """Fold the season into ``BENCH_league.json`` for the perf record."""
    config, payload, elapsed = season
    rows = {
        row["tuner"]: {
            "mean_speedup": row["mean_speedup"],
            "rank": row["rank"],
            "speedup_per_kiloeval": row["speedup_per_kiloeval"],
            "total_evaluations": row["total_evaluations"],
        }
        for row in payload["leaderboard"]
    }
    merged = _merge_results(
        {
            "entries": len(payload["config"]["entries"]),
            "families": {
                family: len(keys) for family, keys in payload["families"].items()
            },
            "leaderboard": rows,
            "seed": config.seed,
            "wall_seconds": round(elapsed, 3),
        }
    )
    print()
    print(json.dumps(merged, indent=2, sort_keys=True))
    winner = payload["leaderboard"][0]
    assert winner["mean_speedup"] >= 1.0, "the winning tuner must not regress"
