"""Benchmark: the store warm-up (adoption) experiment."""

from repro.experiments import adoption

from .conftest import run_once


def test_adoption(benchmark, ctx):
    result = run_once(benchmark, adoption.run, ctx)
    final = result.rows[-1]
    __, default_h, starfish_h, pstorm_h, starfish_tuned, pstorm_tuned, __ = final
    assert pstorm_h < starfish_h < default_h
    assert pstorm_tuned >= starfish_tuned
