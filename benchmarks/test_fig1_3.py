"""Benchmark regenerating Figure 1.3 (motivating profile-reuse speedups)."""

from repro.experiments import fig1_3

from .conftest import run_once


def test_fig1_3(benchmark, ctx):
    result = run_once(benchmark, fig1_3.run, ctx)
    speedups = {row[0]: row[1] for row in result.rows}
    assert speedups["CBO (bigram rel. freq. profile)"] > speedups["RBO"]
