"""Serving throughput: the tuning service cold vs warm result cache.

Measures requests/second and wait+service latency percentiles through
:func:`repro.serving.run_load` on the simulated clock, in two states:

- **cold** — the cache is cleared before every replay, so each distinct
  (job, dataset) key pays the full sample + match + CBO pipeline;
- **warm** — the same traffic replayed against the already-filled cache,
  so repeat keys cost ``cache_hit_cost_seconds``.

The acceptance bar for the serving PR is warm ≥ 2x cold throughput; the
numbers land in ``BENCH_serving.json`` at the repo root next to the CBO
and matcher baselines.  ``SERVING_BENCH_QUICK=1`` shrinks the replay for
CI smoke runs (the 2x floor still holds — cache hits are that much
cheaper — so it is asserted in both modes).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.observability import MetricsRegistry
from repro.serving import LoadConfig, TenantSpec, TuningService, run_load

QUICK = os.environ.get("SERVING_BENCH_QUICK", "") not in ("", "0")
#: Acceptance floor: warm-cache throughput vs cold-cache throughput.
WARM_SPEEDUP_FLOOR = 2.0
_RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_serving.json"


def _merge_results(update: dict) -> dict:
    payload = {}
    if _RESULT_PATH.exists():
        payload = json.loads(_RESULT_PATH.read_text())
    payload.update(update)
    payload["quick_mode"] = QUICK
    _RESULT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def _config() -> LoadConfig:
    return LoadConfig(
        requests=60 if QUICK else 200,
        workers=4,
        seed=7,
        # Fast arrivals + wide-open gates: the whole replay lands in a
        # few simulated seconds and nothing is shed, so the makespan
        # measures how fast the workers drain the backlog — pipeline
        # cost, not arrival pacing or shedding.
        arrival_rate=50.0,
        queue_capacity=512,
        shed_watermark=512,
        deadline_seconds=10_000.0,
        remember_every=0,
        tenants=[
            TenantSpec("bench", weight=1.0, rate_per_second=1e6, burst=1e6)
        ],
    )


def _latency_block(summary: dict) -> dict:
    total = summary["latency"]["total_seconds"]
    return {"p50_s": total["p50"], "p99_s": total["p99"]}


@pytest.fixture(scope="module")
def replays():
    """One service, the same seeded traffic replayed cold then warm."""
    config = _config()
    service = TuningService(
        config=config.service_config(), seed=config.seed,
        registry=MetricsRegistry(),
    )
    service.cache.clear()
    cold = run_load(config, service=service, registry=MetricsRegistry())
    warm = run_load(config, service=service, registry=MetricsRegistry())
    return config, cold, warm


def test_warm_cache_doubles_throughput(replays):
    config, cold, warm = replays
    cold_rps = cold.summary["throughput_rps"]
    warm_rps = warm.summary["throughput_rps"]
    assert cold_rps > 0 and warm_rps > 0
    speedup = warm_rps / cold_rps
    payload = _merge_results(
        {
            "serving": {
                "requests": config.requests,
                "workers": config.workers,
                "seed": config.seed,
                "cold": {
                    "throughput_rps": cold_rps,
                    "cache_hits": cold.summary["counts"]["cache_hits"],
                    **_latency_block(cold.summary),
                },
                "warm": {
                    "throughput_rps": warm_rps,
                    "cache_hits": warm.summary["counts"]["cache_hits"],
                    **_latency_block(warm.summary),
                },
                "warm_speedup": round(speedup, 2),
            }
        }
    )
    print()
    print(json.dumps(payload, indent=2, sort_keys=True))
    assert speedup >= WARM_SPEEDUP_FLOOR, (
        f"warm cache speedup {speedup:.2f}x below the "
        f"{WARM_SPEEDUP_FLOOR}x floor"
    )


def test_every_request_served(replays):
    """The benchmark's gates are wide open: nothing may be shed."""
    __, cold, warm = replays
    assert cold.summary["counts"]["shed_total"] == 0
    assert warm.summary["counts"]["shed_total"] == 0
    assert warm.summary["counts"]["cache_hits"] >= (
        cold.summary["counts"]["cache_hits"]
    )
