"""Benchmark regenerating Figure 6.3 + Table 6.2 (tuning effectiveness)."""

from repro.experiments import fig6_3

from .conftest import run_once


def test_fig6_3_and_table6_2(benchmark, ctx, records):
    result = run_once(benchmark, fig6_3.run, ctx, records)
    by_job = {row[0]: row for row in result.rows}

    # Co-occurrence pairs is the headline: the largest speedup.
    cooc = by_job["word-cooccurrence-pairs"]
    assert all(cooc[3] >= row[3] for row in result.rows)

    # Inverted index: defaults near-optimal, blanket RBO rules can hurt.
    invidx = by_job["inverted-index"]
    assert invidx[2] < 1.1
    assert invidx[3] < 2.0

    # PStorM never loses badly to the RBO anywhere.
    for row in result.rows:
        assert max(row[3], row[4], row[5]) >= row[2] * 0.95

    # Table 6.2's ordering: co-occurrence slowest, word count fastest.
    assert by_job["word-cooccurrence-pairs"][1] > by_job["word-count"][1]
