"""Observability overhead: a disabled registry must be ~free on run_job.

There is no uninstrumented ``run_job`` left to compare against, so the
baseline is reconstructed in the same run: the cost of the disabled
path *is* the cost of its no-op instrument calls, which we time directly
(at the call count one ``run_job`` performs) and bound at 5% of the
warm-cache job time.  A second check times enabled-vs-disabled runs
interleaved and applies a deliberately loose factor-2 bound — enabled
instrumentation does real work (histogram observes, span records) and
is priced separately in ``docs/observability.md``.
"""

from __future__ import annotations

from time import perf_counter

from repro.hadoop import (
    Dataset,
    FunctionRecordSource,
    HadoopEngine,
    JobConfiguration,
    MapReduceJob,
    ec2_cluster,
)
from repro.observability import SIM_SECONDS_BUCKETS, MetricsRegistry, Tracer

MB = 1 << 20
ROUNDS = 9


def _lines(split_index, rng):
    words = [f"w{i}" for i in range(25)]
    return [
        (i, " ".join(words[int(rng.integers(0, 25))] for __ in range(6)))
        for i in range(80)
    ]


def _wc_map(key, line, ctx):
    for word in line.split():
        ctx.emit(word, 1)


def _wc_reduce(word, counts, ctx):
    total = 0
    for count in counts:
        total += count
        ctx.report_ops(1)
    ctx.emit(word, total)


def _workload():
    dataset = Dataset("obs-bench-text", nominal_bytes=512 * MB,
                      source=FunctionRecordSource(_lines), seed=11)
    job = MapReduceJob(
        name="obs-bench-wordcount", mapper=_wc_map, reducer=_wc_reduce,
        combiner=_wc_reduce,
    )
    return job, dataset, JobConfiguration(num_reduce_tasks=8)


def _min_time(fn, rounds=ROUNDS):
    """Minimum-of-N wall time: the least-noisy point estimate."""
    best = float("inf")
    for __ in range(rounds):
        start = perf_counter()
        fn()
        best = min(best, perf_counter() - start)
    return best


def test_disabled_registry_overhead_under_5_percent():
    job, dataset, config = _workload()
    engine = HadoopEngine(
        ec2_cluster(),
        registry=MetricsRegistry(enabled=False),
        tracer=Tracer(enabled=False),
    )
    execution = engine.run_job(job, dataset, config, seed=1)  # warm caches

    job_time = _min_time(lambda: engine.run_job(job, dataset, config, seed=1))

    # Reconstruct the disabled path's instrumentation cost: one no-op
    # instrument fetch + record per touchpoint, at the per-run call count
    # (per-task observes dominate; the constant covers the fixed calls in
    # engine, scheduler, and cache lookups), with generous headroom.
    touchpoints = 4 * (len(execution.map_tasks) + len(execution.reduce_tasks)) + 64
    registry = MetricsRegistry(enabled=False)

    def noop_calls():
        counter = registry.counter("hadoop_engine_jobs_total")
        hist = registry.histogram("hadoop_engine_job_runtime_seconds",
                                  buckets=SIM_SECONDS_BUCKETS)
        for __ in range(touchpoints):
            counter.inc()
            hist.observe(1.0)

    overhead = _min_time(noop_calls)
    assert overhead < 0.05 * job_time, (
        f"disabled-observability overhead {overhead * 1e6:.1f}us is not "
        f"under 5% of the {job_time * 1e3:.2f}ms warm run_job"
    )


def test_enabled_observability_within_loose_bound():
    job, dataset, config = _workload()
    disabled_engine = HadoopEngine(
        ec2_cluster(),
        registry=MetricsRegistry(enabled=False),
        tracer=Tracer(enabled=False),
    )
    enabled_engine = HadoopEngine(
        ec2_cluster(), registry=MetricsRegistry(), tracer=Tracer()
    )
    # One shared warm-up each, then interleaved timed rounds so ambient
    # machine noise hits both variants equally.
    disabled_engine.run_job(job, dataset, config, seed=1)
    enabled_engine.run_job(job, dataset, config, seed=1)

    disabled_best = enabled_best = float("inf")
    for __ in range(ROUNDS):
        start = perf_counter()
        disabled_engine.run_job(job, dataset, config, seed=1)
        disabled_best = min(disabled_best, perf_counter() - start)
        start = perf_counter()
        enabled_engine.run_job(job, dataset, config, seed=1)
        enabled_best = min(enabled_best, perf_counter() - start)

    assert enabled_best < 2.0 * disabled_best, (
        f"enabled observability {enabled_best * 1e3:.2f}ms vs "
        f"disabled {disabled_best * 1e3:.2f}ms exceeds the 2x bound"
    )
