"""Benchmark regenerating Table 6.1 (the benchmark inventory)."""

from repro.experiments import table6_1

from .conftest import run_once


def test_table6_1(benchmark, ctx):
    result = run_once(benchmark, table6_1.run, ctx)
    assert len(result.rows) == 56
