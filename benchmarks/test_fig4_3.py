"""Benchmark regenerating Figure 4.3 (map-phase time contrast)."""

from repro.experiments import fig4_3

from .conftest import run_once


def test_fig4_3(benchmark, ctx):
    result = run_once(benchmark, fig4_3.run, ctx)
    wc, cooc = result.rows
    map_index = result.headers.index("MAP")
    assert cooc[map_index] > wc[map_index]
