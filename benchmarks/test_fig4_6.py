"""Benchmark regenerating Figure 4.6 (shuffle times across data sizes)."""

from repro.experiments import fig4_6

from .conftest import run_once


def test_fig4_6(benchmark, ctx):
    result = run_once(benchmark, fig4_6.run, ctx)
    shuffle_index = result.headers.index("shuffle s/reducer")
    small, large = result.rows
    assert large[shuffle_index] > small[shuffle_index]
