"""Shared benchmark fixtures.

Each benchmark regenerates one of the paper's tables or figures and
prints the resulting rows (run ``pytest benchmarks/ --benchmark-only -s``
to see them).  The suite profiles are collected once per session.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import ExperimentContext, collect_suite
from repro.workloads import standard_benchmark


def pytest_configure(config):
    # Benchmarks run the experiment drivers once; disable warmup noise.
    config.option.benchmark_warmup = False


@pytest.fixture(scope="session")
def ctx():
    return ExperimentContext.create()


@pytest.fixture(scope="session")
def records(ctx):
    return collect_suite(ctx, standard_benchmark())


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment driver exactly once under the benchmark timer."""
    result = benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
    print()
    print(result)
    benchmark.extra_info["rows"] = [list(map(str, row)) for row in result.rows]
    return result
