"""Restart-to-first-probe: physical snapshots vs logical replay.

A durable store restarts by loading SSTable manifests, replaying only
the WAL tail, and warming the match index from ``index_checkpoint.json``
— work that barely grows with store size.  The pre-durability restart
path replays the JSON export insert by insert (normalizers, WAL writes,
cell encoding, index updates — the full put pipeline per job), which is
linear with a much larger constant.  This benchmark times both paths to
first completed probe across store sizes and lands the curves in
``BENCH_durability.json``.

``RESTART_BENCH_QUICK=1`` shrinks the sizes for CI smoke runs; the
snapshot path must beat replay at every size in both modes.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.cli import _synthetic_job
from repro.core.matcher import ProfileMatcher
from repro.core.persistence import dump_store, load_store
from repro.core.store import ProfileStore
from repro.observability import MetricsRegistry

QUICK = os.environ.get("RESTART_BENCH_QUICK", "") not in ("", "0")
SIZES = [4, 8, 16] if QUICK else [8, 16, 32, 64]
#: Acceptance floor: snapshot restore vs JSON replay at the largest size.
SPEEDUP_FLOOR = 1.3 if QUICK else 2.0
_RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_durability.json"


def _populate(store: ProfileStore, size: int) -> None:
    for number in range(size):
        profile, static = _synthetic_job(number)
        store.put(profile, static, job_id=f"job-{number}@bench")


def _probe_features():
    from tests.test_crash_recovery import _probe_features as build

    return build()


def _first_probe(store: ProfileStore) -> None:
    matcher = ProfileMatcher(store, registry=MetricsRegistry())
    matcher.match_job(_probe_features())


def _time_snapshot_restore(data_dir: Path, size: int) -> tuple[float, int]:
    seed = ProfileStore(data_dir=data_dir, registry=MetricsRegistry())
    _populate(seed, size)
    seed.match_index().ensure_fresh()
    seed.snapshot()

    registry = MetricsRegistry()
    start = time.perf_counter()
    restored = ProfileStore(data_dir=data_dir, registry=registry)
    _first_probe(restored)
    elapsed = time.perf_counter() - start
    rebuilds = registry.get("pstorm_matcher_index_rebuilds_total")
    assert len(restored) == size
    return elapsed, 0 if rebuilds is None else int(rebuilds.value)


def _time_json_replay(export: Path, size: int) -> float:
    seed = ProfileStore(registry=MetricsRegistry())
    _populate(seed, size)
    dump_store(seed, export)

    start = time.perf_counter()
    restored = load_store(export, store=ProfileStore(registry=MetricsRegistry()))
    _first_probe(restored)
    elapsed = time.perf_counter() - start
    assert len(restored) == size
    return elapsed


def test_snapshot_restart_beats_linear_replay(tmp_path):
    # Warm both paths once: first-touch costs (imports, lazy module
    # state) would otherwise be billed to the smallest size.
    _time_snapshot_restore(tmp_path / "warmup", 2)
    _time_json_replay(tmp_path / "warmup.json", 2)
    rows = []
    for size in SIZES:
        restore_s, rebuilds = _time_snapshot_restore(
            tmp_path / f"snap{size}", size
        )
        replay_s = _time_json_replay(tmp_path / f"export{size}.json", size)
        rows.append(
            {
                "jobs": size,
                "snapshot_restore_s": round(restore_s, 4),
                "json_replay_s": round(replay_s, 4),
                "speedup": round(replay_s / restore_s, 2),
                "index_rebuilds": rebuilds,
            }
        )

    payload = {}
    if _RESULT_PATH.exists():
        payload = json.loads(_RESULT_PATH.read_text())
    payload["restart_to_first_probe"] = {
        "sizes": SIZES,
        "rows": rows,
        "speedup_floor": SPEEDUP_FLOOR,
    }
    payload["quick_mode"] = QUICK
    _RESULT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print()
    print(json.dumps(payload, indent=2, sort_keys=True))

    for row in rows:
        # The checkpoint kept the index warm on every restart.
        assert row["index_rebuilds"] == 0, row
        assert row["speedup"] > 1.0, row
    assert rows[-1]["speedup"] >= SPEEDUP_FLOOR, rows[-1]
    # The snapshot path's growth across the sweep stays near-flat while
    # replay's is linear; 2x slack absorbs scheduler/GC noise on the
    # millisecond-scale restore timings.
    restore_growth = rows[-1]["snapshot_restore_s"] / rows[0]["snapshot_restore_s"]
    replay_growth = rows[-1]["json_replay_s"] / rows[0]["json_replay_s"]
    assert restore_growth < replay_growth * 2.0, (restore_growth, replay_growth)
