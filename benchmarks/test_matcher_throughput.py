"""Micro-benchmarks: matcher latency and store scan throughput.

Not a paper figure — these measure the cost of PStorM's own machinery
(one store lookup per submitted job), which the paper argues must stay
negligible relative to the 1-task sampling run.

The scan-vs-index section times ``ProfileMatcher.match_job`` over the
columnar match index against the filtered-scan reference at store sizes
{32, 256, 2048}, asserting identical outcomes before trusting either
number.  Results land in ``BENCH_matcher.json`` at the repo root.
``MATCHER_BENCH_QUICK=1`` shrinks the sizes for CI smoke runs; the ≥5x
speedup floor is only enforced on the full benchmark's largest store.
"""

from __future__ import annotations

import json
import os
import random
import time
from pathlib import Path

from repro.analysis.cfg import ControlFlowGraph
from repro.analysis.static_features import STATIC_FEATURE_NAMES, StaticFeatures
from repro.core.features import JobFeatures
from repro.core.matcher import ProfileMatcher
from repro.core.store import ProfileStore
from repro.experiments.common import build_store
from repro.observability import MetricsRegistry
from repro.starfish.profile import (
    MAP_COST_FEATURES,
    MAP_DATA_FLOW_FEATURES,
    REDUCE_COST_FEATURES,
    REDUCE_DATA_FLOW_FEATURES,
    JobProfile,
    SideProfile,
)

QUICK = os.environ.get("MATCHER_BENCH_QUICK", "") not in ("", "0")
#: Acceptance floor: at the largest store the indexed probe must beat
#: the scan path by at least this factor (full benchmark only).
SPEEDUP_FLOOR = 5.0
STORE_SIZES = (32, 64) if QUICK else (32, 256, 2048)
_RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_matcher.json"

_ARCHETYPES = 16
_CATEGORICAL = tuple(
    name for name in STATIC_FEATURE_NAMES if name not in ("MAP_CFG", "RED_CFG")
)


def _cfg_a(x):
    return x + 1


def _cfg_b(x):
    if x > 0:
        return x
    return -x


def _cfg_c(x):
    total = 0
    for item in range(4):
        total += item
    return total


def _cfg_d(x):
    while x > 1:
        x -= 2
    return x


_CFGS = tuple(
    ControlFlowGraph.from_callable(fn) for fn in (_cfg_a, _cfg_b, _cfg_c, _cfg_d)
)


def _archetype_values(archetype: int, jitter: float) -> dict:
    base = 0.05 * archetype
    return {
        "flow": tuple(base + jitter + 0.01 * k for k in range(4)),
        "map_costs": tuple(base + jitter + 0.005 * k for k in range(5)),
        "red_flow": (base + jitter, base + jitter + 0.01),
        "red_costs": tuple(base + jitter + 0.002 * k for k in range(4)),
        "statics": {name: f"{name}-{archetype}" for name in _CATEGORICAL},
        "map_cfg": _CFGS[archetype % len(_CFGS)],
        "red_cfg": _CFGS[(archetype + 1) % len(_CFGS)],
    }


def _synthetic_store(size: int, seed: int = 7) -> ProfileStore:
    """A store of *size* profiles across 16 behavioural archetypes, so
    the dynamic filter prunes roughly 15/16 of candidates — the funnel
    shape the index is built for."""
    rng = random.Random(seed)
    store = ProfileStore(registry=MetricsRegistry())
    for number in range(size):
        values = _archetype_values(number % _ARCHETYPES, rng.random() * 0.004)
        profile = JobProfile(
            job_name=f"synthetic-{number}",
            dataset_name=f"ds{number % 5}",
            input_bytes=(number + 1) << 24,
            split_bytes=128 << 20,
            num_map_tasks=4,
            num_reduce_tasks=2,
            map_profile=SideProfile(
                side="map",
                data_flow=dict(zip(MAP_DATA_FLOW_FEATURES, values["flow"])),
                cost_factors=dict(zip(MAP_COST_FEATURES, values["map_costs"])),
                statistics={},
                phase_times={},
                num_tasks=4,
            ),
            reduce_profile=SideProfile(
                side="reduce",
                data_flow=dict(zip(REDUCE_DATA_FLOW_FEATURES, values["red_flow"])),
                cost_factors=dict(zip(REDUCE_COST_FEATURES, values["red_costs"])),
                statistics={},
                phase_times={},
                num_tasks=2,
            ),
        )
        static = StaticFeatures(
            categorical=values["statics"],
            map_cfg=values["map_cfg"],
            reduce_cfg=values["red_cfg"],
        )
        store.put(profile, static)
    return store


def _probe_features(archetype: int = 3) -> JobFeatures:
    values = _archetype_values(archetype, 0.001)
    return JobFeatures(
        job_name="bench-probe",
        static=StaticFeatures(
            categorical=values["statics"],
            map_cfg=values["map_cfg"],
            reduce_cfg=values["red_cfg"],
        ),
        map_data_flow=values["flow"],
        map_costs=values["map_costs"],
        reduce_data_flow=values["red_flow"],
        reduce_costs=values["red_costs"],
        input_bytes=100 << 24,
    )


def _timeit(fn, repeats: int) -> float:
    best = float("inf")
    for __ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _merge_results(update: dict) -> dict:
    payload = {}
    if _RESULT_PATH.exists():
        payload = json.loads(_RESULT_PATH.read_text())
    payload.update(update)
    payload["quick_mode"] = QUICK
    _RESULT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def test_scan_vs_index_speedup():
    """Indexed probe vs filtered-scan reference across store sizes."""
    probe = _probe_features()
    rows = {}
    for size in STORE_SIZES:
        store = _synthetic_store(size)
        indexed = ProfileMatcher(
            store, euclidean_threshold=0.2, registry=MetricsRegistry()
        )
        scan = ProfileMatcher(
            store,
            euclidean_threshold=0.2,
            registry=MetricsRegistry(),
            use_index=False,
        )
        # Equivalence gate: never report a speedup for a wrong answer.
        indexed_outcome = indexed.match_job(probe)  # also warms the index
        scan_outcome = scan.match_job(probe)
        assert indexed_outcome == scan_outcome
        assert indexed_outcome.matched

        repeats = 3 if size >= 1024 else 5
        scan_seconds = _timeit(lambda: scan.match_job(probe), repeats)
        index_seconds = _timeit(lambda: indexed.match_job(probe), repeats)
        rows[str(size)] = {
            "scan_seconds": scan_seconds,
            "index_seconds": index_seconds,
            "speedup": scan_seconds / index_seconds,
        }

    payload = _merge_results(
        {
            "match_job": {
                "store_sizes": rows,
                "speedup_floor": SPEEDUP_FLOOR,
            }
        }
    )
    print()
    for size, row in rows.items():
        print(
            f"store={size:>5}  scan={row['scan_seconds'] * 1e3:8.2f} ms  "
            f"index={row['index_seconds'] * 1e3:8.2f} ms  "
            f"speedup={row['speedup']:6.1f}x"
        )
    if not QUICK:
        largest = rows[str(max(STORE_SIZES))]
        assert largest["speedup"] >= SPEEDUP_FLOOR, payload


def test_match_job_latency(benchmark, records):
    store = build_store(records)
    matcher = ProfileMatcher(store)
    probe = records["word-count@wikipedia-35gb"].features
    outcome = benchmark(matcher.match_job, probe)
    assert outcome.matched


def test_store_put_throughput(benchmark, records):
    items = list(records.values())

    def populate():
        store = build_store(records)
        return len(store)

    count = benchmark.pedantic(populate, rounds=3, iterations=1)
    assert count == len(items)


def test_dynamic_scan_throughput(benchmark, records):
    store = build_store(records)
    probe = records["word-count@wikipedia-35gb"].features

    def stage():
        return store.euclidean_stage(
            "map", "flow", list(probe.map_data_flow), 1.0
        )

    survivors = benchmark(stage)
    assert "word-count@wikipedia-35gb" in survivors


def test_lsm_read_amplification(benchmark, records):
    """LSM behaviour under PStorM-shaped row keys: reads stay fast while
    flush/compaction cadence bounds the file count."""
    from repro.hbase import LsmStore

    def workload():
        store = LsmStore(flush_threshold=32, compaction_threshold=4)
        for index, key in enumerate(sorted(records)):
            for prefix in ("Dynamic/", "Static/", "Profile/"):
                store.put(prefix + key, index)
        probes = 0
        for key in sorted(records):
            __, __, probed = store.get("Dynamic/" + key)
            probes += probed
        return store, probes

    store, probes = benchmark(workload)
    assert store.read_amplification() <= store.compaction_threshold
    assert dict(store.scan())  # merged view intact
