"""Micro-benchmarks: matcher latency and store scan throughput.

Not a paper figure — these measure the cost of PStorM's own machinery
(one store lookup per submitted job), which the paper argues must stay
negligible relative to the 1-task sampling run.
"""

from repro.core.matcher import ProfileMatcher
from repro.experiments.common import build_store


def test_match_job_latency(benchmark, records):
    store = build_store(records)
    matcher = ProfileMatcher(store)
    probe = records["word-count@wikipedia-35gb"].features
    outcome = benchmark(matcher.match_job, probe)
    assert outcome.matched


def test_store_put_throughput(benchmark, records):
    items = list(records.values())

    def populate():
        store = build_store(records)
        return len(store)

    count = benchmark.pedantic(populate, rounds=3, iterations=1)
    assert count == len(items)


def test_dynamic_scan_throughput(benchmark, records):
    store = build_store(records)
    probe = records["word-count@wikipedia-35gb"].features

    def stage():
        return store.euclidean_stage(
            "map", "flow", list(probe.map_data_flow), 1.0
        )

    survivors = benchmark(stage)
    assert "word-count@wikipedia-35gb" in survivors


def test_lsm_read_amplification(benchmark, records):
    """LSM behaviour under PStorM-shaped row keys: reads stay fast while
    flush/compaction cadence bounds the file count."""
    from repro.hbase import LsmStore

    def workload():
        store = LsmStore(flush_threshold=32, compaction_threshold=4)
        for index, key in enumerate(sorted(records)):
            for prefix in ("Dynamic/", "Static/", "Profile/"):
                store.put(prefix + key, index)
        probes = 0
        for key in sorted(records):
            __, __, probed = store.get("Dynamic/" + key)
            probes += probed
        return store, probes

    store, probes = benchmark(workload)
    assert store.read_amplification() <= store.compaction_threshold
    assert dict(store.scan())  # merged view intact
