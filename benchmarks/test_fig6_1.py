"""Benchmark regenerating Figure 6.1 (PStorM vs feature-selection
baselines, SD and DD states)."""

from repro.experiments import fig6_1

from .conftest import run_once


def test_fig6_1(benchmark, ctx, records):
    result = run_once(benchmark, fig6_1.run, ctx, records)
    by_key = {(row[0], row[1]): row for row in result.rows}
    assert by_key[("PStorM", "SD")][2] == 1.0
    assert by_key[("PStorM", "DD")][2] > by_key[("P-features", "DD")][2]
    assert by_key[("PStorM", "DD")][2] > by_key[("SP-features", "DD")][2]
