"""Benchmark regenerating Figure 4.5 (co-occurrence ≈ bigram phases)."""

from repro.experiments import fig4_5

from .conftest import run_once


def test_fig4_5(benchmark, ctx):
    result = run_once(benchmark, fig4_5.run, ctx)
    cooc, bigram = result.rows
    for index in range(1, len(result.headers)):
        if float(bigram[index]) > 0:
            assert 0.4 < float(cooc[index]) / float(bigram[index]) < 2.5
