"""Benchmark regenerating Figure 4.1 (profiling overhead and slots)."""

from repro.experiments import fig4_1

from .conftest import run_once


def test_fig4_1(benchmark, ctx):
    result = run_once(benchmark, fig4_1.run, ctx)
    for row in result.rows:
        assert row[3] < row[2]  # 1-task overhead < 10% overhead
        assert row[5] == 1
