"""CBO throughput: batched What-If scoring vs the scalar reference.

Measures (1) raw What-If predictions/sec — one ``predict()`` call per
config vs one ``predict_matrix`` call per generation — and (2) end-to-end
``CostBasedOptimizer.optimize()`` wall time vs ``optimize_sequential()``
on the same search, asserting the two return byte-identical
recommendations before trusting either number.

Results land in ``BENCH_cbo.json`` at the repo root so future PRs have a
perf trajectory to compare against.  ``CBO_BENCH_QUICK=1`` switches to a
small search for CI smoke runs: equality is still asserted bit-for-bit,
but the ≥5x speedup floor is only enforced on the full benchmark.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.hadoop.cluster import ec2_cluster
from repro.hadoop.engine import HadoopEngine
from repro.starfish import CostBasedOptimizer, StarfishProfiler, WhatIfEngine
from repro.starfish.cbo import _config_from_row, _random_matrix
from repro.workloads import word_count_job
from repro.workloads.datasets import Dataset, random_text_source

QUICK = os.environ.get("CBO_BENCH_QUICK", "") not in ("", "0")
#: Acceptance floor for the full benchmark: the batched search must beat
#: the scalar reference by at least this factor.
SPEEDUP_FLOOR = 5.0
_RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_cbo.json"


@pytest.fixture(scope="module")
def profile():
    engine = HadoopEngine(ec2_cluster())
    dataset = Dataset(
        "bench-text",
        nominal_bytes=64 * 2**20,
        source=random_text_source(),
        seed=3,
    )
    job_profile, __ = StarfishProfiler(engine).profile_job(word_count_job(), dataset)
    return engine.cluster, job_profile


def _timeit(fn, repeats: int) -> float:
    best = float("inf")
    for __ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _merge_results(update: dict) -> dict:
    payload = {}
    if _RESULT_PATH.exists():
        payload = json.loads(_RESULT_PATH.read_text())
    payload.update(update)
    payload["quick_mode"] = QUICK
    _RESULT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def test_prediction_throughput(profile):
    """Raw What-If pricing rate: scalar loop vs one matrix call."""
    cluster, job_profile = profile
    whatif = WhatIfEngine(cluster)
    n = 128 if QUICK else 512
    matrix = _random_matrix(np.random.default_rng(7), n, None)
    configs = [_config_from_row(row) for row in matrix]

    scalar_runtimes = [
        whatif.predict(job_profile, config).runtime_seconds for config in configs
    ]
    batch = whatif.predict_matrix(job_profile, matrix)
    assert scalar_runtimes == list(batch.runtime_seconds), (
        "batched predictions diverged from the scalar path"
    )

    repeats = 2 if QUICK else 5
    scalar_s = _timeit(
        lambda: [whatif.predict(job_profile, config) for config in configs], repeats
    )
    batch_s = _timeit(lambda: whatif.predict_matrix(job_profile, matrix), repeats)
    results = {
        "predictions": {
            "generation_size": n,
            "scalar_per_sec": round(n / scalar_s, 1),
            "batch_per_sec": round(n / batch_s, 1),
            "speedup": round(scalar_s / batch_s, 2),
        }
    }
    _merge_results(results)
    assert batch_s < scalar_s, "batched pricing should never be slower"


def test_optimize_throughput(profile):
    """End-to-end search: batched optimize() vs the sequential reference."""
    cluster, job_profile = profile
    whatif = WhatIfEngine(cluster)
    cbo = CostBasedOptimizer(
        whatif,
        num_samples=150 if QUICK else 600,
        refine_rounds=3,
        elite=5,
        perturbations_per_elite=10 if QUICK else 40,
        seed=0,
    )

    batched = cbo.optimize(job_profile)
    sequential = cbo.optimize_sequential(job_profile)
    assert batched.best_config == sequential.best_config
    assert batched.predicted_runtime == sequential.predicted_runtime
    assert batched.evaluations == sequential.evaluations
    assert (
        batched.default_predicted_runtime == sequential.default_predicted_runtime
    )

    repeats = 1 if QUICK else 5
    batch_s = _timeit(lambda: cbo.optimize(job_profile), repeats)
    sequential_s = _timeit(
        lambda: cbo.optimize_sequential(job_profile), max(1, repeats - 2)
    )
    speedup = sequential_s / batch_s
    payload = _merge_results(
        {
            "optimize": {
                "num_samples": cbo.num_samples,
                "refine_rounds": cbo.refine_rounds,
                "elite": cbo.elite,
                "perturbations_per_elite": cbo.perturbations_per_elite,
                "evaluations": batched.evaluations,
                "memo_hits": batched.memo_hits,
                "batch_ms": round(batch_s * 1e3, 3),
                "sequential_ms": round(sequential_s * 1e3, 3),
                "speedup": round(speedup, 2),
                "identical_result": True,
            }
        }
    )
    print()
    print(json.dumps(payload, indent=2, sort_keys=True))
    if not QUICK:
        assert speedup >= SPEEDUP_FLOOR, (
            f"optimize() speedup {speedup:.2f}x below the {SPEEDUP_FLOOR}x floor"
        )
