"""Benchmarks for the extended ablations (filter order, thresholds,
cluster transfer, Eq. 1 weights)."""

from repro.experiments import ablations

from .conftest import run_once


def test_filter_order_ablation(benchmark, ctx, records):
    result = run_once(benchmark, ablations.run_filter_order, ctx, records)
    by_order = {row[0]: row for row in result.rows}
    assert (
        by_order["dynamics-first (PStorM)"][2] > by_order["statics-first"][2]
    )


def test_threshold_sensitivity(benchmark, ctx, records):
    result = run_once(benchmark, ablations.run_threshold_sensitivity, ctx, records)
    by_setting = {(row[0], row[1]): row[2] for row in result.rows}
    assert by_setting[(0.5, 1.0)] >= max(by_setting.values()) - 0.05


def test_cluster_transfer(benchmark, ctx):
    result = run_once(benchmark, ablations.run_cluster_transfer, ctx)
    for row in result.rows:
        assert row[5] < row[4]


def test_gbrt_weights(benchmark, ctx, records):
    result = run_once(benchmark, ablations.run_gbrt_weights, ctx, records)
    by_name = {row[0]: row[1] for row in result.rows}
    assert by_name["Eucl_DS_map"] == max(by_name.values())


def test_store_scalability(benchmark, ctx, records):
    result = run_once(benchmark, ablations.run_store_scalability, ctx, records)
    sizes = [row[0] for row in result.rows]
    scans = [row[2] for row in result.rows]
    assert scans == sorted(scans)
    assert sizes == sorted(sizes)


def test_cfg_cost_correlation(benchmark, ctx, records):
    result = run_once(benchmark, ablations.run_cfg_cost_correlation, ctx, records)
    rho = float(result.notes.split("rho=")[1].split(" ")[0])
    assert rho > 0.5


def test_dataflow_similarity(benchmark, ctx):
    from repro.experiments import dataflow_similarity

    result = run_once(benchmark, dataflow_similarity.run, ctx)
    by_pop = {row[0]: row for row in result.rows}
    generated = by_pop["script-generated"]
    handwritten = by_pop["hand-written"]
    assert generated[3] > handwritten[3]  # static-path share
