"""Benchmark regenerating Figure 6.2 (PStorM vs GBRT 1-4)."""

from repro.experiments import fig6_2

from .conftest import run_once


def test_fig6_2(benchmark, ctx, records):
    result = run_once(benchmark, fig6_2.run, ctx, records)
    by_key = {(row[0], row[1]): row for row in result.rows}
    for state in ("SD", "DD"):
        pstorm = by_key[("PStorM", state)]
        for setting in ("GBRT 1", "GBRT 2", "GBRT 3", "GBRT 4"):
            gbrt = by_key[(setting, state)]
            assert pstorm[2] >= gbrt[2]  # map side
            assert pstorm[3] >= gbrt[3]  # reduce side
