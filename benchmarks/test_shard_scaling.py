"""Probe latency across region splits: the sharding scaling curve.

A sharded store keeps one match-index partition per Dynamic-range
region and probes them scatter-gather.  The claim under test: as the
table grows 16x (4k -> 64k jobs) and the row space splits across
dozens of regions, the indexed probe's median latency drifts by at
most 1.5x — the per-partition bounding-box prune discards regions that
cannot contain a stage survivor, so probe cost tracks the matching
neighbourhood, not the table.  Every timed probe is also checked
bit-identical against the flat scan-path reference, so the curve can
never be bought with a wrong answer.  Results land in
``BENCH_sharding.json``.

``SHARD_BENCH_QUICK=1`` shrinks the sweep for CI smoke runs; the drift
ceiling is asserted only on the full sweep (quick sizes are too small
for a stable ratio).
"""

from __future__ import annotations

import json
import os
import statistics
import time
from pathlib import Path

from repro.core.matcher import ProfileMatcher
from repro.core.store import ProfileStore
from repro.observability import MetricsRegistry

QUICK = os.environ.get("SHARD_BENCH_QUICK", "") not in ("", "0")
SIZES = [512, 2048] if QUICK else [4096, 16384, 65536]
SPLIT_THRESHOLD = 256 if QUICK else 8192
REPEATS = 15 if QUICK else 40
#: Acceptance ceiling: p50 drift from the smallest to the largest size.
DRIFT_CEILING = 1.5
#: The sweep must actually cross region splits to prove anything.
MIN_SPLITS = 4
_RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_sharding.json"

#: Jobs near the probe (the matching neighbourhood, constant-size).
NEAR_JOBS = 64


def _specs():
    from tests.test_match_index import _spec

    near = _spec()
    far = _spec(
        map_flow=(4.0, 4.0, 0.0, 0.0),
        red_flow=(0.0, 0.05),
        map_cfg=1,
        red_cfg=2,
        statics={name: "beta" for name in near["statics"]},
    )
    return near, far


def _build(size: int, registry: MetricsRegistry) -> ProfileStore:
    from tests.test_match_index import make_profile, make_static

    near_spec, far_spec = _specs()
    near = (make_profile("near", near_spec), make_static(near_spec))
    far = (make_profile("far", far_spec), make_static(far_spec))
    store = ProfileStore(
        registry=registry,
        shard_index=True,
        num_region_servers=4,
        split_threshold=SPLIT_THRESHOLD,
    )
    stride = max(1, size // NEAR_JOBS)
    for number in range(size):
        if number % stride == 0:
            store.put(near[0], near[1], job_id=f"near-{number:06d}@bench")
        else:
            store.put(far[0], far[1], job_id=f"far-{number:06d}@bench")
    return store


def _measure(size: int) -> dict:
    from tests.test_match_index import make_features

    registry = MetricsRegistry()
    store = _build(size, registry)
    near_spec, __ = _specs()
    features = make_features(near_spec)

    index = store.match_index()
    index.ensure_fresh()
    matcher = ProfileMatcher(store, registry=MetricsRegistry())
    scan = ProfileMatcher(store, registry=MetricsRegistry(), use_index=False)

    # Correctness first: the timed path must answer scan-identically.
    outcome = matcher.match_job(features)
    assert outcome == scan.match_job(features)
    assert outcome.matched
    assert outcome.map_match.job_id == "near-000000@bench"

    samples = []
    for __ in range(REPEATS):
        start = time.perf_counter()
        matcher.match_job(features)
        samples.append(time.perf_counter() - start)
    return {
        "jobs": size,
        "partitions": index.partition_count,
        "splits": int(registry.counter("hbase_region_splits_total").value),
        "p50_ms": round(statistics.median(samples) * 1e3, 3),
        "scan_identical": True,
    }


def test_probe_latency_flat_across_splits():
    _measure(SIZES[0] // 4)  # warm imports and lazy module state
    rows = [_measure(size) for size in SIZES]
    drift = round(rows[-1]["p50_ms"] / rows[0]["p50_ms"], 2)

    payload = {}
    if _RESULT_PATH.exists():
        payload = json.loads(_RESULT_PATH.read_text())
    payload["shard_scaling"] = {
        "sizes": SIZES,
        "split_threshold": SPLIT_THRESHOLD,
        "rows": rows,
        "p50_drift": drift,
        "drift_ceiling": DRIFT_CEILING,
        "min_splits": MIN_SPLITS,
    }
    payload["quick_mode"] = QUICK
    _RESULT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print()
    print(json.dumps(payload, indent=2, sort_keys=True))

    assert rows[0]["partitions"] >= 1
    assert rows[-1]["partitions"] > rows[0]["partitions"]
    assert rows[-1]["splits"] >= MIN_SPLITS, rows[-1]
    if not QUICK:
        assert drift <= DRIFT_CEILING, rows
