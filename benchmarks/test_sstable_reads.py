"""Cold point reads: binary block-sharded SSTables vs legacy JSON blobs.

A legacy ``sst_*.json`` table pays its whole serialized self on first
touch — a cold point read parses every row ever flushed.  The binary
format reads the footer (index-sized) plus exactly one block, so the
cold-read cost is flat in table size.  This benchmark populates one
store per format at several row counts, fully compacts each to a single
deep run, then times a cold restart-to-first-point-read per format and
a warm pass that exercises the shared LRU block cache.  Results land in
``BENCH_storage.json``.

``STORAGE_BENCH_QUICK=1`` shrinks the sizes for CI smoke runs; the
binary format must beat JSON at every size in both modes and clear the
speedup floor at the largest.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.hbase import LsmStore
from repro.observability import MetricsRegistry

QUICK = os.environ.get("STORAGE_BENCH_QUICK", "") not in ("", "0")
SIZES = [500, 2000] if QUICK else [1000, 8000, 64000]
#: Acceptance floor: cold binary vs cold JSON point read at the largest
#: size.  The full-mode floor is the headline claim; quick mode keeps a
#: margin suited to its smaller tables.
SPEEDUP_FLOOR = 1.3 if QUICK else 3.0
_RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_storage.json"

#: Few flushes (cheap population), no automatic compaction (the forced
#: one below leaves exactly one deep run per store), amortized fsyncs.
_STORE_KW = dict(
    flush_threshold=4096,
    compaction_threshold=10**9,
    group_commit=512,
)


def _value(i: int) -> dict:
    return {"n": i, "pad": "x" * 64}


def _populate(data_dir: Path, fmt: str, rows: int) -> int:
    store = LsmStore(data_dir=data_dir, sstable_format=fmt, **_STORE_KW)
    for i in range(rows):
        store.put(f"k{i:06d}", _value(i))
    store.flush()
    store.compact(force=True)
    assert len(store.hfiles) == 1
    store.close()
    return sum(path.stat().st_size for path in data_dir.glob("sst_*"))


def _cold_point_read(data_dir: Path, fmt: str, key: str, expect: dict) -> float:
    """Restart-to-first-point-read, best of three fresh opens."""
    best = float("inf")
    for __ in range(3):
        start = time.perf_counter()
        store = LsmStore(
            data_dir=data_dir, sstable_format=fmt,
            registry=MetricsRegistry(), **_STORE_KW,
        )
        found, value, __probed = store.get(key)
        best = min(best, time.perf_counter() - start)
        assert found and value == expect
        store.close()
    return best


def _warm_cache_pass(data_dir: Path, rows: int) -> tuple[float, int]:
    """Two sweeps over a key sample through one binary store: the first
    faults blocks into the cache, the second should serve hot."""
    store = LsmStore(
        data_dir=data_dir, sstable_format="binary",
        registry=MetricsRegistry(), **_STORE_KW,
    )
    sample = [f"k{i:06d}" for i in range(0, rows, max(1, rows // 100))]
    for __ in range(2):
        for key in sample:
            found, value, __probed = store.get(key)
            assert found and value == _value(int(key[1:]))
    stats = store.block_cache.stats()
    [table] = store.hfiles
    blocks = table.num_blocks
    store.close()
    return stats["hit_rate"], blocks


def test_binary_cold_point_reads_beat_json(tmp_path):
    # Warm both paths once so first-touch costs (imports, lazy module
    # state) are not billed to the smallest size.
    _populate(tmp_path / "warm-bin", "binary", 64)
    _populate(tmp_path / "warm-json", "json", 64)
    _cold_point_read(tmp_path / "warm-bin", "binary", "k000032", _value(32))
    _cold_point_read(tmp_path / "warm-json", "json", "k000032", _value(32))

    rows = []
    for size in SIZES:
        bin_dir = tmp_path / f"bin{size}"
        json_dir = tmp_path / f"json{size}"
        bin_bytes = _populate(bin_dir, "binary", size)
        json_bytes = _populate(json_dir, "json", size)
        key = f"k{size // 2:06d}"
        expect = _value(size // 2)
        bin_s = _cold_point_read(bin_dir, "binary", key, expect)
        json_s = _cold_point_read(json_dir, "json", key, expect)
        hit_rate, blocks = _warm_cache_pass(bin_dir, size)
        rows.append(
            {
                "rows": size,
                "binary_cold_read_s": round(bin_s, 6),
                "json_cold_read_s": round(json_s, 6),
                "speedup": round(json_s / bin_s, 2),
                "binary_blocks": blocks,
                "binary_sst_bytes": bin_bytes,
                "json_sst_bytes": json_bytes,
                "warm_cache_hit_rate": round(hit_rate, 3),
            }
        )

    payload = {}
    if _RESULT_PATH.exists():
        payload = json.loads(_RESULT_PATH.read_text())
    payload["cold_point_reads"] = {
        "sizes": SIZES,
        "rows": rows,
        "speedup_floor": SPEEDUP_FLOOR,
    }
    payload["quick_mode"] = QUICK
    _RESULT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print()
    print(json.dumps(payload, indent=2, sort_keys=True))

    for row in rows:
        assert row["speedup"] > 1.0, row
        # The second sweep served from the cache: at least the repeated
        # half of the lookups must have been hits.
        assert row["warm_cache_hit_rate"] >= 0.4, row
    assert rows[-1]["speedup"] >= SPEEDUP_FLOOR, rows[-1]
    # The whole point of block sharding: cold-read cost stays near-flat
    # while the JSON blob parse grows linearly with table size.
    growth_bin = rows[-1]["binary_cold_read_s"] / rows[0]["binary_cold_read_s"]
    growth_json = rows[-1]["json_cold_read_s"] / rows[0]["json_cold_read_s"]
    assert growth_bin < growth_json, (growth_bin, growth_json)
