"""Serving scaling: the process backend vs the GIL-bound thread ceiling.

Sweeps the same seeded cold-path workload (tiny cache TTL: every request
pays the full matcher + CBO pipeline) across worker counts on the load
harness's simulated clock, for both backends:

- ``processes`` — N independent lanes plus the per-dispatch IPC tax;
- ``threads`` with ``gil_fraction=1.0`` — the matcher/CBO-bound worst
  case, where every lane serializes behind the GIL and adding workers
  buys nothing.

The acceptance floor for the multi-process PR is asserted here: 4-process
throughput ≥ 2.5x 1-process on the cold path, the GIL-bound thread sweep
stays flat, and the warm (cache-hit) path — served parent-side without
IPC — does not regress versus the thread backend.  Results merge into
``BENCH_serving.json`` under ``scaling``; ``SERVING_BENCH_QUICK=1``
shrinks the replay for CI.

The shutdown-hygiene proof rides along because it needs a *real*
process-backend frontend (everything above runs on the simulated cost
model): after ``stop()``, every shared-memory segment the publisher ever
created must be unlinked.
"""

from __future__ import annotations

import json
import multiprocessing.shared_memory as shared_memory
import os
from pathlib import Path

import pytest

from repro.hadoop import (
    Dataset,
    FunctionRecordSource,
    MapReduceJob,
    ec2_cluster,
)
from repro.observability import MetricsRegistry
from repro.serving import (
    LoadConfig,
    ServiceConfig,
    TenantSpec,
    TuningService,
    run_load,
    run_worker_sweep,
)

QUICK = os.environ.get("SERVING_BENCH_QUICK", "") not in ("", "0")
#: Acceptance floor: 4-process vs 1-process cold-path throughput.
SCALING_FLOOR = 2.5
#: GIL-bound threads must stay flat: 4 workers buy at most this much.
GIL_CEILING = 1.2
WORKER_COUNTS = (1, 2, 4)
_RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_serving.json"


def _merge_results(update: dict) -> dict:
    payload = {}
    if _RESULT_PATH.exists():
        payload = json.loads(_RESULT_PATH.read_text())
    payload.update(update)
    payload["quick_mode"] = QUICK
    _RESULT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def _config(backend: str, gil_fraction: float = 0.0) -> LoadConfig:
    return LoadConfig(
        requests=60 if QUICK else 200,
        workers=4,
        seed=7,
        arrival_rate=50.0,
        queue_capacity=512,
        shed_watermark=512,
        deadline_seconds=10_000.0,
        remember_every=0,
        # Cold path by construction: the TTL is far below the arrival
        # gap, so every probe finds its entry expired and pays the full
        # pipeline — the work that actually scales across processes.
        cache_ttl_seconds=0.001,
        tenants=[
            TenantSpec("bench", weight=1.0, rate_per_second=1e6, burst=1e6)
        ],
        backend=backend,
        gil_fraction=gil_fraction,
    )


@pytest.fixture(scope="module")
def sweeps():
    processes = run_worker_sweep(
        _config("processes"), WORKER_COUNTS, registry=MetricsRegistry()
    )
    threads = run_worker_sweep(
        _config("threads", gil_fraction=1.0),
        WORKER_COUNTS,
        registry=MetricsRegistry(),
    )
    return processes, threads


def test_four_processes_beat_the_scaling_floor(sweeps):
    processes, threads = sweeps
    rps = {
        count: report.summary["throughput_rps"]
        for count, report in processes.items()
    }
    gil_rps = {
        count: report.summary["throughput_rps"]
        for count, report in threads.items()
    }
    assert all(value > 0 for value in rps.values())
    speedup = rps[4] / rps[1]
    gil_speedup = gil_rps[4] / gil_rps[1]
    payload = _merge_results(
        {
            "scaling": {
                "requests": _config("processes").requests,
                "seed": 7,
                "processes": {
                    str(count): {
                        "throughput_rps": rps[count],
                        "p99_total_s": processes[count].summary["latency"][
                            "total_seconds"
                        ]["p99"],
                    }
                    for count in WORKER_COUNTS
                },
                "threads_gil_bound": {
                    str(count): {"throughput_rps": gil_rps[count]}
                    for count in WORKER_COUNTS
                },
                "process_speedup_4x": round(speedup, 2),
                "threads_gil_speedup_4x": round(gil_speedup, 2),
            }
        }
    )
    print()
    print(json.dumps(payload["scaling"], indent=2, sort_keys=True))
    assert speedup >= SCALING_FLOOR, (
        f"4-process speedup {speedup:.2f}x below the {SCALING_FLOOR}x floor"
    )
    assert gil_speedup <= GIL_CEILING, (
        f"GIL-bound thread sweep should be flat, got {gil_speedup:.2f}x"
    )


def test_cold_sweep_sheds_nothing(sweeps):
    processes, threads = sweeps
    for sweep in (processes, threads):
        for report in sweep.values():
            assert report.summary["counts"]["shed_total"] == 0
            assert report.summary["counts"]["cache_hits"] == 0


def test_warm_path_not_regressed_by_process_backend():
    """Cache hits are served parent-side with zero IPC, so the warm
    replay must not be slower than the thread backend's."""

    def warm_rps(backend: str) -> float:
        config = LoadConfig(
            requests=60 if QUICK else 200,
            workers=4,
            seed=7,
            arrival_rate=50.0,
            queue_capacity=512,
            shed_watermark=512,
            deadline_seconds=10_000.0,
            remember_every=0,
            tenants=[
                TenantSpec(
                    "bench", weight=1.0, rate_per_second=1e6, burst=1e6
                )
            ],
            backend=backend,
        )
        service = TuningService(
            config=config.service_config(),
            seed=config.seed,
            registry=MetricsRegistry(),
        )
        run_load(config, service=service, registry=MetricsRegistry())  # fill
        warm = run_load(config, service=service, registry=MetricsRegistry())
        assert warm.summary["counts"]["cache_hits"] > 0
        return warm.summary["throughput_rps"]

    threads = warm_rps("threads")
    processes = warm_rps("processes")
    _merge_results(
        {
            "warm_parity": {
                "threads_rps": threads,
                "processes_rps": processes,
            }
        }
    )
    assert processes >= 0.95 * threads


# Module-level so the job survives the pickle hop to worker processes.
def _bench_lines(split_index, rng):
    return [(i, f"alpha beta gamma delta {i % 7}") for i in range(100)]


def _bench_map(key, line, ctx):
    for word in line.split():
        ctx.emit(word, 1)


def _bench_reduce(word, counts, ctx):
    ctx.emit(word, sum(counts))


def test_real_frontend_unlinks_every_segment():
    """Shutdown hygiene on the *real* process backend: no shm leaks."""
    job = MapReduceJob(
        name="scaling-bench", mapper=_bench_map, reducer=_bench_reduce
    )
    dataset = Dataset(
        "scaling-bench-text",
        nominal_bytes=64 << 20,
        source=FunctionRecordSource(_bench_lines),
        seed=5,
    )
    service = TuningService(
        cluster=ec2_cluster(),
        config=ServiceConfig(workers=2, backend="processes"),
        seed=0,
        registry=MetricsRegistry(),
    )
    service.start()
    publisher = service._procpool._publisher
    names = {publisher.ctrl_name, *publisher.segment_names()}
    response = service.submit_request(
        job, dataset, tenant="bench"
    ).result(timeout=120.0)
    assert response.ok
    names.update(publisher.segment_names())
    assert service.stop(timeout=60.0)
    for name in sorted(names):
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
