"""Benchmarks for the DESIGN.md ablations (§5.2, §5.3, §7.2.1)."""

from repro.experiments import ablations

from .conftest import run_once


def test_pushdown_ablation(benchmark, ctx, records):
    result = run_once(benchmark, ablations.run_pushdown, ctx, records)
    by_mode = {row[0]: row for row in result.rows}
    assert by_mode["pushdown"][2] < by_mode["client-side"][2]


def test_store_model_ablation(benchmark, ctx, records):
    result = run_once(benchmark, ablations.run_store_models, ctx, records)
    by_model = {row[0]: row for row in result.rows}
    assert (
        by_model["table per feature type (§5.2.2)"][1]
        > by_model["feature-type prefix (adopted)"][1]
    )


def test_param_feature_ablation(benchmark, ctx):
    result = run_once(benchmark, ablations.run_param_features, ctx)
    for __, plain, augmented in result.rows:
        assert augmented < plain
