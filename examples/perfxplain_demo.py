#!/usr/bin/env python
"""PerfXplain over the PStorM store (§2.3.2 + §7.2.4).

Builds an execution log out of the profile store (the §7.2.4 integration),
then asks the kind of question PerfXplain is built for: "these two jobs
read the same corpus — why is one of them 7x slower?"  Answers come as
information-gain-ranked predicates, enriched with PStorM's static-feature
differences.
"""

from repro.experiments.common import ExperimentContext
from repro.perfxplain import ExecutionLog, PerfQuery, PerfXplain
from repro.workloads import (
    cooccurrence_pairs_job,
    inverted_index_job,
    random_text_1gb,
    sort_job,
    teragen_dataset,
    wikipedia_35gb,
    word_count_job,
)


def main() -> None:
    ctx = ExperimentContext.create()
    log = ExecutionLog()
    print("profiling a small job history...")
    for job, dataset in (
        (word_count_job(), wikipedia_35gb()),
        (cooccurrence_pairs_job(), wikipedia_35gb()),
        (inverted_index_job(), wikipedia_35gb()),
        (sort_job(), teragen_dataset(35)),
        (word_count_job(), random_text_1gb()),
    ):
        profile, execution = ctx.profiler.profile_job(job, dataset)
        log.add_execution(profile, execution)
        print(f"  {job.name}@{dataset.name}: {execution.runtime_seconds/60:.1f} min")

    explainer = PerfXplain(log)

    print("\nQ: word count and co-occurrence read the same corpus — why is")
    print("   co-occurrence so much slower?")
    query = PerfQuery(
        job_a="word-count@wikipedia-35gb",
        job_b="word-cooccurrence-pairs@wikipedia-35gb",
        expected="similar",
    )
    print(explainer.explain(query).render())

    print("\nQ: ...and despite already knowing the map output is bigger?")
    despite = PerfQuery(
        query.job_a, query.job_b, expected="similar", despite="map_output_bytes"
    )
    print(explainer.explain(despite).render())

    print("\nQ: same job, different corpus sizes — expected slower, was it?")
    expected_case = PerfQuery(
        job_a="word-count@random-text-1gb",
        job_b="word-count@wikipedia-35gb",
        expected="slower",
    )
    explanation = explainer.explain(expected_case)
    print(explanation.render() if explanation.predicates else
          f"behaviour matched expectations ({explanation.observed}); nothing to explain")


if __name__ == "__main__":
    main()
