#!/usr/bin/env python
"""Visual cluster views: timelines, phase charts, failures, speculation.

Renders the views the thesis screenshots from the Starfish Visualization
System (phase breakdowns, task timelines) for a default-config and a
tuned run of word count, then re-runs the job under a fault model to show
what failures and speculative execution cost.
"""

from repro.hadoop import FaultModel, HadoopEngine, JobConfiguration, ec2_cluster
from repro.starfish import (
    CostBasedOptimizer,
    StarfishProfiler,
    WhatIfEngine,
    compare_phase_breakdowns,
    phase_breakdown,
    task_timeline,
)
from repro.workloads import random_text_1gb, word_count_job


def main() -> None:
    cluster = ec2_cluster()
    engine = HadoopEngine(cluster)
    job = word_count_job()
    data = random_text_1gb()

    default_run = engine.run_job(job, data, JobConfiguration())
    print(phase_breakdown(default_run))
    print()
    print(task_timeline(default_run, cluster.total_map_slots,
                        cluster.total_reduce_slots, max_rows=12))

    profiler = StarfishProfiler(engine)
    profile, __ = profiler.profile_job(job, data)
    best = CostBasedOptimizer(WhatIfEngine(cluster), seed=0).optimize(profile)
    tuned_run = engine.run_job(job, data, best.best_config)

    print("\ndefault vs tuned, per-task phases:")
    print(compare_phase_breakdowns(default_run, tuned_run))
    print(f"\nspeedup: {default_run.runtime_seconds / tuned_run.runtime_seconds:.2f}x")

    print("\nwith failures and speculation (10% task failure rate):")
    model = FaultModel(task_failure_probability=0.10)
    faulty, map_schedule, reduce_schedule = engine.run_job_with_faults(
        job, data, best.best_config, fault_model=model, seed=3
    )
    print(f"  failures: {map_schedule.failures} map"
          + (f" + {reduce_schedule.failures} reduce" if reduce_schedule else ""))
    print(f"  speculative attempts: {map_schedule.speculative_attempts}")
    print(f"  wasted work: {map_schedule.wasted_seconds:.0f} s")
    print(f"  runtime: {tuned_run.runtime_seconds / 60:.1f} min clean -> "
          f"{faulty.runtime_seconds / 60:.1f} min faulty")


if __name__ == "__main__":
    main()
