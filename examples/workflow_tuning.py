#!/usr/bin/env python
"""Workflow-level tuning (§7.2.5): the FIM chain through PStorM.

The frequent-itemset-mining workload is a chain of three MR jobs.  Run it
twice through PStorM: the first pass misses the store (each stage runs
instrumented and its profile is stored); the second pass hits — every
stage gets a matched profile and a CBO-tuned configuration, and the chain
latency drops accordingly.  Also shows the bottleneck analyzer's
diagnosis of the chain's heaviest stage.
"""

from repro.core import PStorM
from repro.core.workflows import ChainStage, run_chain
from repro.hadoop import HadoopEngine, ec2_cluster
from repro.starfish import analyze_profile
from repro.workloads import (
    fim_aggregate_job,
    fim_item_count_job,
    fim_pair_count_job,
    webdocs_dataset,
)


def main() -> None:
    engine = HadoopEngine(ec2_cluster())
    pstorm = PStorM(engine)
    transactions = webdocs_dataset()

    stages = [
        ChainStage(fim_item_count_job(), input_from="source"),
        ChainStage(fim_pair_count_job(), input_from="source"),
        ChainStage(fim_aggregate_job(), input_from="source"),
    ]

    print("first run (cold store)...")
    first = run_chain(pstorm, stages, transactions)
    for stage in first.stages:
        status = "hit" if stage.submission.matched else "miss -> profiled & stored"
        print(f"  {stage.stage.job.name:<20} {stage.runtime_seconds/60:6.1f} min  [{status}]")
    print(f"  chain latency: {first.total_runtime_seconds/60:.1f} min")

    print("\nsecond run (warm store)...")
    second = run_chain(pstorm, stages, transactions)
    for stage in second.stages:
        status = "hit" if stage.submission.matched else "miss"
        print(f"  {stage.stage.job.name:<20} {stage.runtime_seconds/60:6.1f} min  [{status}]")
    print(f"  chain latency: {second.total_runtime_seconds/60:.1f} min")
    print(f"  chain speedup: "
          f"{first.total_runtime_seconds / second.total_runtime_seconds:.2f}x")

    heaviest = max(first.stages, key=lambda s: s.runtime_seconds)
    submission = heaviest.submission
    if submission.profile_stored_as is not None:
        profile = pstorm.store.get_profile(submission.profile_stored_as)
    else:
        profile = submission.outcome.profile  # the matched donor profile
    print(f"\nbottlenecks of the heaviest stage ({heaviest.stage.job.name}):")
    for bottleneck in analyze_profile(profile):
        print(f"  {bottleneck.render()}")


if __name__ == "__main__":
    main()
