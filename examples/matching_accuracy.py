#!/usr/bin/env python
"""Reproduce the §6.1 matching-accuracy experiment interactively.

Profiles the full Table 6.1 benchmark, then evaluates the multi-stage
matcher and both information-gain baselines in the SD and DD store
states, printing the Fig 6.1 table and the individual DD mismatches
(which should be exactly the twin-less profiles).
"""

from repro.experiments import fig6_1
from repro.experiments.accuracy import evaluate_pstorm
from repro.experiments.common import ExperimentContext, collect_suite
from repro.workloads import standard_benchmark


def main() -> None:
    print("profiling the 56-entry Table 6.1 suite...")
    ctx = ExperimentContext.create()
    records = collect_suite(ctx, standard_benchmark())

    print(fig6_1.run(ctx, records))

    print("\nDD-state mismatch details:")
    result = evaluate_pstorm(records, "DD")
    for mismatch in result.mismatches:
        print(f"  {mismatch}")
    print(
        "\n('wanted None' rows are the twin-less profiles — co-occurrence "
        "stripes and the FIM chain — exactly the cases §6.1.1 reports.)"
    )


if __name__ == "__main__":
    main()
