#!/usr/bin/env python
"""PStorM's headline trick: tune a job that has never run on the cluster.

Reproduces the Chapter 1 motivating scenario (Fig 1.3): the cluster has
executed the *bigram relative frequency* job before, and its profile sits
in the PStorM store.  A user submits the *word co-occurrence pairs* job —
never seen before.  PStorM runs one sampled map task, matches the sample
against the store, hands the bigram job's profile to the Starfish CBO,
and the unseen job runs almost as fast as if it had been fully profiled.
"""

from repro.core import PStorM
from repro.hadoop import HadoopEngine, JobConfiguration, ec2_cluster
from repro.workloads import (
    bigram_relative_frequency_job,
    cooccurrence_pairs_job,
    wikipedia_35gb,
    word_count_job,
    random_text_1gb,
    sort_job,
    teragen_dataset,
)


def main() -> None:
    engine = HadoopEngine(ec2_cluster())
    pstorm = PStorM(engine)
    wiki = wikipedia_35gb()

    # The cluster's history: three other jobs ran fully profiled.
    print("populating the profile store with the cluster's history...")
    for job, data in (
        (bigram_relative_frequency_job(), wiki),
        (word_count_job(), random_text_1gb()),
        (sort_job(), teragen_dataset(35)),
    ):
        job_id = pstorm.remember(job, data)
        print(f"  stored {job_id}")

    # A brand-new job arrives.
    unseen = cooccurrence_pairs_job()
    print(f"\nsubmitting previously unseen job: {unseen.name}")
    result = pstorm.submit(unseen, wiki)

    print(f"matched: {result.matched}")
    print(f"  map side:    {result.outcome.map_match.job_id} "
          f"({result.outcome.map_match.stage})")
    print(f"  reduce side: {result.outcome.reduce_match.job_id} "
          f"({result.outcome.reduce_match.stage})")
    print(f"  composite profile: {result.outcome.is_composite}")
    print(f"  sampling cost: {result.sampling_seconds:.0f} s (one map slot)")

    default = engine.run_job(unseen, wiki, JobConfiguration())
    print(f"\ndefault runtime: {default.runtime_seconds / 60:.1f} min")
    print(f"PStorM-tuned runtime: {result.runtime_seconds / 60:.1f} min")
    print(f"speedup: {default.runtime_seconds / result.runtime_seconds:.2f}x "
          "— without ever having profiled this job")


if __name__ == "__main__":
    main()
