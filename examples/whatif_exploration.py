#!/usr/bin/env python
"""Explore Hadoop parameter sensitivity with the What-If engine (§2.3.1).

Given one collected profile of the word co-occurrence pairs job, sweep
individual parameters and print the predicted runtime curve — the same
queries the CBO issues during its search, exposed interactively.  Shows
the cross-parameter interaction the paper discusses in §2.2: the best
``io.sort.record.percent`` depends on the intermediate record size.
"""

from repro.hadoop import HadoopEngine, JobConfiguration, ec2_cluster
from repro.starfish import StarfishProfiler, WhatIfEngine
from repro.workloads import cooccurrence_pairs_job, wikipedia_35gb


def sweep(whatif, profile, attribute, values, base=None):
    base = base or JobConfiguration()
    print(f"\n{attribute}:")
    for value in values:
        config = base.with_params(**{attribute: value})
        prediction = whatif.predict(profile, config)
        bar = "#" * int(prediction.runtime_seconds / 60 / 4)
        print(f"  {value!s:>8} -> {prediction.runtime_seconds / 60:7.1f} min {bar}")


def main() -> None:
    cluster = ec2_cluster()
    engine = HadoopEngine(cluster)
    profiler = StarfishProfiler(engine)
    whatif = WhatIfEngine(cluster)

    job = cooccurrence_pairs_job()
    data = wikipedia_35gb()
    print(f"profiling {job.name} on {data.name}...")
    profile, execution = profiler.profile_job(job, data)
    print(f"observed runtime: {execution.runtime_seconds / 60:.1f} min")

    sweep(whatif, profile, "num_reduce_tasks", [1, 4, 16, 27, 64, 128, 256, 512])
    tuned_reducers = JobConfiguration(num_reduce_tasks=128)
    sweep(whatif, profile, "io_sort_mb", [32, 64, 100, 150, 200], base=tuned_reducers)
    sweep(
        whatif, profile, "io_sort_record_percent",
        [0.01, 0.05, 0.15, 0.3, 0.5], base=tuned_reducers,
    )
    sweep(whatif, profile, "compress_map_output", [False, True], base=tuned_reducers)


if __name__ == "__main__":
    main()
