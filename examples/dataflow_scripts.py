#!/usr/bin/env python
"""The Pig-Latin-style layer: write scripts, get tuned MR chains.

Demonstrates §1's observation about query-language workloads: scripts
compile onto shared generic operators, so PStorM matches new scripts
through the *strong static path* (same mappers, same CFGs) instead of
the lenient cost fallback hand-written jobs need.
"""

from repro.core import PStorM
from repro.core.workflows import run_chain
from repro.dataflow import DataflowScript, compile_to_chain
from repro.hadoop import HadoopEngine, ec2_cluster
from repro.workloads import pigmix_dataset

# page_views fields: 0 user, 1 action, 2 timespent, 3 term, 4 revenue, 5 links


def main() -> None:
    engine = HadoopEngine(ec2_cluster())
    pstorm = PStorM(engine)
    pages = pigmix_dataset(1)

    history = [
        DataflowScript("revenue-by-user")
        .filter(1, "==", 2)
        .project(0, 4)
        .group_by(0, aggregations=[("sum", 1)]),
        DataflowScript("time-by-term")
        .project(3, 2)
        .group_by(0, aggregations=[("sum", 1), ("avg", 1)]),
    ]
    print("running the cluster's script history (profiles get stored)...")
    for script in history:
        result = run_chain(pstorm, compile_to_chain(script), pages)
        print(f"  {script.name:<18} {result.total_runtime_seconds/60:5.1f} min")

    new_script = (
        DataflowScript("link-popularity")
        .project(0, 5, flatten=1)
        .group_by(1, aggregations=[("count", 0)])
        .order_by(1, descending=True)
    )
    print(f"\nsubmitting a brand-new script: {new_script.name} "
          f"({len(new_script.operators)} operators, "
          f"{len(compile_to_chain(new_script))} MR stages)")
    result = run_chain(pstorm, compile_to_chain(new_script), pages)
    for stage in result.stages:
        submission = stage.submission
        path = submission.outcome.map_match.stage if submission.matched else "miss"
        print(f"  {stage.stage.job.name:<28} "
              f"{stage.runtime_seconds/60:5.1f} min  [{path}]")
    print(
        "\nEvery matched stage went through the static filters: generated "
        "jobs share the generic operators' class names and CFGs — the §1 "
        "argument for why query-language workloads suit PStorM so well."
    )


if __name__ == "__main__":
    main()
