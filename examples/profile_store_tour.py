#!/usr/bin/env python
"""A tour of the PStorM profile store and its HBase data model (Ch. 5).

Shows the Table 5.1 row layout (feature-type prefixes on one column
family), the min/max normalization bounds the store maintains, the
matcher's server-side filter stages, and the §5.3 pushdown win measured
in rows shipped.
"""

from repro.core import ProfileStore, extract_job_features
from repro.hadoop import HadoopEngine, ec2_cluster
from repro.starfish import Sampler, StarfishProfiler
from repro.workloads import (
    inverted_index_job,
    random_text_1gb,
    sort_job,
    teragen_dataset,
    word_count_job,
)


def main() -> None:
    engine = HadoopEngine(ec2_cluster())
    profiler = StarfishProfiler(engine)
    sampler = Sampler(profiler)
    store = ProfileStore()

    print("storing three job profiles...")
    for job, data in (
        (word_count_job(), random_text_1gb()),
        (inverted_index_job(), random_text_1gb()),
        (sort_job(), teragen_dataset(1)),
    ):
        profile, __ = profiler.profile_job(job, data)
        sample = sampler.collect(job, data, count=1)
        features = extract_job_features(job, data, sample.profile, engine)
        job_id = store.put(profile, features.static)
        print(f"  {job_id}")

    print("\nrow keys (Table 5.1 layout — feature-type prefixes):")
    for row_key, __ in store.table.scan():
        print(f"  {row_key}")

    wc_id = "word-count@random-text-1gb"
    print(f"\nDynamic/{wc_id} columns:")
    for name, value in sorted(store.get_dynamic(wc_id).items()):
        print(f"  {name:28s} {value}")

    norm = store.normalizer("map", "flow")
    print("\nmap-side data-flow normalization bounds:")
    print(f"  min: {[round(v, 3) for v in norm.minimums]}")
    print(f"  max: {[round(v, 3) for v in norm.maximums]}")

    # One Euclidean stage, pushed down to the region servers.
    probe = store.get_profile(wc_id).map_profile.data_flow_vector()
    store.hbase.reset_metrics()
    survivors = store.euclidean_stage("map", "flow", probe, threshold=1.0)
    shipped = sum(s.metrics.rows_shipped for s in store.hbase.servers.values())
    scanned = sum(s.metrics.rows_scanned for s in store.hbase.servers.values())
    print(f"\nEuclidean stage: scanned {scanned} rows server-side, "
          f"shipped {shipped}, survivors: {survivors}")


if __name__ == "__main__":
    main()
