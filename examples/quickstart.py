#!/usr/bin/env python
"""Quickstart: profile a job, tune it with Starfish, compare runtimes.

Walks the basic feedback-tuning loop PStorM builds on: run word count on
the simulated cluster under Hadoop defaults, collect its execution
profile, let the cost-based optimizer search the 14-parameter space with
the What-If engine, and run again with the recommendation.
"""

from repro.hadoop import HadoopEngine, JobConfiguration, ec2_cluster
from repro.starfish import CostBasedOptimizer, StarfishProfiler, WhatIfEngine
from repro.workloads import wikipedia_35gb, word_count_job


def main() -> None:
    cluster = ec2_cluster()            # 15 workers, 2+2 slots, 300 MB heaps
    engine = HadoopEngine(cluster)
    job = word_count_job()
    data = wikipedia_35gb()

    print(f"cluster: {cluster.name}, map slots={cluster.total_map_slots}, "
          f"reduce slots={cluster.total_reduce_slots}")
    print(f"job: {job.name} on {data.name} ({data.num_splits} splits)\n")

    # 1. First submission: run with defaults, profiler on (Fig 2.1).
    profiler = StarfishProfiler(engine)
    profile, execution = profiler.profile_job(job, data)
    print(f"default-config runtime: {execution.runtime_seconds / 60:.1f} min")
    mp = profile.map_profile
    print(f"profile: MAP_SIZE_SEL={mp.data_flow['MAP_SIZE_SEL']:.2f}, "
          f"MAP_PAIRS_SEL={mp.data_flow['MAP_PAIRS_SEL']:.2f}, "
          f"MAP_CPU_COST={mp.cost_factors['MAP_CPU_COST']:.0f} ns/record\n")

    # 2. Cost-based optimization over the What-If engine.
    whatif = WhatIfEngine(cluster)
    cbo = CostBasedOptimizer(whatif, seed=0)
    result = cbo.optimize(profile)
    print(f"CBO searched {result.evaluations} configurations")
    changed = {
        name: value
        for name, value in result.best_config.to_dict().items()
        if value != JobConfiguration().get(name)
    }
    print("recommended changes:")
    for name, value in changed.items():
        print(f"  {name} = {value}")

    # 3. Re-run with the recommendation, profiler off.
    tuned = engine.run_job(job, data, result.best_config)
    speedup = execution.runtime_seconds / tuned.runtime_seconds
    print(f"\ntuned runtime: {tuned.runtime_seconds / 60:.1f} min "
          f"(speedup {speedup:.2f}x)")


if __name__ == "__main__":
    main()
