"""Cross-cluster profile transfer (§7.2.6, with a nod to §7.2.3).

The thesis's last future-work item: profiles collected on one cluster
carry that cluster's *cost factors*, so reusing them on a different
cluster (other instance types, other disks) mis-prices every phase.  The
fix it sketches — informed by Herodotou's cluster-sizing work [14] — is to
*adjust* the cost factors by the ratio of the clusters' calibrated
resource rates, keeping the data-flow statistics (which are properties of
the program and data, not the hardware) untouched.

:func:`transfer_profile` implements that adjustment, and
:func:`calibration_ratios` derives the per-resource ratios from two
cluster specs the way a calibration benchmark (disk/network/CPU probes)
would measure them.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hadoop.cluster import ClusterSpec
from ..starfish.profile import JobProfile, SideProfile

__all__ = ["CalibrationRatios", "calibration_ratios", "transfer_profile"]

#: Cost-factor / statistic name -> resource class.
_RESOURCE_OF = {
    "READ_HDFS_IO_COST": "disk",
    "WRITE_HDFS_IO_COST": "disk",
    "READ_LOCAL_IO_COST": "disk",
    "WRITE_LOCAL_IO_COST": "disk",
    "MAP_CPU_COST": "cpu",
    "REDUCE_CPU_COST": "cpu",
    "COMBINE_CPU_COST": "cpu",
    "FRAMEWORK_CPU_COST": "cpu",
    "NETWORK_COST": "network",
    "COMPRESS_CPU_COST": "cpu",
    "DECOMPRESS_CPU_COST": "cpu",
}


@dataclass(frozen=True)
class CalibrationRatios:
    """Target/source rate ratios per resource class."""

    disk: float
    network: float
    cpu: float

    def for_name(self, name: str) -> float:
        resource = _RESOURCE_OF.get(name)
        if resource == "disk":
            return self.disk
        if resource == "network":
            return self.network
        if resource == "cpu":
            return self.cpu
        return 1.0


def _mean_rates(cluster: ClusterSpec) -> tuple[float, float, float]:
    """Cluster-average (disk, network, cpu) base rates."""
    disks, networks, cpus = [], [], []
    for worker in cluster.workers:
        rates = worker.base_rates
        disks.append(
            (
                rates.read_hdfs_ns_per_byte
                + rates.write_hdfs_ns_per_byte
                + rates.read_local_ns_per_byte
                + rates.write_local_ns_per_byte
            )
            / 4.0
        )
        networks.append(rates.network_ns_per_byte)
        cpus.append(rates.cpu_ns_per_record)
    count = len(cluster.workers)
    return sum(disks) / count, sum(networks) / count, sum(cpus) / count


def calibration_ratios(
    source: ClusterSpec, target: ClusterSpec
) -> CalibrationRatios:
    """Rate ratios a calibration run between the clusters would measure."""
    source_disk, source_net, source_cpu = _mean_rates(source)
    target_disk, target_net, target_cpu = _mean_rates(target)
    return CalibrationRatios(
        disk=target_disk / source_disk,
        network=target_net / source_net,
        cpu=target_cpu / source_cpu,
    )


def _transfer_side(side: SideProfile, ratios: CalibrationRatios) -> SideProfile:
    cost_factors = {
        name: value * ratios.for_name(name)
        for name, value in side.cost_factors.items()
    }
    statistics = {
        name: value * ratios.for_name(name)
        for name, value in side.statistics.items()
    }
    return SideProfile(
        side=side.side,
        data_flow=dict(side.data_flow),  # hardware-independent, untouched
        cost_factors=cost_factors,
        statistics=statistics,
        phase_times=dict(side.phase_times),
        num_tasks=side.num_tasks,
    )


def transfer_profile(
    profile: JobProfile,
    source: ClusterSpec,
    target: ClusterSpec,
) -> JobProfile:
    """Adjust *profile* collected on *source* for use on *target*.

    Data-flow statistics pass through unchanged; every cost factor and
    rate-like statistic is scaled by its resource class's calibration
    ratio.  The returned profile is tagged as transferred.
    """
    ratios = calibration_ratios(source, target)
    return JobProfile(
        job_name=profile.job_name,
        dataset_name=profile.dataset_name,
        input_bytes=profile.input_bytes,
        split_bytes=profile.split_bytes,
        num_map_tasks=profile.num_map_tasks,
        num_reduce_tasks=profile.num_reduce_tasks,
        map_profile=_transfer_side(profile.map_profile, ratios),
        reduce_profile=(
            _transfer_side(profile.reduce_profile, ratios)
            if profile.reduce_profile
            else None
        ),
        source=f"transferred({profile.source})",
    )
