"""Shared-memory publication of frozen MatchIndex generations.

The multi-process serving backend (:mod:`repro.serving.procpool`) needs
every worker process to probe the same columnar matrices without copying
them per worker or per request.  This module is the transport: a
*publisher* owned by the writer process packs each
:class:`~repro.core.match_index.FrozenIndexView` — matrices, masks,
factorized codes, CFG payloads, frozen normalizer bounds, plus the full
profile/static payloads a worker needs to rebuild a scan-path replica —
into one immutable ``multiprocessing.shared_memory`` segment per store
generation, and *clients* attach the segments as zero-copy, read-only
numpy views.

Generation protocol
-------------------
A small fixed-size *control segment* carries ``(sequence, generation,
data-segment name)`` behind a seqlock: the writer bumps the sequence to
odd, rewrites the payload, and bumps it back to even; readers re-read
until they observe a stable even sequence.  Data segments are immutable
once published — a new generation gets a *new* segment, never an
in-place rewrite — so the only race left is the attach itself:

- A reader that attached generation *g* keeps a valid mapping even
  after the writer unlinks *g* (POSIX unlink removes the name, not the
  live mappings), so an in-flight probe can never observe a torn view.
- A reader attaching *g* while the writer retires it sees
  ``FileNotFoundError``, re-reads the control segment, and attaches the
  newer generation; if every retry fails it keeps serving its previous
  (stale-but-consistent) view, mirroring the match index's
  stale-not-torn guarantee, and only raises
  :class:`SharedIndexUnavailableError` when it has no view at all —
  the matcher's ladder then falls back to the scan path.

Segment layout
--------------
``[u64 manifest length][pickled manifest][pad to 64][array bytes...]``
where the manifest lists ``(name, dtype, shape, relative offset)`` for
every column, each 64-byte aligned, and the non-array metadata (ids,
vocabularies, CFG payloads, normalizer bounds, store payloads) rides as
one pickled ``__meta__`` pseudo-array.

Sharded generations
-------------------
A :class:`~repro.core.shard_index.FrozenShardedView` publishes as one
data segment *per partition* (``<root>p0``, ``<root>p1``, …, each the
stock single-index layout) plus a root *directory* segment — named in
the control record exactly like a flat generation — whose ``__meta__``
carries the partition key ranges, the child segment names, and the
profile/static payloads.  Readers attach the root, then every child,
and rebuild a ``FrozenShardedView`` over zero-copy per-partition views;
all segments of a generation retire together, so the stale-not-torn
guarantee is unchanged (a reader keeps every mapping of the generation
it pinned).

Lifecycle accounting
--------------------
The publisher tracks every segment it created and unlinks all of them
on :meth:`SharedIndexPublisher.close`; ``shm_index_segments_active``
must read 0 afterwards and re-attaching any retired name must raise
``FileNotFoundError`` — ``tests/test_shm_index.py`` holds the leak
proof.  Clients in *other* processes unregister their attachments from
their local ``resource_tracker`` (the owner unlinks, not them), which
keeps worker shutdown free of spurious leaked-segment warnings.
"""

from __future__ import annotations

import os
import pickle
import struct
import uuid
from typing import TYPE_CHECKING, Any, Mapping

import numpy as np
from multiprocessing import resource_tracker, shared_memory

from ..observability import MetricsRegistry, get_registry
from .match_index import FrozenIndexView
from .shard_index import FrozenShardedView

if TYPE_CHECKING:
    from .store import ProfileStore

__all__ = [
    "SharedIndexError",
    "SharedIndexUnavailableError",
    "SharedIndexPublisher",
    "SharedIndexClient",
]

_ALIGN = 64
_CTRL_SIZE = 1024
_CTRL_HEADER = struct.Struct("<QQQ")  # sequence, generation, name length


class SharedIndexError(RuntimeError):
    """Base class for shared-memory index transport failures."""


class SharedIndexUnavailableError(SharedIndexError):
    """No generation is attachable and no prior view exists."""


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _pack_segment(arrays: Mapping[str, np.ndarray]) -> bytes:
    """Serialize named arrays into the segment layout described above."""
    manifest: list[tuple[str, str, tuple[int, ...], int]] = []
    offset = 0
    blobs: list[bytes] = []
    for name in sorted(arrays):
        arr = np.ascontiguousarray(arrays[name])
        offset = _align(offset)
        manifest.append((name, arr.dtype.str, tuple(arr.shape), offset))
        blobs.append(arr.tobytes())
        offset += arr.nbytes
    manifest_blob = pickle.dumps(manifest, protocol=pickle.HIGHEST_PROTOCOL)
    data_start = _align(8 + len(manifest_blob))
    total = data_start + offset
    buffer = bytearray(total)
    struct.pack_into("<Q", buffer, 0, len(manifest_blob))
    buffer[8:8 + len(manifest_blob)] = manifest_blob
    position = 0
    for (name, dtype, shape, rel_offset), blob in zip(manifest, blobs):
        start = data_start + rel_offset
        buffer[start:start + len(blob)] = blob
        position = rel_offset + len(blob)
    return bytes(buffer)


def _unpack_segment(shm: shared_memory.SharedMemory) -> dict[str, np.ndarray]:
    """Zero-copy, read-only numpy views over one attached segment."""
    (manifest_len,) = struct.unpack_from("<Q", shm.buf, 0)
    manifest = pickle.loads(bytes(shm.buf[8:8 + manifest_len]))
    data_start = _align(8 + manifest_len)
    arrays: dict[str, np.ndarray] = {}
    for name, dtype, shape, rel_offset in manifest:
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        arr = np.frombuffer(
            shm.buf, dtype=np.dtype(dtype), count=count,
            offset=data_start + rel_offset,
        ).reshape(shape)
        arr.flags.writeable = False
        arrays[name] = arr
    return arrays


def _silent_close(shm: shared_memory.SharedMemory) -> None:
    """Unmap an attached segment without ever raising or warning.

    If live numpy views still pin the buffer, ``mmap.close()`` raises
    ``BufferError`` — and would raise again, noisily, from the stdlib
    ``__del__`` at interpreter shutdown.  Disarm the handle instead: the
    pinned mapping stays referenced by the views themselves and is
    unmapped by refcounting when the last one dies, so nothing leaks
    and shutdown stays quiet.
    """
    try:
        shm.close()
    except BufferError:
        try:
            shm._buf = None
            shm._mmap = None
            if shm._fd >= 0:
                os.close(shm._fd)
                shm._fd = -1
        except (AttributeError, OSError):  # pragma: no cover - stdlib drift
            pass


class _Attached:
    """One attached generation: the view plus every mapping (root segment
    first, then per-partition children for sharded generations) keeping
    it alive."""

    def __init__(
        self, shms: list[shared_memory.SharedMemory], generation: int,
        view: Any, meta: dict[str, Any],
    ) -> None:
        self.shms = shms
        self.generation = generation
        self.view = view
        self.meta = meta

    def close(self) -> None:
        self.view = None
        self.meta = {}
        for shm in self.shms:
            _silent_close(shm)


def _open_segment(name: str, unregister: bool) -> shared_memory.SharedMemory:
    shm = shared_memory.SharedMemory(name=name)
    if unregister:
        # This process is a reader, not the owner: the writer's unlink is
        # authoritative, so drop the attach-time registration our local
        # resource tracker made (otherwise worker shutdown logs phantom
        # "leaked shared_memory" warnings for segments the writer owns).
        try:
            resource_tracker.unregister(shm._name, "shared_memory")
        except (KeyError, AttributeError):  # pragma: no cover - tracker quirk
            pass
    return shm


def _view_from_segment(shm: shared_memory.SharedMemory) -> FrozenIndexView:
    arrays = _unpack_segment(shm)
    meta = pickle.loads(arrays.pop("__meta__").tobytes())
    return FrozenIndexView.from_parts(meta["index"], arrays)


def _attach_segment(
    name: str, unregister: bool
) -> tuple[list[shared_memory.SharedMemory], dict[str, Any], Any]:
    """Attach one published generation by its root segment name.

    Flat generations come back as a :class:`FrozenIndexView`; sharded
    ones attach every child partition segment named by the root's
    directory metadata and come back as a :class:`FrozenShardedView`.
    A ``FileNotFoundError`` on *any* segment (the writer retired the
    generation mid-attach) unwinds every mapping taken so far and
    propagates, so the caller's retry loop sees one clean name race.
    """
    shms = [_open_segment(name, unregister)]
    try:
        arrays = _unpack_segment(shms[0])
        meta_blob = arrays.pop("__meta__")
        meta = pickle.loads(meta_blob.tobytes())
        sharded = meta.get("sharded")
        if sharded is None:
            view: Any = FrozenIndexView.from_parts(meta["index"], arrays)
        else:
            views = []
            for child_name in sharded["partitions"]:
                child = _open_segment(child_name, unregister)
                shms.append(child)
                views.append(_view_from_segment(child))
            view = FrozenShardedView(
                generation=sharded["generation"],
                topology_version=sharded["topology_version"],
                ranges=[tuple(pair) for pair in sharded["ranges"]],
                views=views,
            )
    except Exception:
        for shm in shms:
            _silent_close(shm)
        raise
    return shms, meta, view


class SharedIndexPublisher:
    """Writer-side owner of the control segment and every data segment.

    One publisher per serving writer.  ``publish()`` snapshots the
    store's match index at its current generation, packs it (plus the
    profile/static payloads for worker replicas) into a fresh immutable
    segment, flips the control record, and unlinks segments older than
    ``keep_generations`` — attached readers keep their mappings; only
    new attaches move forward.
    """

    def __init__(
        self,
        store: "ProfileStore",
        registry: MetricsRegistry | None = None,
        prefix: str | None = None,
        keep_generations: int = 2,
    ) -> None:
        if keep_generations < 1:
            raise ValueError("keep_generations must be >= 1")
        self._store = store
        self.registry = registry
        self._prefix = prefix or f"psm{os.getpid():x}{uuid.uuid4().hex[:6]}"
        self._keep = keep_generations
        #: generation -> [root segment, partition segments...]; every
        #: segment of a generation is created and retired together.
        self._live: dict[int, list[shared_memory.SharedMemory]] = {}
        self._published_names: dict[int, str] = {}
        self._closed = False
        self._ctrl = shared_memory.SharedMemory(
            name=f"{self._prefix}c", create=True, size=_CTRL_SIZE
        )
        _CTRL_HEADER.pack_into(self._ctrl.buf, 0, 0, 0, 0)

    # ------------------------------------------------------------------
    @property
    def ctrl_name(self) -> str:
        """The control-segment name workers attach first."""
        return self._ctrl.name

    @property
    def published_generation(self) -> int:
        """Latest generation flipped into the control record (-1 = none)."""
        return max(self._published_names, default=-1)

    def segment_names(self) -> list[str]:
        """Every data-segment name currently owned (for leak accounting)."""
        return [
            segment.name
            for gen in sorted(self._live)
            for segment in self._live[gen]
        ]

    # ------------------------------------------------------------------
    def publish(self, force: bool = False) -> int:
        """Publish the store's current generation; returns it.

        No-ops when the store has not advanced past the published
        generation (unless *force*).  Raises whatever the index rebuild
        raises — a publish during a store outage fails loudly and the
        control record keeps naming the previous good generation.
        """
        if self._closed:
            raise SharedIndexError("publisher is closed")
        index = self._store.match_index()
        if index is None:
            raise SharedIndexError("store has no match index to publish")
        view = index.export_view()
        generation = view.generation
        if not force and generation in self._published_names:
            return generation
        profiles = {
            job_id: profile.to_dict()
            for job_id, profile in self._store.bulk_profiles().items()
        }
        statics = {
            job_id: static.to_dict()
            for job_id, static in self._store.bulk_statics().items()
        }
        root_name = f"{self._prefix}g{generation}"
        segments: list[shared_memory.SharedMemory] = []
        total_bytes = 0
        try:
            partition_views = getattr(view, "views", None)
            if partition_views is not None:
                # Sharded: one stock-layout segment per partition, then a
                # root directory segment naming them all.
                child_names = []
                for position, partition in enumerate(partition_views):
                    child_meta = {"index": partition.export_meta()}
                    child_arrays = dict(partition.export_arrays())
                    child_arrays["__meta__"] = np.frombuffer(
                        pickle.dumps(
                            child_meta, protocol=pickle.HIGHEST_PROTOCOL
                        ),
                        dtype=np.uint8,
                    )
                    child_payload = _pack_segment(child_arrays)
                    child = shared_memory.SharedMemory(
                        name=f"{root_name}p{position}",
                        create=True,
                        size=max(len(child_payload), 1),
                    )
                    child.buf[: len(child_payload)] = child_payload
                    segments.append(child)
                    child_names.append(child.name)
                    total_bytes += len(child_payload)
                meta = {
                    "sharded": {
                        "generation": generation,
                        "topology_version": view.topology_version,
                        "ranges": list(view.ranges),
                        "partitions": child_names,
                    },
                    "profiles": profiles,
                    "statics": statics,
                }
                arrays: dict[str, np.ndarray] = {}
            else:
                meta = {
                    "index": view.export_meta(),
                    "profiles": profiles,
                    "statics": statics,
                }
                arrays = dict(view.export_arrays())
            arrays["__meta__"] = np.frombuffer(
                pickle.dumps(meta, protocol=pickle.HIGHEST_PROTOCOL),
                dtype=np.uint8,
            )
            payload = _pack_segment(arrays)
            root = shared_memory.SharedMemory(
                name=root_name, create=True, size=max(len(payload), 1)
            )
            root.buf[: len(payload)] = payload
            segments.insert(0, root)
            total_bytes += len(payload)
        except Exception:
            # A torn publish (e.g. name collision, ENOMEM on a child)
            # must not leak the segments already created.
            for segment in segments:
                segment.close()
                try:
                    segment.unlink()
                except FileNotFoundError:  # pragma: no cover - race
                    pass
            raise
        self._live[generation] = segments
        self._published_names[generation] = root.name
        self._flip_ctrl(generation, root.name)
        self._retire(keep_floor=generation)
        registry = get_registry(self.registry)
        registry.counter(
            "shm_index_publishes_total",
            "match-index generations published to shared memory",
        ).inc()
        registry.gauge(
            "shm_index_published_generation",
            "latest store generation visible in the control segment",
        ).set(float(generation))
        registry.gauge(
            "shm_index_segment_bytes",
            "size of the most recently published data segment",
        ).set(float(total_bytes))
        registry.gauge(
            "shm_index_segments_active",
            "data segments currently owned (not yet unlinked)",
        ).set(float(sum(len(group) for group in self._live.values())))
        return generation

    def _flip_ctrl(self, generation: int, name: str) -> None:
        encoded = name.encode("utf-8")
        if _CTRL_HEADER.size + len(encoded) > _CTRL_SIZE:
            raise SharedIndexError(f"segment name too long: {name!r}")
        (sequence, __, __) = _CTRL_HEADER.unpack_from(self._ctrl.buf, 0)
        # Seqlock: odd = mid-write.  Readers spin until even and stable.
        struct.pack_into("<Q", self._ctrl.buf, 0, sequence + 1)
        struct.pack_into("<QQ", self._ctrl.buf, 8, generation, len(encoded))
        self._ctrl.buf[_CTRL_HEADER.size:_CTRL_HEADER.size + len(encoded)] = encoded
        struct.pack_into("<Q", self._ctrl.buf, 0, sequence + 2)

    def _retire(self, keep_floor: int) -> None:
        generations = sorted(self._live)
        retire = [
            gen for gen in generations[:-self._keep] if gen < keep_floor
        ]
        registry = get_registry(self.registry)
        for gen in retire:
            for segment in self._live.pop(gen):
                segment.close()
                segment.unlink()
                registry.counter(
                    "shm_index_segments_unlinked_total",
                    "retired data segments unlinked by the publisher",
                ).inc()
        if retire:
            registry.gauge(
                "shm_index_segments_active",
                "data segments currently owned (not yet unlinked)",
            ).set(float(sum(len(group) for group in self._live.values())))

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Unlink the control segment and every owned data segment."""
        if self._closed:
            return
        self._closed = True
        registry = get_registry(self.registry)
        for gen in sorted(self._live):
            for segment in self._live.pop(gen):
                segment.close()
                try:
                    segment.unlink()
                except FileNotFoundError:
                    # Already gone (e.g. an external cleanup raced us);
                    # close() must still release everything else.
                    pass
                registry.counter(
                    "shm_index_segments_unlinked_total",
                    "retired data segments unlinked by the publisher",
                ).inc()
        registry.gauge(
            "shm_index_segments_active",
            "data segments currently owned (not yet unlinked)",
        ).set(0.0)
        self._ctrl.close()
        try:
            self._ctrl.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "SharedIndexPublisher":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class SharedIndexClient:
    """Reader-side attachment manager for one publisher's generations.

    ``view()`` returns the freshest attachable
    :class:`FrozenIndexView`: it re-reads the control segment, remaps
    when the generation moved, retries attach races (the writer may
    retire a name between the control read and the attach), and falls
    back to the previously attached view when nothing newer is
    attachable — stale-but-consistent, never torn.
    """

    def __init__(
        self,
        ctrl_name: str,
        registry: MetricsRegistry | None = None,
        attach_retries: int = 3,
        unregister: bool = False,
    ) -> None:
        self.registry = registry
        self._retries = max(1, attach_retries)
        #: Spawned readers run their own resource tracker, which must not
        #: adopt the writer's segments (the writer unlinks, not them).
        #: Forked readers share the parent's tracker and must leave its
        #: registrations alone.  procpool passes the right flag per
        #: start method; in-process clients keep the default.
        self._unregister = unregister
        self._attached: _Attached | None = None
        try:
            self._ctrl = shared_memory.SharedMemory(name=ctrl_name)
        except FileNotFoundError as error:
            raise SharedIndexUnavailableError(
                f"no control segment {ctrl_name!r}"
            ) from error
        if self._unregister:
            try:
                resource_tracker.unregister(self._ctrl._name, "shared_memory")
            except (KeyError, AttributeError):  # pragma: no cover
                pass

    # ------------------------------------------------------------------
    def _read_ctrl(self) -> tuple[int, str]:
        for __ in range(1024):
            sequence, generation, name_len = _CTRL_HEADER.unpack_from(
                self._ctrl.buf, 0
            )
            if sequence % 2:
                continue
            name = bytes(
                self._ctrl.buf[_CTRL_HEADER.size:_CTRL_HEADER.size + name_len]
            ).decode("utf-8")
            (stable,) = struct.unpack_from("<Q", self._ctrl.buf, 0)
            if stable == sequence:
                if sequence == 0:
                    raise SharedIndexUnavailableError(
                        "publisher has not published any generation yet"
                    )
                return int(generation), name
        raise SharedIndexUnavailableError("control segment never stabilized")

    @property
    def attached_generation(self) -> int:
        """Generation of the currently attached view (-1 = none)."""
        return -1 if self._attached is None else self._attached.generation

    def view(self) -> "FrozenIndexView | FrozenShardedView":
        """The freshest attachable frozen view (see class docstring)."""
        registry = get_registry(self.registry)
        generation, name = self._read_ctrl()
        if self._attached is not None and self._attached.generation == generation:
            return self._attached.view
        last_error: Exception | None = None
        for attempt in range(self._retries):
            try:
                shms, meta, frozen = _attach_segment(name, self._unregister)
            except FileNotFoundError as error:
                last_error = error
                registry.counter(
                    "shm_index_attach_retries_total",
                    "segment attaches retried after losing a name race",
                ).inc()
                generation, name = self._read_ctrl()
                continue
            previous = self._attached
            self._attached = _Attached(shms, generation, frozen, meta)
            if previous is not None:
                previous.close()
            registry.counter(
                "shm_index_attaches_total",
                "data-segment attaches completed by readers",
            ).inc()
            registry.gauge(
                "shm_index_generation_lag",
                "control-record generation minus the attached generation",
            ).set(0.0)
            return frozen
        if self._attached is not None:
            registry.counter(
                "shm_index_stale_views_total",
                "probes served from a stale view after attach failures",
            ).inc()
            registry.gauge(
                "shm_index_generation_lag",
                "control-record generation minus the attached generation",
            ).set(float(generation - self._attached.generation))
            return self._attached.view
        raise SharedIndexUnavailableError(
            f"could not attach any generation of {name!r}"
        ) from last_error

    def meta(self) -> dict[str, Any]:
        """The attached generation's metadata blob (profiles, statics)."""
        if self._attached is None:
            self.view()
        assert self._attached is not None
        return self._attached.meta

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Unmap everything this client attached (never unlinks)."""
        if self._attached is not None:
            self._attached.close()
            self._attached = None
        _silent_close(self._ctrl)

    def __enter__(self) -> "SharedIndexClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
