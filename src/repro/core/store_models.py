"""Rejected profile-store data models (§5.2), built for the ablation.

The paper settles on the feature-type-prefix row-key model after
considering two alternatives.  Both are implemented here, functionally
complete, so the benches can *measure* the §5.2 arguments instead of
restating them:

- :class:`OpenTsdbStore` (§5.2.1) keys rows by
  ``<feature_name>,<timestamp>,JobID=<job_id>``, which collocates data
  points of the same *feature* and scatters a single job's feature vector
  across the key space — poor locality for the matcher, measured as the
  number of regions touched to assemble one vector.
- :class:`TablePerTypeStore` (§5.2.2) uses one HBase table per feature
  type, which doubles the number of in-memory Store objects region
  servers must maintain relative to the adopted model.
"""

from __future__ import annotations

import itertools
from typing import Any, Mapping

from ..hbase import HBaseCluster, PrefixFilter

__all__ = ["OpenTsdbStore", "TablePerTypeStore"]

_FAMILY = "t"


class OpenTsdbStore:
    """§5.2.1: the OpenTSDB-style data model for profile features.

    Row key: ``<feature_name>,<timestamp>,JobID=<job_id>``.  Rows are
    ordered by feature first, so one *feature across jobs* is contiguous
    but one *job's vector* spans as many key ranges as it has features.
    """

    def __init__(self, hbase: HBaseCluster | None = None) -> None:
        self.hbase = hbase if hbase is not None else HBaseCluster()
        self.table = self.hbase.create_table("tsdb", (_FAMILY,))
        self._clock = itertools.count(1)

    @staticmethod
    def _row_key(feature_name: str, timestamp: int, job_id: str) -> str:
        return f"{feature_name},{timestamp:012d},JobID={job_id}"

    def put_features(self, job_id: str, features: Mapping[str, Any]) -> None:
        """Store one job's features as time-series data points."""
        timestamp = next(self._clock)
        for name, value in features.items():
            self.table.put(
                self._row_key(name, timestamp, job_id), _FAMILY, "value", value
            )

    def feature_vector(self, job_id: str, names: list[str]) -> dict[str, Any]:
        """Assemble one job's vector — one prefix scan per feature."""
        suffix = f"JobID={job_id}"
        vector: dict[str, Any] = {}
        for name in names:
            for row_key, row in self.table.scan(
                scan_filter=PrefixFilter(name + ",")
            ):
                if row_key.endswith(suffix):
                    vector[name] = row[_FAMILY]["value"]
        return vector

    def scans_to_build_vector(self, names: list[str]) -> int:
        """Key ranges touched per vector — one per feature (the §5.2.1
        locality complaint; the adopted model needs exactly one)."""
        return len(names)


class TablePerTypeStore:
    """§5.2.2: one HBase table per feature type.

    Functionally equivalent to the adopted model, but every region server
    maintains one in-memory Store object per (region, column family) of
    *each* table, so the resource-load metric
    :meth:`HBaseCluster.total_store_objects` roughly doubles.
    """

    def __init__(self, hbase: HBaseCluster | None = None) -> None:
        self.hbase = hbase if hbase is not None else HBaseCluster()
        self.static_table = self.hbase.create_table("Jobs_Static", (_FAMILY,))
        self.dynamic_table = self.hbase.create_table("Jobs_Dynamic", (_FAMILY,))

    def put_features(
        self,
        job_id: str,
        static: Mapping[str, Any],
        dynamic: Mapping[str, Any],
    ) -> None:
        self.static_table.put_row(job_id, _FAMILY, dict(static))
        self.dynamic_table.put_row(job_id, _FAMILY, dict(dynamic))

    def feature_vector(self, job_id: str) -> dict[str, Any]:
        vector: dict[str, Any] = {}
        for table in (self.dynamic_table, self.static_table):
            row = table.get(job_id)
            if row:
                vector.update(row[_FAMILY])
        return vector

    def total_store_objects(self) -> int:
        """The §5.2.2 region-server load metric."""
        return self.hbase.total_store_objects()
