"""Sharded match index: per-region partitions probed scatter-gather.

The flat :class:`~repro.core.match_index.MatchIndex` mirrors the whole
store in one set of columns.  This module partitions that mirror by the
substrate's *region topology*: one :class:`_PartitionIndex` per region
whose key range intersects the ``Dynamic/`` row range, each a stock
columnar index over just that region's jobs.  Probes scatter to the
partitions and gather deterministically:

- **Filter stages** (Euclidean, CFG, Jaccard): each partition returns
  its survivors sorted; partition ranges are disjoint and ordered, so
  the survivor sets are disjoint and a final ``sorted()`` merge equals
  the flat result bit for bit.
- **Tie-break**: each partition returns its local winner's full scan
  sort key ``(same_program, |Δinput|, -similarity, job_id)`` via
  ``tie_break_scored``; the global ``min`` over those keys is exactly
  the flat winner (the key totally orders candidates and ends in the
  job id).  Similarity observations fire partition-by-partition in
  range order, each internally in sorted-id order — which *is* global
  sorted-id order, so even the side-channel histogram matches.

``tests/test_sharding.py`` holds the Hypothesis proof that the sharded
``MatchOutcome`` is bit-identical to the flat scan path across arbitrary
stores, split schedules, and probes.

Coherence
---------
Writes enqueue through the same ``on_put``/``on_delete`` hooks as the
flat index (called under the store lock, leaf-locked queue).
``ensure_fresh`` drains the queue and *routes* each op to its partition
by key range; an overwrite, a generation gap, or — the new case — a
**topology change** (the store's ``topology_version`` moved because a
region split, merged, or rebalanced) escalates to a repartition from
:meth:`ProfileStore.sharded_index_snapshot`, which reads rows and the
partition map under one store lock hold so they can never disagree.

Frozen export
-------------
:meth:`ShardedMatchIndex.export_view` freezes every partition into a
:class:`~repro.core.match_index.FrozenIndexView` and wraps them in a
:class:`FrozenShardedView` — same scatter-gather, no store, no locks —
which :mod:`repro.core.shm_index` publishes as one shared-memory segment
per partition plus a root directory segment.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

import numpy as np

from ..analysis.cfg import ControlFlowGraph
from ..observability import MetricsRegistry, Tracer, get_registry
from .match_index import FrozenIndexView, MatchIndex

if TYPE_CHECKING:
    from .store import ProfileStore

__all__ = ["ShardedMatchIndex", "FrozenShardedView"]


class _PartitionIndex(MatchIndex):
    """One region's slice of the mirror: a stock columnar index whose
    freshness is owned by the enclosing :class:`ShardedMatchIndex`.

    The stock ``ensure_fresh`` compares against the *store* generation,
    which counts writes to every partition — a partition that consulted
    it would see a permanent gap and rebuild on every probe.  The owner
    routes writes and stamps ``_built_generation`` itself, so here it is
    a no-op.
    """

    def __init__(
        self,
        store: "ProfileStore",
        start_key: str,
        stop_key: str,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        super().__init__(store, registry=registry, tracer=tracer)
        #: The Dynamic-range slice this partition mirrors.
        self.start_key = start_key
        self.stop_key = stop_key

    def ensure_fresh(self) -> None:
        """No-op: the owning sharded index drives freshness."""

    def load_rows(
        self,
        generation: int,
        dynamic_rows: Mapping[str, Mapping[str, Any]],
        static_rows: Mapping[str, Mapping[str, Any]],
    ) -> None:
        """(Re)build this partition from its snapshot slice."""
        with self._lock:
            self._clear_columns()
            for job_id in sorted(dynamic_rows):
                self._ingest(job_id, dynamic_rows[job_id], static_rows.get(job_id))
            self._built_generation = int(generation)
            self._needs_rebuild = False

    def ingest_put(
        self,
        job_id: str,
        dynamic: Mapping[str, Any],
        static_columns: Mapping[str, Any] | None,
        generation: int,
    ) -> None:
        with self._lock:
            self._ingest(job_id, dynamic, static_columns)
            self._built_generation = int(generation)

    def ingest_delete(self, job_id: str, generation: int) -> None:
        with self._lock:
            row = self._row_of.pop(job_id, None)
            if row is not None:
                self._active[row] = False
                self._arrays_dirty = True
            self._built_generation = int(generation)

    def contains_id(self, job_id: str) -> bool:
        with self._lock:
            return job_id in self._row_of


class _ScatterGather:
    """Shared scatter-gather stage implementations.

    Subclasses provide :meth:`_parts` returning the current
    ``(partitions, start_keys)`` pair — a consistent snapshot of the
    partition list (the live index swaps it under its lock on
    repartition; the frozen view's never changes).

    Partition probes fan out over a thread pool when the subclass was
    built with ``probe_workers > 1``.  The gather is **bit-identical to
    the sequential loop at any width**: futures are collected in
    submission (= partition range) order, each partition only touches
    its own columns and lock, and the tie-break's similarity
    observations are buffered per partition and replayed in range order
    — the one side channel whose ordering the flat index guarantees.
    """

    #: Thread fan-out of per-partition probe work (1 = sequential).
    probe_workers: int = 1
    _probe_pool: "ThreadPoolExecutor | None" = None

    def _parts(self) -> tuple[Sequence[Any], Sequence[str]]:
        raise NotImplementedError

    def _init_probe_pool(self, probe_workers: int) -> None:
        """Install the fan-out (constructors call this once)."""
        if probe_workers < 1:
            raise ValueError("probe_workers must be at least 1")
        self.probe_workers = int(probe_workers)
        if self.probe_workers > 1:
            self._probe_pool = ThreadPoolExecutor(
                max_workers=self.probe_workers,
                thread_name_prefix="shard-probe",
            )

    def _pmap(self, tasks: Sequence[Callable[[], Any]]) -> list[Any]:
        """Run probe thunks; results come back in submission order, so
        a parallel gather merges exactly like the sequential loop."""
        pool = self._probe_pool
        if pool is None or len(tasks) <= 1:
            return [task() for task in tasks]
        futures = [pool.submit(task) for task in tasks]
        return [future.result() for future in futures]

    @staticmethod
    def _grouped(
        partitions: Sequence[Any],
        starts: Sequence[str],
        candidates: Sequence[str],
    ):
        """Route candidate job ids to partitions; yield ``(partition,
        ids)`` in partition (= key range = sorted job id) order."""
        from .store import DYNAMIC_PREFIX  # cycle-safe local import

        buckets: list[list[str]] = [[] for _ in partitions]
        for job_id in candidates:
            position = bisect_right(starts, DYNAMIC_PREFIX + job_id) - 1
            buckets[max(0, position)].append(job_id)
        for partition, bucket in zip(partitions, buckets):
            if bucket:
                yield partition, bucket

    def _pruned(
        self,
        partitions: Sequence[Any],
        side: str,
        kind: str,
        probes: np.ndarray,
        threshold: float,
    ) -> Sequence[Any]:
        """Drop partitions that provably hold no euclidean survivor.

        One stacked broadcast prices every partition's live bounding
        box against the probe block — elementwise the *same* clip /
        subtract / square / trailing-axis-sum / sqrt arithmetic
        ``_euclidean_impl`` runs inside each partition, so a partition
        is dropped exactly when its own prune check would have answered
        empty: zero false prunes, merged survivors unchanged bit for
        bit.  This keeps the scatter-gather fan-out sublinear — a
        partition whose key range holds no nearby jobs costs one row of
        this broadcast instead of a Python descent into its kernels.
        """
        if len(partitions) <= 1:
            return partitions
        preps = [
            partition.euclidean_prune_prep(side, kind)
            for partition in partitions
        ]
        kept: list[int] = []
        boxed: list[tuple[int, tuple[Any, ...]]] = []
        for position, prep in enumerate(preps):
            if prep is None:
                # Unpriceable (no normalizer features): the partition
                # answers empty itself in O(1), keep it for parity.
                kept.append(position)
            elif prep[6] is not None:
                boxed.append((position, prep))
            # box is None -> no live rows -> provably empty: drop.
        if boxed:
            __, __, minimums, safe, denominator, __, __ = boxed[0][1]
            if probes.shape[1] != minimums.shape[0]:
                # Malformed probe: let the partitions raise exactly as
                # the flat index would.
                return partitions
            normalized = np.where(
                safe, np.clip((probes - minimums) / denominator, 0.0, 1.0), 0.0
            )
            lows = np.stack([prep[6][0] for __, prep in boxed])
            highs = np.stack([prep[6][1] for __, prep in boxed])
            nearest = np.clip(
                normalized[np.newaxis, :, :],
                lows[:, np.newaxis, :],
                highs[:, np.newaxis, :],
            )
            deltas = nearest - normalized[np.newaxis, :, :]
            floors = np.sqrt((deltas * deltas).sum(axis=2))
            survives = ~(floors > threshold).all(axis=1)
            kept.extend(
                position
                for (position, __), keep in zip(boxed, survives)
                if keep
            )
        return [partitions[position] for position in sorted(kept)]

    # -- probe stages (same signatures as MatchIndex) -------------------
    def euclidean_stage(
        self,
        side: str,
        kind: str,
        probe: list[float],
        threshold: float,
        candidates: list[str] | None = None,
    ) -> list[str]:
        partitions, starts = self._parts()
        if candidates is None:
            block = np.asarray([probe], dtype=np.float64)
            results = self._pmap(
                [
                    lambda p=partition: p.euclidean_stage(
                        side, kind, probe, threshold
                    )
                    for partition in self._pruned(
                        partitions, side, kind, block, threshold
                    )
                ]
            )
        else:
            results = self._pmap(
                [
                    lambda p=partition, s=subset: p.euclidean_stage(
                        side, kind, probe, threshold, s
                    )
                    for partition, subset in self._grouped(
                        partitions, starts, candidates
                    )
                ]
            )
        # Disjoint unions of per-partition survivors: sorting yields the
        # flat path's sorted list bit for bit.
        return sorted(job_id for survivors in results for job_id in survivors)

    def euclidean_stage_batch(
        self,
        side: str,
        kind: str,
        probes: Sequence[Sequence[float]],
        threshold: float,
    ) -> list[list[str]]:
        partitions, __ = self._parts()
        block = np.asarray(probes, dtype=np.float64)
        if block.ndim == 2:
            partitions = self._pruned(partitions, side, kind, block, threshold)
        per_partition = self._pmap(
            [
                lambda p=partition: p.euclidean_stage_batch(
                    side, kind, probes, threshold
                )
                for partition in partitions
            ]
        )
        merged: list[list[str]] = []
        for k in range(len(probes)):
            row: list[str] = []
            for block_rows in per_partition:
                row.extend(block_rows[k])
            merged.append(sorted(row))
        return merged

    def cfg_stage(
        self, side: str, probe_cfg: ControlFlowGraph, candidates: list[str]
    ) -> list[str]:
        partitions, starts = self._parts()
        results = self._pmap(
            [
                lambda p=partition, s=subset: p.cfg_stage(side, probe_cfg, s)
                for partition, subset in self._grouped(
                    partitions, starts, candidates
                )
            ]
        )
        return sorted(job_id for survivors in results for job_id in survivors)

    def jaccard_stage(
        self, probe: Mapping[str, str], threshold: float, candidates: list[str]
    ) -> list[str]:
        partitions, starts = self._parts()
        results = self._pmap(
            [
                lambda p=partition, s=subset: p.jaccard_stage(
                    probe, threshold, s
                )
                for partition, subset in self._grouped(
                    partitions, starts, candidates
                )
            ]
        )
        return sorted(job_id for survivors in results for job_id in survivors)

    def tie_break_scored(
        self,
        candidates: list[str],
        input_bytes: int,
        side_statics: Mapping[str, str],
        side: str,
        observe: Callable[[float], None] | None = None,
    ) -> tuple[int, int, float, str] | None:
        partitions, starts = self._parts()

        def probe_one(
            partition: Any, subset: list[str]
        ) -> tuple[tuple[int, int, float, str] | None, list[float]]:
            # Buffer the similarity side channel per partition: replayed
            # in range order below, the observation sequence is exactly
            # the sequential loop's (= the flat scan's sorted-id order).
            buffer: list[float] = []
            key = partition.tie_break_scored(
                subset,
                input_bytes,
                side_statics,
                side,
                buffer.append if observe is not None else None,
            )
            return key, buffer

        scored = self._pmap(
            [
                lambda p=partition, s=subset: probe_one(p, s)
                for partition, subset in self._grouped(
                    partitions, starts, candidates
                )
            ]
        )
        best: tuple[int, int, float, str] | None = None
        for key, buffer in scored:
            if observe is not None:
                for value in buffer:
                    observe(value)
            if key is not None and (best is None or key < best):
                best = key
        return best

    def tie_break(
        self,
        candidates: list[str],
        input_bytes: int,
        side_statics: Mapping[str, str],
        side: str,
        observe: Callable[[float], None] | None = None,
    ) -> str:
        best = self.tie_break_scored(
            candidates, input_bytes, side_statics, side, observe
        )
        if best is None:
            raise KeyError(f"no indexed candidates among {candidates!r}")
        return best[3]

    @property
    def partition_count(self) -> int:
        partitions, __ = self._parts()
        return len(partitions)


class ShardedMatchIndex(_ScatterGather):
    """Region-partitioned columnar index over one :class:`ProfileStore`.

    Drop-in for :class:`MatchIndex` at every probe call site (the
    matcher duck-types the stage interface); ``store.match_index()``
    hands one out when the store was built with ``shard_index=True``.
    """

    def __init__(
        self,
        store: "ProfileStore",
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        probe_workers: int = 1,
    ) -> None:
        self._store = store
        self.registry = registry
        self.tracer = tracer
        self._init_probe_pool(probe_workers)
        #: Guards the partition list and freshness bookkeeping.  Lock
        #: order matches the flat index: probe holds this → store lock
        #: (snapshot); writers hold store lock → ``_pending_lock`` only.
        self._lock = threading.RLock()
        self._pending_lock = threading.Lock()
        self._pending: list[tuple[Any, ...]] = []
        self._partitions: list[_PartitionIndex] = []
        self._starts: list[str] = []
        self._built_generation = -1
        self._built_topology = -1
        self._needs_rebuild = True

    # -- hooks for the shared stages ------------------------------------
    def _parts(self) -> tuple[Sequence[_PartitionIndex], Sequence[str]]:
        with self._lock:
            return self._partitions, self._starts

    # -- write-side hooks (same contract as MatchIndex) -----------------
    def on_put(
        self,
        job_id: str,
        dynamic: Mapping[str, Any],
        static_columns: Mapping[str, Any],
        generation: int,
    ) -> None:
        with self._pending_lock:
            self._pending.append(("put", job_id, dynamic, static_columns, generation))

    def on_delete(self, job_id: str, generation: int) -> None:
        with self._pending_lock:
            self._pending.append(("delete", job_id, None, None, generation))

    def invalidate(self) -> None:
        with self._lock:
            self._needs_rebuild = True

    # -- coherence ------------------------------------------------------
    @property
    def generation(self) -> int:
        with self._lock:
            return self._built_generation

    def ensure_fresh(self) -> None:
        """Bring every partition up to the store's generation *and* the
        partition map up to its region topology.

        Queued writes route incrementally to their partition by key
        range; an overwrite, a generation gap, or a topology bump
        (split/merge/rebalance since the last build) escalates to a full
        repartition.  Raises whatever the snapshot scan raises — the
        matcher treats that as a poisoned index and falls back to the
        scan path; the partition list is only ever swapped after a
        *successful* snapshot, so the index stays stale-but-consistent.
        """
        from .store import DYNAMIC_PREFIX

        with self._lock:
            with self._pending_lock:
                pending = self._pending
                self._pending = []
            if (
                not self._needs_rebuild
                and self._built_generation >= 0
                and self._store.topology_version == self._built_topology
            ):
                for op, job_id, dynamic, static_columns, generation in pending:
                    if generation <= self._built_generation:
                        continue
                    position = max(
                        0,
                        bisect_right(self._starts, DYNAMIC_PREFIX + job_id) - 1,
                    )
                    partition = self._partitions[position]
                    if op == "put":
                        if partition.contains_id(job_id):
                            self._needs_rebuild = True
                            break
                        partition.ingest_put(
                            job_id, dynamic, static_columns, generation
                        )
                    else:
                        partition.ingest_delete(job_id, generation)
                    self._built_generation = generation
            if (
                self._needs_rebuild
                or self._built_generation != self._store.generation
                or self._built_topology != self._store.topology_version
            ):
                self._rebuild()

    def _install(
        self,
        generation: int,
        topology_version: int,
        partitions: list[_PartitionIndex],
    ) -> None:
        """Swap in a freshly built partition list (caller holds the lock)."""
        self._partitions = partitions
        self._starts = [partition.start_key for partition in partitions]
        self._built_generation = int(generation)
        self._built_topology = int(topology_version)
        self._needs_rebuild = False
        with self._pending_lock:
            self._pending = [
                entry for entry in self._pending if entry[4] > generation
            ]
        get_registry(self.registry).gauge(
            "pstorm_shard_index_partitions",
            "match-index partitions (one per Dynamic-range region)",
        ).set(float(len(partitions)))

    def _rebuild(self) -> None:
        """Repartition from a write-consistent, topology-consistent snapshot."""
        generation, topology_version, slices = (
            self._store.sharded_index_snapshot()
        )
        partitions: list[_PartitionIndex] = []
        for start, stop, dynamic_rows, static_rows in slices:
            partition = _PartitionIndex(
                self._store, start, stop, registry=self.registry, tracer=self.tracer
            )
            partition.load_rows(generation, dynamic_rows, static_rows)
            partitions.append(partition)
        self._install(generation, topology_version, partitions)
        registry = get_registry(self.registry)
        registry.counter(
            "pstorm_matcher_index_rebuilds_total",
            "full columnar-index rebuilds from a store snapshot",
        ).inc()
        registry.counter(
            "pstorm_shard_index_repartitions_total",
            "sharded-index repartitions (topology or coherence escalations)",
        ).inc()

    def load_checkpoint(
        self,
        generation: int,
        dynamic_rows: Mapping[str, Mapping[str, Any]],
        static_rows: Mapping[str, Mapping[str, Any]],
    ) -> None:
        """Warm the partitions from a persisted (flat) checkpoint.

        The checkpoint stores rows flat; they are partitioned by the
        *current* region topology, which a restored substrate has
        already recovered before this runs.
        """
        from .store import DYNAMIC_PREFIX, DYNAMIC_STOP, TABLE_NAME

        with self._lock:
            topology_version = self._store.topology_version
            partitions: list[_PartitionIndex] = []
            for region, __ in self._store.hbase.catalog.regions_of(TABLE_NAME):
                start = max(region.start_key, DYNAMIC_PREFIX)
                stop = (
                    DYNAMIC_STOP
                    if region.end_key is None
                    else min(region.end_key, DYNAMIC_STOP)
                )
                if start >= stop:
                    continue
                members = {
                    job_id: columns
                    for job_id, columns in dynamic_rows.items()
                    if start <= DYNAMIC_PREFIX + job_id < stop
                }
                statics = {
                    job_id: static_rows[job_id]
                    for job_id in members
                    if job_id in static_rows
                }
                partition = _PartitionIndex(
                    self._store,
                    start,
                    stop,
                    registry=self.registry,
                    tracer=self.tracer,
                )
                partition.load_rows(generation, members, statics)
                partitions.append(partition)
            self._install(generation, topology_version, partitions)
        get_registry(self.registry).counter(
            "pstorm_match_index_checkpoint_loads_total",
            "columnar-index warm loads from a snapshot checkpoint",
        ).inc()

    # -- frozen export --------------------------------------------------
    def export_view(self) -> "FrozenShardedView":
        """Freeze every partition at one generation into a store-free view."""
        with self._lock:
            self.ensure_fresh()
            return FrozenShardedView(
                generation=self._built_generation,
                topology_version=self._built_topology,
                ranges=[
                    (partition.start_key, partition.stop_key)
                    for partition in self._partitions
                ],
                views=[partition.export_view() for partition in self._partitions],
                probe_workers=self.probe_workers,
            )

    # -- introspection --------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Deterministic size snapshot (sorted keys)."""
        with self._lock:
            per_partition = [partition.stats() for partition in self._partitions]
            return {
                "built_generation": self._built_generation,
                "live_rows": sum(s["live_rows"] for s in per_partition),
                "partitions": len(self._partitions),
                "rows": sum(s["rows"] for s in per_partition),
                "topology_version": self._built_topology,
            }


class FrozenShardedView(_ScatterGather):
    """An immutable scatter-gather view: frozen partitions plus their
    key ranges, answering every probe stage without store or locks.

    The per-partition views may sit on shared memory (one segment per
    partition, see :mod:`repro.core.shm_index`); this wrapper adds no
    state of its own beyond the routing table.
    """

    def __init__(
        self,
        generation: int,
        topology_version: int,
        ranges: Sequence[tuple[str, str]],
        views: Sequence[FrozenIndexView],
        probe_workers: int = 1,
    ) -> None:
        if len(ranges) != len(views):
            raise ValueError("one key range per partition view required")
        self.generation = int(generation)
        self.topology_version = int(topology_version)
        self.ranges = [(str(start), str(stop)) for start, stop in ranges]
        self.views = list(views)
        self._starts = [start for start, __ in self.ranges]
        self._init_probe_pool(probe_workers)

    def _parts(self) -> tuple[Sequence[FrozenIndexView], Sequence[str]]:
        return self.views, self._starts

    def ensure_fresh(self) -> None:
        """No-op: a frozen view is always internally consistent."""

    def stats(self) -> dict[str, int]:
        """Deterministic size snapshot (sorted keys)."""
        per_partition = [view.stats() for view in self.views]
        return {
            "built_generation": self.generation,
            "live_rows": sum(s["live_rows"] for s in per_partition),
            "partitions": len(self.views),
            "rows": sum(s["rows"] for s in per_partition),
            "topology_version": self.topology_version,
        }
