"""Implemented future-work extensions (§7.2.1 and §7.2.2).

**User-parameter features** (§7.2.1): the same program run with different
user parameters (co-occurrence window sizes, grep search terms) produces
incompatible profiles that the Table 4.3 statics cannot distinguish.
:func:`augment_with_params` folds the job's user parameters into the
static feature vector as ``PARAM_<name>`` entries, which the Jaccard
filter then scores alongside the other categoricals.

**Call-graph features** (§7.2.2): map/reduce functions with identical
control flow can call different helper functions.  Static call-graph
extraction is generally incomplete for dynamically-dispatched languages,
as the thesis notes for Java; the Python equivalent here extracts the set
of *statically visible callee names* from the byte code, recursing into
locally defined helpers, as ``CALLGRAPH_MAP``/``CALLGRAPH_RED`` features.
"""

from __future__ import annotations

import dis
from types import CodeType
from typing import Callable

from ..analysis.static_features import StaticFeatures
from ..hadoop.job import MapReduceJob

__all__ = [
    "extract_callee_names",
    "call_graph_signature",
    "augment_with_params",
    "augment_with_call_graphs",
]

#: Instructions whose argval names a function being loaded for a call.
_NAME_LOADS = {"LOAD_GLOBAL", "LOAD_METHOD", "LOAD_ATTR", "LOAD_NAME"}


def extract_callee_names(fn: Callable, max_depth: int = 3) -> frozenset[str]:
    """Statically visible callee names in a callable's byte code.

    Walks the instruction stream, collecting names loaded via
    ``LOAD_GLOBAL``/``LOAD_METHOD``/``LOAD_ATTR``, and recurses into
    nested code objects (locally defined helpers) up to *max_depth*.
    Dynamic dispatch (values bound at runtime) stays invisible — the
    §7.2.2 caveat, faithfully reproduced.
    """
    code = getattr(fn, "__code__", None)
    if code is None:
        return frozenset()
    return frozenset(_walk_code(code, max_depth))


def _walk_code(code: CodeType, depth: int) -> set[str]:
    names: set[str] = set()
    for instruction in dis.get_instructions(code):
        if instruction.opname in _NAME_LOADS and isinstance(instruction.argval, str):
            names.add(instruction.argval)
    if depth > 0:
        for const in code.co_consts:
            if isinstance(const, CodeType):
                names |= _walk_code(const, depth - 1)
    return names


def call_graph_signature(fn: Callable) -> str:
    """Canonical string form of the callee set (a categorical feature)."""
    return ",".join(sorted(extract_callee_names(fn)))


def augment_with_params(
    static: StaticFeatures, job: MapReduceJob
) -> StaticFeatures:
    """§7.2.1: fold the job's user parameters into the static features."""
    categorical = dict(static.categorical)
    for name, value in sorted(job.params.items()):
        categorical[f"PARAM_{name}"] = repr(value)
    return StaticFeatures(
        categorical=categorical,
        map_cfg=static.map_cfg,
        reduce_cfg=static.reduce_cfg,
    )


def augment_with_call_graphs(
    static: StaticFeatures, job: MapReduceJob
) -> StaticFeatures:
    """§7.2.2: add call-graph signatures of the map/reduce functions."""
    categorical = dict(static.categorical)
    categorical["CALLGRAPH_MAP"] = call_graph_signature(job.mapper)
    if job.reducer is not None:
        categorical["CALLGRAPH_RED"] = call_graph_signature(job.reducer)
    return StaticFeatures(
        categorical=categorical,
        map_cfg=static.map_cfg,
        reduce_cfg=static.reduce_cfg,
    )
