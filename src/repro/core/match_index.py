"""Columnar match index: vectorized candidate pruning for the store probe.

The matcher's scan path answers every stage with a filtered range scan —
Python-level row iteration over the HBase substrate, O(store size) per
stage, twice per submission (map + reduce).  This module keeps an
in-memory *columnar* mirror of exactly the data those filters touch:

- per-(side, kind) numpy matrices of the Table 4.1 dynamic feature
  vectors, with a validity mask for rows missing the side's columns
  (map-only jobs have no reduce vector);
- parallel arrays of row keys (job ids), tie-break ``INPUT_BYTES``, and
  liveness flags;
- the Table 4.3 categorical features factorized into small integer
  codes, one int64 column per feature name (``-1`` = column absent), so
  the Jaccard stage is a handful of equality comparisons over the whole
  candidate block;
- per-side CFG *digests* plus a parsed-graph cache and a memo of
  pairwise :func:`~repro.analysis.cfg_match.cfg_match` verdicts, so the
  expensive synchronized-walk runs once per distinct (probe, stored)
  graph pair, not once per row per probe.  Digests are memo keys only —
  two distinct digests may still be ``cfg_match``-equal, which is fine
  (the memo just misses); equal digests are byte-identical graphs.

Coherence protocol
------------------
The store numbers its writes with a monotone ``generation`` (bumped
under the store lock on every put/delete, alongside the
``Meta/__normalizers__`` rewrite — so a normalizer update *is* a
generation change).  Writers never mutate the index in place: ``on_put``
/ ``on_delete`` (called under the store lock) append to a pending queue
behind a small leaf lock.  ``ensure_fresh`` — called at the top of every
probe — drains the queue and applies it incrementally (append a row /
mark a row dead); an overwrite of an existing id, or a generation gap
(writes that predate the index), escalates to a full rebuild from
:meth:`ProfileStore.index_snapshot`, which is read under the store lock
and therefore write-consistent.  If the rebuild scan faults (chaos), the
index stays stale and the error propagates — the matcher treats that as
a *poisoned* index and falls back to the retried scan path.

Lock order: writers hold ``store._lock`` → ``index._pending_lock``
(leaf); probes hold ``index._lock`` → ``store._lock`` (snapshot /
normalizer load).  No path acquires them in the opposite order, so the
two compose deadlock-free.

Stage parity
------------
Every probe method reproduces its scan-path filter bit for bit: the
normalized-Euclidean stage clips with the same min/max bounds and sums
squares in the same float64 order (vectors are ≤6-wide, below numpy's
pairwise-summation block, see :mod:`repro.core.similarity`); the
Jaccard stage fails rows with a missing or ``None``-valued probe column
exactly like :class:`~repro.core.store.JaccardThresholdFilter`; the
tie-break reproduces the matcher's ``(same_program, |Δsize|,
-similarity, job_id)`` sort key.  ``tests/test_match_index.py`` holds
the Hypothesis proof.

Frozen views
------------
:meth:`MatchIndex.export_view` snapshots the columns into a
:class:`FrozenIndexView`: an immutable, store-free copy of the matrices,
masks, codes, CFG payloads, and (critically) the min/max normalizer
bounds *as of that generation*.  The view answers the same probe stages
through the same kernels — plus :meth:`FrozenIndexView.euclidean_stage_batch`,
which prices K probes against the matrix in one broadcast — and splits
into a picklable meta blob plus named numpy arrays
(:meth:`FrozenIndexView.export_meta` / :meth:`~FrozenIndexView.export_arrays`)
so :mod:`repro.core.shm_index` can publish it over
``multiprocessing.shared_memory`` and reattach zero-copy in a worker
process.  ``tests/test_shm_index.py`` proves view == index == scan.
"""

from __future__ import annotations

import hashlib
import json
import threading
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from ..analysis.cfg import ControlFlowGraph
from ..analysis.cfg_match import cfg_match
from ..observability import (
    MetricsRegistry,
    Tracer,
    get_registry,
)
from .similarity import MinMaxNormalizer

if TYPE_CHECKING:
    from .store import ProfileStore

__all__ = ["MatchIndex", "FrozenIndexView"]

#: Code meaning "this row has no value for this static column".
_MISSING = -1
#: Probe-side sentinel for values never seen in the store; never equals
#: any stored code (codes are >= -1).
_UNSEEN = -9

_CFG_COLUMNS = {"map": "MAP_CFG", "reduce": "RED_CFG"}

#: The (side, kind) matrix keys every index materializes.
_VECTOR_KEYS = (
    ("map", "flow"),
    ("map", "cost"),
    ("reduce", "flow"),
    ("reduce", "cost"),
)


def _cfg_digest(payload: Mapping[str, Any]) -> str:
    """Stable content digest of a serialized CFG (memo key, not equality)."""
    canonical = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.md5(canonical.encode("utf-8")).hexdigest()


class _ProbeColumns:
    """Shared probe-stage kernels over one set of column arrays.

    Subclasses provide the columns (``_ids``, ``_row_of``, ``_active``,
    ``_has_static``, ``_active_arr``, ``_input_arr``, ``_matrices``,
    ``_code_arrays``, ``_static_vocab``, ``_cfg_digests``, ``_cfg_memo``)
    plus three hooks: :meth:`_normalizer_for` (live store lookup vs
    frozen bounds), :meth:`_graph_for` (eager cache vs lazy parse), and
    :meth:`_materialize` (rebuild dirty arrays vs no-op).  The kernels
    themselves are identical, which is what makes the frozen
    shared-memory view bit-identical to the live index by construction.
    """

    _ids: Sequence[str]
    _ids_arr: np.ndarray
    _row_of: dict[str, int]
    _active: Sequence[bool]
    _has_static: Sequence[bool]
    _active_arr: np.ndarray
    _input_arr: np.ndarray
    _matrices: dict[tuple[str, str], tuple[np.ndarray, np.ndarray]]
    _code_arrays: dict[str, np.ndarray]
    _static_vocab: dict[str, dict[Any, int]]
    _cfg_digests: dict[str, Sequence[str | None]]
    _cfg_memo: dict[tuple[str, str], bool]
    #: (side, kind) -> (normalizer, bounds, minimums, safe, denominator,
    #: normalized whole matrix, live bounding box); invalidated by a
    #: bounds change or a column rebuild.
    _normalized_cache: dict[tuple[str, str], tuple[Any, ...]]

    def _normalizer_for(self, side: str, kind: str) -> MinMaxNormalizer:
        raise NotImplementedError

    def _graph_for(self, digest: str) -> ControlFlowGraph:
        raise NotImplementedError

    def _materialize(self) -> None:  # pragma: no cover - trivial default
        pass

    # ------------------------------------------------------------------
    def _candidate_rows(
        self, candidates: Iterable[str], require_static: bool = False
    ) -> tuple[list[str], np.ndarray]:
        """Map candidate ids to live row indices, preserving input order."""
        ids: list[str] = []
        rows: list[int] = []
        for job_id in candidates:
            row = self._row_of.get(job_id)
            if row is None or not self._active[row]:
                continue
            if require_static and not self._has_static[row]:
                continue
            ids.append(job_id)
            rows.append(row)
        return ids, np.asarray(rows, dtype=np.intp)

    def _euclidean_prep(self, side: str, kind: str) -> tuple[Any, ...] | None:
        """The cached normalization prep for one (side, kind) matrix.

        The stored matrix's normalization (and all the prep arrays it
        needs) only depends on the normalizer bounds, which change on
        writes, not probes — cache the lot per (side, kind) so
        repeated probes pay O(rows·features) once, not every call.
        The store hands back the *same* normalizer object between
        writes, so an identity check usually settles freshness
        without even building the bounds tuples.  Normalization is
        elementwise, so slicing the cached whole matrix is
        bit-identical to normalizing a sliced block.

        Returns ``None`` when the normalizer has no features yet
        (nothing is priceable, every probe answers empty).
        """
        normalizer = self._normalizer_for(side, kind)
        if normalizer.num_features == 0:
            return None
        cached = self._normalized_cache.get((side, kind))
        if cached is not None and cached[0] is not normalizer:
            bounds = (tuple(normalizer.minimums), tuple(normalizer.maximums))
            if cached[1] == bounds:
                cached = (normalizer,) + cached[1:]
                self._normalized_cache[(side, kind)] = cached
            else:
                cached = None
        if cached is None:
            matrix, valid = self._matrices[(side, kind)]
            bounds = (tuple(normalizer.minimums), tuple(normalizer.maximums))
            minimums = np.asarray(normalizer.minimums, dtype=np.float64)
            spans = np.asarray(normalizer.maximums, dtype=np.float64) - minimums
            safe = spans > 0
            denominator = np.where(safe, spans, 1.0)
            normalized_all = np.where(
                safe, np.clip((matrix - minimums) / denominator, 0.0, 1.0), 0.0
            )
            live = np.asarray(self._active_arr, dtype=bool) & valid
            box = (
                (normalized_all[live].min(axis=0), normalized_all[live].max(axis=0))
                if live.any()
                else None
            )
            cached = (
                normalizer, bounds, minimums, safe, denominator,
                normalized_all, box,
            )
            self._normalized_cache[(side, kind)] = cached
        return cached

    def euclidean_prune_prep(self, side: str, kind: str) -> tuple[Any, ...] | None:
        """Current prep for the scatter-gather layer's stacked prune.

        The sharded index prices every partition's bounding box in one
        broadcast instead of calling into each partition's kernel; this
        hands it the same cache entry :meth:`_euclidean_impl` would use,
        refreshed against the live normalizer bounds.
        """
        self._materialize()
        return self._euclidean_prep(side, kind)

    def _euclidean_impl(
        self,
        side: str,
        kind: str,
        probes: np.ndarray,
        threshold: float,
        candidates: list[str] | None,
    ) -> list[list[str]]:
        """Price a (K, F) block of probes; row k answers probe k.

        The K == 1 path is the scan-parity reference; the batched path
        broadcasts the same clipped normalization and the same float64
        square-sum over the trailing axis (≤6-wide, below numpy's
        pairwise-summation block), so every batch row is bit-identical
        to its scalar twin — ``tests/test_shm_index.py`` holds the
        Hypothesis proof.
        """
        prep = self._euclidean_prep(side, kind)
        if prep is None:
            return [[] for _ in range(probes.shape[0])]
        matrix, valid = self._matrices[(side, kind)]
        if probes.shape[1] != matrix.shape[1]:
            raise ValueError("columns/probe/bounds must align")
        __, __, minimums, safe, denominator, normalized_all, box = prep
        normalized_probes = np.where(
            safe, np.clip((probes - minimums) / denominator, 0.0, 1.0), 0.0
        )
        # Bounding-box prune: price the box point nearest each probe
        # through the *same* kernel arithmetic as a real row.  Every
        # per-feature |delta| of a live row is >= the nearest point's,
        # and float64 subtract/square/add/sqrt are monotone in each
        # argument, so the computed distance of every row is >= the
        # computed nearest-point distance — if that misses the
        # threshold, no row can pass, with zero false prunes.  This is
        # what makes scatter-gather sublinear: partitions whose key
        # range holds no nearby jobs cost O(features), not O(rows).
        if box is not None:
            nearest = np.clip(normalized_probes, box[0], box[1])
            near_deltas = nearest - normalized_probes
            floors = np.sqrt((near_deltas * near_deltas).sum(axis=1))
            if bool((floors > threshold).all()):
                return [[] for _ in range(probes.shape[0])]
        if candidates is None:
            ids_arr = self._ids_arr
            if len(ids_arr) == 0:
                return [[] for _ in range(probes.shape[0])]
            keep_base = self._active_arr & valid
            normalized = normalized_all
        else:
            ids, rows = self._candidate_rows(candidates)
            ids_arr = np.asarray(ids, dtype=object)
            if len(rows) == 0:
                return [[] for _ in range(probes.shape[0])]
            keep_base = self._active_arr[rows] & valid[rows]
            normalized = normalized_all[rows]
        # (K, R, F) broadcast; the sum runs over the trailing ≤6-wide
        # axis in the same order the scalar path uses.
        deltas = normalized[np.newaxis, :, :] - normalized_probes[:, np.newaxis, :]
        distances = np.sqrt((deltas * deltas).sum(axis=2))
        # Survivor extraction is fancy-indexed, not a per-row Python
        # loop — the difference between O(survivors) and O(store size)
        # per probe, which is what keeps the funnel's first stage flat
        # as regions split (the BENCH_sharding drift criterion).  Same
        # id set either way, so the sorted lists are bit-identical.
        survivors: list[list[str]] = []
        for row_keep in keep_base & (distances <= threshold):
            survivors.append(
                sorted(ids_arr[np.flatnonzero(row_keep)].tolist())
            )
        return survivors

    def _cfg_impl(
        self, side: str, probe_cfg: ControlFlowGraph, candidates: list[str]
    ) -> list[str]:
        probe_key = _cfg_digest(probe_cfg.to_dict())
        digests = self._cfg_digests[side]
        survivors = []
        ids, rows = self._candidate_rows(candidates, require_static=True)
        for job_id, row in zip(ids, rows.tolist()):
            digest = digests[row]
            if digest is None:
                continue
            verdict = self._cfg_memo.get((probe_key, digest))
            if verdict is None:
                verdict = cfg_match(probe_cfg, self._graph_for(digest))
                self._cfg_memo[(probe_key, digest)] = verdict
            if verdict:
                survivors.append(job_id)
        return sorted(survivors)

    def _jaccard_impl(
        self, probe: Mapping[str, str], threshold: float, candidates: list[str]
    ) -> list[str]:
        ids, rows = self._candidate_rows(candidates, require_static=True)
        if len(rows) == 0:
            return []
        agreements = np.zeros(len(rows), dtype=np.int64)
        failed = np.zeros(len(rows), dtype=bool)
        for name, value in probe.items():
            column = self._code_arrays.get(name)
            if column is None:
                failed[:] = True
                break
            codes = column[rows]
            vocab = self._static_vocab.get(name, {})
            # The scan filter fails any row whose stored value is
            # absent *or* None for a probe column.
            none_code = vocab.get(None, _UNSEEN)
            failed |= (codes == _MISSING) | (codes == none_code)
            try:
                probe_code = vocab.get(value, _UNSEEN)
            except TypeError:
                probe_code = _UNSEEN
            agreements += codes == probe_code
        if probe:
            scores = agreements / len(probe)
        else:
            scores = np.ones(len(rows), dtype=np.float64)
        keep = (~failed) & (scores >= threshold)
        return sorted(job_id for job_id, ok in zip(ids, keep.tolist()) if ok)

    def _tie_break_impl(
        self,
        candidates: list[str],
        input_bytes: int,
        side_statics: Mapping[str, str],
        side: str,
        observe: Callable[[float], None] | None,
    ) -> str:
        best = self._tie_break_scored_impl(
            candidates, input_bytes, side_statics, side, observe
        )
        if best is None:
            raise KeyError(f"no indexed candidates among {candidates!r}")
        return best[3]

    def _tie_break_scored_impl(
        self,
        candidates: list[str],
        input_bytes: int,
        side_statics: Mapping[str, str],
        side: str,
        observe: Callable[[float], None] | None,
    ) -> tuple[int, int, float, str] | None:
        """The winning scan-path sort key among *candidates*, or None.

        The key is ``(same_program, |stored - input|, -similarity,
        job_id)`` — the winner is its last element.  Returning the key
        (not just the winner) lets a sharded caller take the global
        ``min`` over per-partition winners and land on exactly the row a
        flat tie-break would pick.  *observe* still fires once per live
        candidate in sorted-id order.
        """
        ordered = sorted(candidates)
        ids, rows = self._candidate_rows(ordered)
        if not ids:
            return None
        agreements = np.zeros(len(rows), dtype=np.int64)
        for name, value in side_statics.items():
            column = self._code_arrays.get(name)
            codes = (
                column[rows]
                if column is not None
                else np.full(len(rows), _MISSING, dtype=np.int64)
            )
            vocab = self._static_vocab.get(name, {})
            try:
                probe_code = vocab.get(value, _UNSEEN)
            except TypeError:
                probe_code = _UNSEEN
            equal = codes == probe_code
            if value == "":
                # The scan path reads missing stored values as "",
                # which agrees when the probe value is "" too.
                equal |= codes == _MISSING
            agreements += equal
        if side_statics:
            similarities = agreements / len(side_statics)
        else:
            similarities = np.ones(len(rows), dtype=np.float64)
        deltas = np.abs(self._input_arr[rows] - np.int64(input_bytes))
        best: tuple[int, int, float, str] | None = None
        for position, job_id in enumerate(ids):
            similarity = float(similarities[position])
            if observe is not None:
                observe(similarity)
            key = (
                0 if similarity >= 1.0 else 1,
                int(deltas[position]),
                -similarity,
                job_id,
            )
            if best is None or key < best:
                best = key
        return best


class MatchIndex(_ProbeColumns):
    """In-memory columnar index over one :class:`ProfileStore`.

    One instance per store (handed out by ``store.match_index()``), so
    every serving worker probing the shared store shares the same
    matrices and memo tables.
    """

    def __init__(
        self,
        store: "ProfileStore",
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self._store = store
        self.registry = registry
        self.tracer = tracer
        #: Guards every structure below except the pending queue.
        self._lock = threading.RLock()
        #: Leaf lock for the write-side queue: held by writers while they
        #: already hold the store lock, so it must acquire nothing else.
        self._pending_lock = threading.Lock()
        self._pending: list[tuple[Any, ...]] = []
        self._built_generation = -1
        self._needs_rebuild = True
        self._clear_columns()

    # ------------------------------------------------------------------
    # Column storage
    # ------------------------------------------------------------------
    def _clear_columns(self) -> None:
        from .store import _columns_for  # local import: store imports us lazily

        self._ids: list[str] = []
        self._row_of: dict[str, int] = {}
        self._active: list[bool] = []
        self._has_static: list[bool] = []
        self._input_bytes: list[int] = []
        self._vector_columns = {
            key: _columns_for(*key) for key in _VECTOR_KEYS
        }
        self._vectors: dict[tuple[str, str], list[tuple[float, ...] | None]] = {
            key: [] for key in self._vector_columns
        }
        self._static_vocab: dict[str, dict[Any, int]] = {}
        self._static_codes: dict[str, list[int]] = {}
        self._cfg_digests: dict[str, list[str | None]] = {"map": [], "reduce": []}
        self._cfg_graphs: dict[str, ControlFlowGraph] = {}
        self._cfg_payloads: dict[str, dict[str, Any]] = {}
        self._cfg_memo: dict[tuple[str, str], bool] = {}
        self._arrays_dirty = True
        self._matrices: dict[tuple[str, str], tuple[np.ndarray, np.ndarray]] = {}
        self._normalized_cache: dict[tuple[str, str], tuple[Any, np.ndarray]] = {}
        self._code_arrays: dict[str, np.ndarray] = {}
        self._ids_arr = np.zeros(0, dtype=object)
        self._active_arr = np.zeros(0, dtype=bool)
        self._static_arr = np.zeros(0, dtype=bool)
        self._input_arr = np.zeros(0, dtype=np.int64)

    def _ingest(
        self,
        job_id: str,
        dynamic: Mapping[str, Any],
        static_columns: Mapping[str, Any] | None,
    ) -> None:
        """Append one job as a new row (caller holds ``self._lock``)."""
        rows_before = len(self._ids)
        self._ids.append(job_id)
        self._row_of[job_id] = rows_before
        self._active.append(True)
        self._input_bytes.append(int(dynamic.get("INPUT_BYTES", 0)))
        for key, columns in self._vector_columns.items():
            if all(name in dynamic for name in columns):
                vector = tuple(float(dynamic[name]) for name in columns)
            else:
                vector = None
            self._vectors[key].append(vector)

        self._has_static.append(static_columns is not None)
        seen: set[str] = set()
        for side, cfg_column in _CFG_COLUMNS.items():
            payload = None if static_columns is None else static_columns.get(cfg_column)
            if payload:
                digest = _cfg_digest(payload)
                if digest not in self._cfg_graphs:
                    self._cfg_graphs[digest] = ControlFlowGraph.from_dict(payload)
                    self._cfg_payloads[digest] = dict(payload)
                self._cfg_digests[side].append(digest)
            else:
                self._cfg_digests[side].append(None)
        if static_columns is not None:
            for name, value in static_columns.items():
                if name in _CFG_COLUMNS.values():
                    continue
                codes = self._static_codes.get(name)
                if codes is None:
                    codes = [_MISSING] * rows_before
                    self._static_codes[name] = codes
                vocab = self._static_vocab.setdefault(name, {})
                try:
                    code = vocab.setdefault(value, len(vocab))
                except TypeError:  # unhashable value: treat as missing
                    code = _MISSING
                codes.append(code)
                seen.add(name)
        for name, codes in self._static_codes.items():
            if name not in seen:
                codes.append(_MISSING)
        self._arrays_dirty = True

    def _materialize(self) -> None:
        """Rebuild the numpy views of the column lists (probe-side lock)."""
        if not self._arrays_dirty:
            return
        count = len(self._ids)
        self._ids_arr = np.asarray(self._ids, dtype=object)
        self._active_arr = np.asarray(self._active, dtype=bool)
        self._static_arr = np.asarray(self._has_static, dtype=bool)
        self._input_arr = np.asarray(self._input_bytes, dtype=np.int64)
        self._matrices = {}
        self._normalized_cache = {}
        for key, columns in self._vector_columns.items():
            matrix = np.zeros((count, len(columns)), dtype=np.float64)
            valid = np.zeros(count, dtype=bool)
            for row, vector in enumerate(self._vectors[key]):
                if vector is not None:
                    matrix[row] = vector
                    valid[row] = True
            self._matrices[key] = (matrix, valid)
        self._code_arrays = {
            name: np.asarray(codes, dtype=np.int64)
            for name, codes in self._static_codes.items()
        }
        self._arrays_dirty = False

    # ------------------------------------------------------------------
    # Hooks for the shared kernels
    # ------------------------------------------------------------------
    def _normalizer_for(self, side: str, kind: str) -> MinMaxNormalizer:
        return self._store.load_normalizer(side, kind)

    def _graph_for(self, digest: str) -> ControlFlowGraph:
        return self._cfg_graphs[digest]

    # ------------------------------------------------------------------
    # Write-side hooks (called by the store, under the store lock)
    # ------------------------------------------------------------------
    def on_put(
        self,
        job_id: str,
        dynamic: Mapping[str, Any],
        static_columns: Mapping[str, Any],
        generation: int,
    ) -> None:
        with self._pending_lock:
            self._pending.append(("put", job_id, dynamic, static_columns, generation))

    def on_delete(self, job_id: str, generation: int) -> None:
        with self._pending_lock:
            self._pending.append(("delete", job_id, None, None, generation))

    def invalidate(self) -> None:
        """Force a full rebuild on the next probe."""
        with self._lock:
            self._needs_rebuild = True

    # ------------------------------------------------------------------
    # Coherence
    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        """Store generation this index currently reflects (-1 = cold)."""
        with self._lock:
            return self._built_generation

    def ensure_fresh(self) -> None:
        """Bring the index up to the store's current generation.

        Applies queued writes incrementally when possible, escalates to
        a full snapshot rebuild otherwise.  Raises whatever the snapshot
        scan raises (e.g. an injected substrate fault) — callers treat
        that as a poisoned index and fall back to the scan path; the
        index itself stays stale-but-consistent and recovers on the next
        successful call.
        """
        with self._lock:
            with self._pending_lock:
                pending = self._pending
                self._pending = []
            if not self._needs_rebuild and self._built_generation >= 0:
                for op, job_id, dynamic, static_columns, generation in pending:
                    if generation <= self._built_generation:
                        continue  # already covered by a snapshot rebuild
                    if op == "put":
                        if job_id in self._row_of:
                            # Overwrite: per-column history is not
                            # replayable in place, rebuild instead.
                            self._needs_rebuild = True
                            break
                        self._ingest(job_id, dynamic, static_columns)
                    else:
                        row = self._row_of.pop(job_id, None)
                        if row is not None:
                            self._active[row] = False
                            self._arrays_dirty = True
                    self._built_generation = generation
            if (
                self._needs_rebuild
                or self._built_generation != self._store.generation
            ):
                self._rebuild()

    def load_checkpoint(
        self,
        generation: int,
        dynamic_rows: Mapping[str, Mapping[str, Any]],
        static_rows: Mapping[str, Mapping[str, Any]],
    ) -> None:
        """Warm the index from a persisted checkpoint, skipping the rebuild.

        Ingests rows exactly like :meth:`_rebuild` (sorted job-id order,
        so factorization codes and row numbering are deterministic) but
        sources them from a snapshot file instead of a store scan — the
        restore path calls this so the first probe after a restart finds
        a hot index and ``pstorm_matcher_index_rebuilds_total`` stays 0.
        """
        with self._lock:
            self._clear_columns()
            for job_id in sorted(dynamic_rows):
                self._ingest(
                    job_id, dynamic_rows[job_id], static_rows.get(job_id)
                )
            self._built_generation = int(generation)
            self._needs_rebuild = False
            with self._pending_lock:
                self._pending = [
                    entry for entry in self._pending if entry[4] > generation
                ]
        get_registry(self.registry).counter(
            "pstorm_match_index_checkpoint_loads_total",
            "columnar-index warm loads from a snapshot checkpoint",
        ).inc()

    def _rebuild(self) -> None:
        """Full rebuild from a write-consistent store snapshot."""
        generation, dynamic_rows, static_rows = self._store.index_snapshot()
        self._clear_columns()
        for job_id in sorted(dynamic_rows):
            self._ingest(job_id, dynamic_rows[job_id], static_rows.get(job_id))
        self._built_generation = generation
        self._needs_rebuild = False
        with self._pending_lock:
            self._pending = [
                entry for entry in self._pending if entry[4] > generation
            ]
        get_registry(self.registry).counter(
            "pstorm_matcher_index_rebuilds_total",
            "full columnar-index rebuilds from a store snapshot",
        ).inc()

    # ------------------------------------------------------------------
    # Probe stages (mirror the scan-path filters bit for bit)
    # ------------------------------------------------------------------
    def euclidean_stage(
        self,
        side: str,
        kind: str,
        probe: list[float],
        threshold: float,
        candidates: list[str] | None = None,
    ) -> list[str]:
        """Vectorized twin of :meth:`ProfileStore.euclidean_stage`."""
        with self._lock:
            self._materialize()
            probes = np.asarray([probe], dtype=np.float64)
            return self._euclidean_impl(side, kind, probes, threshold, candidates)[0]

    def euclidean_stage_batch(
        self,
        side: str,
        kind: str,
        probes: Sequence[Sequence[float]],
        threshold: float,
    ) -> list[list[str]]:
        """One broadcast pricing K probes; row k == ``euclidean_stage`` of probe k."""
        with self._lock:
            self._materialize()
            block = np.asarray(probes, dtype=np.float64)
            if block.ndim != 2:
                raise ValueError(f"expected a (K, F) probe block, got {block.shape}")
            return self._euclidean_impl(side, kind, block, threshold, None)

    def euclidean_prune_prep(self, side: str, kind: str) -> tuple[Any, ...] | None:
        """Locked twin of the base accessor (a live index can be written
        to concurrently; a frozen view cannot)."""
        with self._lock:
            self._materialize()
            return self._euclidean_prep(side, kind)

    def cfg_stage(
        self, side: str, probe_cfg: ControlFlowGraph, candidates: list[str]
    ) -> list[str]:
        """Memoized twin of :meth:`ProfileStore.cfg_stage`."""
        with self._lock:
            return self._cfg_impl(side, probe_cfg, candidates)

    def jaccard_stage(
        self, probe: Mapping[str, str], threshold: float, candidates: list[str]
    ) -> list[str]:
        """Vectorized twin of :meth:`ProfileStore.jaccard_stage`."""
        with self._lock:
            self._materialize()
            return self._jaccard_impl(probe, threshold, candidates)

    def tie_break(
        self,
        candidates: list[str],
        input_bytes: int,
        side_statics: Mapping[str, str],
        side: str,
        observe: Callable[[float], None] | None = None,
    ) -> str:
        """Vectorized twin of ``ProfileMatcher._tie_break``.

        Computes every candidate's Jaccard similarity against the probe
        statics column-wise, then applies the exact scan-path sort key
        ``(same_program, |stored - input|, -similarity, job_id)``.
        *observe* receives each candidate's similarity in sorted-id
        order, matching the scan path's per-candidate histogram.
        """
        with self._lock:
            self._materialize()
            return self._tie_break_impl(
                candidates, input_bytes, side_statics, side, observe
            )

    def tie_break_scored(
        self,
        candidates: list[str],
        input_bytes: int,
        side_statics: Mapping[str, str],
        side: str,
        observe: Callable[[float], None] | None = None,
    ) -> tuple[int, int, float, str] | None:
        """The winning tie-break *sort key* (or None with no candidates).

        Sharded scatter-gather: each partition returns its local winner
        key and the global ``min`` is the flat-path winner, because the
        key's last element is the job id itself.
        """
        with self._lock:
            self._materialize()
            return self._tie_break_scored_impl(
                candidates, input_bytes, side_statics, side, observe
            )

    # ------------------------------------------------------------------
    # Frozen export
    # ------------------------------------------------------------------
    def export_view(self) -> "FrozenIndexView":
        """Snapshot the current generation into an immutable, store-free view.

        Brings the index fresh first (raising whatever the rebuild scan
        raises — an export during an outage fails loudly rather than
        publishing a stale generation), then deep-copies every column
        and freezes the store's current normalizer bounds into the view,
        so later writes can never tear it.
        """
        with self._lock:
            self.ensure_fresh()
            self._materialize()
            normalizers = {
                key: MinMaxNormalizer.from_dict(
                    self._store.load_normalizer(*key).to_dict()
                )
                for key in self._vector_columns
            }
            referenced = {
                digest
                for digests in self._cfg_digests.values()
                for digest in digests
                if digest is not None
            }
            return FrozenIndexView(
                generation=self._built_generation,
                ids=tuple(self._ids),
                active=self._active_arr.copy(),
                has_static=self._static_arr.copy(),
                input_bytes=self._input_arr.copy(),
                matrices={
                    key: (matrix.copy(), valid.copy())
                    for key, (matrix, valid) in self._matrices.items()
                },
                code_arrays={
                    name: arr.copy() for name, arr in self._code_arrays.items()
                },
                static_vocab={
                    name: dict(vocab)
                    for name, vocab in self._static_vocab.items()
                },
                cfg_digests={
                    side: tuple(digests)
                    for side, digests in self._cfg_digests.items()
                },
                cfg_payloads={
                    digest: dict(self._cfg_payloads[digest])
                    for digest in sorted(referenced)
                },
                normalizers=normalizers,
            )

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Deterministic size snapshot (sorted keys)."""
        with self._lock:
            return {
                "built_generation": self._built_generation,
                "cfg_graphs": len(self._cfg_graphs),
                "cfg_memo": len(self._cfg_memo),
                "live_rows": sum(self._active),
                "rows": len(self._ids),
                "static_columns": len(self._static_codes),
            }


class FrozenIndexView(_ProbeColumns):
    """An immutable snapshot of one :class:`MatchIndex` generation.

    Carries everything a probe needs — matrices, masks, codes, vocab,
    CFG payloads, and the normalizer bounds frozen at export time — so
    it answers every stage without a store and therefore without locks,
    from any process.  The arrays may be zero-copy views over
    ``multiprocessing.shared_memory`` segments (see
    :mod:`repro.core.shm_index`); the view never writes to them.
    """

    def __init__(
        self,
        generation: int,
        ids: tuple[str, ...],
        active: np.ndarray,
        has_static: np.ndarray,
        input_bytes: np.ndarray,
        matrices: dict[tuple[str, str], tuple[np.ndarray, np.ndarray]],
        code_arrays: dict[str, np.ndarray],
        static_vocab: dict[str, dict[Any, int]],
        cfg_digests: dict[str, tuple[str | None, ...]],
        cfg_payloads: dict[str, dict[str, Any]],
        normalizers: dict[tuple[str, str], MinMaxNormalizer],
    ) -> None:
        self.generation = int(generation)
        self._ids = ids
        self._ids_arr = np.asarray(ids, dtype=object)
        self._row_of = {job_id: row for row, job_id in enumerate(ids)}
        self._active = active
        self._active_arr = active
        self._has_static = has_static
        self._static_arr = has_static
        self._input_arr = input_bytes
        self._matrices = matrices
        self._normalized_cache = {}
        self._code_arrays = code_arrays
        self._static_vocab = static_vocab
        self._cfg_digests = cfg_digests
        self._cfg_payloads = cfg_payloads
        #: Lazily parsed graphs + per-view verdict memo (worker-local).
        self._cfg_graphs: dict[str, ControlFlowGraph] = {}
        self._cfg_memo: dict[tuple[str, str], bool] = {}
        self._normalizers = normalizers

    # -- kernel hooks ---------------------------------------------------
    def _normalizer_for(self, side: str, kind: str) -> MinMaxNormalizer:
        return self._normalizers[(side, kind)]

    def _graph_for(self, digest: str) -> ControlFlowGraph:
        graph = self._cfg_graphs.get(digest)
        if graph is None:
            graph = ControlFlowGraph.from_dict(self._cfg_payloads[digest])
            self._cfg_graphs[digest] = graph
        return graph

    # -- probe stages (same signatures as MatchIndex) -------------------
    def ensure_fresh(self) -> None:
        """No-op: a frozen view is always internally consistent."""

    def euclidean_stage(
        self,
        side: str,
        kind: str,
        probe: list[float],
        threshold: float,
        candidates: list[str] | None = None,
    ) -> list[str]:
        probes = np.asarray([probe], dtype=np.float64)
        return self._euclidean_impl(side, kind, probes, threshold, candidates)[0]

    def euclidean_stage_batch(
        self,
        side: str,
        kind: str,
        probes: Sequence[Sequence[float]],
        threshold: float,
    ) -> list[list[str]]:
        block = np.asarray(probes, dtype=np.float64)
        if block.ndim != 2:
            raise ValueError(f"expected a (K, F) probe block, got {block.shape}")
        return self._euclidean_impl(side, kind, block, threshold, None)

    def cfg_stage(
        self, side: str, probe_cfg: ControlFlowGraph, candidates: list[str]
    ) -> list[str]:
        return self._cfg_impl(side, probe_cfg, candidates)

    def jaccard_stage(
        self, probe: Mapping[str, str], threshold: float, candidates: list[str]
    ) -> list[str]:
        return self._jaccard_impl(probe, threshold, candidates)

    def tie_break(
        self,
        candidates: list[str],
        input_bytes: int,
        side_statics: Mapping[str, str],
        side: str,
        observe: Callable[[float], None] | None = None,
    ) -> str:
        return self._tie_break_impl(
            candidates, input_bytes, side_statics, side, observe
        )

    def tie_break_scored(
        self,
        candidates: list[str],
        input_bytes: int,
        side_statics: Mapping[str, str],
        side: str,
        observe: Callable[[float], None] | None = None,
    ) -> tuple[int, int, float, str] | None:
        return self._tie_break_scored_impl(
            candidates, input_bytes, side_statics, side, observe
        )

    # -- split codec (meta blob + named arrays) -------------------------
    _ARRAY_SCALARS = ("active", "has_static", "input_bytes")

    def export_arrays(self) -> dict[str, np.ndarray]:
        """The big numeric columns, named for shared-memory packing."""
        arrays: dict[str, np.ndarray] = {
            "active": self._active_arr,
            "has_static": self._static_arr,
            "input_bytes": self._input_arr,
        }
        for (side, kind), (matrix, valid) in self._matrices.items():
            arrays[f"mat:{side}:{kind}"] = matrix
            arrays[f"valid:{side}:{kind}"] = valid
        for name, column in self._code_arrays.items():
            arrays[f"code:{name}"] = column
        return arrays

    def export_meta(self) -> dict[str, Any]:
        """Everything that is not a big array, as one picklable blob."""
        return {
            "generation": self.generation,
            "ids": self._ids,
            "matrix_keys": sorted(self._matrices),
            "code_names": sorted(self._code_arrays),
            "static_vocab": self._static_vocab,
            "cfg_digests": self._cfg_digests,
            "cfg_payloads": self._cfg_payloads,
            "normalizers": {
                key: normalizer.to_dict()
                for key, normalizer in self._normalizers.items()
            },
        }

    @classmethod
    def from_parts(
        cls, meta: Mapping[str, Any], arrays: Mapping[str, np.ndarray]
    ) -> "FrozenIndexView":
        """Rebuild a view from :meth:`export_meta` + :meth:`export_arrays`.

        The arrays are referenced, not copied — hand in shared-memory
        views for a zero-copy attach.
        """
        matrices = {
            tuple(key): (arrays[f"mat:{key[0]}:{key[1]}"], arrays[f"valid:{key[0]}:{key[1]}"])
            for key in meta["matrix_keys"]
        }
        return cls(
            generation=meta["generation"],
            ids=tuple(meta["ids"]),
            active=arrays["active"],
            has_static=arrays["has_static"],
            input_bytes=arrays["input_bytes"],
            matrices=matrices,
            code_arrays={
                name: arrays[f"code:{name}"] for name in meta["code_names"]
            },
            static_vocab=meta["static_vocab"],
            cfg_digests=meta["cfg_digests"],
            cfg_payloads=meta["cfg_payloads"],
            normalizers={
                tuple(key): MinMaxNormalizer.from_dict(payload)
                for key, payload in meta["normalizers"].items()
            },
        )

    def stats(self) -> dict[str, int]:
        """Deterministic size snapshot (sorted keys)."""
        return {
            "built_generation": self.generation,
            "cfg_payloads": len(self._cfg_payloads),
            "live_rows": int(self._active_arr.sum()),
            "rows": len(self._ids),
            "static_columns": len(self._code_arrays),
        }
