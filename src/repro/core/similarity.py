"""Similarity measures for profile matching (§4.2).

Three measures, one per feature type: the Jaccard index over corresponding
categorical (static) features, normalized Euclidean distance over numeric
(dynamic) features, and the 0/1 synchronized-walk CFG score (which lives in
:mod:`repro.analysis.cfg_match`).  Numeric features are min-max normalized
with bounds the store maintains as profiles arrive (§4.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

__all__ = [
    "jaccard_index",
    "euclidean_distance",
    "MinMaxNormalizer",
    "default_euclidean_threshold",
    "DEFAULT_JACCARD_THRESHOLD",
    "normalize_block",
    "normalized_euclidean_block",
]

#: θ_Jacc from §6.
DEFAULT_JACCARD_THRESHOLD = 0.5


def jaccard_index(first: Mapping[str, str], second: Mapping[str, str]) -> float:
    """Jaccard index over *corresponding* categorical features.

    The paper's O(|S|) variant: only corresponding pairs are tested for
    equality, so the index is (number of agreeing features) / (number of
    features).  Both vectors must have the same feature names.
    """
    if set(first) != set(second):
        raise ValueError("feature vectors must share the same feature names")
    if not first:
        return 1.0
    agreements = sum(1 for name in first if first[name] == second[name])
    return agreements / len(first)


def euclidean_distance(first: Sequence[float], second: Sequence[float]) -> float:
    """Plain Euclidean distance between two equal-length vectors."""
    if len(first) != len(second):
        raise ValueError("vectors must have equal length")
    return math.sqrt(sum((a - b) ** 2 for a, b in zip(first, second)))


def default_euclidean_threshold(num_features: int) -> float:
    """θ_Eucl = √(number of features) / 2 (§6).

    Normalized features lie in [0, 1], so the maximum possible distance is
    √n; the threshold is half of that maximum.
    """
    if num_features < 1:
        raise ValueError("need at least one feature")
    return math.sqrt(num_features) / 2.0


@dataclass
class MinMaxNormalizer:
    """Per-dimension min/max tracker with [0, 1] normalization.

    The store updates the bounds whenever a profile is added; matching-time
    normalization uses the current bounds (§4.2).  Dimensions that have
    seen a single value normalize to 0.0.
    """

    minimums: list[float] = field(default_factory=list)
    maximums: list[float] = field(default_factory=list)

    @property
    def num_features(self) -> int:
        return len(self.minimums)

    def update(self, values: Sequence[float]) -> None:
        """Fold one observed vector into the bounds."""
        if not self.minimums:
            self.minimums = [float(v) for v in values]
            self.maximums = [float(v) for v in values]
            return
        if len(values) != self.num_features:
            raise ValueError("dimensionality changed between updates")
        for i, value in enumerate(values):
            self.minimums[i] = min(self.minimums[i], float(value))
            self.maximums[i] = max(self.maximums[i], float(value))

    def normalize(self, values: Sequence[float]) -> list[float]:
        """Map a vector into [0, 1] per dimension, clipping outliers."""
        if len(values) != self.num_features:
            raise ValueError(
                f"expected {self.num_features} features, got {len(values)}"
            )
        normalized = []
        for i, value in enumerate(values):
            span = self.maximums[i] - self.minimums[i]
            if span <= 0:
                normalized.append(0.0)
            else:
                scaled = (float(value) - self.minimums[i]) / span
                normalized.append(min(1.0, max(0.0, scaled)))
        return normalized

    def to_dict(self) -> dict[str, list[float]]:
        return {"minimums": list(self.minimums), "maximums": list(self.maximums)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Sequence[float]]) -> "MinMaxNormalizer":
        return cls(
            minimums=[float(v) for v in payload["minimums"]],
            maximums=[float(v) for v in payload["maximums"]],
        )


# ----------------------------------------------------------------------
# Vectorized counterparts, used by the columnar match index and the GBRT
# batch feature extractor.  Bit-parity with the scalar forms matters:
# the feature vectors here are at most six-dimensional, below numpy's
# pairwise-summation block size, so ``(row ** 2).sum()`` accumulates in
# the same left-to-right order as the scalar ``sum()`` in
# :func:`euclidean_distance` and produces the identical float64.


def normalize_block(
    normalizer: MinMaxNormalizer, block: np.ndarray
) -> np.ndarray:
    """Min-max normalize every row of *block*, mirroring ``normalize``.

    ``block`` is an (n, d) float array with d == ``num_features``.
    Zero-span dimensions map to 0.0 and out-of-bounds values clip to
    [0, 1], exactly like the scalar path.
    """
    block = np.asarray(block, dtype=np.float64)
    if block.ndim != 2 or block.shape[1] != normalizer.num_features:
        raise ValueError(
            f"expected (n, {normalizer.num_features}) block, got {block.shape}"
        )
    minimums = np.asarray(normalizer.minimums, dtype=np.float64)
    spans = np.asarray(normalizer.maximums, dtype=np.float64) - minimums
    safe = spans > 0
    denominator = np.where(safe, spans, 1.0)
    scaled = np.clip((block - minimums) / denominator, 0.0, 1.0)
    return np.where(safe, scaled, 0.0)


def normalized_euclidean_block(
    normalizer: MinMaxNormalizer,
    block: np.ndarray,
    probe: Sequence[float],
) -> np.ndarray:
    """Normalized Euclidean distance from *probe* to every row of *block*.

    Returns an (n,) float64 array; each entry equals
    ``euclidean_distance(normalize(row), normalize(probe))`` bit for bit.
    """
    normalized_rows = normalize_block(normalizer, block)
    normalized_probe = np.asarray(
        normalizer.normalize(list(probe)), dtype=np.float64
    )
    deltas = normalized_rows - normalized_probe
    return np.sqrt((deltas * deltas).sum(axis=1))
