"""The PStorM profile store (Chapter 5).

Implements the Table 5.1 data model on the HBase substrate: one table, one
column family, and row keys prefixed by *feature type* —

====================  =======================================================
``Dynamic/<job id>``  the six Table 4.1 selectivities plus per-side cost
                      factors and the tie-break input size
``Static/<job id>``   the Table 4.3 categorical features and both CFGs
``Profile/<job id>``  the serialized Starfish profile handed to the CBO
====================  =======================================================

The prefix scheme keeps each feature type contiguous in the row space, so
the matcher's per-stage scans touch one key range each (the §5.1 locality
argument), and new feature types are new prefixes, not new column families
(the extensibility argument).  The matcher's three filters are implemented
as custom HBase filters, registered with the substrate so they execute on
the region servers (§5.3 pushdown).
"""

from __future__ import annotations

import json
import math
import os
import threading
from contextlib import ExitStack, contextmanager
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter
from typing import TYPE_CHECKING, Any, ClassVar, Iterator, Mapping

if TYPE_CHECKING:
    from ..chaos import FaultInjector
    from .match_index import MatchIndex

from ..analysis.cfg import ControlFlowGraph
from ..analysis.cfg_match import cfg_match
from ..analysis.static_features import StaticFeatures
from ..hbase import (
    Filter,
    FilterList,
    HBaseCluster,
    PrefixFilter,
    TableExistsError,
    register_filter,
)
from ..observability import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS,
    MetricsRegistry,
    Tracer,
    get_registry,
    get_tracer,
)
from ..starfish.profile import (
    MAP_COST_FEATURES,
    MAP_DATA_FLOW_FEATURES,
    REDUCE_COST_FEATURES,
    REDUCE_DATA_FLOW_FEATURES,
    JobProfile,
)
from .similarity import MinMaxNormalizer, jaccard_index

__all__ = [
    "ProfileStore",
    "DYNAMIC_PREFIX",
    "STATIC_PREFIX",
    "PROFILE_PREFIX",
    "NormalizedEuclideanFilter",
    "CfgEqualityFilter",
    "JaccardThresholdFilter",
    "RowKeySetFilter",
]

DYNAMIC_PREFIX = "Dynamic/"
#: Exclusive upper bound of the Dynamic key range ("Dynamic0": '0' is
#: the character after '/'); region ranges clip against it to find
#: which regions hold Dynamic rows.
DYNAMIC_STOP = DYNAMIC_PREFIX[:-1] + chr(ord(DYNAMIC_PREFIX[-1]) + 1)
STATIC_PREFIX = "Static/"
PROFILE_PREFIX = "Profile/"
_META_ROW = "Meta/__normalizers__"

TABLE_NAME = "Jobs"
FAMILY = "f"

#: Column names of the per-side flow and cost vectors in Dynamic rows.
MAP_FLOW_COLUMNS = tuple(MAP_DATA_FLOW_FEATURES)
RED_FLOW_COLUMNS = tuple(REDUCE_DATA_FLOW_FEATURES)
MAP_COST_COLUMNS = tuple(f"MCOST_{name}" for name in MAP_COST_FEATURES)
RED_COST_COLUMNS = tuple(f"RCOST_{name}" for name in REDUCE_COST_FEATURES)


def _columns_for(side: str, kind: str) -> tuple[str, ...]:
    table = {
        ("map", "flow"): MAP_FLOW_COLUMNS,
        ("map", "cost"): MAP_COST_COLUMNS,
        ("reduce", "flow"): RED_FLOW_COLUMNS,
        ("reduce", "cost"): RED_COST_COLUMNS,
    }
    return table[(side, kind)]


# ----------------------------------------------------------------------
# Custom pushdown filters (the matcher's stages, server-side)
# ----------------------------------------------------------------------
@register_filter
class NormalizedEuclideanFilter(Filter):
    """Pass rows whose selected columns lie within a normalized Euclidean
    ball around a probe vector.

    The min/max bounds ship *inside* the filter, so the region server can
    normalize candidate values without a round trip — the same deployment
    shape as a real HBase custom filter.
    """

    filter_type: ClassVar[str] = "pstorm-euclidean"

    def __init__(
        self,
        columns: list[str],
        probe: list[float],
        minimums: list[float],
        maximums: list[float],
        threshold: float,
    ) -> None:
        if not (len(columns) == len(probe) == len(minimums) == len(maximums)):
            raise ValueError("columns/probe/bounds must align")
        self.columns = list(columns)
        self.probe = [float(v) for v in probe]
        self.minimums = [float(v) for v in minimums]
        self.maximums = [float(v) for v in maximums]
        self.threshold = float(threshold)

    def _normalize(self, index: int, value: float) -> float:
        span = self.maximums[index] - self.minimums[index]
        if span <= 0:
            return 0.0
        return min(1.0, max(0.0, (value - self.minimums[index]) / span))

    def matches(self, row_key: str, row) -> bool:
        columns = row.get(FAMILY, {})
        total = 0.0
        for index, name in enumerate(self.columns):
            if name not in columns:
                return False
            candidate = self._normalize(index, float(columns[name]))
            probe = self._normalize(index, self.probe[index])
            total += (candidate - probe) ** 2
        return math.sqrt(total) <= self.threshold

    def to_dict(self) -> dict[str, Any]:
        return {
            "columns": self.columns,
            "probe": self.probe,
            "minimums": self.minimums,
            "maximums": self.maximums,
            "threshold": self.threshold,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "NormalizedEuclideanFilter":
        return cls(
            columns=payload["columns"],
            probe=payload["probe"],
            minimums=payload["minimums"],
            maximums=payload["maximums"],
            threshold=payload["threshold"],
        )


@register_filter
class CfgEqualityFilter(Filter):
    """Pass Static rows whose stored CFG matches the probe CFG (0/1)."""

    filter_type: ClassVar[str] = "pstorm-cfg"

    def __init__(self, column: str, probe_cfg: Mapping[str, Any]) -> None:
        self.column = column
        self.probe_cfg = dict(probe_cfg)
        self._probe = ControlFlowGraph.from_dict(probe_cfg)

    def matches(self, row_key: str, row) -> bool:
        payload = row.get(FAMILY, {}).get(self.column)
        if not payload:
            return False
        return cfg_match(self._probe, ControlFlowGraph.from_dict(payload))

    def to_dict(self) -> dict[str, Any]:
        return {"column": self.column, "probe_cfg": self.probe_cfg}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CfgEqualityFilter":
        return cls(column=payload["column"], probe_cfg=payload["probe_cfg"])


@register_filter
class JaccardThresholdFilter(Filter):
    """Pass Static rows whose categorical features reach θ_Jacc."""

    filter_type: ClassVar[str] = "pstorm-jaccard"

    def __init__(self, probe: Mapping[str, str], threshold: float) -> None:
        self.probe = dict(probe)
        self.threshold = float(threshold)

    def matches(self, row_key: str, row) -> bool:
        columns = row.get(FAMILY, {})
        candidate = {name: columns.get(name) for name in self.probe}
        if any(value is None for value in candidate.values()):
            return False
        return jaccard_index(self.probe, candidate) >= self.threshold

    def to_dict(self) -> dict[str, Any]:
        return {"probe": self.probe, "threshold": self.threshold}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "JaccardThresholdFilter":
        return cls(probe=payload["probe"], threshold=payload["threshold"])


@register_filter
class RowKeySetFilter(Filter):
    """Pass rows whose key (sans prefix) is in a candidate id set.

    Lets later matcher stages scan only the survivors of earlier stages.
    """

    filter_type: ClassVar[str] = "pstorm-rowset"

    def __init__(self, job_ids: list[str]) -> None:
        self.job_ids = sorted(set(job_ids))
        self._lookup = set(self.job_ids)

    def matches(self, row_key: str, row) -> bool:
        __, __, job_id = row_key.partition("/")
        return job_id in self._lookup

    def to_dict(self) -> dict[str, Any]:
        return {"job_ids": self.job_ids}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RowKeySetFilter":
        return cls(job_ids=payload["job_ids"])


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------
class ProfileStore:
    """PStorM's profile repository over the HBase substrate.

    Args:
        hbase: an HBase cluster; a single-region-server one is created if
            omitted (the paper's deployment, §6).
        pushdown: whether scans push filters to the region servers
            (§5.3); turn off to measure the client-side baseline.
        chaos: fault injector handed to a freshly created substrate
            (ignored when *hbase* is supplied — an injected cluster
            keeps the injector it was built with).
        enable_index: whether :meth:`match_index` hands out the columnar
            match index; off forces every matcher onto the scan path.
        scan_batch: chunk size for multi-row scans (``Table.scan(...,
            batch=N)``); 1 restores the one-call-per-row baseline.
        data_dir: make the store durable.  A fresh directory gets a
            durable HBase substrate under ``data_dir/hbase`` (per-region
            WAL + SSTables); a directory with existing state is
            *restored* — rows, normalizers, and the write generation
            come back from disk, and an ``index_checkpoint.json``
            written by :meth:`snapshot` warms the match index without a
            rebuild.  Ignored when *hbase* is supplied.
        group_commit: WAL group-commit batch size for a freshly created
            durable substrate (1 = sync every record).
        num_region_servers: region servers for a freshly created
            substrate (ignored when *hbase* is supplied).
        split_threshold: rows per region before it splits, for a freshly
            created substrate; ``None`` keeps the cluster default.
        replication: hosts per region (primary + read replicas) for a
            freshly created substrate.
        merge_threshold: auto-merge floor for a freshly created
            substrate (``None`` = merges off).
        sstable_format: durable SSTable format for a freshly created
            substrate — ``"binary"`` (block-sharded, default) or
            ``"json"`` (legacy).  A restored substrate keeps whatever
            format its ``cluster.json`` records.
        shard_index: hand out a :class:`~repro.core.shard_index.ShardedMatchIndex`
            — one partition per region of the Dynamic key range, probed
            scatter-gather — instead of the flat :class:`MatchIndex`.
        probe_workers: thread fan-out of the sharded index's partition
            probes; 1 keeps the sequential gather, any width answers
            bit-identically.
    """

    def __init__(
        self,
        hbase: HBaseCluster | None = None,
        pushdown: bool = True,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        chaos: "FaultInjector | None" = None,
        enable_index: bool = True,
        scan_batch: int = 64,
        data_dir: Path | str | None = None,
        group_commit: int = 1,
        num_region_servers: int = 1,
        split_threshold: int | None = None,
        replication: int = 1,
        merge_threshold: int | None = None,
        sstable_format: str = "binary",
        shard_index: bool = False,
        probe_workers: int = 1,
    ) -> None:
        #: Observability sinks; None falls back to the module defaults.
        #: A freshly created substrate inherits them; an injected one
        #: keeps whatever it was built with.
        self.registry = registry
        self.tracer = tracer
        self.data_dir = Path(data_dir) if data_dir is not None else None
        if hbase is not None:
            self.hbase = hbase
        else:
            cluster_kwargs: dict[str, Any] = {}
            if split_threshold is not None:
                cluster_kwargs["split_threshold"] = split_threshold
            self.hbase = HBaseCluster(
                num_region_servers=num_region_servers,
                registry=registry,
                tracer=tracer,
                chaos=chaos,
                data_dir=None if self.data_dir is None else self.data_dir / "hbase",
                group_commit=group_commit,
                replication=replication,
                merge_threshold=merge_threshold,
                sstable_format=sstable_format,
                **cluster_kwargs,
            )
        #: Whether writes persist (the substrate owns the actual files).
        self._durable = self.hbase.data_dir is not None
        self.pushdown = pushdown
        restored = False
        try:
            self.table = self.hbase.create_table(TABLE_NAME, (FAMILY,))
        except TableExistsError:
            # A restored substrate already carries the table: this is a
            # reopen, so recover generation/normalizers/index below.
            self.table = self.hbase.table(TABLE_NAME)
            restored = True
        #: Coarse store-level lock: one writer *or* one multi-row read at
        #: a time, the atomicity a real HBase deployment gets from
        #: row-level locks plus the matcher's single-probe discipline.
        #: Reentrant so composed stage scans stay deadlock-free, and held
        #: across a put's three rows + normalizer read-modify-write so
        #: concurrent serving workers never interleave half-written jobs.
        self._lock = threading.RLock()
        self._normalizers: dict[tuple[str, str], MinMaxNormalizer] = {
            key: MinMaxNormalizer()
            for key in (
                ("map", "flow"),
                ("map", "cost"),
                ("reduce", "flow"),
                ("reduce", "cost"),
            )
        }
        if scan_batch < 1:
            raise ValueError("scan_batch must be at least 1")
        self.scan_batch = scan_batch
        self.enable_index = enable_index
        #: Partitioned (per-region) vs flat match index.
        self.shard_index = shard_index
        if probe_workers < 1:
            raise ValueError("probe_workers must be at least 1")
        #: Thread fan-out of sharded-index partition probes (1 = the
        #: sequential scatter-gather; any width is bit-identical).
        self.probe_workers = probe_workers
        #: Monotone write version: bumped under the lock on every
        #: put/delete.  The match index and the normalizer cache compare
        #: against it to decide whether their snapshots are still live.
        self._generation = 0
        self._match_index: "MatchIndex | None" = None
        #: Per-generation snapshot of the persisted ``Meta/__normalizers__``
        #: row, so a probe's four stage scans re-read it at most once per
        #: store version instead of once per stage.
        self._normalizer_cache: tuple[int, dict[str, MinMaxNormalizer]] | None = None
        if restored:
            self._recover_state()

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def put(
        self,
        profile: JobProfile,
        static: StaticFeatures,
        job_id: str | None = None,
    ) -> str:
        """Store one job's profile and features; returns its job id."""
        registry = get_registry(self.registry)
        tracer = get_tracer(self.tracer)
        with tracer.span("pstorm.store.put", job=profile.job_name):
            with self._lock, self._write_batch():
                job_id = self._put_inner(profile, static, job_id)
        registry.counter(
            "pstorm_store_puts_total", "profiles written to the store"
        ).inc()
        return job_id

    @contextmanager
    def _write_batch(self) -> Iterator[None]:
        """Commit one logical write at a single WAL fsync point.

        A put touches three data rows plus the Meta row — dozens of
        substrate cell writes.  In durable mode this defers every
        region store's WAL sync (and any threshold flush) to scope
        exit, so the whole multi-row write becomes one group-committed
        batch: after a crash it is either entirely present or entirely
        absent.  The atomicity unit is per region store; the paper's
        single-region deployment (§6) makes that the whole table — a
        store split across regions commits per region instead.
        """
        if not self._durable:
            yield
            return
        with ExitStack() as stack:
            for region, __ in self.hbase.catalog.regions_of(TABLE_NAME):
                stack.enter_context(region.store.deferred())
            yield
        # Splits/merges triggered mid-batch were queued (committing one
        # inside the deferred scopes would tear this logical write across
        # a topology swap); commit them now, past the fsync point and
        # still under the store lock so no probe sees a half-made move.
        self.hbase.run_pending_maintenance()

    def _put_inner(
        self,
        profile: JobProfile,
        static: StaticFeatures,
        job_id: str | None,
    ) -> str:
        if job_id is None:
            job_id = f"{profile.job_name}@{profile.dataset_name}"

        dynamic: dict[str, Any] = {"INPUT_BYTES": profile.input_bytes}
        mp = profile.map_profile
        for name in MAP_DATA_FLOW_FEATURES:
            dynamic[name] = float(mp.data_flow[name])
        for name, column in zip(MAP_COST_FEATURES, MAP_COST_COLUMNS):
            dynamic[column] = float(mp.cost_factors.get(name, 0.0))
        rp = profile.reduce_profile
        dynamic["HAS_REDUCE"] = bool(rp is not None)
        if rp is not None:
            for name in REDUCE_DATA_FLOW_FEATURES:
                dynamic[name] = float(rp.data_flow[name])
            for name, column in zip(REDUCE_COST_FEATURES, RED_COST_COLUMNS):
                dynamic[column] = float(rp.cost_factors.get(name, 0.0))
        self.table.put_row(DYNAMIC_PREFIX + job_id, FAMILY, dynamic)

        self.table.put_row(STATIC_PREFIX + job_id, FAMILY, static.to_dict())
        self.table.put(PROFILE_PREFIX + job_id, FAMILY, "payload", profile.to_dict())

        self._update_normalizers(dynamic, rp is not None)
        self._persist_normalizers()
        self._generation += 1
        self._persist_generation()
        if self._match_index is not None:
            self._match_index.on_put(
                job_id, dict(dynamic), static.to_dict(), self._generation
            )
        return job_id

    def _update_normalizers(self, dynamic: Mapping[str, Any], has_reduce: bool) -> None:
        self._normalizers[("map", "flow")].update(
            [dynamic[name] for name in MAP_FLOW_COLUMNS]
        )
        self._normalizers[("map", "cost")].update(
            [dynamic[name] for name in MAP_COST_COLUMNS]
        )
        if has_reduce:
            self._normalizers[("reduce", "flow")].update(
                [dynamic[name] for name in RED_FLOW_COLUMNS]
            )
            self._normalizers[("reduce", "cost")].update(
                [dynamic[name] for name in RED_COST_COLUMNS]
            )

    def _persist_normalizers(self) -> None:
        for (side, kind), normalizer in self._normalizers.items():
            self.table.put(_META_ROW, FAMILY, f"{side}.{kind}", normalizer.to_dict())

    def _persist_generation(self) -> None:
        """Record the write generation in the Meta row (durable mode only).

        Restores read it back so cache-coherence generations keep
        counting from where the crashed process stopped instead of
        restarting at zero (which would alias old snapshots as fresh).
        """
        if self._durable:
            self.table.put(_META_ROW, FAMILY, "__generation__", self._generation)

    def delete(self, job_id: str) -> None:
        """Remove one job's rows (min/max bounds are kept; they only grow)."""
        with self._lock, self._write_batch():
            for prefix in (DYNAMIC_PREFIX, STATIC_PREFIX, PROFILE_PREFIX):
                self.table.delete_row(prefix + job_id)
            self._generation += 1
            self._persist_generation()
            if self._match_index is not None:
                self._match_index.on_delete(job_id, self._generation)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def job_ids(self) -> list[str]:
        """All stored job ids, in key order."""
        with self._lock:
            ids = []
            for row_key, __ in self.table.scan(
                scan_filter=PrefixFilter(PROFILE_PREFIX),
                pushdown=self.pushdown,
                batch=self.scan_batch,
            ):
                ids.append(row_key[len(PROFILE_PREFIX):])
            return ids

    def __len__(self) -> int:
        return len(self.job_ids())

    def __contains__(self, job_id: str) -> bool:
        with self._lock:
            return self.table.get(PROFILE_PREFIX + job_id) is not None

    def get_profile(self, job_id: str) -> JobProfile:
        with self._lock:
            row = self.table.get(PROFILE_PREFIX + job_id)
        if row is None:
            raise KeyError(f"no profile stored for {job_id!r}")
        return JobProfile.from_dict(row[FAMILY]["payload"])

    def get_static(self, job_id: str) -> StaticFeatures:
        with self._lock:
            row = self.table.get(STATIC_PREFIX + job_id)
        if row is None:
            raise KeyError(f"no static features stored for {job_id!r}")
        return StaticFeatures.from_dict(row[FAMILY])

    def get_dynamic(self, job_id: str) -> dict[str, Any]:
        with self._lock:
            row = self.table.get(DYNAMIC_PREFIX + job_id)
        if row is None:
            raise KeyError(f"no dynamic features stored for {job_id!r}")
        return dict(row[FAMILY])

    def normalizer(self, side: str, kind: str) -> MinMaxNormalizer:
        """Current min/max bounds for one (side, 'flow'|'cost') vector."""
        return self._normalizers[(side, kind)]

    # ------------------------------------------------------------------
    # Versioning, cached normalizer loads, and the columnar match index
    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        """Monotone write version (puts + deletes), for cache coherence."""
        with self._lock:
            return self._generation

    @property
    def topology_version(self) -> int:
        """The substrate's region-topology version (splits/merges/moves).

        The sharded match index compares against it: a bump means the
        partition map is stale and the next probe repartitions.
        """
        return self.hbase.topology_version

    def load_normalizer(self, side: str, kind: str) -> MinMaxNormalizer:
        """The *persisted* min/max bounds, cached per store generation.

        Reads the ``Meta/__normalizers__`` row at most once per write
        version: every matcher stage of every probe between two writes
        shares one substrate ``get``.  A put rewrites the row *and* bumps
        the generation, so an updated normalizer invalidates the cache
        by construction.  Missing row/cell (nothing stored yet) yields an
        empty normalizer, mirroring the in-memory default.
        """
        with self._lock:
            cached = self._normalizer_cache
            if cached is None or cached[0] != self._generation:
                row = self.table.get(_META_ROW)
                cells = {} if row is None else row[FAMILY]
                loaded = {
                    name: MinMaxNormalizer.from_dict(payload)
                    for name, payload in cells.items()
                    if not name.startswith("__")  # bookkeeping cells
                }
                self._normalizer_cache = (self._generation, loaded)
                get_registry(self.registry).counter(
                    "pstorm_store_normalizer_loads_total",
                    "Meta/__normalizers__ row fetches (cache misses)",
                ).inc()
            return self._normalizer_cache[1].get(
                f"{side}.{kind}", MinMaxNormalizer()
            )

    def match_index(self) -> Any:
        """The columnar match index (lazily built), or None if disabled.

        One index per store: serving workers that share this store (via
        ``ResilientProfileStore``/``MaintainedStore`` delegation) probe
        the same structure.  With ``shard_index`` on this is a
        :class:`~repro.core.shard_index.ShardedMatchIndex` (one
        partition per region, probed scatter-gather); both answer the
        same probe-stage interface.
        """
        if not self.enable_index:
            return None
        with self._lock:
            if self._match_index is None:
                if self.shard_index:
                    from .shard_index import ShardedMatchIndex

                    self._match_index = ShardedMatchIndex(
                        self,
                        registry=self.registry,
                        tracer=self.tracer,
                        probe_workers=self.probe_workers,
                    )
                else:
                    from .match_index import MatchIndex

                    self._match_index = MatchIndex(
                        self, registry=self.registry, tracer=self.tracer
                    )
            return self._match_index

    def refresh_match_index(self) -> None:
        """Bring an already-created match index up to the current writes.

        No-op when the index is disabled or has never been probed —
        refreshing is for keeping a *hot* index hot (e.g. the serving
        layer calls this alongside its result-cache invalidation on
        ``remember()``), not for building one eagerly.
        """
        with self._lock:
            index = self._match_index
        if index is not None:
            index.ensure_fresh()

    def index_snapshot(
        self,
    ) -> tuple[int, dict[str, dict[str, Any]], dict[str, dict[str, Any]]]:
        """A write-consistent snapshot for (re)building the match index.

        Returns ``(generation, dynamic_rows, static_rows)`` keyed by job
        id, read under the store lock so no put can interleave between
        the two range scans.
        """
        with self._lock:
            generation = self._generation
            dynamic = {
                row_key[len(DYNAMIC_PREFIX):]: dict(row[FAMILY])
                for row_key, row in self.table.scan(
                    scan_filter=PrefixFilter(DYNAMIC_PREFIX),
                    pushdown=self.pushdown,
                    batch=self.scan_batch,
                )
            }
            static = {
                row_key[len(STATIC_PREFIX):]: dict(row[FAMILY])
                for row_key, row in self.table.scan(
                    scan_filter=PrefixFilter(STATIC_PREFIX),
                    pushdown=self.pushdown,
                    batch=self.scan_batch,
                )
            }
        return generation, dynamic, static

    def sharded_index_snapshot(
        self,
    ) -> tuple[
        int,
        int,
        list[tuple[str, str, dict[str, dict[str, Any]], dict[str, dict[str, Any]]]],
    ]:
        """A write-consistent snapshot partitioned by region key range.

        Returns ``(generation, topology_version, partitions)`` where each
        partition is ``(start, stop, dynamic_rows, static_rows)`` — one
        per region whose range intersects the Dynamic key range, in key
        order, holding exactly the jobs whose ``Dynamic/`` row that
        region owns (the partition's static rows follow its job ids,
        wherever the ``Static/`` rows physically live).  Rows and the
        topology are read under the store lock, so the partition map and
        its contents can never disagree.
        """
        with self._lock:
            generation, dynamic, static = self.index_snapshot()
            topology_version = self.hbase.topology_version
            ranges: list[tuple[str, str]] = []
            for region, __ in self.hbase.catalog.regions_of(TABLE_NAME):
                start = max(region.start_key, DYNAMIC_PREFIX)
                stop = (
                    DYNAMIC_STOP
                    if region.end_key is None
                    else min(region.end_key, DYNAMIC_STOP)
                )
                if start < stop:
                    ranges.append((start, stop))
        partitions = []
        for start, stop in ranges:
            members = {
                job_id: columns
                for job_id, columns in dynamic.items()
                if start <= DYNAMIC_PREFIX + job_id < stop
            }
            statics = {
                job_id: static[job_id] for job_id in members if job_id in static
            }
            partitions.append((start, stop, members, statics))
        return generation, topology_version, partitions

    # ------------------------------------------------------------------
    # Durability: snapshots and restore
    # ------------------------------------------------------------------
    @property
    def _checkpoint_path(self) -> Path | None:
        if self.data_dir is None:
            return None
        return self.data_dir / "index_checkpoint.json"

    def _region_flush_counts(self) -> dict[str, int]:
        """Per-region flush counters, keyed by region directory name.

        A snapshot records them; a restore compares.  Equality means no
        region flushed since the checkpoint, so the WAL tails are
        exactly the post-checkpoint writes — the condition under which
        the restore can warm the index from tails instead of rebuilding.
        """
        counts: dict[str, int] = {}
        for region, __ in self.hbase.catalog.regions_of(TABLE_NAME):
            store = region.store
            name = "mem" if store.data_dir is None else store.data_dir.name
            counts[name] = store.flushes
        return counts

    def compact(self, force: bool = True) -> dict[str, Any]:
        """Fully compact every region store; returns a layout summary.

        Each unique region store is flushed and force-compacted into
        one deep run, which rewrites every surviving table in the
        substrate's current ``sstable_format`` — so on a durable store
        this is the legacy-JSON → binary-block migration
        (``repro compact`` is the CLI surface).  ``force=False`` skips
        stores already down to a single table.

        The summary reports per-level table/block counts across all
        regions, the on-disk format tally, and how many legacy JSON
        tables were rewritten to binary.
        """
        with self._lock:
            stores: list[Any] = []
            seen: set[int] = set()
            for region, __ in self.hbase.catalog.regions_of(TABLE_NAME):
                if id(region.store) not in seen:
                    seen.add(id(region.store))
                    stores.append(region.store)
            migrated = 0
            for store in stores:
                legacy = sum(
                    1
                    for run in store.levels
                    for table in run
                    if table.storage_format == "json"
                )
                store.flush()
                store.compact(force=force)
                if store.sstable_format == "binary":
                    migrated += legacy
            # Re-persist the cluster meta: a pre-upgrade directory that
            # was just migrated must record the format it now holds.
            self.hbase._write_meta()
            level_stats: dict[int, dict[str, int]] = {}
            formats: dict[str, int] = {}
            for store in stores:
                for level, run in enumerate(store.levels):
                    for table in run:
                        stats = level_stats.setdefault(
                            level, {"tables": 0, "blocks": 0}
                        )
                        stats["tables"] += 1
                        stats["blocks"] += table.num_blocks
                        formats[table.storage_format] = (
                            formats.get(table.storage_format, 0) + 1
                        )
        get_registry(self.registry).counter(
            "pstorm_store_compactions_total", "forced full-store compactions"
        ).inc()
        return {
            "regions": len(stores),
            "migrated_tables": migrated,
            "tables": sum(stats["tables"] for stats in level_stats.values()),
            "blocks": sum(stats["blocks"] for stats in level_stats.values()),
            "formats": formats,
            "levels": [
                {"level": level, **level_stats[level]}
                for level in sorted(level_stats)
            ],
        }

    def snapshot(self) -> Path:
        """Checkpoint the store: flush every region, persist the index.

        Flushes all memstores (SSTables + manifests hit disk, WALs
        truncate), then atomically writes ``index_checkpoint.json`` — a
        write-consistent ``(generation, dynamic, static)`` image of
        exactly the rows the match index mirrors, plus the per-region
        flush counters.  A restore replays only the WAL tail written
        after this point, so restart cost stays flat in store size.
        """
        path = self._checkpoint_path
        if path is None:
            raise ValueError("snapshot() requires a data_dir-backed store")
        with self._lock:
            self.hbase.flush_all()
            chaos = self.hbase.chaos
            if chaos is not None:
                # The mid-snapshot kill point: flushed but not yet
                # checkpointed — a restore must survive that tear.
                chaos.on_operation("snapshot")
            generation, dynamic, static = self.index_snapshot()
            payload = {
                "version": 1,
                "generation": generation,
                "flushes": self._region_flush_counts(),
                "dynamic": dynamic,
                "static": static,
            }
            tmp = path.with_name(path.name + ".tmp")
            tmp.write_text(json.dumps(payload, sort_keys=True))
            os.replace(tmp, path)
        return path

    @classmethod
    def restore(cls, data_dir: Path | str, **kwargs: Any) -> "ProfileStore":
        """Reopen a durable store from *data_dir* (explicit-intent alias
        for ``ProfileStore(data_dir=...)`` on an existing directory)."""
        return cls(data_dir=data_dir, **kwargs)

    @staticmethod
    def _latest_columns(row: Mapping[str, Any]) -> dict[str, Any]:
        """Latest-version column view of one raw region-store row."""
        columns = row.get(FAMILY, {})
        return {qual: cells[-1].value for qual, cells in columns.items()}

    def _recover_state(self) -> None:
        """Rebuild in-memory state from a restored substrate.

        Recovers the write generation and normalizer bounds from the
        Meta row, then warms the match index from the snapshot
        checkpoint (if one exists) plus the WAL tails — the first probe
        after a restart should serve without a full rebuild.
        """
        row = self.table.get(_META_ROW)
        cells: Mapping[str, Any] = {} if row is None else row[FAMILY]
        self._generation = int(cells.get("__generation__", 0))
        for key in self._normalizers:
            payload = cells.get(f"{key[0]}.{key[1]}")
            if payload:
                self._normalizers[key] = MinMaxNormalizer.from_dict(payload)
        if self.enable_index and self._checkpoint_path is not None:
            checkpoint = None
            try:
                checkpoint = json.loads(self._checkpoint_path.read_text())
            except FileNotFoundError:
                pass
            except (OSError, json.JSONDecodeError):
                checkpoint = None  # torn checkpoint: fall back to rebuild
            if checkpoint is not None:
                index = self.match_index()
                assert index is not None
                index.load_checkpoint(
                    int(checkpoint.get("generation", 0)),
                    checkpoint.get("dynamic", {}),
                    checkpoint.get("static", {}),
                )
                self._warm_index_tail(index, checkpoint)
        get_registry(self.registry).counter(
            "snapshot_restores_total", "durable profile-store restores from disk"
        ).inc()

    def _warm_index_tail(
        self, index: "MatchIndex", checkpoint: Mapping[str, Any]
    ) -> None:
        """Feed post-checkpoint WAL-tail writes to the index as pending ops.

        Sound only when the tails are *complete* — no region flushed
        since the checkpoint (flush counters equal) and the tail op
        count equals the generation gap.  Anything else invalidates the
        index so the first probe rebuilds from a store snapshot.
        """
        checkpoint_generation = int(checkpoint.get("generation", 0))
        if checkpoint_generation > self._generation:
            index.invalidate()  # checkpoint from the future: distrust it
            return
        if checkpoint.get("flushes") != self._region_flush_counts():
            index.invalidate()
            return
        gap = self._generation - checkpoint_generation
        if gap == 0:
            return  # checkpoint is already current
        puts: dict[str, dict[str, Any]] = {}
        statics: dict[str, dict[str, Any]] = {}
        kind: dict[str, str] = {}
        order: dict[str, tuple[int, int]] = {}
        for position, (region, __) in enumerate(
            self.hbase.catalog.regions_of(TABLE_NAME)
        ):
            for record in region.store.wal:
                if record.key.startswith(STATIC_PREFIX):
                    if record.op == "put":
                        job_id = record.key[len(STATIC_PREFIX):]
                        statics[job_id] = self._latest_columns(record.value)
                    continue
                if not record.key.startswith(DYNAMIC_PREFIX):
                    continue
                job_id = record.key[len(DYNAMIC_PREFIX):]
                if record.op == "put":
                    # One logical put is many per-cell records on the
                    # same row; the last carries the complete row.
                    puts[job_id] = self._latest_columns(record.value)
                    if kind.get(job_id) != "put":
                        order[job_id] = (position, record.sequence)
                    kind[job_id] = "put"
                else:
                    kind[job_id] = "delete"
                    order[job_id] = (position, record.sequence)
        if len(kind) != gap:
            # Coalesced ops (e.g. put-then-delete of one id): the tail
            # can't be mapped one-op-per-generation, so don't pretend.
            index.invalidate()
            return
        generation = checkpoint_generation
        for job_id in sorted(kind, key=lambda name: order[name]):
            generation += 1
            if kind[job_id] == "put":
                index.on_put(
                    job_id, puts.get(job_id, {}), statics.get(job_id), generation
                )
            else:
                index.on_delete(job_id, generation)

    def bulk_rows(self, prefix: str) -> dict[str, dict[str, Any]]:
        """All rows under *prefix* in one batched scan, keyed by job id."""
        with self._lock:
            return {
                row_key[len(prefix):]: dict(row[FAMILY])
                for row_key, row in self.table.scan(
                    scan_filter=PrefixFilter(prefix),
                    pushdown=self.pushdown,
                    batch=self.scan_batch,
                )
            }

    def bulk_profiles(self) -> dict[str, JobProfile]:
        """Every stored profile, fetched in one batched scan."""
        return {
            job_id: JobProfile.from_dict(columns["payload"])
            for job_id, columns in self.bulk_rows(PROFILE_PREFIX).items()
        }

    def bulk_statics(self) -> dict[str, StaticFeatures]:
        """Every stored static-feature row, fetched in one batched scan."""
        return {
            job_id: StaticFeatures.from_dict(columns)
            for job_id, columns in self.bulk_rows(STATIC_PREFIX).items()
        }

    # ------------------------------------------------------------------
    # Filtered scans (one per matcher stage)
    # ------------------------------------------------------------------
    def scan_job_ids(
        self,
        prefix: str,
        extra_filter: Filter | None = None,
        stage: str = "scan",
    ) -> list[str]:
        """Job ids of rows under *prefix* passing *extra_filter*."""
        registry = get_registry(self.registry)
        tracer = get_tracer(self.tracer)
        began = perf_counter()
        with tracer.span("pstorm.store.probe", stage=stage, prefix=prefix):
            filters: list[Filter] = [PrefixFilter(prefix)]
            if extra_filter is not None:
                filters.append(extra_filter)
            result = []
            with self._lock:
                for row_key, __ in self.table.scan(
                    scan_filter=FilterList(filters),
                    pushdown=self.pushdown,
                    batch=self.scan_batch,
                ):
                    result.append(row_key[len(prefix):])
        registry.counter(
            "pstorm_store_probe_scans_total",
            "filtered scans issued by matcher stages",
            labels={"stage": stage},
        ).inc()
        registry.histogram(
            "pstorm_store_probe_seconds",
            "wall-clock latency of one filtered store scan",
            labels={"stage": stage},
            buckets=LATENCY_BUCKETS,
        ).observe(perf_counter() - began)
        registry.histogram(
            "pstorm_store_candidates",
            "candidate-set size surviving one store stage",
            labels={"stage": stage},
            buckets=COUNT_BUCKETS,
        ).observe(len(result))
        return result

    def euclidean_stage(
        self,
        side: str,
        kind: str,
        probe: list[float],
        threshold: float,
        candidates: list[str] | None = None,
    ) -> list[str]:
        """Run one normalized-Euclidean filter stage server-side."""
        columns = list(_columns_for(side, kind))
        with self._lock:
            normalizer = self.load_normalizer(side, kind)
            if normalizer.num_features == 0:
                return []
            stage = NormalizedEuclideanFilter(
                columns=columns,
                probe=list(probe),
                minimums=list(normalizer.minimums),
                maximums=list(normalizer.maximums),
                threshold=threshold,
            )
        extra: Filter = stage
        if candidates is not None:
            extra = FilterList([RowKeySetFilter(candidates), stage])
        return self.scan_job_ids(
            DYNAMIC_PREFIX, extra, stage=f"euclidean-{side}-{kind}"
        )

    def cfg_stage(
        self, side: str, probe_cfg: ControlFlowGraph, candidates: list[str]
    ) -> list[str]:
        """Run the CFG-equality filter stage server-side."""
        column = "MAP_CFG" if side == "map" else "RED_CFG"
        stage = CfgEqualityFilter(column=column, probe_cfg=probe_cfg.to_dict())
        extra = FilterList([RowKeySetFilter(candidates), stage])
        return self.scan_job_ids(STATIC_PREFIX, extra, stage=f"cfg-{side}")

    def jaccard_stage(
        self, probe: Mapping[str, str], threshold: float, candidates: list[str]
    ) -> list[str]:
        """Run the Jaccard filter stage server-side."""
        stage = JaccardThresholdFilter(probe=probe, threshold=threshold)
        extra = FilterList([RowKeySetFilter(candidates), stage])
        return self.scan_job_ids(STATIC_PREFIX, extra, stage="jaccard")
