"""A resilient client wrapper around the profile store.

:class:`ResilientProfileStore` is duck-type compatible with
:class:`~repro.core.store.ProfileStore` (the matcher cannot tell them
apart) but routes every substrate-touching operation through
:func:`repro.chaos.retry.call_with_retry`: transient errors and
server-unavailability are retried with exponential backoff under the
policy's attempt and deadline budgets, and only
:class:`~repro.chaos.retry.StoreUnavailableError` escapes — the signal
``PStorM.submit`` turns into graceful degradation.

Retried operations are safe to replay: scans materialize their result
list before returning, and a replayed ``put`` appends new cell versions
whose latest-view reads are identical (HBase-style idempotence).

When the wrapped store's substrate carries a fault injector, the client
shares its virtual clock, so injected slow responses consume the
deadline budget exactly as real slowness would.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, TypeVar

from ..analysis.cfg import ControlFlowGraph
from ..analysis.static_features import StaticFeatures
from ..chaos.retry import RetryPolicy, VirtualClock, call_with_retry
from ..hbase import Filter
from ..observability import MetricsRegistry, get_registry
from ..starfish.profile import JobProfile
from .store import ProfileStore

__all__ = ["ResilientProfileStore"]

_T = TypeVar("_T")


class ResilientProfileStore:
    """Retry/backoff/deadline shim over a :class:`ProfileStore`.

    Attributes:
        store: the wrapped store.
        policy: budgets applied per logical operation.
        clock: deadline clock; defaults to the substrate injector's
            virtual clock when one is attached, else a fresh one.
    """

    def __init__(
        self,
        store: ProfileStore,
        policy: RetryPolicy | None = None,
        clock: VirtualClock | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.store = store
        self.policy = policy if policy is not None else RetryPolicy()
        if clock is None:
            chaos = getattr(getattr(store, "hbase", None), "chaos", None)
            clock = chaos.clock if chaos is not None else VirtualClock()
        self.clock = clock
        #: Observability sink; None falls back to the wrapped store's.
        self.registry = (
            registry if registry is not None else getattr(store, "registry", None)
        )

    # ------------------------------------------------------------------
    def _call(self, op: str, fn: Callable[..., _T], *args: Any, **kwargs: Any) -> _T:
        return call_with_retry(
            lambda: fn(*args, **kwargs),
            self.policy,
            clock=self.clock,
            op=op,
            registry=get_registry(self.registry),
        )

    # -- writes --------------------------------------------------------
    def put(
        self,
        profile: JobProfile,
        static: StaticFeatures,
        job_id: str | None = None,
    ) -> str:
        return self._call("put", self.store.put, profile, static, job_id)

    def delete(self, job_id: str) -> None:
        return self._call("delete", self.store.delete, job_id)

    # -- reads ---------------------------------------------------------
    def job_ids(self) -> list[str]:
        return self._call("job_ids", self.store.job_ids)

    def __len__(self) -> int:
        return self._call("len", self.store.__len__)

    def __contains__(self, job_id: str) -> bool:
        return self._call("contains", self.store.__contains__, job_id)

    def get_profile(self, job_id: str) -> JobProfile:
        return self._call("get_profile", self.store.get_profile, job_id)

    def get_static(self, job_id: str) -> StaticFeatures:
        return self._call("get_static", self.store.get_static, job_id)

    def get_dynamic(self, job_id: str) -> dict[str, Any]:
        return self._call("get_dynamic", self.store.get_dynamic, job_id)

    def bulk_rows(self, prefix: str) -> dict[str, dict[str, Any]]:
        return self._call("scan", self.store.bulk_rows, prefix)

    def bulk_profiles(self) -> dict[str, JobProfile]:
        return self._call("scan", self.store.bulk_profiles)

    def bulk_statics(self) -> dict[str, StaticFeatures]:
        return self._call("scan", self.store.bulk_statics)

    # -- match index ---------------------------------------------------
    def refresh_match_index(self) -> None:
        # The refresh replays the snapshot scan on transient faults; a
        # still-unavailable substrate surfaces StoreUnavailableError to
        # the caller (the serving layer logs-and-continues — the matcher
        # will fall back to the scan path until the index recovers).
        return self._call("scan", self.store.refresh_match_index)

    # -- filtered scans (the matcher's stages) -------------------------
    def scan_job_ids(
        self,
        prefix: str,
        extra_filter: Filter | None = None,
        stage: str = "scan",
    ) -> list[str]:
        return self._call(
            "scan", self.store.scan_job_ids, prefix, extra_filter, stage
        )

    def euclidean_stage(
        self,
        side: str,
        kind: str,
        probe: list[float],
        threshold: float,
        candidates: list[str] | None = None,
    ) -> list[str]:
        return self._call(
            "scan", self.store.euclidean_stage, side, kind, probe, threshold,
            candidates,
        )

    def cfg_stage(
        self, side: str, probe_cfg: ControlFlowGraph, candidates: list[str]
    ) -> list[str]:
        return self._call("scan", self.store.cfg_stage, side, probe_cfg, candidates)

    def jaccard_stage(
        self, probe: Mapping[str, str], threshold: float, candidates: list[str]
    ) -> list[str]:
        return self._call(
            "scan", self.store.jaccard_stage, probe, threshold, candidates
        )

    # ------------------------------------------------------------------
    def __getattr__(self, name: str) -> Any:
        # Everything not wrapped (normalizer, pushdown, hbase, table,
        # tracer, ...) delegates, keeping the wrapper duck-compatible.
        return getattr(self.store, name)

    def __repr__(self) -> str:
        return f"ResilientProfileStore({self.store!r}, policy={self.policy})"
