"""Dataflow-program (workflow) tuning (§7.2.5).

Big-data analyses are rarely single MR jobs: Pig/Hive scripts compile to
*chains* where each stage consumes its predecessor's output.  The thesis
leaves workflow tuning as future work; this module implements the natural
extension: execute a chain on the simulator, deriving each stage's input
dataset from the previous stage's (sampled) output — record samples from
actually running the full map/combine/reduce pipeline, nominal size from
the executed stage's aggregate reduce output — and tune every stage
through PStorM before it runs.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from ..hadoop.config import JobConfiguration
from ..hadoop.dataset import Dataset
from ..hadoop.job import MapReduceJob
from ..hadoop.tasks import JobExecution
from .pstorm import PStorM, SubmissionResult

__all__ = ["ChainStage", "StageResult", "WorkflowResult", "run_chain"]


@dataclass(frozen=True)
class ChainStage:
    """One stage of a workflow.

    Attributes:
        job: the MR job this stage runs.
        input_from: ``"previous"`` to consume the prior stage's output,
            ``"source"`` to re-read the workflow's initial dataset (e.g.
            FIM's candidate-counting phases re-scan the transactions).
    """

    job: MapReduceJob
    input_from: str = "previous"

    def __post_init__(self) -> None:
        if self.input_from not in ("previous", "source"):
            raise ValueError("input_from must be 'previous' or 'source'")


@dataclass
class StageResult:
    """Outcome of one executed stage."""

    stage: ChainStage
    dataset: Dataset
    submission: SubmissionResult

    @property
    def runtime_seconds(self) -> float:
        return self.submission.runtime_seconds

    @property
    def output_bytes(self) -> int:
        return sum(
            t.output_bytes for t in self.submission.execution.reduce_tasks
        )


@dataclass
class WorkflowResult:
    """Outcome of a whole chain run."""

    stages: list[StageResult] = field(default_factory=list)

    @property
    def total_runtime_seconds(self) -> float:
        """End-to-end chain latency (stages run back to back)."""
        return sum(stage.runtime_seconds for stage in self.stages)

    @property
    def total_sampling_seconds(self) -> float:
        return sum(stage.submission.sampling_seconds for stage in self.stages)

    def matched_stages(self) -> int:
        return sum(1 for stage in self.stages if stage.submission.matched)


class _MaterializedSource:
    """Record source replaying a fixed sample (a stage's sampled output)."""

    def __init__(self, pairs: Sequence[tuple[Any, Any]]) -> None:
        if not pairs:
            raise ValueError("a derived dataset needs at least one record")
        self._pairs = list(pairs)

    def generate(self, split_index: int, rng: np.random.Generator) -> list:
        del split_index, rng  # the sample is fixed; splits replay it
        return list(self._pairs)


def _stage_output_sample(
    job: MapReduceJob, dataset: Dataset, engine, max_pairs: int = 600
) -> list[tuple[Any, Any]]:
    """Sample output records of one stage: run the full sampled pipeline."""
    measurement = engine.measure_split(job, dataset, 0)
    intermediate = measurement.intermediate_pairs(combined=job.has_combiner)
    if job.reducer is None:
        return list(intermediate)[:max_pairs]
    groups: dict[Any, list[Any]] = defaultdict(list)
    for key, value in intermediate:
        groups[key].append(value)
    context = job.make_context()
    for key, values in groups.items():
        job.reducer(key, values, context)
    return context.pairs[:max_pairs]


def _derived_dataset(
    name: str,
    pairs: Sequence[tuple[Any, Any]],
    nominal_bytes: int,
    split_bytes: int,
) -> Dataset:
    return Dataset(
        name=name,
        nominal_bytes=max(1, nominal_bytes),
        source=_MaterializedSource(pairs),
        split_bytes=split_bytes,
        seed=0,
    )


def run_chain(
    pstorm: PStorM,
    stages: Sequence[ChainStage],
    source: Dataset,
    config: JobConfiguration | None = None,
    seed: int = 0,
) -> WorkflowResult:
    """Run a workflow, tuning every stage through PStorM.

    Each stage is *submitted* to PStorM (1-task sample, store lookup, CBO
    on a hit; instrumented run + store insert on a miss), so a chain run
    twice gets every stage tuned the second time — and chains sharing
    stages (FIM's counting phases look like word count) benefit from each
    other's history.
    """
    if not stages:
        raise ValueError("a workflow needs at least one stage")

    result = WorkflowResult()
    previous_output: Dataset | None = None
    for index, stage in enumerate(stages):
        if stage.input_from == "source" or previous_output is None:
            dataset = source
        else:
            dataset = previous_output

        submission = pstorm.submit(stage.job, dataset, config=config, seed=seed + index)
        stage_result = StageResult(stage=stage, dataset=dataset, submission=submission)
        result.stages.append(stage_result)

        # Derive the next stage's input from this stage's output.
        output_pairs = _stage_output_sample(stage.job, dataset, pstorm.engine)
        output_bytes = stage_result.output_bytes
        if output_pairs and output_bytes > 0:
            previous_output = _derived_dataset(
                name=f"{stage.job.name}-output",
                pairs=output_pairs,
                nominal_bytes=output_bytes,
                split_bytes=dataset.split_bytes,
            )
        else:
            previous_output = None
    return result
