"""The PStorM daemon: the submission workflow of Chapter 3 (Fig 1.2).

For each submitted job: run one sampled map task (plus its reducers) with
the Starfish profiler on, build the mixed feature vector, probe the store.
On a hit, hand the matched (possibly composite) profile to the Starfish
CBO and run the job with the recommended configuration, profiler off.  On
a miss, run the job with its submitted configuration, profiler *on*, and
store the collected profile for future matching.

The store probe rides on a :class:`ResilientProfileStore` (retry +
backoff + deadline budgets), and when even that gives up the daemon
*degrades* instead of dying: the Appendix-B rule-based optimizer tunes
the job from the 1-task sample profile alone, falling back to the
submitted configuration if the RBO itself fails.  The downgrade is
recorded on the :class:`SubmissionResult` and in the metrics, never
raised — a long-lived tuning service must survive its store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..chaos.retry import RetryPolicy, StoreUnavailableError
from ..hadoop.cluster import ClusterSpec
from ..hadoop.config import JobConfiguration
from ..hadoop.dataset import Dataset
from ..hadoop.engine import HadoopEngine
from ..hadoop.job import MapReduceJob
from ..hadoop.tasks import JobExecution
from ..observability import (
    SIM_SECONDS_BUCKETS,
    MetricsRegistry,
    Tracer,
    get_registry,
    get_tracer,
)
from ..observability.export import registry_to_dict
from ..starfish.cbo import CostBasedOptimizer
from ..starfish.profile import JobProfile
from ..starfish.profiler import StarfishProfiler
from ..starfish.rbo import RuleBasedOptimizer
from ..starfish.sampler import Sampler
from ..starfish.whatif import WhatIfEngine
from ..tuners import TunerContext, make_tuner
from .features import JobFeatures, extract_job_features
from .matcher import MatchOutcome, ProfileMatcher, SideMatch, Stage1Batch
from .resilient import ResilientProfileStore
from .store import ProfileStore

__all__ = ["PStorM", "SubmissionResult", "WireExecution"]


@dataclass(frozen=True)
class WireExecution:
    """Execution summary carried on the wire instead of a full
    :class:`~repro.hadoop.tasks.JobExecution`.

    Deserialized submission results cannot resurrect per-task records
    (those never leave the process), so ``SubmissionResult.from_dict``
    rebuilds this summary view.  It is duck-compatible with the fields
    the serving layer and the result's own properties read:
    ``runtime_seconds``, task counts, input size, and the sampled flag.
    """

    job_name: str
    dataset_name: str
    input_bytes: int
    runtime_seconds: float
    num_map_tasks: int
    num_reduce_tasks: int
    sampled: bool = False


@dataclass(frozen=True)
class SubmissionResult:
    """What happened to one job submission."""

    job_name: str
    dataset_name: str
    matched: bool
    outcome: MatchOutcome
    config: JobConfiguration
    execution: JobExecution
    sampling_seconds: float
    profile_stored_as: str | None
    #: Snapshot of the daemon's metrics registry taken when the
    #: submission finished (``export.registry_to_dict`` form).
    metrics: Mapping[str, Any] | None = None
    #: Whether the submission was served through the graceful-degradation
    #: path (store budget exhausted) rather than the Fig 1.2 workflow.
    degraded: bool = False
    #: Why the downgrade happened: "store-probe" (the match probe gave
    #: up) or "store-put" (the miss path's profile write gave up).
    degradation_reason: str | None = None
    #: Which rung of the degradation ladder produced the configuration:
    #: "rbo" (Appendix-B rules over the 1-task sample) or "default"
    #: (the submitted configuration, when even the RBO failed).
    fallback_path: str | None = None

    @property
    def runtime_seconds(self) -> float:
        return self.execution.runtime_seconds

    @property
    def total_seconds(self) -> float:
        """Job runtime plus the 1-task sampling cost PStorM paid."""
        return self.execution.runtime_seconds + self.sampling_seconds

    # -- wire codec ----------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable wire form of this result.

        The tuning service returns these over its request/response
        boundary.  The matched profile and the metrics snapshot are
        deliberately *not* serialized (profiles stay server-side; metrics
        travel through the export endpoints), and the execution collapses
        to its :class:`WireExecution` summary — everything else round
        trips exactly through :meth:`from_dict`.
        """

        def side(match: SideMatch | None) -> dict[str, Any] | None:
            if match is None:
                return None
            return {
                "side": match.side,
                "job_id": match.job_id,
                "stage": match.stage,
                "funnel": {name: int(count) for name, count in match.funnel.items()},
            }

        execution = self.execution
        return {
            "job_name": self.job_name,
            "dataset_name": self.dataset_name,
            "matched": bool(self.matched),
            "outcome": {
                "map_match": side(self.outcome.map_match),
                "reduce_match": side(self.outcome.reduce_match),
            },
            "config": self.config.to_dict(),
            "execution": {
                "job_name": execution.job_name,
                "dataset_name": execution.dataset_name,
                "input_bytes": int(execution.input_bytes),
                "runtime_seconds": float(execution.runtime_seconds),
                "num_map_tasks": int(execution.num_map_tasks),
                "num_reduce_tasks": int(execution.num_reduce_tasks),
                "sampled": bool(execution.sampled),
            },
            "sampling_seconds": float(self.sampling_seconds),
            "profile_stored_as": self.profile_stored_as,
            "degraded": bool(self.degraded),
            "degradation_reason": self.degradation_reason,
            "fallback_path": self.fallback_path,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SubmissionResult":
        """Rebuild a result from its :meth:`to_dict` wire form.

        The execution comes back as a :class:`WireExecution` summary and
        ``outcome.profile`` is ``None`` (see :meth:`to_dict`); the
        round-trip law is ``from_dict(d).to_dict() == d``.
        """

        def side(data: Mapping[str, Any] | None) -> SideMatch | None:
            if data is None:
                return None
            return SideMatch(
                side=data["side"],
                job_id=data["job_id"],
                stage=data["stage"],
                funnel={name: int(count) for name, count in data["funnel"].items()},
            )

        run = payload["execution"]
        execution = WireExecution(
            job_name=run["job_name"],
            dataset_name=run["dataset_name"],
            input_bytes=int(run["input_bytes"]),
            runtime_seconds=float(run["runtime_seconds"]),
            num_map_tasks=int(run["num_map_tasks"]),
            num_reduce_tasks=int(run["num_reduce_tasks"]),
            sampled=bool(run["sampled"]),
        )
        outcome = payload["outcome"]
        map_match = side(outcome["map_match"])
        if map_match is None:
            raise ValueError("wire payload is missing the map-side match")
        return cls(
            job_name=payload["job_name"],
            dataset_name=payload["dataset_name"],
            matched=bool(payload["matched"]),
            outcome=MatchOutcome(None, map_match, side(outcome["reduce_match"])),
            config=JobConfiguration.from_dict(payload["config"]),
            execution=execution,
            sampling_seconds=float(payload["sampling_seconds"]),
            profile_stored_as=payload["profile_stored_as"],
            degraded=bool(payload["degraded"]),
            degradation_reason=payload["degradation_reason"],
            fallback_path=payload["fallback_path"],
        )


@dataclass
class PStorM:
    """Profile Store and Matcher, wired to a cluster and Starfish.

    Attributes:
        engine: the Hadoop engine (shared with Starfish components).
        store: the profile store; freshly created if omitted.
    """

    engine: HadoopEngine
    store: ProfileStore = field(default_factory=ProfileStore)
    seed: int = 0
    #: Which member of the tuner family optimizes matched profiles on
    #: the hit path: "rbo", "cbo" (the paper's workflow and the
    #: default — bit-identical to the pre-family submit path), "spsa",
    #: "surrogate", or "ensemble".
    tuner: str = "cbo"
    #: Observability sinks; None falls back to the module defaults.  An
    #: explicit registry/tracer is pushed into the store and matcher the
    #: daemon owns (but never into an externally shared engine).
    registry: MetricsRegistry | None = None
    tracer: Tracer | None = None
    #: Retry/backoff/deadline budgets for store operations; None uses
    #: the RetryPolicy defaults.
    retry_policy: RetryPolicy | None = None

    def __post_init__(self) -> None:
        if self.registry is not None and self.store.registry is None:
            self.store.registry = self.registry
        if self.tracer is not None and self.store.tracer is None:
            self.store.tracer = self.tracer
        self.profiler = StarfishProfiler(self.engine)
        self.sampler = Sampler(self.profiler)
        self.whatif = WhatIfEngine(self.engine.cluster)
        self.cbo = CostBasedOptimizer(self.whatif, seed=self.seed)
        self.rbo = RuleBasedOptimizer(self.engine.cluster)
        if isinstance(self.store, ResilientProfileStore):
            self.resilient_store = self.store
        else:
            self.resilient_store = ResilientProfileStore(
                self.store, policy=self.retry_policy, registry=self.registry
            )
        self.matcher = ProfileMatcher(
            self.resilient_store, registry=self.registry, tracer=self.tracer
        )
        # The hit-path optimizer, resolved through the family registry.
        # "cbo" adapts the exact CostBasedOptimizer built above, so the
        # default daemon recommends bit-identically to the pre-family
        # submit path; the surrogate mines the daemon's own store.
        self.tuner_impl = make_tuner(
            self.tuner,
            self.whatif,
            cluster=self.engine.cluster,
            seed=self.seed,
            store=self.resilient_store,
            cbo=self.cbo,
            rbo=self.rbo,
            registry=self.registry,
            tracer=self.tracer,
        )

    # ------------------------------------------------------------------
    def extract_features(
        self, job: MapReduceJob, dataset: Dataset, seed: int = 0
    ) -> tuple[JobFeatures, float]:
        """Run the 1-task sample and build the job's feature vector.

        Returns the features and the sampling run's wall-clock cost.
        """
        __, features, overhead_seconds = self._sample(job, dataset, seed=seed)
        return features, overhead_seconds

    def _sample(
        self, job: MapReduceJob, dataset: Dataset, seed: int = 0
    ) -> tuple[JobProfile, JobFeatures, float]:
        """1-task sample: the sample profile, features, and its cost.

        The sample profile is kept because it is all the degraded path
        has to tune with when the store is unreachable.
        """
        sample = self.sampler.collect(job, dataset, count=1, seed=seed)
        features = extract_job_features(job, dataset, sample.profile, self.engine)
        return sample.profile, features, sample.overhead_seconds

    # ------------------------------------------------------------------
    def remember(
        self,
        job: MapReduceJob,
        dataset: Dataset,
        config: JobConfiguration | None = None,
        seed: int = 0,
    ) -> str:
        """Run *job* fully instrumented and store its profile.

        This is the miss path's bookkeeping, exposed directly so that
        experiments can pre-populate the store (the SD/DD content states).
        """
        with get_tracer(self.tracer).span(
            "pstorm.remember", job=job.name, dataset=dataset.name
        ):
            profile, __ = self.profiler.profile_job(job, dataset, config, seed=seed)
            features, __, = self.extract_features(job, dataset, seed=seed)
            # Retried under the store budgets; remember() is an explicit
            # write API, so an exhausted budget propagates as
            # StoreUnavailableError rather than degrading silently.
            job_id = self.resilient_store.put(profile, features.static)
        get_registry(self.registry).counter(
            "pstorm_remembers_total", "profiles stored via the remember path"
        ).inc()
        return job_id

    # ------------------------------------------------------------------
    def submit(
        self,
        job: MapReduceJob,
        dataset: Dataset,
        config: JobConfiguration | None = None,
        seed: int = 0,
        _presampled: "tuple[JobProfile, JobFeatures, float] | None" = None,
        _stage1: "Stage1Batch | None" = None,
    ) -> SubmissionResult:
        """The Chapter 3 submission workflow."""
        if config is None:
            config = JobConfiguration()
        registry = get_registry(self.registry)
        tracer = get_tracer(self.tracer)
        with tracer.span(
            "pstorm.submit", job=job.name, dataset=dataset.name
        ) as span:
            result = self._submit_inner(
                job, dataset, config, seed,
                presampled=_presampled, stage1=_stage1,
            )
            span.set_attr("matched", result.matched)
            span.set_attr("degraded", result.degraded)

        registry.counter(
            "pstorm_submissions_total", "jobs submitted to the daemon"
        ).inc()
        if result.matched:
            registry.counter(
                "pstorm_submission_hits_total", "submissions served from the store"
            ).inc()
        else:
            registry.counter(
                "pstorm_submission_misses_total",
                "submissions that ran instrumented and stored a profile",
            ).inc()
        if result.degraded:
            registry.counter(
                "pstorm_degraded_submissions_total",
                "submissions served through the graceful-degradation path",
                labels={"reason": result.degradation_reason or "unknown"},
            ).inc()
        if result.fallback_path is not None:
            registry.counter(
                "pstorm_fallback_total",
                "degraded submissions by the ladder rung that configured them",
                labels={"path": result.fallback_path},
            ).inc()
        registry.histogram(
            "pstorm_sampling_seconds",
            "simulated cost of the 1-task sampling run",
            buckets=SIM_SECONDS_BUCKETS,
        ).observe(result.sampling_seconds)
        if registry.enabled:
            from dataclasses import replace

            result = replace(result, metrics=registry_to_dict(registry))
        return result

    def submit_batch(
        self,
        submissions: "list[tuple[MapReduceJob, Dataset, JobConfiguration | None, int]]",
    ) -> list[SubmissionResult]:
        """Serve several submissions with one vectorized stage-1 probe.

        Samples every job first (sampling never touches the store), then
        prices all dynamic filters in a single broadcast
        (:meth:`ProfileMatcher.precompute_stage1`) and walks the
        submissions *in order* through the same per-item workflow as
        :meth:`submit`.  The broadcast is pinned to the index generation
        it was priced at: the first miss-path store write invalidates it
        and later items re-run the scalar stage — which is exactly what
        sequential submission would have seen — so the results are
        byte-identical to calling :meth:`submit` item by item.
        """
        normalized = [
            (job, dataset, config if config is not None else JobConfiguration(), seed)
            for job, dataset, config, seed in submissions
        ]
        presampled, stage1 = self.prepare_batch(normalized)
        results = []
        for (job, dataset, config, seed), sampled in zip(normalized, presampled):
            if isinstance(sampled, Exception):
                # Re-run the scalar path so the exception escapes with
                # exactly the message sequential submission would raise.
                results.append(self.submit(job, dataset, config, seed=seed))
            else:
                results.append(
                    self.submit(
                        job, dataset, config, seed=seed,
                        _presampled=sampled, _stage1=stage1,
                    )
                )
        return results

    def prepare_batch(
        self,
        submissions: "list[tuple[MapReduceJob, Dataset, JobConfiguration | None, int]]",
    ) -> "tuple[list[Any], Stage1Batch | None]":
        """Presample a batch and price one stage-1 broadcast for it.

        Returns ``(presampled, stage1)`` where ``presampled[i]`` is the
        ``(profile, features, seconds)`` triple for submission *i*, or
        the exception presampling raised — captured per item so one bad
        submission cannot poison its batch-mates.  Healthy items feed a
        single :meth:`ProfileMatcher.precompute_stage1` broadcast.
        """
        presampled: list[Any] = []
        for job, dataset, __, seed in submissions:
            try:
                presampled.append(self._sample(job, dataset, seed=seed))
            except Exception as exc:  # noqa: BLE001 — isolated per item
                presampled.append(exc)
        healthy = [
            triple[1] for triple in presampled if not isinstance(triple, Exception)
        ]
        stage1 = self.matcher.precompute_stage1(healthy)
        return presampled, stage1

    def _submit_inner(
        self,
        job: MapReduceJob,
        dataset: Dataset,
        config: JobConfiguration,
        seed: int,
        presampled: "tuple[JobProfile, JobFeatures, float] | None" = None,
        stage1: "Stage1Batch | None" = None,
    ) -> SubmissionResult:
        if presampled is not None:
            sample_profile, features, sampling_seconds = presampled
        else:
            sample_profile, features, sampling_seconds = self._sample(
                job, dataset, seed=seed
            )
        try:
            outcome = self.matcher.match_job(features, stage1=stage1)
        except StoreUnavailableError:
            # The probe exhausted its retry/deadline budget: degrade to
            # sample-profile tuning rather than fail the submission.
            return self._submit_degraded(
                job, dataset, config, seed,
                sample_profile=sample_profile,
                features=features,
                sampling_seconds=sampling_seconds,
                reason="store-probe",
            )

        if outcome.matched:
            # A capacity-maintained store tracks usage: hits refresh the
            # matched profiles' recency so they outlive one-off entries.
            record_hit = getattr(self.resilient_store, "record_hit", None)
            if callable(record_hit):
                for side in (outcome.map_match, outcome.reduce_match):
                    if side is not None and side.job_id is not None:
                        record_hit(side.job_id)
            decision = self.tuner_impl.optimize(
                outcome.profile,
                data_bytes=dataset.nominal_bytes,
                context=TunerContext(
                    features=features,
                    outcome=outcome,
                    data_bytes=dataset.nominal_bytes,
                ),
            )
            execution = self.engine.run_job(
                job, dataset, decision.best_config, seed=seed
            )
            return SubmissionResult(
                job_name=job.name,
                dataset_name=dataset.name,
                matched=True,
                outcome=outcome,
                config=decision.best_config,
                execution=execution,
                sampling_seconds=sampling_seconds,
                profile_stored_as=None,
            )

        # Miss: run with the submitted configuration, profiler on, and
        # store the collected profile for the future.
        profile, execution = self.profiler.profile_job(job, dataset, config, seed=seed)
        try:
            job_id = self.resilient_store.put(profile, features.static)
        except StoreUnavailableError:
            # The job already ran; losing the profile write costs future
            # matches, not this submission.  Record the downgrade.
            return SubmissionResult(
                job_name=job.name,
                dataset_name=dataset.name,
                matched=False,
                outcome=outcome,
                config=config,
                execution=execution,
                sampling_seconds=sampling_seconds,
                profile_stored_as=None,
                degraded=True,
                degradation_reason="store-put",
            )
        return SubmissionResult(
            job_name=job.name,
            dataset_name=dataset.name,
            matched=False,
            outcome=outcome,
            config=config,
            execution=execution,
            sampling_seconds=sampling_seconds,
            profile_stored_as=job_id,
        )

    def _submit_degraded(
        self,
        job: MapReduceJob,
        dataset: Dataset,
        config: JobConfiguration,
        seed: int,
        sample_profile: JobProfile,
        features: JobFeatures,
        sampling_seconds: float,
        reason: str,
    ) -> SubmissionResult:
        """The degradation ladder: RBO on the sample, else the submitted
        configuration — but always a completed submission."""
        try:
            decision = self.rbo.recommend(sample_profile)
            run_config, fallback_path = decision.config, "rbo"
        except Exception:
            run_config, fallback_path = config, "default"
        execution = self.engine.run_job(job, dataset, run_config, seed=seed)
        map_match = SideMatch("map", None, "store-unavailable", {})
        reduce_match = (
            SideMatch("reduce", None, "store-unavailable", {})
            if features.has_reduce
            else None
        )
        return SubmissionResult(
            job_name=job.name,
            dataset_name=dataset.name,
            matched=False,
            outcome=MatchOutcome(None, map_match, reduce_match),
            config=run_config,
            execution=execution,
            sampling_seconds=sampling_seconds,
            profile_stored_as=None,
            degraded=True,
            degradation_reason=reason,
            fallback_path=fallback_path,
        )
