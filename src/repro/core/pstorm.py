"""The PStorM daemon: the submission workflow of Chapter 3 (Fig 1.2).

For each submitted job: run one sampled map task (plus its reducers) with
the Starfish profiler on, build the mixed feature vector, probe the store.
On a hit, hand the matched (possibly composite) profile to the Starfish
CBO and run the job with the recommended configuration, profiler off.  On
a miss, run the job with its submitted configuration, profiler *on*, and
store the collected profile for future matching.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..hadoop.cluster import ClusterSpec
from ..hadoop.config import JobConfiguration
from ..hadoop.dataset import Dataset
from ..hadoop.engine import HadoopEngine
from ..hadoop.job import MapReduceJob
from ..hadoop.tasks import JobExecution
from ..observability import (
    SIM_SECONDS_BUCKETS,
    MetricsRegistry,
    Tracer,
    get_registry,
    get_tracer,
)
from ..observability.export import registry_to_dict
from ..starfish.cbo import CostBasedOptimizer
from ..starfish.profile import JobProfile
from ..starfish.profiler import StarfishProfiler
from ..starfish.sampler import Sampler
from ..starfish.whatif import WhatIfEngine
from .features import JobFeatures, extract_job_features
from .matcher import MatchOutcome, ProfileMatcher
from .store import ProfileStore

__all__ = ["PStorM", "SubmissionResult"]


@dataclass(frozen=True)
class SubmissionResult:
    """What happened to one job submission."""

    job_name: str
    dataset_name: str
    matched: bool
    outcome: MatchOutcome
    config: JobConfiguration
    execution: JobExecution
    sampling_seconds: float
    profile_stored_as: str | None
    #: Snapshot of the daemon's metrics registry taken when the
    #: submission finished (``export.registry_to_dict`` form).
    metrics: Mapping[str, Any] | None = None

    @property
    def runtime_seconds(self) -> float:
        return self.execution.runtime_seconds

    @property
    def total_seconds(self) -> float:
        """Job runtime plus the 1-task sampling cost PStorM paid."""
        return self.execution.runtime_seconds + self.sampling_seconds


@dataclass
class PStorM:
    """Profile Store and Matcher, wired to a cluster and Starfish.

    Attributes:
        engine: the Hadoop engine (shared with Starfish components).
        store: the profile store; freshly created if omitted.
    """

    engine: HadoopEngine
    store: ProfileStore = field(default_factory=ProfileStore)
    seed: int = 0
    #: Observability sinks; None falls back to the module defaults.  An
    #: explicit registry/tracer is pushed into the store and matcher the
    #: daemon owns (but never into an externally shared engine).
    registry: MetricsRegistry | None = None
    tracer: Tracer | None = None

    def __post_init__(self) -> None:
        if self.registry is not None and self.store.registry is None:
            self.store.registry = self.registry
        if self.tracer is not None and self.store.tracer is None:
            self.store.tracer = self.tracer
        self.profiler = StarfishProfiler(self.engine)
        self.sampler = Sampler(self.profiler)
        self.whatif = WhatIfEngine(self.engine.cluster)
        self.cbo = CostBasedOptimizer(self.whatif, seed=self.seed)
        self.matcher = ProfileMatcher(
            self.store, registry=self.registry, tracer=self.tracer
        )

    # ------------------------------------------------------------------
    def extract_features(
        self, job: MapReduceJob, dataset: Dataset, seed: int = 0
    ) -> tuple[JobFeatures, float]:
        """Run the 1-task sample and build the job's feature vector.

        Returns the features and the sampling run's wall-clock cost.
        """
        sample = self.sampler.collect(job, dataset, count=1, seed=seed)
        features = extract_job_features(job, dataset, sample.profile, self.engine)
        return features, sample.overhead_seconds

    # ------------------------------------------------------------------
    def remember(
        self,
        job: MapReduceJob,
        dataset: Dataset,
        config: JobConfiguration | None = None,
        seed: int = 0,
    ) -> str:
        """Run *job* fully instrumented and store its profile.

        This is the miss path's bookkeeping, exposed directly so that
        experiments can pre-populate the store (the SD/DD content states).
        """
        with get_tracer(self.tracer).span(
            "pstorm.remember", job=job.name, dataset=dataset.name
        ):
            profile, __ = self.profiler.profile_job(job, dataset, config, seed=seed)
            features, __, = self.extract_features(job, dataset, seed=seed)
            job_id = self.store.put(profile, features.static)
        get_registry(self.registry).counter(
            "pstorm_remembers_total", "profiles stored via the remember path"
        ).inc()
        return job_id

    # ------------------------------------------------------------------
    def submit(
        self,
        job: MapReduceJob,
        dataset: Dataset,
        config: JobConfiguration | None = None,
        seed: int = 0,
    ) -> SubmissionResult:
        """The Chapter 3 submission workflow."""
        if config is None:
            config = JobConfiguration()
        registry = get_registry(self.registry)
        tracer = get_tracer(self.tracer)
        with tracer.span(
            "pstorm.submit", job=job.name, dataset=dataset.name
        ) as span:
            result = self._submit_inner(job, dataset, config, seed)
            span.set_attr("matched", result.matched)

        registry.counter(
            "pstorm_submissions_total", "jobs submitted to the daemon"
        ).inc()
        if result.matched:
            registry.counter(
                "pstorm_submission_hits_total", "submissions served from the store"
            ).inc()
        else:
            registry.counter(
                "pstorm_submission_misses_total",
                "submissions that ran instrumented and stored a profile",
            ).inc()
        registry.histogram(
            "pstorm_sampling_seconds",
            "simulated cost of the 1-task sampling run",
            buckets=SIM_SECONDS_BUCKETS,
        ).observe(result.sampling_seconds)
        if registry.enabled:
            from dataclasses import replace

            result = replace(result, metrics=registry_to_dict(registry))
        return result

    def _submit_inner(
        self,
        job: MapReduceJob,
        dataset: Dataset,
        config: JobConfiguration,
        seed: int,
    ) -> SubmissionResult:
        features, sampling_seconds = self.extract_features(job, dataset, seed=seed)
        outcome = self.matcher.match_job(features)

        if outcome.matched:
            result = self.cbo.optimize(
                outcome.profile, data_bytes=dataset.nominal_bytes
            )
            execution = self.engine.run_job(
                job, dataset, result.best_config, seed=seed
            )
            return SubmissionResult(
                job_name=job.name,
                dataset_name=dataset.name,
                matched=True,
                outcome=outcome,
                config=result.best_config,
                execution=execution,
                sampling_seconds=sampling_seconds,
                profile_stored_as=None,
            )

        # Miss: run with the submitted configuration, profiler on, and
        # store the collected profile for the future.
        profile, execution = self.profiler.profile_job(job, dataset, config, seed=seed)
        job_id = self.store.put(profile, features.static)
        return SubmissionResult(
            job_name=job.name,
            dataset_name=dataset.name,
            matched=False,
            outcome=outcome,
            config=config,
            execution=execution,
            sampling_seconds=sampling_seconds,
            profile_stored_as=job_id,
        )
