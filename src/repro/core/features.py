"""PStorM feature vectors: dynamic + static features of a submitted job.

The matcher works on two per-side vectors (§4.3): each combines the side's
Table 4.1 data-flow statistics (dynamic, from the 1-task sample profile),
its Table 4.2 cost factors (dynamic, used only by the fallback filter),
and its slice of the Table 4.3 static features (from the job's byte code).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from ..analysis.cfg import ControlFlowGraph
from ..analysis.static_features import StaticFeatures, extract_static_features
from ..hadoop.dataset import Dataset
from ..hadoop.engine import HadoopEngine
from ..hadoop.job import MapReduceJob
from ..starfish.profile import (
    MAP_COST_FEATURES,
    MAP_DATA_FLOW_FEATURES,
    REDUCE_COST_FEATURES,
    REDUCE_DATA_FLOW_FEATURES,
    JobProfile,
)

__all__ = ["JobFeatures", "extract_job_features", "observe_record_streams"]


@dataclass(frozen=True)
class JobFeatures:
    """Everything the matcher knows about a submitted job.

    Attributes:
        job_name: submitted job's name (for reporting only — the matcher
            never uses it).
        static: Table 4.3 static features.
        map_data_flow: map-side dynamic vector (4 selectivities).
        map_costs: map-side cost-factor vector.
        reduce_data_flow: reduce-side dynamic vector (2 selectivities),
            or None for map-only jobs.
        reduce_costs: reduce-side cost-factor vector, or None.
        input_bytes: input data size of the submission (tie-break key).
    """

    job_name: str
    static: StaticFeatures
    map_data_flow: tuple[float, ...]
    map_costs: tuple[float, ...]
    reduce_data_flow: tuple[float, ...] | None
    reduce_costs: tuple[float, ...] | None
    input_bytes: int

    @property
    def has_reduce(self) -> bool:
        return self.reduce_data_flow is not None

    def side_vectors(
        self, side: str
    ) -> tuple[tuple[float, ...], tuple[float, ...], dict[str, str], ControlFlowGraph | None]:
        """(data flow, costs, categorical statics, cfg) for one side."""
        if side == "map":
            return (
                self.map_data_flow,
                self.map_costs,
                self.static.map_side(),
                self.static.map_cfg,
            )
        if side == "reduce":
            if not self.has_reduce:
                raise ValueError("job has no reduce side")
            return (
                self.reduce_data_flow,
                self.reduce_costs,
                self.static.reduce_side(),
                self.static.reduce_cfg,
            )
        raise ValueError("side must be 'map' or 'reduce'")


def observe_record_streams(
    job: MapReduceJob, dataset: Dataset, engine: HadoopEngine, split_index: int = 0
) -> tuple[list[tuple[Any, Any]], list[tuple[Any, Any]], list[tuple[Any, Any]]]:
    """Observed (input, intermediate, output) record examples of one split.

    Piggybacks on the engine's cached split measurement — the same
    micro-execution PStorM's 1-task sample performs — so the static
    feature extractor can read key/value types off real records.
    """
    input_pairs = dataset.materialize(split_index)[:4]
    measurement = engine.measure_split(job, dataset, split_index)
    intermediate_pairs = list(measurement.sample_map_pairs[:4])

    output_pairs: list[tuple[Any, Any]] = []
    if job.reducer is not None and measurement.sample_map_pairs:
        groups: dict[Any, list[Any]] = {}
        for key, value in measurement.sample_map_pairs:
            groups.setdefault(key, []).append(value)
        context = job.make_context()
        for key, values in list(groups.items())[:4]:
            job.reducer(key, values, context)
        output_pairs = context.pairs[:4]
    return list(input_pairs), intermediate_pairs, output_pairs


def extract_job_features(
    job: MapReduceJob,
    dataset: Dataset,
    sample_profile: JobProfile,
    engine: HadoopEngine,
) -> JobFeatures:
    """Build the matcher's feature vector for a submitted job.

    Args:
        job: the submitted job (static features come from its code).
        dataset: the submission's input data.
        sample_profile: the 1-task sample profile (dynamic features).
        engine: used to observe record examples for type features.
    """
    input_pairs, intermediate_pairs, output_pairs = observe_record_streams(
        job, dataset, engine
    )
    static = extract_static_features(job, input_pairs, intermediate_pairs, output_pairs)

    mp = sample_profile.map_profile
    map_data_flow = tuple(mp.data_flow[name] for name in MAP_DATA_FLOW_FEATURES)
    map_costs = tuple(mp.cost_factors.get(name, 0.0) for name in MAP_COST_FEATURES)

    reduce_data_flow = None
    reduce_costs = None
    rp = sample_profile.reduce_profile
    if rp is not None:
        reduce_data_flow = tuple(
            rp.data_flow[name] for name in REDUCE_DATA_FLOW_FEATURES
        )
        reduce_costs = tuple(
            rp.cost_factors.get(name, 0.0) for name in REDUCE_COST_FEATURES
        )

    return JobFeatures(
        job_name=job.name,
        static=static,
        map_data_flow=map_data_flow,
        map_costs=map_costs,
        reduce_data_flow=reduce_data_flow,
        reduce_costs=reduce_costs,
        input_bytes=dataset.nominal_bytes,
    )
