"""Gradient Boosted Regression Trees, from scratch (§4.4).

A faithful reimplementation of the parts of R's ``gbm`` package that
Appendix A uses: squared-error ("gaussian") and absolute-error ("laplace")
losses, shrinkage, bag fraction, interaction depth, minimum observations
per node, a train fraction, and K-fold cross-validation for choosing the
best iteration (``gbm.perf(method="cv")``).

Trees are fitted on quantile-binned features (histogram splits), which
keeps 10,000-iteration runs tractable in pure numpy without changing the
learner's statistical behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["GbrtParams", "GbrtModel", "fit_gbrt"]

_MAX_BINS = 32


@dataclass(frozen=True)
class GbrtParams:
    """Hyper-parameters, named after their R ``gbm`` equivalents."""

    n_trees: int = 2000
    shrinkage: float = 0.005
    distribution: str = "gaussian"
    interaction_depth: int = 3
    bag_fraction: float = 0.5
    train_fraction: float = 0.5
    cv_folds: int = 10
    n_minobsinnode: int = 10

    def __post_init__(self) -> None:
        if self.distribution not in ("gaussian", "laplace"):
            raise ValueError("distribution must be 'gaussian' or 'laplace'")
        if not 0 < self.train_fraction <= 1:
            raise ValueError("train_fraction must be in (0, 1]")
        if not 0 < self.bag_fraction <= 1:
            raise ValueError("bag_fraction must be in (0, 1]")


@dataclass
class _Tree:
    """One fitted regression tree in array form."""

    feature: np.ndarray   # int, -1 for leaves
    threshold_bin: np.ndarray  # int bin index; go left if bin <= threshold
    left: np.ndarray
    right: np.ndarray
    value: np.ndarray     # leaf predictions
    gain: np.ndarray      # squared-error reduction of each split (0 at leaves)

    def predict_binned(self, binned: np.ndarray) -> np.ndarray:
        """Predict for pre-binned rows (n, p), vectorized.

        All rows are routed level by level: at most ``interaction_depth``
        rounds of fancy indexing instead of a Python walk per row.
        """
        n = binned.shape[0]
        nodes = np.zeros(n, dtype=np.int64)
        while True:
            features = self.feature[nodes]
            internal = features >= 0
            if not internal.any():
                break
            rows = np.nonzero(internal)[0]
            current = nodes[rows]
            go_left = (
                binned[rows, features[rows]] <= self.threshold_bin[current]
            )
            nodes[rows] = np.where(go_left, self.left[current], self.right[current])
        return self.value[nodes]


def _bin_features(x: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
    """Quantile-bin each column; returns (binned uint8 matrix, bin edges)."""
    n, p = x.shape
    binned = np.zeros((n, p), dtype=np.uint8)
    edges: list[np.ndarray] = []
    for j in range(p):
        column = x[:, j]
        quantiles = np.unique(
            np.quantile(column, np.linspace(0, 1, _MAX_BINS + 1)[1:-1])
        )
        edges.append(quantiles)
        binned[:, j] = np.searchsorted(quantiles, column).astype(np.uint8)
    return binned, edges


def _apply_bins(x: np.ndarray, edges: list[np.ndarray]) -> np.ndarray:
    n, p = x.shape
    binned = np.zeros((n, p), dtype=np.uint8)
    for j in range(p):
        binned[:, j] = np.searchsorted(edges[j], x[:, j]).astype(np.uint8)
    return binned


def _leaf_value(residuals: np.ndarray, distribution: str) -> float:
    if residuals.size == 0:
        return 0.0
    if distribution == "laplace":
        return float(np.median(residuals))
    return float(residuals.mean())


def _fit_tree(
    binned: np.ndarray,
    gradient: np.ndarray,
    raw_residuals: np.ndarray,
    indices: np.ndarray,
    depth_limit: int,
    min_obs: int,
    distribution: str,
) -> _Tree:
    """Fit one regression tree on the gradient via histogram splits.

    Splits minimize squared error on the *gradient*; leaf values are the
    loss-appropriate statistic of the *raw residuals* in the leaf
    (gaussian: mean of gradient == mean residual; laplace: median
    residual), matching gbm's terminal-node line search.
    """
    feature: list[int] = []
    threshold: list[int] = []
    left: list[int] = []
    right: list[int] = []
    value: list[float] = []
    gain: list[float] = []

    def new_node() -> int:
        feature.append(-1)
        threshold.append(0)
        left.append(-1)
        right.append(-1)
        value.append(0.0)
        gain.append(0.0)
        return len(feature) - 1

    def split(node: int, rows: np.ndarray, depth: int) -> None:
        grads = gradient[rows]
        if depth >= depth_limit or rows.size < 2 * min_obs:
            value[node] = _leaf_value(raw_residuals[rows], distribution)
            return
        total_sum = grads.sum()
        total_count = rows.size
        parent_score = total_sum * total_sum / total_count

        best_gain = 1e-12
        best_feature = -1
        best_bin = -1
        for j in range(binned.shape[1]):
            bins = binned[rows, j]
            counts = np.bincount(bins, minlength=_MAX_BINS)
            sums = np.bincount(bins, weights=grads, minlength=_MAX_BINS)
            left_counts = np.cumsum(counts)[:-1]
            left_sums = np.cumsum(sums)[:-1]
            right_counts = total_count - left_counts
            right_sums = total_sum - left_sums
            valid = (left_counts >= min_obs) & (right_counts >= min_obs)
            if not valid.any():
                continue
            with np.errstate(divide="ignore", invalid="ignore"):
                scores = np.where(
                    valid,
                    left_sums**2 / np.maximum(left_counts, 1)
                    + right_sums**2 / np.maximum(right_counts, 1),
                    -np.inf,
                )
            best_local = int(np.argmax(scores))
            improvement = scores[best_local] - parent_score
            if improvement > best_gain:
                best_gain = improvement
                best_feature = j
                best_bin = best_local

        if best_feature < 0:
            value[node] = _leaf_value(raw_residuals[rows], distribution)
            return

        mask = binned[rows, best_feature] <= best_bin
        left_rows = rows[mask]
        right_rows = rows[~mask]
        feature[node] = best_feature
        threshold[node] = best_bin
        gain[node] = float(best_gain)
        left[node] = new_node()
        right[node] = new_node()
        split(left[node], left_rows, depth + 1)
        split(right[node], right_rows, depth + 1)

    root = new_node()
    split(root, indices, 0)
    return _Tree(
        feature=np.asarray(feature),
        threshold_bin=np.asarray(threshold),
        left=np.asarray(left),
        right=np.asarray(right),
        value=np.asarray(value),
        gain=np.asarray(gain),
    )


@dataclass
class GbrtModel:
    """A fitted GBRT ensemble."""

    params: GbrtParams
    initial: float
    trees: list[_Tree]
    edges: list[np.ndarray]
    best_iteration: int
    cv_curve: np.ndarray | None = None

    def feature_importances(
        self, num_features: int | None = None, n_trees: int | None = None
    ) -> np.ndarray:
        """Relative split-gain importance per feature (gbm's ``summary``).

        For the Appendix-A matcher these are the learned weights of the
        Equation-1 distance metric: how much each of the eight partial
        distances contributes to the prediction.
        """
        if n_trees is None:
            n_trees = self.best_iteration
        if num_features is None:
            num_features = int(
                max(
                    (tree.feature.max(initial=-1) for tree in self.trees),
                    default=-1,
                )
            ) + 1
        totals = np.zeros(max(1, num_features))
        for tree in self.trees[:n_trees]:
            for feature, gain in zip(tree.feature, tree.gain):
                if feature >= 0:
                    totals[feature] += gain
        total = totals.sum()
        if total > 0:
            totals /= total
        return totals

    def predict(self, x: np.ndarray, n_trees: int | None = None) -> np.ndarray:
        """Predict with the first *n_trees* trees (default: best iteration)."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        if n_trees is None:
            n_trees = self.best_iteration
        n_trees = min(n_trees, len(self.trees))
        binned = _apply_bins(x, self.edges)
        out = np.full(x.shape[0], self.initial)
        for tree in self.trees[:n_trees]:
            out += self.params.shrinkage * tree.predict_binned(binned)
        return out


def _gradient(y: np.ndarray, current: np.ndarray, distribution: str) -> np.ndarray:
    residual = y - current
    if distribution == "laplace":
        return np.sign(residual)
    return residual


def _loss(y: np.ndarray, prediction: np.ndarray, distribution: str) -> float:
    if distribution == "laplace":
        return float(np.abs(y - prediction).mean())
    return float(((y - prediction) ** 2).mean())


def _boost(
    binned: np.ndarray,
    y: np.ndarray,
    params: GbrtParams,
    rng: np.random.Generator,
    val_binned: np.ndarray | None = None,
    val_y: np.ndarray | None = None,
) -> tuple[float, list[_Tree], np.ndarray | None]:
    """Run the boosting loop; optionally track per-iteration val loss."""
    n = y.shape[0]
    if params.distribution == "laplace":
        initial = float(np.median(y))
    else:
        initial = float(y.mean())
    current = np.full(n, initial)

    val_losses = None
    val_current = None
    if val_binned is not None:
        val_current = np.full(val_binned.shape[0], initial)
        val_losses = np.empty(params.n_trees)

    trees: list[_Tree] = []
    bag_size = max(2 * params.n_minobsinnode, int(round(n * params.bag_fraction)))
    bag_size = min(bag_size, n)
    for it in range(params.n_trees):
        raw_residuals = y - current
        grad = _gradient(y, current, params.distribution)
        bag = rng.choice(n, size=bag_size, replace=False)
        tree = _fit_tree(
            binned,
            grad,
            raw_residuals,
            bag,
            params.interaction_depth,
            params.n_minobsinnode,
            params.distribution,
        )
        trees.append(tree)
        current += params.shrinkage * tree.predict_binned(binned)
        if val_binned is not None:
            val_current += params.shrinkage * tree.predict_binned(val_binned)
            val_losses[it] = _loss(val_y, val_current, params.distribution)
    return initial, trees, val_losses


def fit_gbrt(
    x: np.ndarray,
    y: np.ndarray,
    params: GbrtParams,
    seed: int = 0,
) -> GbrtModel:
    """Fit a GBRT model with CV-selected best iteration.

    Args:
        x: feature matrix (n, p).
        y: regression targets (n,).
        params: gbm-style hyper-parameters; ``train_fraction`` restricts
            learning to the first fraction of rows, as in gbm.
        seed: RNG seed for bagging and fold assignment.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.ndim != 2 or x.shape[0] != y.shape[0]:
        raise ValueError("x must be (n, p) aligned with y")
    rng = np.random.default_rng(seed)

    train_n = max(2 * params.n_minobsinnode, int(round(x.shape[0] * params.train_fraction)))
    train_n = min(train_n, x.shape[0])
    x_train, y_train = x[:train_n], y[:train_n]

    binned, edges = _bin_features(x_train)

    # Cross-validation for the best iteration count.
    cv_curve = None
    best_iteration = params.n_trees
    folds = min(params.cv_folds, train_n)
    if folds >= 2:
        assignment = rng.permutation(train_n) % folds
        curves = []
        for fold in range(folds):
            hold = assignment == fold
            fit_rows = ~hold
            if hold.sum() == 0 or fit_rows.sum() < 2 * params.n_minobsinnode:
                continue
            fold_binned, fold_edges = _bin_features(x_train[fit_rows])
            val_binned = _apply_bins(x_train[hold], fold_edges)
            __, __, losses = _boost(
                fold_binned,
                y_train[fit_rows],
                params,
                np.random.default_rng(seed + 1 + fold),
                val_binned=val_binned,
                val_y=y_train[hold],
            )
            curves.append(losses)
        if curves:
            cv_curve = np.mean(np.stack(curves), axis=0)
            best_iteration = int(np.argmin(cv_curve)) + 1

    initial, trees, __ = _boost(binned, y_train, params, rng)
    return GbrtModel(
        params=params,
        initial=initial,
        trees=trees,
        edges=edges,
        best_iteration=best_iteration,
        cv_curve=cv_curve,
    )
