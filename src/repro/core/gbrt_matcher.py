"""The GBRT-based alternative matcher (§4.4, Appendix A).

Learns a generalized distance metric combining the per-type similarity
scores into one number.  A training sample compares a job J's complete
profile against a *composite* candidate (map side of J1, reduce side of
J2) through eight partial distances::

    [Jacc_map, Eucl_DS_map, Eucl_CS_map, CFG_map,
     Jacc_red, Eucl_DS_red, Eucl_CS_red, CFG_red]

and its regression target is how differently the What-If engine prices J
under the two profiles (we use the *relative* runtime difference so that
35 GB jobs and 200 MB jobs contribute on the same scale; the thesis uses
the raw difference).  Matching a new job then scores every (map donor,
reduce donor) combination with the learned metric and returns the nearest
composite — expensive in training and in matching, which is the paper's
point when comparing against the multi-stage matcher.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product

import numpy as np

from ..analysis.cfg_match import cfg_similarity
from ..analysis.static_features import StaticFeatures
from ..hadoop.config import JobConfiguration
from ..observability import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    Tracer,
    get_registry,
    get_tracer,
)
from ..starfish.profile import (
    MAP_COST_FEATURES,
    MAP_DATA_FLOW_FEATURES,
    REDUCE_COST_FEATURES,
    REDUCE_DATA_FLOW_FEATURES,
    JobProfile,
)
from ..starfish.whatif import WhatIfEngine
from .gbrt import GbrtModel, GbrtParams, fit_gbrt
from .match_index import _cfg_digest
from .similarity import euclidean_distance, jaccard_index, normalized_euclidean_block
from .store import ProfileStore

__all__ = ["GbrtMatcher", "build_training_set", "pair_distances"]


def _side_vectors(profile: JobProfile, side: str) -> tuple[list[float], list[float]]:
    if side == "map":
        mp = profile.map_profile
        flow = [float(mp.data_flow[n]) for n in MAP_DATA_FLOW_FEATURES]
        costs = [float(mp.cost_factors.get(n, 0.0)) for n in MAP_COST_FEATURES]
        return flow, costs
    rp = profile.reduce_profile
    if rp is None:
        return [], []
    flow = [float(rp.data_flow[n]) for n in REDUCE_DATA_FLOW_FEATURES]
    costs = [float(rp.cost_factors.get(n, 0.0)) for n in REDUCE_COST_FEATURES]
    return flow, costs


@dataclass
class _StoreCache:
    """Materialized store contents; avoids re-parsing rows per combo."""

    store: ProfileStore
    profiles: dict[str, JobProfile] = field(default_factory=dict)
    statics: dict[str, StaticFeatures] = field(default_factory=dict)
    #: Per-(job, side) CFG content digests, memo keys for batch scoring.
    cfg_digests: dict[tuple[str, str], str | None] = field(default_factory=dict)

    def refresh(self) -> None:
        bulk_rows = getattr(self.store, "bulk_rows", None)
        if callable(bulk_rows):
            # Two batched range scans instead of 1 + 2N point gets; only
            # rows not yet cached are parsed.
            from .store import PROFILE_PREFIX, STATIC_PREFIX

            profile_rows = bulk_rows(PROFILE_PREFIX)
            static_rows = bulk_rows(STATIC_PREFIX)
            for job_id, columns in profile_rows.items():
                if job_id not in self.profiles and job_id in static_rows:
                    self.profiles[job_id] = JobProfile.from_dict(columns["payload"])
                    self.statics[job_id] = StaticFeatures.from_dict(
                        static_rows[job_id]
                    )
            return
        for job_id in self.store.job_ids():
            if job_id not in self.profiles:
                self.profiles[job_id] = self.store.get_profile(job_id)
                self.statics[job_id] = self.store.get_static(job_id)

    def job_ids(self) -> list[str]:
        self.refresh()
        return sorted(self.profiles)

    def cfg_digest(self, job_id: str, side: str) -> str | None:
        key = (job_id, side)
        if key not in self.cfg_digests:
            static = self.statics[job_id]
            graph = static.map_cfg if side == "map" else static.reduce_cfg
            self.cfg_digests[key] = (
                None if graph is None else _cfg_digest(graph.to_dict())
            )
        return self.cfg_digests[key]


def _normalized(
    cache: _StoreCache, side: str, kind: str, a: list[float], b: list[float]
) -> float:
    if not a or not b:
        return 0.0
    normalizer = cache.store.normalizer(side, kind)
    if normalizer.num_features == 0:
        return 0.0
    return euclidean_distance(normalizer.normalize(a), normalizer.normalize(b))


def _map_block(
    cache: _StoreCache,
    probe_profile: JobProfile,
    probe_static: StaticFeatures,
    map_donor_id: str,
) -> list[float]:
    """The four map-side partial distances against one donor."""
    map_profile = cache.profiles[map_donor_id]
    map_static = cache.statics[map_donor_id]
    probe_map_flow, probe_map_costs = _side_vectors(probe_profile, "map")
    donor_map_flow, donor_map_costs = _side_vectors(map_profile, "map")
    return [
        jaccard_index(probe_static.map_side(), map_static.map_side()),
        _normalized(cache, "map", "flow", probe_map_flow, donor_map_flow),
        _normalized(cache, "map", "cost", probe_map_costs, donor_map_costs),
        cfg_similarity(probe_static.map_cfg, map_static.map_cfg),
    ]


def _reduce_block(
    cache: _StoreCache,
    probe_profile: JobProfile,
    probe_static: StaticFeatures,
    reduce_donor_id: str | None,
) -> list[float]:
    """The four reduce-side partial distances against one donor."""
    if reduce_donor_id is None or probe_static.reduce_cfg is None:
        return [0.0, 0.0, 0.0, 0.0]
    reduce_profile = cache.profiles[reduce_donor_id]
    reduce_static = cache.statics[reduce_donor_id]
    probe_red_flow, probe_red_costs = _side_vectors(probe_profile, "reduce")
    donor_red_flow, donor_red_costs = _side_vectors(reduce_profile, "reduce")
    cfg_score = 0.0
    if reduce_static.reduce_cfg is not None:
        cfg_score = cfg_similarity(probe_static.reduce_cfg, reduce_static.reduce_cfg)
    return [
        jaccard_index(probe_static.reduce_side(), reduce_static.reduce_side()),
        _normalized(cache, "reduce", "flow", probe_red_flow, donor_red_flow),
        _normalized(cache, "reduce", "cost", probe_red_costs, donor_red_costs),
        cfg_score,
    ]


def _distances(
    cache: _StoreCache,
    probe_profile: JobProfile,
    probe_static: StaticFeatures,
    map_donor_id: str,
    reduce_donor_id: str | None,
) -> list[float]:
    return _map_block(cache, probe_profile, probe_static, map_donor_id) + _reduce_block(
        cache, probe_profile, probe_static, reduce_donor_id
    )


def pair_distances(
    store: ProfileStore,
    probe_profile: JobProfile,
    probe_static: StaticFeatures,
    map_donor_id: str,
    reduce_donor_id: str | None,
) -> list[float]:
    """The eight partial distances of one (probe, composite) pair."""
    cache = _StoreCache(store)
    cache.refresh()
    return _distances(cache, probe_profile, probe_static, map_donor_id, reduce_donor_id)


def build_training_set(
    store: ProfileStore,
    whatif: WhatIfEngine,
    statics: dict[str, StaticFeatures] | None = None,
    pairs_per_job: int = 24,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Construct the Appendix A training set from the store's contents.

    For each stored job J, sample (J1, J2) donor pairs — always including
    the perfect-match pair (J, J), giving the learner a zero-distance
    example — and label each with the relative WIF runtime difference of
    J under its own profile versus the composite.
    """
    del statics  # statics come from the store itself
    rng = np.random.default_rng(seed)
    cache = _StoreCache(store)
    job_ids = cache.job_ids()
    reduce_ids = [j for j in job_ids if cache.profiles[j].has_reduce]
    config = JobConfiguration()

    # Same-program profiles on other datasets ("twins") provide the
    # small-but-nonzero distance examples the metric must resolve.
    twins: dict[str, list[str]] = {}
    for job_id in job_ids:
        name = cache.profiles[job_id].job_name
        twins.setdefault(name, []).append(job_id)

    rows: list[list[float]] = []
    targets: list[float] = []
    for job_id in job_ids:
        profile = cache.profiles[job_id]
        static = cache.statics[job_id]
        own = whatif.predict(profile, config)
        own_runtime = own.runtime_seconds
        own_reduce = max(1.0, own.reduce_task_seconds)

        siblings = [j for j in twins[profile.job_name]]
        donors: list[tuple[str, str | None]] = []
        if profile.has_reduce and reduce_ids:
            # The perfect match, every twin combination, then random pairs.
            for map_donor in siblings:
                for reduce_donor in siblings:
                    donors.append((map_donor, reduce_donor))
            while len(donors) < pairs_per_job and len(job_ids) > 1:
                map_donor = job_ids[int(rng.integers(0, len(job_ids)))]
                reduce_donor = reduce_ids[int(rng.integers(0, len(reduce_ids)))]
                donors.append((map_donor, reduce_donor))
        else:
            donors.extend((sibling, None) for sibling in siblings)
            while len(donors) < pairs_per_job and len(job_ids) > 1:
                donors.append((job_ids[int(rng.integers(0, len(job_ids)))], None))

        for map_donor, reduce_donor in donors:
            candidate = _compose(cache, map_donor, reduce_donor)
            if candidate is None:
                continue
            predicted = whatif.predict(
                candidate, config, data_bytes=profile.input_bytes
            )
            # Relative total-runtime difference, plus a reduce-task term:
            # with few reducers the total runtime is often insensitive to
            # the reduce donor's statistics, which would leave the four
            # reduce-side distances unlearnable.
            target = abs(
                predicted.runtime_seconds - own_runtime
            ) / max(1.0, own_runtime)
            if profile.has_reduce:
                target += 0.5 * abs(
                    predicted.reduce_task_seconds - own_reduce
                ) / own_reduce
            rows.append(_distances(cache, profile, static, map_donor, reduce_donor))
            targets.append(target)
    return np.asarray(rows), np.asarray(targets)


def _compose(
    cache: _StoreCache, map_donor: str, reduce_donor: str | None
) -> JobProfile | None:
    map_profile = cache.profiles[map_donor]
    if reduce_donor is None:
        return map_profile
    reduce_profile = cache.profiles[reduce_donor]
    if reduce_profile.reduce_profile is None:
        return None
    if map_donor == reduce_donor:
        return map_profile
    return map_profile.compose_with(reduce_profile)


@dataclass
class GbrtMatcher:
    """Nearest-neighbour matcher under the learned GBRT distance metric."""

    store: ProfileStore
    model: GbrtModel
    #: Observability sinks; None falls back to the module defaults.
    registry: MetricsRegistry | None = None
    tracer: Tracer | None = None

    def __post_init__(self) -> None:
        self._cache = _StoreCache(self.store)
        self._cache.refresh()

    @classmethod
    def train(
        cls,
        store: ProfileStore,
        whatif: WhatIfEngine,
        params: GbrtParams,
        pairs_per_job: int = 24,
        seed: int = 0,
    ) -> "GbrtMatcher":
        """Build the training set from the store and fit the metric."""
        x, y = build_training_set(store, whatif, pairs_per_job=pairs_per_job, seed=seed)
        model = fit_gbrt(x, y, params, seed=seed)
        return cls(store=store, model=model)

    def _batch_normalized(
        self, side: str, kind: str, matrix: np.ndarray, probe: list[float]
    ) -> np.ndarray:
        """Vectorized `_normalized` over a donor block (same zeros rules)."""
        count = matrix.shape[0]
        if count == 0 or not probe:
            return np.zeros(count, dtype=np.float64)
        normalizer = self._cache.store.normalizer(side, kind)
        if normalizer.num_features == 0:
            return np.zeros(count, dtype=np.float64)
        return normalized_euclidean_block(normalizer, matrix, probe)

    def _map_blocks_batch(
        self,
        probe_profile: JobProfile,
        probe_static: StaticFeatures,
        job_ids: list[str],
    ) -> dict[str, list[float]]:
        """Per-donor `_map_block` vectors, one normalizer pass per kind.

        The two Euclidean terms of every donor come from a single
        column-wise pass over the stacked donor vectors; the CFG term is
        memoized per distinct donor graph (same-program donors share one
        synchronized-walk), so only the cheap Jaccard term stays
        per-donor Python.
        """
        cache = self._cache
        probe_flow, probe_costs = _side_vectors(probe_profile, "map")
        vectors = [_side_vectors(cache.profiles[j], "map") for j in job_ids]
        flow_distances = self._batch_normalized(
            "map",
            "flow",
            np.asarray([v[0] for v in vectors], dtype=np.float64),
            probe_flow,
        )
        cost_distances = self._batch_normalized(
            "map",
            "cost",
            np.asarray([v[1] for v in vectors], dtype=np.float64),
            probe_costs,
        )
        probe_side = probe_static.map_side()
        cfg_memo: dict[str, float] = {}
        blocks: dict[str, list[float]] = {}
        for position, job_id in enumerate(job_ids):
            donor_static = cache.statics[job_id]
            digest = cache.cfg_digest(job_id, "map")
            cfg_score = cfg_memo.get(digest) if digest is not None else None
            if cfg_score is None:
                cfg_score = cfg_similarity(probe_static.map_cfg, donor_static.map_cfg)
                if digest is not None:
                    cfg_memo[digest] = cfg_score
            blocks[job_id] = [
                jaccard_index(probe_side, donor_static.map_side()),
                float(flow_distances[position]),
                float(cost_distances[position]),
                cfg_score,
            ]
        return blocks

    def _reduce_blocks_batch(
        self,
        probe_profile: JobProfile,
        probe_static: StaticFeatures,
        reduce_ids: list[str],
    ) -> dict[str, list[float]]:
        """Per-donor `_reduce_block` vectors, batched like the map side."""
        cache = self._cache
        if probe_static.reduce_cfg is None:
            return {job_id: [0.0, 0.0, 0.0, 0.0] for job_id in reduce_ids}
        probe_flow, probe_costs = _side_vectors(probe_profile, "reduce")
        vectors = [_side_vectors(cache.profiles[j], "reduce") for j in reduce_ids]
        flow_distances = self._batch_normalized(
            "reduce",
            "flow",
            np.asarray([v[0] for v in vectors], dtype=np.float64),
            probe_flow,
        )
        cost_distances = self._batch_normalized(
            "reduce",
            "cost",
            np.asarray([v[1] for v in vectors], dtype=np.float64),
            probe_costs,
        )
        probe_side = probe_static.reduce_side()
        cfg_memo: dict[str, float] = {}
        blocks: dict[str, list[float]] = {}
        for position, job_id in enumerate(reduce_ids):
            donor_static = cache.statics[job_id]
            cfg_score = 0.0
            if donor_static.reduce_cfg is not None:
                digest = cache.cfg_digest(job_id, "reduce")
                memoized = cfg_memo.get(digest) if digest is not None else None
                if memoized is None:
                    cfg_score = cfg_similarity(
                        probe_static.reduce_cfg, donor_static.reduce_cfg
                    )
                    if digest is not None:
                        cfg_memo[digest] = cfg_score
                else:
                    cfg_score = memoized
            blocks[job_id] = [
                jaccard_index(probe_side, donor_static.reduce_side()),
                float(flow_distances[position]),
                float(cost_distances[position]),
                cfg_score,
            ]
        return blocks

    def match(
        self,
        probe_profile: JobProfile,
        probe_static: StaticFeatures,
        candidates: list[str] | None = None,
    ) -> tuple[str, str | None] | None:
        """Best (map donor, reduce donor) under the learned metric.

        Args:
            candidates: restrict donors to these job ids (used by the
                accuracy experiments to emulate the DD content state
                without retraining the metric).
        """
        job_ids = self._cache.job_ids()
        if candidates is not None:
            allowed = set(candidates)
            job_ids = [j for j in job_ids if j in allowed]
        if not job_ids:
            return None
        has_reduce = probe_profile.has_reduce

        # The eight-distance vector decomposes into a map-side block and a
        # reduce-side block, so per-donor blocks are computed once — in
        # one vectorized pass per side (`_map_blocks_batch` agrees with
        # the scalar `_map_block` bit for bit; the ≤6-wide vectors sum in
        # the same float64 order) — and the N x M combo matrix is
        # assembled by concatenation.
        map_blocks = self._map_blocks_batch(probe_profile, probe_static, job_ids)
        if has_reduce:
            reduce_ids = [
                j for j in job_ids if self._cache.profiles[j].has_reduce
            ]
            reduce_blocks = self._reduce_blocks_batch(
                probe_profile, probe_static, reduce_ids
            )
            combos = list(product(job_ids, reduce_ids))
            rows = [map_blocks[m] + reduce_blocks[r] for m, r in combos]
        else:
            combos = [(job_id, None) for job_id in job_ids]
            empty = [0.0, 0.0, 0.0, 0.0]
            rows = [map_blocks[m] + empty for m, __ in combos]
        if not combos:
            return None

        registry = get_registry(self.registry)
        with get_tracer(self.tracer).span(
            "pstorm.gbrt.match", combos=len(combos)
        ):
            scores = self.model.predict(np.asarray(rows))
        best = int(np.argmin(scores))
        registry.counter(
            "pstorm_gbrt_pairs_scored_total",
            "donor combinations scored by the learned metric",
        ).inc(len(combos))
        registry.histogram(
            "pstorm_gbrt_match_score",
            "learned-metric distance of the winning composite",
            buckets=DEFAULT_BUCKETS,
        ).observe(float(scores[best]))
        return combos[best]
