"""Profile store maintenance: eviction of old profiles.

Chapter 5 notes that updates to the store "consist of adding new profiles
as jobs get executed, and possibly deleting old profiles to free up
space".  This module provides that deletion half: capacity-bound eviction
policies over the store, tracking per-profile usage so that the matcher's
hits refresh recency — profiles that keep serving submissions survive,
one-off experiments age out.

:class:`MaintainedStore` is *composable* with the rest of the store
stack: it delegates everything it does not intercept (the matcher's
filtered-scan stages, ``get_profile``, the ``hbase`` substrate handle,
observability sinks, ...) to the wrapped store, so it can sit either
side of :class:`~repro.core.resilient.ResilientProfileStore` —

- ``ResilientProfileStore(MaintainedStore(ProfileStore(), capacity))``
  retries each logical maintained operation (put + eviction) as a unit;
- ``MaintainedStore(ResilientProfileStore(store), capacity)`` retries the
  individual substrate operations inside one eviction pass.

Both shapes serve the tuning-service path (``repro.serving``); the first
is what :func:`repro.experiments.common.build_store` produces when given
a capacity.  Policy bookkeeping is lock-protected so concurrent serving
workers cannot double-evict.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Any

__all__ = ["EvictionPolicy", "LruEviction", "FifoEviction", "MaintainedStore"]


class EvictionPolicy:
    """Chooses which stored profile to evict when over capacity."""

    def on_insert(self, job_id: str) -> None:
        raise NotImplementedError

    def on_hit(self, job_id: str) -> None:
        raise NotImplementedError

    def on_evict(self, job_id: str) -> None:
        raise NotImplementedError

    def victim(self, job_ids: list[str]) -> str:
        raise NotImplementedError


@dataclass
class LruEviction(EvictionPolicy):
    """Least-recently-used: matcher hits refresh a profile's clock."""

    _clock: itertools.count = field(default_factory=lambda: itertools.count(1))
    _last_used: dict[str, int] = field(default_factory=dict)

    def on_insert(self, job_id: str) -> None:
        self._last_used[job_id] = next(self._clock)

    def on_hit(self, job_id: str) -> None:
        self._last_used[job_id] = next(self._clock)

    def on_evict(self, job_id: str) -> None:
        self._last_used.pop(job_id, None)

    def victim(self, job_ids: list[str]) -> str:
        return min(job_ids, key=lambda j: (self._last_used.get(j, 0), j))


@dataclass
class FifoEviction(EvictionPolicy):
    """First-in-first-out: insertion order only, hits ignored."""

    _clock: itertools.count = field(default_factory=lambda: itertools.count(1))
    _inserted: dict[str, int] = field(default_factory=dict)

    def on_insert(self, job_id: str) -> None:
        self._inserted.setdefault(job_id, next(self._clock))

    def on_hit(self, job_id: str) -> None:
        pass

    def on_evict(self, job_id: str) -> None:
        self._inserted.pop(job_id, None)

    def victim(self, job_ids: list[str]) -> str:
        return min(job_ids, key=lambda j: (self._inserted.get(j, 0), j))


@dataclass
class MaintainedStore:
    """A capacity-bound wrapper over the profile store.

    Inserts beyond *capacity* evict a victim chosen by *policy*.  Use
    :meth:`record_hit` from the submission path (``PStorM`` does, for any
    store that exposes it) so usage informs the LRU policy.

    The wrapped *store* may be a bare :class:`ProfileStore` or any
    duck-compatible wrapper (e.g. the resilient retry client); unknown
    attributes delegate to it, keeping the matcher and the serving layer
    oblivious to the maintenance shim.
    """

    store: Any
    capacity: int
    policy: EvictionPolicy = field(default_factory=LruEviction)
    evicted: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("capacity must be at least 1")
        self._lock = threading.RLock()
        for job_id in self.store.job_ids():
            self.policy.on_insert(job_id)

    def put(self, profile, static, job_id: str | None = None) -> str:
        """Store a profile, evicting as needed to stay within capacity."""
        with self._lock:
            stored_id = self.store.put(profile, static, job_id=job_id)
            self.policy.on_insert(stored_id)
            while len(self.store) > self.capacity:
                candidates = [j for j in self.store.job_ids() if j != stored_id]
                if not candidates:
                    break
                victim = self.policy.victim(candidates)
                self.store.delete(victim)
                self.policy.on_evict(victim)
                self.evicted.append(victim)
            return stored_id

    def delete(self, job_id: str) -> None:
        """Remove a profile, keeping the policy's books in sync."""
        with self._lock:
            self.store.delete(job_id)
            self.policy.on_evict(job_id)

    def record_hit(self, job_id: str) -> None:
        """Tell the policy a stored profile just served a match."""
        with self._lock:
            self.policy.on_hit(job_id)

    # -- delegation (duck-compatibility with ProfileStore) --------------
    def job_ids(self) -> list[str]:
        return self.store.job_ids()

    def __contains__(self, job_id: str) -> bool:
        return self.store.__contains__(job_id)

    def __len__(self) -> int:
        return len(self.store)

    def __getattr__(self, name: str) -> Any:
        # Dataclass fields live in __dict__, so this only fires for the
        # wrapped store's surface (scan stages, get_profile, hbase,
        # registry, ...).  Guard against recursion during unpickling.
        if name == "store":
            raise AttributeError(name)
        return getattr(self.store, name)
