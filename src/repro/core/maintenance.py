"""Profile store maintenance: eviction of old profiles.

Chapter 5 notes that updates to the store "consist of adding new profiles
as jobs get executed, and possibly deleting old profiles to free up
space".  This module provides that deletion half: capacity-bound eviction
policies over the store, tracking per-profile usage so that the matcher's
hits refresh recency — profiles that keep serving submissions survive,
one-off experiments age out.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from .store import ProfileStore

__all__ = ["EvictionPolicy", "LruEviction", "FifoEviction", "MaintainedStore"]


class EvictionPolicy:
    """Chooses which stored profile to evict when over capacity."""

    def on_insert(self, job_id: str) -> None:
        raise NotImplementedError

    def on_hit(self, job_id: str) -> None:
        raise NotImplementedError

    def on_evict(self, job_id: str) -> None:
        raise NotImplementedError

    def victim(self, job_ids: list[str]) -> str:
        raise NotImplementedError


@dataclass
class LruEviction(EvictionPolicy):
    """Least-recently-used: matcher hits refresh a profile's clock."""

    _clock: itertools.count = field(default_factory=lambda: itertools.count(1))
    _last_used: dict[str, int] = field(default_factory=dict)

    def on_insert(self, job_id: str) -> None:
        self._last_used[job_id] = next(self._clock)

    def on_hit(self, job_id: str) -> None:
        self._last_used[job_id] = next(self._clock)

    def on_evict(self, job_id: str) -> None:
        self._last_used.pop(job_id, None)

    def victim(self, job_ids: list[str]) -> str:
        return min(job_ids, key=lambda j: (self._last_used.get(j, 0), j))


@dataclass
class FifoEviction(EvictionPolicy):
    """First-in-first-out: insertion order only, hits ignored."""

    _clock: itertools.count = field(default_factory=lambda: itertools.count(1))
    _inserted: dict[str, int] = field(default_factory=dict)

    def on_insert(self, job_id: str) -> None:
        self._inserted.setdefault(job_id, next(self._clock))

    def on_hit(self, job_id: str) -> None:
        pass

    def on_evict(self, job_id: str) -> None:
        self._inserted.pop(job_id, None)

    def victim(self, job_ids: list[str]) -> str:
        return min(job_ids, key=lambda j: (self._inserted.get(j, 0), j))


@dataclass
class MaintainedStore:
    """A capacity-bound wrapper over the profile store.

    Inserts beyond *capacity* evict a victim chosen by *policy*.  Use
    :meth:`record_hit` from the submission path (PStorM does) so usage
    informs the LRU policy.
    """

    store: ProfileStore
    capacity: int
    policy: EvictionPolicy = field(default_factory=LruEviction)
    evicted: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("capacity must be at least 1")
        for job_id in self.store.job_ids():
            self.policy.on_insert(job_id)

    def put(self, profile, static, job_id: str | None = None) -> str:
        """Store a profile, evicting as needed to stay within capacity."""
        stored_id = self.store.put(profile, static, job_id=job_id)
        self.policy.on_insert(stored_id)
        while len(self.store) > self.capacity:
            candidates = [j for j in self.store.job_ids() if j != stored_id]
            if not candidates:
                break
            victim = self.policy.victim(candidates)
            self.store.delete(victim)
            self.policy.on_evict(victim)
            self.evicted.append(victim)
        return stored_id

    def record_hit(self, job_id: str) -> None:
        """Tell the policy a stored profile just served a match."""
        self.policy.on_hit(job_id)

    def __len__(self) -> int:
        return len(self.store)
