"""PStorM core: the paper's contribution.

Feature vectors mixing static (Table 4.3) and dynamic (Table 4.1)
features, similarity measures (§4.2), the multi-stage matcher with
composite profiles (§4.3), the HBase-backed profile store (Chapter 5),
the GBRT alternative matcher (§4.4 / Appendix A), information-gain
feature-selection baselines (§6.1.1), and the PStorM daemon (Chapter 3).
"""

from .extensions import (
    augment_with_call_graphs,
    augment_with_params,
    call_graph_signature,
    extract_callee_names,
)
from .feature_selection import (
    NUMERIC_FEATURE_COLUMNS,
    NearestNeighborMatcher,
    information_gain,
    profile_numeric_vector,
    rank_features,
)
from .features import JobFeatures, extract_job_features, observe_record_streams
from .gbrt import GbrtModel, GbrtParams, fit_gbrt
from .gbrt_matcher import GbrtMatcher, build_training_set, pair_distances
from .maintenance import FifoEviction, LruEviction, MaintainedStore
from .matcher import (
    MatchOutcome,
    ParamAwareMatcher,
    ProfileMatcher,
    SideMatch,
    StaticsFirstMatcher,
    explain_match,
)
from .pstorm import PStorM, SubmissionResult
from .resilient import ResilientProfileStore
from .similarity import (
    DEFAULT_JACCARD_THRESHOLD,
    MinMaxNormalizer,
    default_euclidean_threshold,
    euclidean_distance,
    jaccard_index,
)
from .store import ProfileStore
from .store_models import OpenTsdbStore, TablePerTypeStore
from .transfer import CalibrationRatios, calibration_ratios, transfer_profile
from .workflows import ChainStage, StageResult, WorkflowResult, run_chain

__all__ = [
    "augment_with_call_graphs",
    "augment_with_params",
    "call_graph_signature",
    "extract_callee_names",
    "NUMERIC_FEATURE_COLUMNS",
    "NearestNeighborMatcher",
    "information_gain",
    "profile_numeric_vector",
    "rank_features",
    "JobFeatures",
    "extract_job_features",
    "observe_record_streams",
    "GbrtModel",
    "GbrtParams",
    "fit_gbrt",
    "GbrtMatcher",
    "build_training_set",
    "pair_distances",
    "FifoEviction",
    "LruEviction",
    "MaintainedStore",
    "MatchOutcome",
    "ProfileMatcher",
    "SideMatch",
    "StaticsFirstMatcher",
    "ParamAwareMatcher",
    "explain_match",
    "PStorM",
    "SubmissionResult",
    "ResilientProfileStore",
    "DEFAULT_JACCARD_THRESHOLD",
    "MinMaxNormalizer",
    "default_euclidean_threshold",
    "euclidean_distance",
    "jaccard_index",
    "ProfileStore",
    "OpenTsdbStore",
    "TablePerTypeStore",
    "CalibrationRatios",
    "calibration_ratios",
    "transfer_profile",
    "ChainStage",
    "StageResult",
    "WorkflowResult",
    "run_chain",
]
