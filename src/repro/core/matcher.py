"""The multi-stage profile matcher (§4.3, Fig 4.4).

The workflow runs once per side (map, reduce).  Starting from all stored
profiles, it applies, in order:

1. **Dynamic filter** — normalized Euclidean distance over the side's
   Table 4.1 selectivities, threshold θ_Eucl.  An empty result here is a
   hard *No Match* (nothing in the store even behaves like this job).
2. **CFG filter** — conservative synchronized-walk equality of the side's
   control flow graph.
3. **Jaccard filter** — Jaccard index over the side's categorical static
   features, threshold θ_Jacc.
4. **Tie-break** — closest stored input data size (Fig 4.6's rationale).

An empty set after stages 2-3 means the job was never run on this cluster;
the matcher then falls back to a Euclidean filter over the *cost factors*
of the stage-1 survivors (cost factors are noisy, so they are a last
resort — §4.1.1) and tie-breaks by size.  Map-side and reduce-side winners
are composed into the returned profile, which is how previously unseen
jobs get usable profiles.

The dynamic filter deliberately runs *before* the static filters: the same
program run with different user parameters (co-occurrence window sizes,
grep patterns) produces incompatible profiles that static features cannot
tell apart, and statics-first would also evict behaviour-compatible
profiles of *other* jobs that composition needs (§4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING, Callable

from ..observability import (
    COUNT_BUCKETS,
    DEFAULT_BUCKETS,
    LATENCY_BUCKETS,
    MetricsRegistry,
    Tracer,
    get_registry,
    get_tracer,
)
from ..starfish.profile import JobProfile
from .features import JobFeatures
from .similarity import (
    DEFAULT_JACCARD_THRESHOLD,
    default_euclidean_threshold,
    jaccard_index,
)
from .store import DYNAMIC_PREFIX, STATIC_PREFIX, ProfileStore

if TYPE_CHECKING:
    from .match_index import MatchIndex

__all__ = [
    "ProfileMatcher",
    "StaticsFirstMatcher",
    "ParamAwareMatcher",
    "SideMatch",
    "MatchOutcome",
    "Stage1Batch",
    "explain_match",
]


@dataclass(frozen=True)
class SideMatch:
    """Result of the Fig 4.4 workflow for one side."""

    side: str
    job_id: str | None
    #: "static" (stages 1-4), "cost-fallback", "no-match-dynamic" (empty
    #: after stage 1), or "no-match" (fallback empty too).
    stage: str
    #: Candidate-set sizes after each stage, for diagnostics.
    funnel: dict[str, int] = field(default_factory=dict)

    @property
    def matched(self) -> bool:
        return self.job_id is not None


@dataclass(frozen=True)
class MatchOutcome:
    """Result of matching a submitted job against the store."""

    profile: JobProfile | None
    map_match: SideMatch
    reduce_match: SideMatch | None

    @property
    def matched(self) -> bool:
        return self.profile is not None

    @property
    def is_composite(self) -> bool:
        """Whether map and reduce sides come from different stored jobs."""
        if not self.matched or self.reduce_match is None:
            return False
        return self.map_match.job_id != self.reduce_match.job_id


class Stage1Batch:
    """Survivors of one stage-1 broadcast, pinned to an index generation.

    Produced by :meth:`ProfileMatcher.precompute_stage1`; consumed by
    :meth:`ProfileMatcher.match_side`, which discards it the moment the
    index generation no longer matches — a store write between the
    broadcast and an item's match invalidates the whole batch, keeping
    batched results byte-identical to sequential ones.
    """

    def __init__(
        self,
        generation: int | None,
        by_probe: dict[int, dict[str, list[str]]],
    ) -> None:
        self.generation = generation
        self._by_probe = by_probe

    def survivors_for(
        self, features: "JobFeatures", side: str
    ) -> list[str] | None:
        return self._by_probe.get(id(features), {}).get(side)


class ProfileMatcher:
    """Matches submitted jobs to stored profiles via the Fig 4.4 stages.

    Two execution paths answer the same workflow:

    - **indexed** (default) — stages probe the store's columnar
      :class:`~repro.core.match_index.MatchIndex`: one vectorized
      normalized-Euclidean/Jaccard pass over the candidate block, with
      memoized CFG verdicts.
    - **scan** — the original filtered range scans; the property-tested
      reference, and the fallback whenever the index is disabled
      (``use_index=False`` or ``store.enable_index=False``), unavailable
      (a store object without ``match_index()``), or poisoned (a fault
      while refreshing it).  ``ResilientProfileStore`` retries the scan
      stages, so faults degrade the probe to the slow path instead of
      failing it.
    """

    #: Subclasses that override ``_match_side_inner`` with a different
    #: stage order must opt out of the indexed dispatch.
    _index_capable = True

    def __init__(
        self,
        store: ProfileStore,
        jaccard_threshold: float = DEFAULT_JACCARD_THRESHOLD,
        euclidean_threshold: float | None = None,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        use_index: bool = True,
    ) -> None:
        """Args:
            store: the profile store to match against.
            jaccard_threshold: θ_Jacc (§6 uses 0.5).
            euclidean_threshold: θ_Eucl; defaults to √(#features)/2 per
                side as in §6.
            registry, tracer: observability sinks; None falls back to the
                module defaults.
            use_index: probe the columnar match index when the store
                offers one; False forces the scan path.
        """
        self.store = store
        self.jaccard_threshold = jaccard_threshold
        self._euclidean_override = euclidean_threshold
        self.registry = registry
        self.tracer = tracer
        self.use_index = use_index

    # ------------------------------------------------------------------
    def _record_side_match(self, match: SideMatch) -> None:
        """Funnel histograms + per-side outcome counters for one side."""
        registry = get_registry(self.registry)
        for stage, survivors in match.funnel.items():
            registry.histogram(
                "pstorm_matcher_funnel_survivors",
                "candidates surviving each matcher stage",
                labels={"side": match.side, "stage": stage},
                buckets=COUNT_BUCKETS,
            ).observe(survivors)
        registry.counter(
            "pstorm_matcher_side_outcomes_total",
            "per-side matcher outcomes by terminal stage",
            labels={"side": match.side, "stage": match.stage},
        ).inc()

    # ------------------------------------------------------------------
    def _theta_eucl(self, num_features: int) -> float:
        if self._euclidean_override is not None:
            return self._euclidean_override
        return default_euclidean_threshold(num_features)

    def _tie_break(
        self,
        candidates: list[str],
        input_bytes: int,
        side_statics: dict[str, str],
        side: str,
    ) -> str:
        """Pick one profile from the surviving candidates.

        Candidates whose static features agree *exactly* with the probe
        (Jaccard 1.0 — the same program) outrank merely similar ones;
        within a rank, the closest stored input data size wins (Fig 4.6's
        rationale — the same job on different data sizes has different
        shuffle behaviour); remaining ties break on similarity and then
        job id for determinism.
        """
        score_hist = get_registry(self.registry).histogram(
            "pstorm_matcher_tiebreak_similarity",
            "Jaccard similarity of tie-break candidates to the probe",
            labels={"side": side},
            buckets=DEFAULT_BUCKETS,
        )

        def sort_key(job_id: str) -> tuple[int, int, float, str]:
            stored = self.store.get_dynamic(job_id).get("INPUT_BYTES", 0)
            static = self.store.get_static(job_id)
            candidate = static.map_side() if side == "map" else static.reduce_side()
            shared = {name: candidate.get(name, "") for name in side_statics}
            similarity = jaccard_index(side_statics, shared)
            score_hist.observe(similarity)
            same_program = 0 if similarity >= 1.0 else 1
            return (
                same_program,
                abs(int(stored) - input_bytes),
                -similarity,
                job_id,
            )

        return min(candidates, key=sort_key)

    # ------------------------------------------------------------------
    # Indexed-path plumbing
    # ------------------------------------------------------------------
    def _count_index_miss(self, reason: str) -> None:
        get_registry(self.registry).counter(
            "pstorm_matcher_index_misses_total",
            "side probes that fell back to the scan path, by cause",
            labels={"reason": reason},
        ).inc()

    def _probe_index(self) -> "MatchIndex | None":
        """The store's match index, refreshed — or None with a miss reason.

        The fallback ladder: *disabled* (matcher or store opted out) →
        *unavailable* (store object has no index accessor — duck-typed
        test doubles) → *poisoned* (refreshing it faulted; the scan path
        behind ``ResilientProfileStore`` retries instead).
        """
        if not (self.use_index and self._index_capable):
            self._count_index_miss("disabled")
            return None
        accessor = getattr(self.store, "match_index", None)
        if not callable(accessor):
            self._count_index_miss("unavailable")
            return None
        index = accessor()
        if index is None:
            self._count_index_miss("disabled")
            return None
        try:
            index.ensure_fresh()
        except Exception:
            self._count_index_miss("poisoned")
            return None
        return index

    def _index_stage(
        self, stage: str, prefix: str, call: Callable[[], list[str]]
    ) -> list[str]:
        """Run one indexed stage with scan-path observability parity.

        Emits the same ``pstorm.store.probe`` span and candidate-size
        histogram the scan path's ``scan_job_ids`` does (tagged
        ``via=index``), plus the index's own probe-latency histogram.
        """
        registry = get_registry(self.registry)
        tracer = get_tracer(self.tracer)
        began = perf_counter()
        with tracer.span(
            "pstorm.store.probe", stage=stage, prefix=prefix, via="index"
        ):
            result = call()
        registry.histogram(
            "pstorm_matcher_index_probe_seconds",
            "wall-clock latency of one indexed matcher stage",
            labels={"stage": stage},
            buckets=LATENCY_BUCKETS,
        ).observe(perf_counter() - began)
        registry.histogram(
            "pstorm_store_candidates",
            "candidate-set size surviving one store stage",
            labels={"stage": stage},
            buckets=COUNT_BUCKETS,
        ).observe(len(result))
        return result

    def _match_side_indexed(
        self,
        index: "MatchIndex",
        features: JobFeatures,
        side: str,
        stage1: list[str] | None = None,
    ) -> SideMatch:
        """The Fig 4.4 workflow over the columnar index.

        Stage-for-stage mirror of :meth:`_match_side_inner` — same
        thresholds, same funnel keys, same terminal stages — with the
        store scans replaced by index probes.  *stage1* short-circuits
        the dynamic filter with survivors a batched broadcast already
        computed (:meth:`precompute_stage1`); the broadcast kernel is
        bit-identical to the scalar stage, so the funnel and outcome are
        byte-identical either way.
        """
        flow, costs, statics, cfg = features.side_vectors(side)
        funnel: dict[str, int] = {}

        if stage1 is not None:
            survivors = list(stage1)
        else:
            survivors = self._index_stage(
                f"euclidean-{side}-flow",
                DYNAMIC_PREFIX,
                lambda: index.euclidean_stage(
                    side, "flow", list(flow), self._theta_eucl(len(flow))
                ),
            )
        funnel["dynamic"] = len(survivors)
        if not survivors:
            return SideMatch(side, None, "no-match-dynamic", funnel)
        stage1_survivors = survivors

        if cfg is not None:
            survivors = self._index_stage(
                f"cfg-{side}",
                STATIC_PREFIX,
                lambda: index.cfg_stage(side, cfg, survivors),
            )
        funnel["cfg"] = len(survivors)

        if survivors:
            survivors = self._index_stage(
                "jaccard",
                STATIC_PREFIX,
                lambda: index.jaccard_stage(
                    statics, self.jaccard_threshold, survivors
                ),
            )
        funnel["jaccard"] = len(survivors)

        score_hist = get_registry(self.registry).histogram(
            "pstorm_matcher_tiebreak_similarity",
            "Jaccard similarity of tie-break candidates to the probe",
            labels={"side": side},
            buckets=DEFAULT_BUCKETS,
        )
        if survivors:
            winner = index.tie_break(
                survivors,
                features.input_bytes,
                statics,
                side,
                observe=score_hist.observe,
            )
            return SideMatch(side, winner, "static", funnel)

        fallback = self._index_stage(
            f"euclidean-{side}-cost",
            DYNAMIC_PREFIX,
            lambda: index.euclidean_stage(
                side,
                "cost",
                list(costs),
                self._theta_eucl(6),
                candidates=stage1_survivors,
            ),
        )
        funnel["cost-fallback"] = len(fallback)
        if fallback:
            winner = index.tie_break(
                fallback,
                features.input_bytes,
                statics,
                side,
                observe=score_hist.observe,
            )
            return SideMatch(side, winner, "cost-fallback", funnel)
        return SideMatch(side, None, "no-match", funnel)

    # ------------------------------------------------------------------
    def match_side(
        self,
        features: JobFeatures,
        side: str,
        stage1: "Stage1Batch | None" = None,
    ) -> SideMatch:
        """Run the Fig 4.4 workflow for one side (indexed, else scan)."""
        registry = get_registry(self.registry)
        tracer = get_tracer(self.tracer)
        with tracer.span(
            "pstorm.match_side", side=side, job=features.job_name
        ) as span:
            index = self._probe_index()
            precomputed: list[str] | None = None
            if index is not None and stage1 is not None:
                # The broadcast survivors are only valid against the exact
                # generation they were priced at; any write (or republish)
                # since then re-runs the scalar stage instead.
                if (
                    stage1.generation is not None
                    and getattr(index, "generation", None) == stage1.generation
                ):
                    precomputed = stage1.survivors_for(features, side)
            match: SideMatch | None = None
            if index is not None:
                try:
                    match = self._match_side_indexed(
                        index, features, side, stage1=precomputed
                    )
                except Exception:
                    # A probe-time fault (e.g. the cached-normalizer read
                    # hitting an injected outage) poisons this probe only;
                    # the scan path below retries under the resilient
                    # store wrapper.
                    self._count_index_miss("poisoned")
                    match = None
            if match is not None:
                registry.counter(
                    "pstorm_matcher_index_hits_total",
                    "side probes answered by the columnar index",
                ).inc()
                span.set_attr("via", "index")
                partitions = getattr(index, "partition_count", None)
                if partitions is not None:
                    span.set_attr("partitions", partitions)
            else:
                match = self._match_side_inner(features, side)
                span.set_attr("via", "scan")
            span.set_attr("stage", match.stage)
            span.set_attr("matched", match.matched)
        self._record_side_match(match)
        return match

    def _match_side_inner(self, features: JobFeatures, side: str) -> SideMatch:
        flow, costs, statics, cfg = features.side_vectors(side)
        funnel: dict[str, int] = {}

        survivors = self.store.euclidean_stage(
            side, "flow", list(flow), self._theta_eucl(len(flow))
        )
        funnel["dynamic"] = len(survivors)
        if not survivors:
            return SideMatch(side, None, "no-match-dynamic", funnel)
        stage1_survivors = survivors

        if cfg is not None:
            survivors = self.store.cfg_stage(side, cfg, survivors)
        funnel["cfg"] = len(survivors)

        if survivors:
            survivors = self.store.jaccard_stage(
                statics, self.jaccard_threshold, survivors
            )
        funnel["jaccard"] = len(survivors)

        if survivors:
            winner = self._tie_break(survivors, features.input_bytes, statics, side)
            return SideMatch(side, winner, "static", funnel)

        # Previously unseen job: fall back to cost factors over the
        # stage-1 survivors (C' in the paper).  §6 defines θ_Eucl as
        # ½·√(number of dynamic features) — six per Table 4.1 — which we
        # use verbatim for this lenient last-resort filter.
        fallback = self.store.euclidean_stage(
            side,
            "cost",
            list(costs),
            self._theta_eucl(6),
            candidates=stage1_survivors,
        )
        funnel["cost-fallback"] = len(fallback)
        if fallback:
            winner = self._tie_break(fallback, features.input_bytes, statics, side)
            return SideMatch(side, winner, "cost-fallback", funnel)
        return SideMatch(side, None, "no-match", funnel)

    # ------------------------------------------------------------------
    # Batched stage-1 (the coalescing frontends' vectorized probe)
    # ------------------------------------------------------------------
    def precompute_stage1(
        self, features_list: "list[JobFeatures]"
    ) -> "Stage1Batch | None":
        """Price every probe's dynamic filter in one broadcast per side.

        Returns a :class:`Stage1Batch` the per-item :meth:`match_job`
        calls consume, or ``None`` whenever the batched path cannot be
        bit-identical to the scalar one — index disabled/unavailable/
        poisoned, mixed probe widths, or an index without the batch
        kernel — in which case callers simply match item by item.
        """
        if len(features_list) < 2:
            return None
        index = self._probe_index()
        if index is None:
            return None
        batch_kernel = getattr(index, "euclidean_stage_batch", None)
        if not callable(batch_kernel):
            self._count_index_miss("unavailable")
            return None
        per_side: dict[str, list[tuple[JobFeatures, tuple[float, ...]]]] = {
            "map": [],
            "reduce": [],
        }
        for features in features_list:
            per_side["map"].append((features, features.side_vectors("map")[0]))
            if features.has_reduce:
                per_side["reduce"].append(
                    (features, features.side_vectors("reduce")[0])
                )
        by_probe: dict[int, dict[str, list[str]]] = {
            id(features): {} for features in features_list
        }
        registry = get_registry(self.registry)
        tracer = get_tracer(self.tracer)
        try:
            for side, entries in per_side.items():
                if not entries:
                    continue
                widths = {len(flow) for __, flow in entries}
                if len(widths) != 1:
                    return None
                with tracer.span(
                    "pstorm.store.probe",
                    stage=f"euclidean-{side}-flow-batch",
                    prefix=DYNAMIC_PREFIX,
                    via="index",
                ):
                    survivors = batch_kernel(
                        side,
                        "flow",
                        [list(flow) for __, flow in entries],
                        self._theta_eucl(widths.pop()),
                    )
                for (features, __), row in zip(entries, survivors):
                    by_probe[id(features)][side] = row
        except Exception:
            self._count_index_miss("poisoned")
            return None
        registry.histogram(
            "pstorm_matcher_batch_size",
            "probes coalesced into one stage-1 broadcast",
            buckets=COUNT_BUCKETS,
        ).observe(len(features_list))
        return Stage1Batch(
            generation=getattr(index, "generation", None), by_probe=by_probe
        )

    # ------------------------------------------------------------------
    def match_job(
        self, features: JobFeatures, stage1: "Stage1Batch | None" = None
    ) -> MatchOutcome:
        """Match both sides and compose the returned profile."""
        registry = get_registry(self.registry)
        tracer = get_tracer(self.tracer)
        with tracer.span("pstorm.match_job", job=features.job_name) as span:
            outcome = self._match_job_inner(features, stage1)
            span.set_attr("matched", outcome.matched)
            span.set_attr("composite", outcome.is_composite)
        registry.counter(
            "pstorm_matcher_jobs_total", "jobs probed against the store"
        ).inc()
        if outcome.matched:
            registry.counter(
                "pstorm_matcher_matches_total", "probes that found a profile"
            ).inc()
            if outcome.is_composite:
                registry.counter(
                    "pstorm_matcher_composite_matches_total",
                    "matches composed from two donor jobs",
                ).inc()
        else:
            registry.counter(
                "pstorm_matcher_no_match_total", "probes that found nothing"
            ).inc()
        return outcome

    def _match_job_inner(
        self, features: JobFeatures, stage1: "Stage1Batch | None" = None
    ) -> MatchOutcome:
        map_match = self.match_side(features, "map", stage1=stage1)
        reduce_match = (
            self.match_side(features, "reduce", stage1=stage1)
            if features.has_reduce
            else None
        )

        if not map_match.matched:
            return MatchOutcome(None, map_match, reduce_match)
        if features.has_reduce and (reduce_match is None or not reduce_match.matched):
            return MatchOutcome(None, map_match, reduce_match)

        map_donor = self.store.get_profile(map_match.job_id)
        if not features.has_reduce:
            return MatchOutcome(map_donor, map_match, reduce_match)

        if reduce_match.job_id == map_match.job_id:
            return MatchOutcome(map_donor, map_match, reduce_match)
        reduce_donor = self.store.get_profile(reduce_match.job_id)
        return MatchOutcome(
            map_donor.compose_with(reduce_donor), map_match, reduce_match
        )


class StaticsFirstMatcher(ProfileMatcher):
    """The filter order §4.3 argues *against*: statics before dynamics.

    Running the CFG and Jaccard filters first evicts behaviour-compatible
    profiles of other jobs before the dynamic filter can keep them, so a
    previously unseen job loses its composition donors; and the same
    program under different user parameters (incompatible profiles!)
    sails through the static filters, to be mis-served later.  This class
    exists for the ablation that *measures* that argument.
    """

    #: Different stage order — the columnar index encodes the Fig 4.4
    #: pipeline, so this ablation always takes the scan path.
    _index_capable = False

    def _match_side_inner(self, features: JobFeatures, side: str) -> SideMatch:
        flow, costs, statics, cfg = features.side_vectors(side)
        funnel: dict[str, int] = {}

        survivors = self.store.job_ids()
        if cfg is not None:
            survivors = self.store.cfg_stage(side, cfg, survivors)
        funnel["cfg"] = len(survivors)

        if survivors:
            survivors = self.store.jaccard_stage(
                statics, self.jaccard_threshold, survivors
            )
        funnel["jaccard"] = len(survivors)

        if survivors:
            survivors = self.store.euclidean_stage(
                side,
                "flow",
                list(flow),
                self._theta_eucl(len(flow)),
                candidates=survivors,
            )
        funnel["dynamic"] = len(survivors)

        if survivors:
            winner = self._tie_break(survivors, features.input_bytes, statics, side)
            return SideMatch(side, winner, "static", funnel)
        return SideMatch(side, None, "no-match", funnel)


def explain_match(matcher: ProfileMatcher, features: JobFeatures) -> str:
    """A human-readable trace of a match_job call.

    Renders the per-side funnel — how many candidates survived each
    Fig 4.4 stage — plus the winning donor and path, the view an operator
    wants when asking "why did my job get *that* profile?".
    """
    outcome = matcher.match_job(features)
    lines = [f"match trace for {features.job_name!r} "
             f"(input {features.input_bytes / (1 << 30):.1f} GB)"]

    sides = [("map", outcome.map_match)]
    if outcome.reduce_match is not None:
        sides.append(("reduce", outcome.reduce_match))
    for side, match in sides:
        lines.append(f"  {side} side:")
        for stage, survivors in match.funnel.items():
            lines.append(f"    after {stage:<14} {survivors} candidate(s)")
        if match.matched:
            lines.append(f"    -> {match.job_id} via {match.stage}")
        else:
            lines.append(f"    -> no match ({match.stage})")

    if outcome.matched:
        kind = "composite" if outcome.is_composite else "single-donor"
        lines.append(f"  returned: {kind} profile {outcome.profile.job_name!r}")
    else:
        lines.append("  returned: nothing — the job will run instrumented")
    return "\n".join(lines)


class ParamAwareMatcher(ProfileMatcher):
    """The §7.2.1 extension, end to end.

    Folds each job's user parameters into the static features on both
    the probe and storage sides (store profiles via
    :meth:`put_with_params` or pre-augmented statics), so two
    parameterizations of the same program — statically identical under
    Table 4.3 — become distinguishable at the Jaccard stage and at the
    tie-break, as the thesis anticipates.
    """

    @staticmethod
    def augment(features: JobFeatures, job) -> JobFeatures:
        """Probe-side augmentation: PARAM_* entries join the statics."""
        from dataclasses import replace

        from .extensions import augment_with_params

        return replace(features, static=augment_with_params(features.static, job))
