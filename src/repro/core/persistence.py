"""Profile store persistence: export to and import from JSON.

A real PStorM deployment's state lives in HBase and survives daemon
restarts; our in-memory substrate needs an explicit snapshot path.  The
format is plain JSON — one object per stored job holding the serialized
profile and static features — so snapshots are diffable, versionable, and
shareable between clusters (pair with
:func:`repro.core.transfer.transfer_profile` for the §7.2.6 scenario of
bootstrapping a new cluster's store from another cluster's history).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..analysis.static_features import StaticFeatures
from ..chaos.retry import RetryPolicy
from ..starfish.profile import JobProfile
from .resilient import ResilientProfileStore
from .store import ProfileStore

__all__ = [
    "dump_store",
    "load_store",
    "store_to_dict",
    "store_from_dict",
    "snapshot_store",
    "restore_store",
    "compact_store",
]

FORMAT_VERSION = 1


def store_to_dict(store: ProfileStore) -> dict[str, Any]:
    """Serialize a store's contents to a JSON-compatible dict."""
    entries = {}
    for job_id in store.job_ids():
        entries[job_id] = {
            "profile": store.get_profile(job_id).to_dict(),
            "static": store.get_static(job_id).to_dict(),
        }
    return {"version": FORMAT_VERSION, "entries": entries}


def store_from_dict(
    payload: dict[str, Any],
    store: ProfileStore | None = None,
    retry_policy: RetryPolicy | None = None,
) -> ProfileStore:
    """Rebuild a store from a snapshot dict.

    Normalizer bounds are reconstructed by replaying the inserts, so a
    restored store matches exactly like the original did.  Replay writes
    go through the resilient client, so a restore survives transient
    substrate faults; *retry_policy* overrides its default budgets.

    Replay keeps the columnar match index coherent for free: every
    replayed ``put`` bumps the store generation and enqueues an index
    update, and the explicit refresh at the end folds them in so a
    restored store whose index was already hot probes warm immediately.
    """
    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported store snapshot version: {version!r}")
    if store is None:
        store = ProfileStore()
    writer = (
        store
        if isinstance(store, ResilientProfileStore)
        else ResilientProfileStore(store, policy=retry_policy)
    )
    for job_id, entry in sorted(payload["entries"].items()):
        profile = JobProfile.from_dict(entry["profile"])
        static = StaticFeatures.from_dict(entry["static"])
        writer.put(profile, static, job_id=job_id)
    refresh = getattr(writer, "refresh_match_index", None)
    if callable(refresh):
        try:
            refresh()
        except Exception:
            # A restore must not fail because the warm-up scan did: the
            # matcher falls back to the scan path until the index heals.
            pass
    return store


def dump_store(store: ProfileStore, path: str | Path) -> None:
    """Write a store snapshot to *path* as JSON."""
    path = Path(path)
    path.write_text(json.dumps(store_to_dict(store), indent=1, sort_keys=True))


def load_store(
    path: str | Path,
    store: ProfileStore | None = None,
    retry_policy: RetryPolicy | None = None,
) -> ProfileStore:
    """Load a store snapshot from *path*."""
    payload = json.loads(Path(path).read_text())
    return store_from_dict(payload, store=store, retry_policy=retry_policy)


# ----------------------------------------------------------------------
# Physical durability (WAL + SSTables + index checkpoint)
# ----------------------------------------------------------------------
# The JSON export above is a *logical* snapshot: portable, diffable,
# restored by replaying every insert (O(store size) restart cost).  A
# ``data_dir``-backed store instead persists *physically* — per-region
# WALs and SSTables plus a match-index checkpoint — so restoring costs
# only a manifest load and a WAL-tail replay.  These helpers are the
# explicit-intent entry points; ``benchmarks/test_restart_time.py``
# measures the two restart paths against each other.


def snapshot_store(store: ProfileStore) -> Path:
    """Checkpoint a durable store (flush + ``index_checkpoint.json``).

    Raises ``ValueError`` for in-memory stores — use :func:`dump_store`
    for those.
    """
    return store.snapshot()


def restore_store(data_dir: str | Path, **kwargs: Any) -> ProfileStore:
    """Reopen a durable store from its ``data_dir``.

    Rows, normalizer bounds, and the write generation come back from
    the substrate's manifests and WAL tails; the match index warms from
    the last :func:`snapshot_store` checkpoint when one exists.
    """
    return ProfileStore.restore(data_dir, **kwargs)


def compact_store(store: ProfileStore, force: bool = True) -> dict[str, Any]:
    """Fully compact every region store; returns the layout summary.

    On a durable store this rewrites every surviving SSTable in the
    substrate's current format — the explicit-intent entry point for
    migrating legacy one-JSON-blob ``sst_*.json`` tables to the binary
    block-sharded format (``repro compact --data-dir`` wraps it).
    """
    return store.compact(force=force)
