"""Generic feature-selection baselines (§6.1.1).

Two alternatives to PStorM's domain-driven feature choice, both ranking
candidate features by **information gain** against the job label and
keeping the top *F* (where F = the number of features PStorM uses):

- **P-features**: candidates are the numeric features of the Starfish
  profile (selectivities + cost factors).
- **SP-features**: candidates additionally include PStorM's categorical
  static features.

As the paper observes, the top-F features end up all-numerical even for
SP-features: fine-grained numeric features form near-pure partitions of
the (few) samples per job, so their estimated information gain saturates
at the label entropy and outranks every categorical feature — a textbook
overfit of the generic approach that PStorM's domain knowledge avoids.
Matching then has to be a plain nearest-neighbour search in normalized
Euclidean space, dragging the high-variance cost factors into every
distance (§4.1.1), which is where the accuracy loss of Fig 6.1 comes from.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass

import numpy as np

from ..starfish.profile import (
    MAP_COST_FEATURES,
    MAP_DATA_FLOW_FEATURES,
    REDUCE_COST_FEATURES,
    REDUCE_DATA_FLOW_FEATURES,
    JobProfile,
)
from .similarity import MinMaxNormalizer
from .store import (
    MAP_COST_COLUMNS,
    RED_COST_COLUMNS,
    ProfileStore,
)

__all__ = [
    "NUMERIC_FEATURE_COLUMNS",
    "profile_numeric_vector",
    "information_gain",
    "rank_features",
    "NearestNeighborMatcher",
]

#: All numeric (dynamic) candidate features, per side then costs.
NUMERIC_FEATURE_COLUMNS: tuple[str, ...] = (
    MAP_DATA_FLOW_FEATURES
    + REDUCE_DATA_FLOW_FEATURES
    + MAP_COST_COLUMNS
    + RED_COST_COLUMNS
)

#: Categorical static candidates for SP-features.
CATEGORICAL_FEATURE_COLUMNS: tuple[str, ...] = (
    "IN_FORMATTER",
    "MAPPER",
    "MAP_IN_KEY",
    "MAP_IN_VAL",
    "MAP_OUT_KEY",
    "MAP_OUT_VAL",
    "COMBINER",
    "REDUCER",
    "RED_OUT_KEY",
    "RED_OUT_VAL",
    "OUT_FORMATTER",
)


def profile_numeric_vector(profile: JobProfile) -> dict[str, float]:
    """The numeric candidate features of one profile, by column name."""
    values: dict[str, float] = {}
    mp = profile.map_profile
    for name in MAP_DATA_FLOW_FEATURES:
        values[name] = float(mp.data_flow[name])
    for name, column in zip(MAP_COST_FEATURES, MAP_COST_COLUMNS):
        values[column] = float(mp.cost_factors.get(name, 0.0))
    rp = profile.reduce_profile
    for name in REDUCE_DATA_FLOW_FEATURES:
        values[name] = float(rp.data_flow[name]) if rp else 0.0
    for name, column in zip(REDUCE_COST_FEATURES, RED_COST_COLUMNS):
        values[column] = float(rp.cost_factors.get(name, 0.0)) if rp else 0.0
    return values


def _entropy(labels: list[str]) -> float:
    counts = Counter(labels)
    total = len(labels)
    return -sum(
        (count / total) * math.log2(count / total) for count in counts.values()
    )


def information_gain(
    values: list[float] | list[str], labels: list[str], bins: int = 10
) -> float:
    """Information gain of one feature for predicting the job label.

    Numeric features are quantile-discretized into *bins*; categorical
    features use their values directly.
    """
    if len(values) != len(labels):
        raise ValueError("values and labels must align")
    if not labels:
        return 0.0

    if values and isinstance(values[0], str):
        assignments = list(values)
    else:
        array = np.asarray(values, dtype=float)
        quantiles = np.quantile(array, np.linspace(0, 1, bins + 1)[1:-1])
        assignments = [str(int(np.searchsorted(quantiles, v))) for v in array]

    base = _entropy(labels)
    groups: dict[str, list[str]] = defaultdict(list)
    for assignment, label in zip(assignments, labels):
        groups[assignment].append(label)
    conditional = sum(
        len(group) / len(labels) * _entropy(group) for group in groups.values()
    )
    return base - conditional


def rank_features(
    store: ProfileStore, include_static: bool, bins: int = 10
) -> list[tuple[str, float]]:
    """Rank candidate features by information gain, descending.

    Args:
        include_static: False for P-features, True for SP-features.
    """
    job_ids = store.job_ids()
    labels = []
    numeric_rows = []
    static_rows = []
    for job_id in job_ids:
        profile = store.get_profile(job_id)
        labels.append(profile.job_name)
        numeric_rows.append(profile_numeric_vector(profile))
        if include_static:
            static_rows.append(store.get_static(job_id).categorical)

    ranked: list[tuple[str, float]] = []
    for name in NUMERIC_FEATURE_COLUMNS:
        gain = information_gain([row[name] for row in numeric_rows], labels, bins)
        ranked.append((name, gain))
    if include_static:
        for name in CATEGORICAL_FEATURE_COLUMNS:
            gain = information_gain(
                [row[name] for row in static_rows], labels, bins
            )
            ranked.append((name, gain))
    # Stable sort: numeric candidates come first among equal gains, which
    # reproduces the paper's all-numerical top-F outcome.
    ranked.sort(key=lambda pair: -pair[1])
    return ranked


@dataclass
class NearestNeighborMatcher:
    """1-NN matcher over the top-F information-gain features.

    This is the matcher both baselines use: all selected features are
    numeric, so a min-max-normalized Euclidean nearest neighbour is the
    natural (and the paper's) choice.
    """

    store: ProfileStore
    feature_names: list[str]

    def match(
        self, probe_profile: JobProfile, exclude: set[str] | None = None
    ) -> str | None:
        """Nearest stored profile to the probe's sample profile.

        Args:
            exclude: job ids to skip (emulates the DD content state
                without rebuilding the store).
        """
        job_ids = self.store.job_ids()
        if exclude:
            job_ids = [job_id for job_id in job_ids if job_id not in exclude]
        if not job_ids:
            return None
        probe_values = profile_numeric_vector(probe_profile)

        rows = []
        for job_id in job_ids:
            vector = profile_numeric_vector(self.store.get_profile(job_id))
            rows.append([vector[name] for name in self.feature_names])

        normalizer = MinMaxNormalizer()
        for row in rows:
            normalizer.update(row)
        probe = normalizer.normalize(
            [probe_values[name] for name in self.feature_names]
        )

        best_id = None
        best_distance = math.inf
        for job_id, row in zip(job_ids, rows):
            candidate = normalizer.normalize(row)
            distance = math.sqrt(
                sum((a - b) ** 2 for a, b in zip(probe, candidate))
            )
            if distance < best_distance:
                best_distance = distance
                best_id = job_id
        return best_id
