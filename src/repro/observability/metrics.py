"""Thread-safe metrics: counters, gauges, and fixed-bucket histograms.

The registry is the unit of collection: instrumented components ask it for
instruments by name (plus optional static labels) and record into them;
exporters (``repro.observability.export``) walk ``registry.collect()``.

A *disabled* registry hands out shared no-op instruments, so the cost of
instrumentation on a hot path collapses to an attribute check and an empty
method call — cheap enough to leave the calls inline in the simulator's
inner loops (benchmarked in ``benchmarks/test_observability_overhead.py``).
"""

from __future__ import annotations

import bisect
import re
import threading
from typing import Iterable, Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "LATENCY_BUCKETS",
    "COUNT_BUCKETS",
    "SIM_SECONDS_BUCKETS",
]

#: General-purpose bucket boundaries (unitless values around 1).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)
#: Wall-clock latencies of in-process operations (seconds).
LATENCY_BUCKETS: tuple[float, ...] = (
    1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.25, 1.0,
)
#: Small cardinalities: candidate-set sizes, rows per scan, waves.
COUNT_BUCKETS: tuple[float, ...] = (
    0.0, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0,
)
#: Simulated durations (seconds of modelled cluster time).
SIM_SECONDS_BUCKETS: tuple[float, ...] = (
    0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0, 600.0, 1800.0, 3600.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


def _check_name(name: str) -> None:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")


def _label_key(labels: Mapping[str, str] | None) -> tuple[tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Instrument:
    """Common identity/bookkeeping of one named instrument."""

    kind: str = "instrument"

    def __init__(
        self, name: str, description: str, labels: Mapping[str, str] | None
    ) -> None:
        self.name = name
        self.description = description
        self.labels: dict[str, str] = dict(_label_key(labels))
        self._lock = threading.Lock()

    @property
    def key(self) -> tuple[str, tuple[tuple[str, str], ...]]:
        return (self.name, _label_key(self.labels))


class Counter(_Instrument):
    """Monotonically increasing accumulator."""

    kind = "counter"

    def __init__(self, name, description="", labels=None) -> None:
        super().__init__(name, description, labels)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Gauge(_Instrument):
    """A value that can go up and down (waves in flight, occupancy, ...)."""

    kind = "gauge"

    def __init__(self, name, description="", labels=None) -> None:
        super().__init__(name, description, labels)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Histogram(_Instrument):
    """Fixed-boundary histogram with a quantile summary.

    Boundaries are inclusive upper bounds (Prometheus ``le`` semantics);
    an implicit ``+Inf`` bucket catches the tail.  Quantiles are estimated
    by linear interpolation inside the winning bucket, clamped to the
    observed min/max so single-observation histograms report exact values.
    """

    kind = "histogram"

    def __init__(
        self,
        name,
        description="",
        labels=None,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, description, labels)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("a histogram needs at least one bucket boundary")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("bucket boundaries must be strictly increasing")
        if any(b != b or b in (float("inf"), float("-inf")) for b in bounds):
            raise ValueError("bucket boundaries must be finite")
        self.boundaries = bounds
        self._counts = [0] * (len(bounds) + 1)  # final slot = +Inf bucket
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect.bisect_left(self.boundaries, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    # -- read side -----------------------------------------------------
    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def minimum(self) -> float | None:
        return None if self._count == 0 else self._min

    @property
    def maximum(self) -> float | None:
        return None if self._count == 0 else self._max

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative ``(le, count)`` pairs, ending with ``(inf, total)``."""
        pairs = []
        cumulative = 0
        for bound, count in zip(self.boundaries, self._counts):
            cumulative += count
            pairs.append((bound, cumulative))
        pairs.append((float("inf"), self._count))
        return pairs

    def quantile(self, q: float) -> float | None:
        """Estimated q-quantile (0 <= q <= 1), or None when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            if self._count == 0:
                return None
            target = q * self._count
            cumulative = 0
            for index, count in enumerate(self._counts):
                if count == 0:
                    continue
                lower = cumulative
                cumulative += count
                if cumulative >= target:
                    low = self.boundaries[index - 1] if index > 0 else self._min
                    high = (
                        self.boundaries[index]
                        if index < len(self.boundaries)
                        else self._max
                    )
                    low = max(low, self._min)
                    high = min(high, self._max)
                    if high <= low or count == 0:
                        return low
                    fraction = (target - lower) / count
                    return low + (high - low) * min(1.0, max(0.0, fraction))
            return self._max

    def summary(self) -> dict[str, float | int | None]:
        return {
            "count": self._count,
            "sum": self._sum,
            "min": self.minimum,
            "max": self.maximum,
            "p50": self.quantile(0.5),
            "p90": self.quantile(0.9),
            "p99": self.quantile(0.99),
        }

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * len(self._counts)
            self._count = 0
            self._sum = 0.0
            self._min = float("inf")
            self._max = float("-inf")


# ----------------------------------------------------------------------
# No-op instruments handed out by disabled registries
# ----------------------------------------------------------------------
class _NullCounter:
    kind = "counter"
    name = ""
    labels: dict[str, str] = {}
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def reset(self) -> None:
        pass


class _NullGauge:
    kind = "gauge"
    name = ""
    labels: dict[str, str] = {}
    value = 0.0

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def reset(self) -> None:
        pass


class _NullHistogram:
    kind = "histogram"
    name = ""
    labels: dict[str, str] = {}
    boundaries: tuple[float, ...] = ()
    count = 0
    sum = 0.0
    minimum = None
    maximum = None

    def observe(self, value: float) -> None:
        pass

    def bucket_counts(self) -> list[tuple[float, int]]:
        return []

    def quantile(self, q: float) -> None:
        return None

    def summary(self) -> dict:
        return {"count": 0, "sum": 0.0, "min": None, "max": None,
                "p50": None, "p90": None, "p99": None}

    def reset(self) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Factory and collection point for instruments.

    Args:
        enabled: when False every ``counter``/``gauge``/``histogram`` call
            returns a shared no-op instrument and nothing is recorded.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._instruments: dict[tuple, _Instrument] = {}

    # ------------------------------------------------------------------
    def _get_or_create(self, cls, name, description, labels, **kwargs):
        _check_name(name)
        key = (name, _label_key(labels))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = cls(name, description, labels, **kwargs)
                self._instruments[key] = instrument
            elif not isinstance(instrument, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {instrument.kind}"
                )
            return instrument

    def counter(
        self,
        name: str,
        description: str = "",
        labels: Mapping[str, str] | None = None,
    ) -> Counter:
        if not self.enabled:
            return _NULL_COUNTER
        return self._get_or_create(Counter, name, description, labels)

    def gauge(
        self,
        name: str,
        description: str = "",
        labels: Mapping[str, str] | None = None,
    ) -> Gauge:
        if not self.enabled:
            return _NULL_GAUGE
        return self._get_or_create(Gauge, name, description, labels)

    def histogram(
        self,
        name: str,
        description: str = "",
        labels: Mapping[str, str] | None = None,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        if not self.enabled:
            return _NULL_HISTOGRAM
        return self._get_or_create(
            Histogram, name, description, labels, buckets=buckets
        )

    # ------------------------------------------------------------------
    def collect(self) -> list[_Instrument]:
        """All registered instruments, sorted by (name, labels)."""
        with self._lock:
            return sorted(self._instruments.values(), key=lambda i: i.key)

    def get(self, name: str, labels: Mapping[str, str] | None = None):
        """Look up an existing instrument, or None."""
        return self._instruments.get((name, _label_key(labels)))

    def names(self) -> list[str]:
        return sorted({i.name for i in self._instruments.values()})

    def reset(self) -> None:
        """Zero every instrument (registrations are kept)."""
        for instrument in self.collect():
            instrument.reset()

    def clear(self) -> None:
        """Forget every instrument."""
        with self._lock:
            self._instruments.clear()

    def __len__(self) -> int:
        return len(self._instruments)
