"""Render a registry and/or tracer to dict, JSON, or Prometheus text.

The dict form is the canonical snapshot (``SubmissionResult.metrics`` and
the CLI's ``--emit-metrics`` use it); JSON is ``json.dumps`` of that dict;
the Prometheus text format follows the exposition format closely enough to
be scraped (``# HELP``/``# TYPE`` comments, cumulative ``_bucket{le=...}``
series, ``_sum``/``_count``).
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from .metrics import MetricsRegistry
from .tracing import Tracer

__all__ = [
    "registry_to_dict",
    "tracer_to_dict",
    "snapshot",
    "to_json",
    "to_prometheus",
]


def _label_suffix(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + body + "}"


def _le_text(bound: float) -> str:
    return "+Inf" if bound == float("inf") else format(bound, "g")


def registry_to_dict(registry: MetricsRegistry) -> dict[str, Any]:
    """Snapshot every instrument into plain dicts (JSON-safe)."""
    counters: dict[str, Any] = {}
    gauges: dict[str, Any] = {}
    histograms: dict[str, Any] = {}
    for instrument in registry.collect():
        key = instrument.name + _label_suffix(instrument.labels)
        if instrument.kind == "counter":
            counters[key] = instrument.value
        elif instrument.kind == "gauge":
            gauges[key] = instrument.value
        elif instrument.kind == "histogram":
            summary = instrument.summary()
            histograms[key] = {
                "buckets": [
                    {"le": _le_text(bound), "count": count}
                    for bound, count in instrument.bucket_counts()
                ],
                **summary,
            }
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


def tracer_to_dict(tracer: Tracer) -> dict[str, Any]:
    """Snapshot the tracer's ring buffer of completed spans."""
    return {
        "capacity": tracer.capacity,
        "dropped": tracer.dropped,
        "spans": [span.to_dict() for span in tracer.spans()],
    }


def snapshot(
    registry: MetricsRegistry | None = None, tracer: Tracer | None = None
) -> dict[str, Any]:
    """One combined snapshot (defaults to the module-level registry/tracer)."""
    from . import default_registry, default_tracer

    registry = registry if registry is not None else default_registry()
    tracer = tracer if tracer is not None else default_tracer()
    return {
        "metrics": registry_to_dict(registry),
        "trace": tracer_to_dict(tracer),
    }


def to_json(
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
    indent: int | None = 2,
) -> str:
    return json.dumps(snapshot(registry, tracer), indent=indent, sort_keys=True)


def to_prometheus(registry: MetricsRegistry | None = None) -> str:
    """Prometheus exposition-format text for one registry."""
    from . import default_registry

    registry = registry if registry is not None else default_registry()
    lines: list[str] = []
    seen_headers: set[str] = set()
    for instrument in registry.collect():
        name, labels = instrument.name, instrument.labels
        if name not in seen_headers:
            seen_headers.add(name)
            if instrument.description:
                lines.append(f"# HELP {name} {instrument.description}")
            lines.append(f"# TYPE {name} {instrument.kind}")
        if instrument.kind in ("counter", "gauge"):
            lines.append(f"{name}{_label_suffix(labels)} {instrument.value:g}")
        else:  # histogram
            for bound, count in instrument.bucket_counts():
                bucket_labels = dict(labels)
                bucket_labels["le"] = _le_text(bound)
                lines.append(f"{name}_bucket{_label_suffix(bucket_labels)} {count}")
            suffix = _label_suffix(labels)
            lines.append(f"{name}_sum{suffix} {instrument.sum:g}")
            lines.append(f"{name}_count{suffix} {instrument.count}")
    return "\n".join(lines) + ("\n" if lines else "")
