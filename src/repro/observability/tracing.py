"""Span tracing with a bounded buffer of completed spans.

Two ways to produce spans:

- ``with tracer.span("name", key=value):`` — wall-clock span around real
  work (store probes, HBase scans, a whole ``run_job`` call).  Nesting is
  tracked per thread, so child spans carry their parent's id.
- ``tracer.record_span("name", start, end, attrs)`` — a span whose
  endpoints live on another clock, used for *simulated* time: the engine
  records per-task and per-phase spans at the timestamps the scheduler
  computed, which makes traces deterministic under a fixed seed.

Completed spans land in a ring buffer (``capacity`` newest spans are
kept; older ones are evicted and counted in ``dropped``).
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

__all__ = ["Span", "Tracer", "WALL_CLOCK", "SIMULATED_CLOCK"]

WALL_CLOCK = "wall"
SIMULATED_CLOCK = "simulated"


@dataclass
class Span:
    """One completed (or in-flight) span."""

    span_id: int
    parent_id: int | None
    name: str
    start: float
    end: float | None = None
    clock: str = WALL_CLOCK
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float | None:
        if self.end is None:
            return None
        return self.end - self.start

    def set_attr(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def to_dict(self) -> dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "clock": self.clock,
            "attrs": dict(self.attrs),
        }


class _NullSpan:
    """Do-nothing span handed out by a disabled tracer."""

    span_id = 0
    parent_id = None
    name = ""
    start = 0.0
    end = 0.0
    clock = WALL_CLOCK
    attrs: dict[str, Any] = {}
    duration = 0.0

    def set_attr(self, key: str, value: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Produces spans and retains the newest ``capacity`` completed ones."""

    def __init__(
        self,
        capacity: int = 4096,
        enabled: bool = True,
        clock=time.perf_counter,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.enabled = enabled
        self._clock = clock
        self._completed: deque[Span] = deque(maxlen=capacity)
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._lock = threading.Lock()
        self.dropped = 0

    # ------------------------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current_span(self) -> Span | None:
        """Innermost active (wall-clock) span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def _finish(self, span: Span) -> None:
        with self._lock:
            if len(self._completed) == self._completed.maxlen:
                self.dropped += 1
            self._completed.append(span)

    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a wall-clock span around a block of real work."""
        if not self.enabled:
            yield _NULL_SPAN
            return
        stack = self._stack()
        parent = stack[-1].span_id if stack else None
        span = Span(
            span_id=next(self._ids),
            parent_id=parent,
            name=name,
            start=self._clock(),
            clock=WALL_CLOCK,
            attrs=dict(attrs),
        )
        stack.append(span)
        try:
            yield span
        finally:
            span.end = self._clock()
            stack.pop()
            self._finish(span)

    def record_span(
        self,
        name: str,
        start: float,
        end: float,
        attrs: Mapping[str, Any] | None = None,
        clock: str = SIMULATED_CLOCK,
    ) -> Span | None:
        """Record an already-timed span (e.g. on the simulated clock)."""
        if not self.enabled:
            return None
        parent = self.current_span()
        span = Span(
            span_id=next(self._ids),
            parent_id=parent.span_id if parent else None,
            name=name,
            start=float(start),
            end=float(end),
            clock=clock,
            attrs=dict(attrs or {}),
        )
        self._finish(span)
        return span

    # ------------------------------------------------------------------
    def spans(self, name: str | None = None, clock: str | None = None) -> list[Span]:
        """Completed spans, oldest first, optionally filtered."""
        with self._lock:
            result = list(self._completed)
        if name is not None:
            result = [s for s in result if s.name == name]
        if clock is not None:
            result = [s for s in result if s.clock == clock]
        return result

    def __len__(self) -> int:
        return len(self._completed)

    def reset(self) -> None:
        """Drop all completed spans and the eviction count."""
        with self._lock:
            self._completed.clear()
            self.dropped = 0
