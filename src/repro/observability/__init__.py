"""Observability: metrics and span tracing across the simulated stack.

Every instrumented class (``HadoopEngine``, the HBase substrate, the
profile store, the matchers, the PStorM daemon) accepts optional
``registry=`` / ``tracer=`` arguments; when omitted (``None``) it records
into the module-level defaults below, so existing call sites collect
metrics with zero changes.  Injecting :data:`DISABLED_REGISTRY` /
:data:`DISABLED_TRACER` (or any registry/tracer constructed with
``enabled=False``) turns a component's instrumentation into no-ops.

See ``docs/observability.md`` for the metric-name catalogue and export
formats.
"""

from __future__ import annotations

from .metrics import (
    COUNT_BUCKETS,
    DEFAULT_BUCKETS,
    LATENCY_BUCKETS,
    SIM_SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .tracing import SIMULATED_CLOCK, WALL_CLOCK, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "DEFAULT_BUCKETS",
    "LATENCY_BUCKETS",
    "COUNT_BUCKETS",
    "SIM_SECONDS_BUCKETS",
    "WALL_CLOCK",
    "SIMULATED_CLOCK",
    "DISABLED_REGISTRY",
    "DISABLED_TRACER",
    "default_registry",
    "default_tracer",
    "set_default_registry",
    "set_default_tracer",
    "get_registry",
    "get_tracer",
]

#: Shared always-off instances; inject to silence one component.
DISABLED_REGISTRY = MetricsRegistry(enabled=False)
DISABLED_TRACER = Tracer(enabled=False)

_default_registry = MetricsRegistry()
_default_tracer = Tracer()


def default_registry() -> MetricsRegistry:
    """The process-wide registry components fall back to."""
    return _default_registry


def default_tracer() -> Tracer:
    """The process-wide tracer components fall back to."""
    return _default_tracer


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the module default; returns the previous registry."""
    global _default_registry
    previous, _default_registry = _default_registry, registry
    return previous


def set_default_tracer(tracer: Tracer) -> Tracer:
    """Swap the module default; returns the previous tracer."""
    global _default_tracer
    previous, _default_tracer = _default_tracer, tracer
    return previous


def get_registry(registry: MetricsRegistry | None) -> MetricsRegistry:
    """Dependency-injection helper: explicit registry or the default."""
    return registry if registry is not None else _default_registry


def get_tracer(tracer: Tracer | None) -> Tracer:
    """Dependency-injection helper: explicit tracer or the default."""
    return tracer if tracer is not None else _default_tracer
