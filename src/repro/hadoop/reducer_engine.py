"""Reduce-task execution: run the user reducer on sample groups, extrapolate.

Mirrors :mod:`repro.hadoop.mapper_engine`: a cacheable **measurement** step
actually executes the user's reduce function over the grouped sample
intermediate data to learn its selectivities and op counts, and a
**simulation** step prices one reduce task's SHUFFLE/SORT/REDUCE/WRITE
phases under a given configuration and node.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .cluster import WorkerNode
from .config import JobConfiguration
from .counters import FRAMEWORK_GROUP
from .job import MapReduceJob
from .mapper_engine import (
    INTERMEDIATE_COMPRESSION_RATIO,
    OP_CPU_FRACTION,
    COMPARE_CPU_FRACTION,
    TASK_CLEANUP_SECONDS,
    TASK_SETUP_SECONDS,
)
from .records import pair_size
from .tasks import ReduceTaskExecution

__all__ = [
    "ReduceSampleMeasurement",
    "measure_reduce_from_pairs",
    "simulate_reduce_task",
    "OUTPUT_COMPRESSION_RATIO",
]

#: Compression ratio assumed for final (HDFS) output compression.
OUTPUT_COMPRESSION_RATIO = 0.45
#: Framework cost of deserializing + feeding one reduce input record.
REDUCE_FEED_CPU_FRACTION = 0.4
#: Per-record fetch overhead during SHUFFLE (job-dependent measured
#: network cost: many small records cost more per byte).
SHUFFLE_CPU_FRACTION = 0.4
#: Per-record serialization overhead during WRITE.
WRITE_SER_CPU_FRACTION = 0.5


@dataclass(frozen=True)
class ReduceSampleMeasurement:
    """Data-flow behaviour of the job's reduce side, measured on samples."""

    sample_input_records: int
    sample_input_bytes: int
    sample_groups: int
    sample_output_records: int
    sample_output_bytes: int
    sample_user_ops: int

    @property
    def reduce_records_sel(self) -> float:
        """Reduce selectivity in records (RED_PAIRS_SEL)."""
        return self.sample_output_records / max(1, self.sample_input_records)

    @property
    def reduce_size_sel(self) -> float:
        """Reduce selectivity in bytes (RED_SIZE_SEL)."""
        return self.sample_output_bytes / max(1, self.sample_input_bytes)

    @property
    def records_per_group(self) -> float:
        return self.sample_input_records / max(1, self.sample_groups)

    @property
    def output_records_per_group(self) -> float:
        return self.sample_output_records / max(1, self.sample_groups)

    @property
    def ops_per_input_record(self) -> float:
        return self.sample_user_ops / max(1, self.sample_input_records)

    @property
    def avg_output_record_bytes(self) -> float:
        if self.sample_output_records == 0:
            return 0.0
        return self.sample_output_bytes / self.sample_output_records


def measure_reduce_from_pairs(
    job: MapReduceJob, intermediate_pairs: Sequence[tuple[object, object]]
) -> ReduceSampleMeasurement:
    """Run the reducer over concrete sample intermediate pairs."""
    if job.reducer is None or not intermediate_pairs:
        return ReduceSampleMeasurement(0, 0, 0, 0, 0, 0)

    groups: dict[object, list[object]] = defaultdict(list)
    input_bytes = 0
    for key, value in intermediate_pairs:
        groups[key].append(value)
        input_bytes += pair_size(key, value)

    context = job.make_context()
    for key, values in groups.items():
        job.reducer(key, values, context)

    return ReduceSampleMeasurement(
        sample_input_records=len(intermediate_pairs),
        sample_input_bytes=input_bytes,
        sample_groups=len(groups),
        sample_output_records=context.records_out,
        sample_output_bytes=context.bytes_out,
        sample_user_ops=context.ops,
    )


def simulate_reduce_task(
    task_id: int,
    partition: int,
    shuffle_bytes: float,
    shuffle_records: float,
    measurement: ReduceSampleMeasurement,
    num_map_tasks: int,
    config: JobConfiguration,
    node: WorkerNode,
    rng: np.random.Generator,
    profiled: bool = False,
    profiling_overhead: float = 0.0,
) -> ReduceTaskExecution:
    """Price one reduce task's phases.

    Args:
        shuffle_bytes: nominal on-the-wire bytes shuffled to this reducer
            (post map-output compression).
        shuffle_records: nominal intermediate records for this reducer.
        measurement: reduce-side sample measurement for the job.
        num_map_tasks: map tasks feeding the shuffle (drives in-memory
            merge rounds through ``mapred.inmem.merge.threshold``).
    """
    rates = node.sample_rates(rng)
    op_ns = rates.cpu_ns_per_record * OP_CPU_FRACTION

    if config.compress_map_output:
        plain_bytes = shuffle_bytes / INTERMEDIATE_COMPRESSION_RATIO
    else:
        plain_bytes = shuffle_bytes

    input_records = int(round(shuffle_records))
    groups = int(round(shuffle_records / max(1e-9, measurement.records_per_group))) \
        if measurement.sample_groups else 0
    groups = min(groups, input_records)

    output_records = int(round(groups * measurement.output_records_per_group))
    output_bytes = int(round(output_records * measurement.avg_output_record_bytes))
    user_ops = int(round(input_records * measurement.ops_per_input_record))

    # ------------------------------------------------------------------
    # SHUFFLE: fetch map outputs over the network (+ decompression).
    # ------------------------------------------------------------------
    shuffle_s = (
        shuffle_bytes * rates.network_ns_per_byte
        + shuffle_records * rates.cpu_ns_per_record * SHUFFLE_CPU_FRACTION
    ) / 1e9
    if config.compress_map_output:
        shuffle_s += plain_bytes * rates.decompress_ns_per_byte / 1e9

    # ------------------------------------------------------------------
    # SORT: in-memory merges plus disk merge passes when the shuffle
    # buffer overflows the reduce-side heap.
    # ------------------------------------------------------------------
    buffer_bytes = node.task_heap_bytes * config.shuffle_input_buffer_percent
    merge_trigger_bytes = max(1.0, buffer_bytes * config.shuffle_merge_percent)
    overflow_bytes = max(0.0, plain_bytes - buffer_bytes)

    disk_segments = 0
    if overflow_bytes > 0:
        disk_segments = max(1, math.ceil(overflow_bytes / merge_trigger_bytes))
    disk_merge_passes = config.merge_passes(disk_segments) if disk_segments else 0

    inmem_merges = 0
    if num_map_tasks > 0:
        inmem_merges = max(
            math.ceil(num_map_tasks / max(1, config.inmem_merge_threshold)),
            math.ceil(plain_bytes / merge_trigger_bytes) if plain_bytes else 0,
        )

    sort_io_bytes = disk_merge_passes * overflow_bytes
    # Data retained in memory for the reduce phase skips the final disk read.
    retained_bytes = node.task_heap_bytes * config.reduce_input_buffer_percent
    final_read_bytes = max(0.0, overflow_bytes - retained_bytes)

    compare_ns = rates.cpu_ns_per_record * COMPARE_CPU_FRACTION
    sort_cpu_ns = inmem_merges and input_records * compare_ns * math.log2(
        max(2, input_records / max(1, inmem_merges))
    )
    sort_s = (
        sort_io_bytes
        * (rates.read_local_ns_per_byte + rates.write_local_ns_per_byte)
        + final_read_bytes * rates.read_local_ns_per_byte
        + float(sort_cpu_ns)
    ) / 1e9

    # ------------------------------------------------------------------
    # REDUCE: feed groups through the user reduce function.
    # ------------------------------------------------------------------
    reduce_s = (
        input_records * rates.cpu_ns_per_record * REDUCE_FEED_CPU_FRACTION
        + user_ops * op_ns
    ) / 1e9

    # ------------------------------------------------------------------
    # WRITE: final output to HDFS (x3 replication folded into the rate).
    # ------------------------------------------------------------------
    if config.compress_output:
        materialized_bytes = int(round(output_bytes * OUTPUT_COMPRESSION_RATIO))
        write_cpu_s = output_bytes * rates.compress_ns_per_byte / 1e9
    else:
        materialized_bytes = output_bytes
        write_cpu_s = 0.0
    write_s = (
        materialized_bytes * rates.write_hdfs_ns_per_byte
        + output_records * rates.cpu_ns_per_record * WRITE_SER_CPU_FRACTION
    ) / 1e9 + write_cpu_s

    phase_times = {
        "SETUP": TASK_SETUP_SECONDS,
        "SHUFFLE": shuffle_s,
        "SORT": sort_s,
        "REDUCE": reduce_s,
        "WRITE": write_s,
        "CLEANUP": TASK_CLEANUP_SECONDS,
    }
    if profiled and profiling_overhead > 0:
        for phase in ("SHUFFLE", "SORT", "REDUCE", "WRITE"):
            phase_times[phase] *= 1.0 + profiling_overhead

    task = ReduceTaskExecution(
        task_id=task_id,
        partition=partition,
        node_id=node.node_id,
        shuffle_bytes=int(round(shuffle_bytes)),
        shuffle_records=input_records,
        reduce_input_records=input_records,
        reduce_input_groups=groups,
        output_records=output_records,
        output_bytes=output_bytes,
        materialized_bytes=materialized_bytes,
        disk_merge_passes=disk_merge_passes,
        user_ops=user_ops,
        phase_times=phase_times,
        rates=rates,
        profiled=profiled,
    )
    task.counters.increment(FRAMEWORK_GROUP, "REDUCE_SHUFFLE_BYTES", task.shuffle_bytes)
    task.counters.increment(FRAMEWORK_GROUP, "REDUCE_INPUT_RECORDS", input_records)
    task.counters.increment(FRAMEWORK_GROUP, "REDUCE_INPUT_GROUPS", groups)
    task.counters.increment(FRAMEWORK_GROUP, "REDUCE_OUTPUT_RECORDS", output_records)
    return task
