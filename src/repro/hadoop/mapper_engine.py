"""Map-task execution: run the user mapper on sample records, extrapolate.

A map task executes in two layers:

1. **Measurement** (:func:`measure_map_sample`): the user's map function
   (and combiner, if any) actually runs over the materialized sample records
   of an input split.  This yields the task's *data flow* behaviour —
   selectivities, record sizes, key distribution, user-op counts — which is
   a property of the program and the data, independent of configuration and
   of the node the task lands on.  Measurements are therefore cacheable.

2. **Simulation** (:func:`simulate_map_task`): given a measurement, a
   configuration, and a node's (noisy) cost rates, reproduce Hadoop 0.20's
   map-side pipeline arithmetic — serialization buffer fills governed by
   ``io.sort.mb`` / ``io.sort.record.percent`` / ``io.sort.spill.percent``,
   spill counts, combiner application, optional compression, and external
   merge passes governed by ``io.sort.factor`` — and price each phase with
   the node's cost rates.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass
from typing import Any

import numpy as np

from .cluster import WorkerNode
from .config import JobConfiguration
from .counters import FRAMEWORK_GROUP
from .dataset import Dataset, InputSplit
from .job import MapReduceJob
from .records import pair_size
from .tasks import MapTaskExecution

__all__ = [
    "MapSampleMeasurement",
    "measure_map_sample",
    "partition_fractions",
    "simulate_map_task",
    "META_BYTES_PER_RECORD",
    "INTERMEDIATE_COMPRESSION_RATIO",
]

#: Hadoop's fixed accounting size of one record's buffer meta-data entry.
META_BYTES_PER_RECORD = 16
#: LZO-style compression ratio assumed for intermediate data.
INTERMEDIATE_COMPRESSION_RATIO = 0.4
#: User-function op cost, as a fraction of the node's per-record CPU rate.
OP_CPU_FRACTION = 0.7
#: Framework cost of collecting (serializing + partitioning) one output pair.
COLLECT_CPU_FRACTION = 0.5
#: Cost of one sort comparison, as a fraction of the per-record CPU rate.
COMPARE_CPU_FRACTION = 0.15
#: Record-reader overhead per input record (part of the READ phase) — this
#: is what makes the *measured* per-byte HDFS read cost job-dependent:
#: small records cost more per byte, as on a real cluster.
READER_CPU_FRACTION = 0.6
#: Serialization overhead per spilled record (part of the SPILL phase).
SPILL_SER_CPU_FRACTION = 0.5
#: Deserialization overhead per record per merge pass (MERGE phase).
MERGE_READ_CPU_FRACTION = 0.25
#: Fixed JVM start / task setup and commit / cleanup times (seconds).
TASK_SETUP_SECONDS = 1.2
TASK_CLEANUP_SECONDS = 0.6
#: At most this fraction of the task heap can serve as the sort buffer —
#: a larger ``io.sort.mb`` simply cannot be allocated (OOM on a real
#: cluster), so the effective buffer is clamped.
HEAP_SORT_FRACTION = 0.7


@dataclass(frozen=True)
class MapSampleMeasurement:
    """Data-flow behaviour of one (job, split) pair, measured on samples.

    All counts describe the *sample*; the simulation scales them by
    ``split.nominal_bytes / sample_input_bytes``.  Raw and post-combine
    intermediate pairs are both kept so that a configuration may toggle the
    combiner without re-running the mapper.
    """

    split_index: int
    sample_input_records: int
    sample_input_bytes: int
    sample_output_records: int
    sample_output_bytes: int
    sample_user_ops: int
    sample_map_pairs: tuple[tuple[Any, Any], ...]
    sample_combined_pairs: tuple[tuple[Any, Any], ...]
    combine_records_sel: float
    combine_size_sel: float
    combine_sample_ops: int

    @property
    def map_records_sel(self) -> float:
        """Map selectivity in number of records (MAP_PAIRS_SEL)."""
        return self.sample_output_records / max(1, self.sample_input_records)

    @property
    def map_size_sel(self) -> float:
        """Map selectivity in bytes (MAP_SIZE_SEL)."""
        return self.sample_output_bytes / max(1, self.sample_input_bytes)

    @property
    def avg_output_record_bytes(self) -> float:
        if self.sample_output_records == 0:
            return 0.0
        return self.sample_output_bytes / self.sample_output_records

    def intermediate_pairs(self, combined: bool) -> tuple[tuple[Any, Any], ...]:
        """The pair stream reducers would see under the combiner setting."""
        if combined:
            return self.sample_combined_pairs
        return self.sample_map_pairs


def measure_map_sample(
    job: MapReduceJob, dataset: Dataset, split_index: int
) -> MapSampleMeasurement:
    """Run the mapper (and combiner) over one split's sample records."""
    records = dataset.materialize(split_index)
    sample_input_bytes = dataset.sample_split_bytes(records)

    context = job.make_context()
    for key, value in records:
        job.mapper(key, value, context)
        context.counters.increment(FRAMEWORK_GROUP, "MAP_INPUT_RECORDS")

    map_pairs = tuple(context.pairs)
    combined_pairs = map_pairs
    combine_records_sel = 1.0
    combine_size_sel = 1.0
    combine_ops = 0

    if job.has_combiner and map_pairs:
        combined_context = job.make_context()
        groups: dict[Any, list[Any]] = defaultdict(list)
        for key, value in map_pairs:
            groups[key].append(value)
        for key, values in groups.items():
            job.combiner(key, values, combined_context)
        combine_records_sel = combined_context.records_out / len(map_pairs)
        combine_size_sel = combined_context.bytes_out / max(1, context.bytes_out)
        combine_ops = combined_context.ops
        combined_pairs = tuple(combined_context.pairs)

    return MapSampleMeasurement(
        split_index=split_index,
        sample_input_records=len(records),
        sample_input_bytes=sample_input_bytes,
        sample_output_records=context.records_out,
        sample_output_bytes=context.bytes_out,
        sample_user_ops=context.ops,
        sample_map_pairs=map_pairs,
        sample_combined_pairs=combined_pairs,
        combine_records_sel=combine_records_sel,
        combine_size_sel=combine_size_sel,
        combine_sample_ops=combine_ops,
    )


def partition_fractions(
    measurement: MapSampleMeasurement,
    job: MapReduceJob,
    num_partitions: int,
    combined: bool,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-partition (byte fraction, record fraction) of the task's output.

    Uses the sample's actual key-to-partition assignment under the job's
    partitioner, so key skew (e.g. Zipfian words) shows up as reducer skew.
    Compute once per (job run, measurement); it is O(sample pairs).
    """
    byte_counts = np.zeros(num_partitions, dtype=float)
    record_counts = np.zeros(num_partitions, dtype=float)
    for key, value in measurement.intermediate_pairs(combined):
        index = job.partitioner(key, num_partitions)
        byte_counts[index] += pair_size(key, value)
        record_counts[index] += 1
    byte_total = byte_counts.sum()
    record_total = record_counts.sum()
    if byte_total <= 0 or record_total <= 0:
        return byte_counts, record_counts
    return byte_counts / byte_total, record_counts / record_total


def simulate_map_task(
    task_id: int,
    split: InputSplit,
    measurement: MapSampleMeasurement,
    job: MapReduceJob,
    config: JobConfiguration,
    node: WorkerNode,
    rng: np.random.Generator,
    fractions: tuple[np.ndarray, np.ndarray],
    profiled: bool = False,
    profiling_overhead: float = 0.0,
) -> MapTaskExecution:
    """Price one map task's phases from a measurement and node rates.

    Args:
        fractions: the precomputed output of :func:`partition_fractions`
            for this measurement under this configuration's reducer count
            and combiner setting.
    """
    rates = node.sample_rates(rng)
    scale = split.nominal_bytes / max(1, measurement.sample_input_bytes)

    input_records = max(1, round(measurement.sample_input_records * scale))
    input_bytes = split.nominal_bytes
    map_output_records = round(measurement.sample_output_records * scale)
    map_output_bytes = round(measurement.sample_output_bytes * scale)
    user_ops = round(measurement.sample_user_ops * scale)

    combine_enabled = config.use_combiner and job.has_combiner
    if combine_enabled:
        spill_records = round(map_output_records * measurement.combine_records_sel)
        spill_bytes = round(map_output_bytes * measurement.combine_size_sel)
        combine_ops = round(measurement.combine_sample_ops * scale)
    else:
        spill_records = map_output_records
        spill_bytes = map_output_bytes
        combine_ops = 0

    # ------------------------------------------------------------------
    # Buffer / spill arithmetic (Hadoop 0.20 collect pipeline).
    # ------------------------------------------------------------------
    avg_record = measurement.avg_output_record_bytes
    if map_output_records > 0 and avg_record > 0:
        sort_buffer = min(
            config.sort_buffer_bytes(),
            int(node.task_heap_bytes * HEAP_SORT_FRACTION),
        )
        record_buffer = int(sort_buffer * config.io_sort_record_percent)
        data_cap = (sort_buffer - record_buffer) * config.io_sort_spill_percent
        meta_cap = (
            record_buffer * config.io_sort_spill_percent / META_BYTES_PER_RECORD
        )
        records_per_spill = max(1.0, min(data_cap / avg_record, meta_cap))
        num_spills = max(1, math.ceil(map_output_records / records_per_spill))
    else:
        records_per_spill = 1.0
        num_spills = 0

    merge_passes = config.merge_passes(num_spills)

    if config.compress_map_output:
        materialized_bytes = round(spill_bytes * INTERMEDIATE_COMPRESSION_RATIO)
    else:
        materialized_bytes = spill_bytes

    byte_frac, record_frac = fractions
    partition_bytes = byte_frac * float(materialized_bytes)
    partition_records = record_frac * float(spill_records)

    # ------------------------------------------------------------------
    # Phase timing.
    # ------------------------------------------------------------------
    op_ns = rates.cpu_ns_per_record * OP_CPU_FRACTION
    read_s = (
        input_bytes * rates.read_hdfs_ns_per_byte
        + input_records * rates.cpu_ns_per_record * READER_CPU_FRACTION
    ) / 1e9
    map_s = (input_records * rates.cpu_ns_per_record + user_ops * op_ns) / 1e9

    sort_compares = 0.0
    if num_spills > 0 and records_per_spill > 1:
        sort_compares = map_output_records * math.log2(records_per_spill)
    collect_s = (
        map_output_records * rates.cpu_ns_per_record * COLLECT_CPU_FRACTION
        + sort_compares * rates.cpu_ns_per_record * COMPARE_CPU_FRACTION
    ) / 1e9

    spill_io_s = (
        materialized_bytes * rates.write_local_ns_per_byte
        + spill_records * rates.cpu_ns_per_record * SPILL_SER_CPU_FRACTION
    ) / 1e9
    spill_cpu_ns = combine_ops * op_ns
    if config.compress_map_output:
        spill_cpu_ns += spill_bytes * rates.compress_ns_per_byte
    spill_s = spill_io_s + spill_cpu_ns / 1e9

    merge_io_bytes = merge_passes * materialized_bytes
    merge_s = (
        merge_io_bytes
        * (rates.read_local_ns_per_byte + rates.write_local_ns_per_byte)
        + merge_passes
        * spill_records
        * rates.cpu_ns_per_record
        * MERGE_READ_CPU_FRACTION
    ) / 1e9
    if config.compress_map_output and merge_passes > 0:
        merge_s += (
            merge_passes
            * spill_bytes
            * (rates.decompress_ns_per_byte + rates.compress_ns_per_byte)
            / 1e9
        )

    phase_times = {
        "SETUP": TASK_SETUP_SECONDS,
        "READ": read_s,
        "MAP": map_s,
        "COLLECT": collect_s,
        "SPILL": spill_s,
        "MERGE": merge_s,
        "CLEANUP": TASK_CLEANUP_SECONDS,
    }
    if profiled and profiling_overhead > 0:
        for phase in ("READ", "MAP", "COLLECT", "SPILL", "MERGE"):
            phase_times[phase] *= 1.0 + profiling_overhead

    task = MapTaskExecution(
        task_id=task_id,
        split_index=split.index,
        node_id=node.node_id,
        input_records=input_records,
        input_bytes=input_bytes,
        map_output_records=map_output_records,
        map_output_bytes=map_output_bytes,
        spill_records=spill_records,
        spill_bytes=spill_bytes,
        materialized_bytes=materialized_bytes,
        num_spills=num_spills,
        merge_passes=merge_passes,
        combine_input_records=map_output_records if combine_enabled else 0,
        combine_output_records=spill_records if combine_enabled else 0,
        combine_ops=combine_ops,
        partition_bytes=partition_bytes,
        partition_records=partition_records,
        user_ops=user_ops,
        phase_times=phase_times,
        rates=rates,
        profiled=profiled,
    )
    task.counters.increment(FRAMEWORK_GROUP, "MAP_INPUT_RECORDS", input_records)
    task.counters.increment(FRAMEWORK_GROUP, "MAP_INPUT_BYTES", input_bytes)
    task.counters.increment(FRAMEWORK_GROUP, "MAP_OUTPUT_RECORDS", map_output_records)
    task.counters.increment(FRAMEWORK_GROUP, "MAP_OUTPUT_BYTES", map_output_bytes)
    if num_spills > 0:
        task.counters.increment(FRAMEWORK_GROUP, "SPILLED_RECORDS", spill_records)
    return task
