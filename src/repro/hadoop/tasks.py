"""Task-level execution records produced by the simulator engines.

The Starfish profiler (``repro.starfish.profiler``) reads these records to
build execution profiles, and the figures that show per-phase breakdowns
(Figs 4.3, 4.5, 4.6) read them directly.  Phase names follow the Starfish
task timeline: map tasks run SETUP/READ/MAP/COLLECT/SPILL/MERGE/CLEANUP and
reduce tasks run SETUP/SHUFFLE/SORT/REDUCE/WRITE/CLEANUP.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .cluster import CostRates
from .counters import Counters

__all__ = [
    "MAP_PHASES",
    "REDUCE_PHASES",
    "MapTaskExecution",
    "ReduceTaskExecution",
    "JobExecution",
]

MAP_PHASES: tuple[str, ...] = (
    "SETUP", "READ", "MAP", "COLLECT", "SPILL", "MERGE", "CLEANUP",
)
REDUCE_PHASES: tuple[str, ...] = (
    "SETUP", "SHUFFLE", "SORT", "REDUCE", "WRITE", "CLEANUP",
)


def _check_phases(times: dict[str, float], allowed: tuple[str, ...]) -> None:
    unknown = set(times) - set(allowed)
    if unknown:
        raise ValueError(f"unknown phases: {sorted(unknown)}")
    negative = [name for name, value in times.items() if value < 0]
    if negative:
        raise ValueError(f"negative phase times: {sorted(negative)}")


@dataclass
class MapTaskExecution:
    """Measured execution of one map task (nominal, extrapolated volumes).

    Byte/record counts are *nominal*: extrapolated from the materialized
    sample records to the split's full nominal size, so they are directly
    comparable to what a real Hadoop counter would report for a 64 MB split.
    """

    task_id: int
    split_index: int
    node_id: int
    input_records: int
    input_bytes: int
    map_output_records: int
    map_output_bytes: int
    #: After the (optional) combiner and before compression.
    spill_records: int
    spill_bytes: int
    #: Bytes actually written per spill round trip (post compression).
    materialized_bytes: int
    num_spills: int
    merge_passes: int
    combine_input_records: int
    combine_output_records: int
    combine_ops: int
    #: Nominal bytes of final map output destined to each reduce partition.
    partition_bytes: np.ndarray
    partition_records: np.ndarray
    user_ops: int
    phase_times: dict[str, float]
    rates: CostRates
    counters: Counters = field(default_factory=Counters)
    profiled: bool = False

    def __post_init__(self) -> None:
        _check_phases(self.phase_times, MAP_PHASES)

    @property
    def duration(self) -> float:
        """Total task time in seconds."""
        return sum(self.phase_times.values())


@dataclass
class ReduceTaskExecution:
    """Measured execution of one reduce task."""

    task_id: int
    partition: int
    node_id: int
    shuffle_bytes: int
    shuffle_records: int
    #: Input records/bytes actually fed to the reduce function (post merge).
    reduce_input_records: int
    reduce_input_groups: int
    output_records: int
    output_bytes: int
    #: Bytes written to HDFS (post output compression).
    materialized_bytes: int
    disk_merge_passes: int
    user_ops: int
    phase_times: dict[str, float]
    rates: CostRates
    counters: Counters = field(default_factory=Counters)
    profiled: bool = False

    def __post_init__(self) -> None:
        _check_phases(self.phase_times, REDUCE_PHASES)

    @property
    def duration(self) -> float:
        return sum(self.phase_times.values())


@dataclass
class JobExecution:
    """One complete (or sampled) execution of an MR job on a cluster."""

    job_name: str
    dataset_name: str
    input_bytes: int
    map_tasks: list[MapTaskExecution]
    reduce_tasks: list[ReduceTaskExecution]
    runtime_seconds: float
    counters: Counters = field(default_factory=Counters)
    sampled: bool = False

    @property
    def num_map_tasks(self) -> int:
        return len(self.map_tasks)

    @property
    def num_reduce_tasks(self) -> int:
        return len(self.reduce_tasks)

    def map_phase_totals(self) -> dict[str, float]:
        """Summed map-side phase times across tasks (Fig 4.3-style data)."""
        totals = {phase: 0.0 for phase in MAP_PHASES}
        for task in self.map_tasks:
            for phase, seconds in task.phase_times.items():
                totals[phase] += seconds
        return totals

    def reduce_phase_totals(self) -> dict[str, float]:
        """Summed reduce-side phase times across tasks (Fig 4.5/4.6 data)."""
        totals = {phase: 0.0 for phase in REDUCE_PHASES}
        for task in self.reduce_tasks:
            for phase, seconds in task.phase_times.items():
                totals[phase] += seconds
        return totals
