"""Hadoop job configuration: the 14 tuning parameters of Table 2.1.

The Starfish system identified 14 Hadoop configuration parameters with a major
impact on MR job performance.  This module models those parameters, their
defaults, their legal ranges, and the search space the cost-based optimizer
explores.  Parameter names follow the Hadoop 0.20-era names used by the paper
(``io.sort.mb``, ``mapred.reduce.tasks``, ...), exposed as attribute-friendly
aliases on :class:`JobConfiguration`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields, replace
from typing import Any, Iterator, Mapping

__all__ = [
    "JobConfiguration",
    "ParameterSpec",
    "CONFIGURATION_SPACE",
    "PARAMETER_NAMES",
    "default_configuration",
]


@dataclass(frozen=True)
class ParameterSpec:
    """Description of one tunable configuration parameter.

    Attributes:
        name: Hadoop parameter name, e.g. ``"io.sort.mb"``.
        attribute: attribute name on :class:`JobConfiguration`.
        description: one-line description from Table 2.1.
        default: Hadoop's out-of-the-box value.
        kind: ``"int"``, ``"float"``, or ``"bool"``.
        low, high: inclusive numeric bounds for the CBO search (ignored for
            booleans).
        log_scale: whether the CBO should sample this dimension on a log scale
            (used for sizes and counts that span orders of magnitude).
    """

    name: str
    attribute: str
    description: str
    default: Any
    kind: str
    low: float | None = None
    high: float | None = None
    log_scale: bool = False

    def clamp(self, value: Any) -> Any:
        """Coerce *value* into this parameter's type and legal range."""
        if self.kind == "bool":
            return bool(value)
        if self.low is not None:
            value = max(self.low, value)
        if self.high is not None:
            value = min(self.high, value)
        if self.kind == "int":
            return int(round(value))
        return float(value)


#: The 14 parameters of Table 2.1, in the paper's order.
CONFIGURATION_SPACE: tuple[ParameterSpec, ...] = (
    ParameterSpec(
        "io.sort.mb", "io_sort_mb",
        "Size in MB of the map-side memory buffer",
        default=100, kind="int", low=16, high=1024, log_scale=True,
    ),
    ParameterSpec(
        "io.sort.record.percent", "io_sort_record_percent",
        "Fraction of the map-side buffer used for record meta-data",
        default=0.05, kind="float", low=0.01, high=0.5,
    ),
    ParameterSpec(
        "io.sort.spill.percent", "io_sort_spill_percent",
        "Buffer-fill threshold that triggers a spill to disk",
        default=0.8, kind="float", low=0.2, high=0.95,
    ),
    ParameterSpec(
        "io.sort.factor", "io_sort_factor",
        "Number of open streams during the external merge-sort",
        default=10, kind="int", low=2, high=200, log_scale=True,
    ),
    ParameterSpec(
        "mapreduce.combine.class", "use_combiner",
        "Whether the job's combiner (if any) is enabled; Hadoop's NULL "
        "default means the job-defined combiner passes through unchanged",
        default=True, kind="bool",
    ),
    ParameterSpec(
        "min.num.spills.for.combine", "min_num_spills_for_combine",
        "Minimum number of disk spills before the combiner runs on merge",
        default=3, kind="int", low=1, high=20,
    ),
    ParameterSpec(
        "mapred.compress.map.output", "compress_map_output",
        "Whether intermediate (map output) data is compressed",
        default=False, kind="bool",
    ),
    ParameterSpec(
        "mapred.reduce.slowstart.completed.maps", "reduce_slowstart",
        "Fraction of map tasks completed before reducers are scheduled",
        default=0.05, kind="float", low=0.0, high=1.0,
    ),
    ParameterSpec(
        "mapred.reduce.tasks", "num_reduce_tasks",
        "Number of reduce tasks spawned during the reduce phase",
        default=1, kind="int", low=1, high=512, log_scale=True,
    ),
    ParameterSpec(
        "mapred.job.shuffle.input.buffer.percent", "shuffle_input_buffer_percent",
        "Fraction of reduce-side heap used to buffer shuffled data",
        default=0.7, kind="float", low=0.1, high=0.9,
    ),
    ParameterSpec(
        "mapred.job.shuffle.merge.percent", "shuffle_merge_percent",
        "Shuffle-buffer fill fraction that triggers an in-memory merge",
        default=0.66, kind="float", low=0.2, high=0.95,
    ),
    ParameterSpec(
        "mapred.inmem.merge.threshold", "inmem_merge_threshold",
        "Number of shuffled map outputs that triggers an in-memory merge",
        default=1000, kind="int", low=10, high=10000, log_scale=True,
    ),
    ParameterSpec(
        "mapred.job.reduce.input.buffer.percent", "reduce_input_buffer_percent",
        "Fraction of reduce-side heap retaining map outputs during reduce",
        default=0.0, kind="float", low=0.0, high=0.8,
    ),
    ParameterSpec(
        "mapred.output.compress", "compress_output",
        "Whether final job output is compressed",
        default=False, kind="bool",
    ),
)

PARAMETER_NAMES: tuple[str, ...] = tuple(p.name for p in CONFIGURATION_SPACE)

_SPEC_BY_NAME: dict[str, ParameterSpec] = {p.name: p for p in CONFIGURATION_SPACE}
_SPEC_BY_ATTR: dict[str, ParameterSpec] = {p.attribute: p for p in CONFIGURATION_SPACE}


@dataclass(frozen=True)
class JobConfiguration:
    """An immutable setting of the 14 tunable Hadoop parameters.

    Instances are hashable value objects; derive variants with
    :meth:`with_params` or :func:`dataclasses.replace`.
    """

    io_sort_mb: int = 100
    io_sort_record_percent: float = 0.05
    io_sort_spill_percent: float = 0.8
    io_sort_factor: int = 10
    use_combiner: bool = True
    min_num_spills_for_combine: int = 3
    compress_map_output: bool = False
    reduce_slowstart: float = 0.05
    num_reduce_tasks: int = 1
    shuffle_input_buffer_percent: float = 0.7
    shuffle_merge_percent: float = 0.66
    inmem_merge_threshold: int = 1000
    reduce_input_buffer_percent: float = 0.0
    compress_output: bool = False

    def __post_init__(self) -> None:
        for spec in CONFIGURATION_SPACE:
            value = getattr(self, spec.attribute)
            clamped = spec.clamp(value)
            if clamped != value:
                raise ValueError(
                    f"{spec.name}={value!r} outside legal range "
                    f"[{spec.low}, {spec.high}]"
                )

    # ------------------------------------------------------------------
    # Hadoop-name access
    # ------------------------------------------------------------------
    def get(self, hadoop_name: str) -> Any:
        """Return a parameter value by its Hadoop name."""
        spec = _SPEC_BY_NAME.get(hadoop_name)
        if spec is None:
            raise KeyError(f"unknown configuration parameter: {hadoop_name}")
        return getattr(self, spec.attribute)

    def with_params(self, **attrs: Any) -> "JobConfiguration":
        """Return a copy with the given attribute overrides, clamped."""
        clean = {
            name: _SPEC_BY_ATTR[name].clamp(value) if name in _SPEC_BY_ATTR else value
            for name, value in attrs.items()
        }
        return replace(self, **clean)

    def to_dict(self) -> dict[str, Any]:
        """Dump as a ``{hadoop name: value}`` mapping (Table 2.1 order)."""
        return {spec.name: getattr(self, spec.attribute) for spec in CONFIGURATION_SPACE}

    @classmethod
    def from_dict(cls, mapping: Mapping[str, Any]) -> "JobConfiguration":
        """Build a configuration from a ``{hadoop name: value}`` mapping."""
        attrs: dict[str, Any] = {}
        for name, value in mapping.items():
            spec = _SPEC_BY_NAME.get(name)
            if spec is None:
                raise KeyError(f"unknown configuration parameter: {name}")
            attrs[spec.attribute] = spec.clamp(value)
        return cls(**attrs)

    def iter_params(self) -> Iterator[tuple[str, Any]]:
        """Yield ``(hadoop name, value)`` pairs in Table 2.1 order."""
        for spec in CONFIGURATION_SPACE:
            yield spec.name, getattr(self, spec.attribute)

    # ------------------------------------------------------------------
    # Derived quantities used by the engines and the What-If models
    # ------------------------------------------------------------------
    def sort_buffer_bytes(self) -> int:
        """Bytes of the map-side serialization buffer (io.sort.mb)."""
        return self.io_sort_mb * 1024 * 1024

    def record_buffer_bytes(self) -> int:
        """Bytes of the buffer reserved for record meta-data."""
        return int(self.sort_buffer_bytes() * self.io_sort_record_percent)

    def data_buffer_bytes(self) -> int:
        """Bytes of the buffer available for serialized records."""
        return self.sort_buffer_bytes() - self.record_buffer_bytes()

    def merge_passes(self, num_spills: int) -> int:
        """External-merge passes needed to merge *num_spills* spill files.

        Classic external merge-sort arithmetic with fan-in
        ``io.sort.factor``; a single spill needs no merging.
        """
        if num_spills <= 1:
            return 0
        return max(1, math.ceil(math.log(num_spills, self.io_sort_factor)))


def default_configuration() -> JobConfiguration:
    """The out-of-the-box Hadoop configuration of Table 2.1."""
    return JobConfiguration()
