"""MapReduce job specification.

A :class:`MapReduceJob` bundles the customizable parts of the Hadoop
framework the paper enumerates in §4.1.2: input formatter, mapper,
partitioner, combiner, reducer, and output formatter — everything else about
execution is fixed by the framework.  Mappers and reducers are plain Python
callables; their byte code is what the static analysis substrate extracts
CFGs from (the Python stand-in for Soot over Java byte code).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterable, Mapping

from .context import TaskContext

__all__ = ["MapReduceJob", "default_partitioner", "MapFunction", "ReduceFunction"]

MapFunction = Callable[[Any, Any, TaskContext], None]
ReduceFunction = Callable[[Any, Iterable[Any], TaskContext], None]
Partitioner = Callable[[Any, int], int]


def default_partitioner(key: Any, num_partitions: int) -> int:
    """Hadoop's ``HashPartitioner``: stable hash of the key, modulo.

    Python's builtin ``hash`` is salted per process for strings, so a stable
    polynomial hash is used instead to keep partition assignments — and
    therefore partition skew measurements — deterministic across runs.
    """
    text = repr(key)
    value = 0
    for char in text:
        value = (value * 31 + ord(char)) & 0x7FFFFFFF
    return value % num_partitions


@dataclass(frozen=True)
class MapReduceJob:
    """A complete MR job program (the ``p`` of Starfish's job 4-tuple).

    Attributes:
        name: human-readable job name, e.g. ``"word-cooccurrence-pairs"``.
        mapper: the map function ``(key, value, context) -> None``.
        reducer: the reduce function ``(key, values, context) -> None``;
            ``None`` for map-only jobs.
        combiner: optional map-side combine function with reduce signature.
        partitioner: intermediate-key partitioner.
        input_format: input formatter class name (static feature
            ``IN_FORMATTER``), e.g. ``"TextInputFormat"``.
        output_format: output formatter class name (``OUT_FORMATTER``).
        params: user job parameters visible to the functions through the
            context (e.g. co-occurrence window size).  §7.2.1 discusses
            folding these into the static features.
    """

    name: str
    mapper: MapFunction
    reducer: ReduceFunction | None = None
    combiner: ReduceFunction | None = None
    partitioner: Partitioner = default_partitioner
    input_format: str = "TextInputFormat"
    output_format: str = "TextOutputFormat"
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not callable(self.mapper):
            raise TypeError("mapper must be callable")
        if self.reducer is not None and not callable(self.reducer):
            raise TypeError("reducer must be callable or None")

    @property
    def has_reducer(self) -> bool:
        return self.reducer is not None

    @property
    def has_combiner(self) -> bool:
        return self.combiner is not None

    @property
    def mapper_class(self) -> str:
        """Mapper 'class name' static feature (function qualname)."""
        return getattr(self.mapper, "__qualname__", repr(self.mapper))

    @property
    def reducer_class(self) -> str:
        if self.reducer is None:
            return "IdentityReducer"
        return getattr(self.reducer, "__qualname__", repr(self.reducer))

    @property
    def combiner_class(self) -> str:
        if self.combiner is None:
            return "NULL"
        return getattr(self.combiner, "__qualname__", repr(self.combiner))

    def with_params(self, **params: Any) -> "MapReduceJob":
        """Copy of the job with updated user parameters."""
        merged = dict(self.params)
        merged.update(params)
        return replace(self, params=merged)

    def make_context(self) -> TaskContext:
        """Fresh task context carrying this job's user parameters."""
        return TaskContext(job_params=dict(self.params))
