"""Task contexts: the object user map/reduce functions emit into.

Mirrors Hadoop's ``Mapper.Context`` / ``Reducer.Context``.  The context
both collects emitted pairs and does the bookkeeping the profiler needs:
record and byte counts via :func:`repro.hadoop.records.pair_size`, plus a
deterministic *op* counter that stands in for user-function CPU work (each
emit and each explicitly reported op contributes to the task's modelled CPU
cost — so a map function that emits one pair per word window position is
charged more than one that emits one pair per word).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .counters import Counters
from .records import pair_size

__all__ = ["TaskContext", "EMIT_OP_WEIGHT"]

#: Ops charged per emitted pair on top of any explicitly reported ops.
EMIT_OP_WEIGHT = 1


@dataclass
class TaskContext:
    """Collector for a single task attempt.

    Attributes:
        pairs: emitted ``(key, value)`` pairs, in emission order.
        records_out: number of emitted pairs.
        bytes_out: serialized size of emitted pairs.
        ops: accumulated user-function op count (CPU cost proxy).
        counters: per-task Hadoop counters.
        job_params: user-provided job parameters (e.g. co-occurrence window
            size, grep pattern), visible to the user functions like values
            from Hadoop's ``JobConf``.
    """

    job_params: dict[str, Any] = field(default_factory=dict)
    pairs: list[tuple[Any, Any]] = field(default_factory=list)
    records_out: int = 0
    bytes_out: int = 0
    ops: int = 0
    counters: Counters = field(default_factory=Counters)

    def emit(self, key: Any, value: Any) -> None:
        """Emit one output pair (Hadoop's ``context.write``)."""
        self.pairs.append((key, value))
        self.records_out += 1
        self.bytes_out += pair_size(key, value)
        self.ops += EMIT_OP_WEIGHT

    # Hadoop-compatible alias.
    write = emit

    def report_ops(self, count: int) -> None:
        """Report *count* units of user-function work beyond emits.

        Workload jobs call this for per-record work that does not end in an
        emit (tokenizing, condition checks, hash probes), so the op counter
        tracks the control-flow complexity the CFG features capture.
        """
        if count < 0:
            raise ValueError("op count must be non-negative")
        self.ops += count

    def get_param(self, name: str, default: Any = None) -> Any:
        """Read a user job parameter (Hadoop's ``conf.get``)."""
        return self.job_params.get(name, default)

    def reset_output(self) -> None:
        """Clear emitted pairs while keeping counters and ops (spill drain)."""
        self.pairs = []
