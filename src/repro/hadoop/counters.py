"""Hadoop-style counters.

Counters are grouped name -> value accumulators attached to each task and
aggregated per job, mirroring Hadoop's ``Counters`` API.  The profiler reads
framework counters (records/bytes through each phase); user functions may
increment their own counters through the task context.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["Counters", "FRAMEWORK_GROUP"]

FRAMEWORK_GROUP = "org.apache.hadoop.mapred.Task$Counter"


@dataclass
class Counters:
    """Grouped counters with Hadoop-like increment/aggregate semantics."""

    _groups: dict[str, dict[str, int]] = field(
        default_factory=lambda: defaultdict(dict)
    )

    def increment(self, group: str, name: str, amount: int = 1) -> None:
        """Add *amount* to counter *name* in *group* (creating it at 0)."""
        counters = self._groups[group]
        counters[name] = counters.get(name, 0) + amount

    def value(self, group: str, name: str) -> int:
        """Current value of a counter; missing counters read as 0."""
        return self._groups.get(group, {}).get(name, 0)

    def merge(self, other: "Counters") -> None:
        """Aggregate another task's counters into this one."""
        for group, counters in other._groups.items():
            for name, amount in counters.items():
                self.increment(group, name, amount)

    def groups(self) -> list[str]:
        return sorted(self._groups)

    def items(self) -> Iterator[tuple[str, str, int]]:
        """Yield ``(group, name, value)`` triples in sorted order."""
        for group in sorted(self._groups):
            for name in sorted(self._groups[group]):
                yield group, name, self._groups[group][name]

    def to_dict(self) -> dict[str, dict[str, int]]:
        return {group: dict(counters) for group, counters in self._groups.items()}
