"""Record size accounting.

The simulator executes real map/reduce callables over materialized sample
records, then extrapolates data-flow volumes to the dataset's nominal size.
That extrapolation needs a consistent notion of the *serialized size* of a
key or value, analogous to Hadoop's ``Writable`` wire format.  This module
provides that sizing for the Python types workload jobs emit.
"""

from __future__ import annotations

from typing import Any

__all__ = ["serialized_size", "pair_size", "writable_type_name"]

#: Fixed-width primitive sizes, mirroring Hadoop writables.
_INT_SIZE = 8          # LongWritable
_FLOAT_SIZE = 8        # DoubleWritable
_BOOL_SIZE = 1         # BooleanWritable
_NULL_SIZE = 0         # NullWritable
_CONTAINER_OVERHEAD = 4  # length header of variable-size writables


def serialized_size(value: Any) -> int:
    """Serialized byte size of one key or value.

    Strings count their UTF-8-ish length, numbers are fixed width, and
    containers add a small length header plus their elements, recursively.

    Raises:
        TypeError: for types no workload job should emit.
    """
    if value is None:
        return _NULL_SIZE
    if isinstance(value, bool):
        return _BOOL_SIZE
    if isinstance(value, int):
        return _INT_SIZE
    if isinstance(value, float):
        return _FLOAT_SIZE
    if isinstance(value, str):
        return _CONTAINER_OVERHEAD + len(value)
    if isinstance(value, bytes):
        return _CONTAINER_OVERHEAD + len(value)
    if isinstance(value, (tuple, list, frozenset, set)):
        return _CONTAINER_OVERHEAD + sum(serialized_size(item) for item in value)
    if isinstance(value, dict):
        return _CONTAINER_OVERHEAD + sum(
            serialized_size(k) + serialized_size(v) for k, v in value.items()
        )
    raise TypeError(f"cannot size value of type {type(value).__name__}")


def pair_size(key: Any, value: Any) -> int:
    """Serialized size of one key-value pair."""
    return serialized_size(key) + serialized_size(value)


#: Python type -> Hadoop writable class name, for static features (Table 4.3).
_WRITABLE_NAMES: dict[type, str] = {
    bool: "BooleanWritable",
    int: "LongWritable",
    float: "DoubleWritable",
    str: "Text",
    bytes: "BytesWritable",
    tuple: "TupleWritable",
    list: "ArrayWritable",
    dict: "MapWritable",
    set: "ArrayWritable",
    frozenset: "ArrayWritable",
    type(None): "NullWritable",
}


def writable_type_name(value: Any, depth: int = 1) -> str:
    """Hadoop writable class name a Python key/value would map to.

    Used when extracting the ``MAP_IN_KEY`` / ``MAP_OUT_VAL`` etc. static
    features of Table 4.3 from observed records.  Container types carry
    their element types one level deep (``TupleWritable<Text,Long>``),
    mirroring the generic type parameters a Java writable class declares —
    which is most of what makes these features discriminative.
    """
    if isinstance(value, tuple) and depth > 0:
        inner = ",".join(writable_type_name(v, depth - 1) for v in value[:4])
        if len(value) > 4:
            inner += ",..."
        return f"TupleWritable<{inner}>"
    if isinstance(value, dict) and depth > 0 and value:
        key, val = next(iter(value.items()))
        return (
            f"MapWritable<{writable_type_name(key, depth - 1)},"
            f"{writable_type_name(val, depth - 1)}>"
        )
    for python_type, name in _WRITABLE_NAMES.items():
        if isinstance(value, python_type):
            return name
    return type(value).__name__
