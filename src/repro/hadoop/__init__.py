"""Hadoop MapReduce execution simulator (substrate).

Models a Hadoop 0.20-era cluster at the fidelity feedback-based tuning
needs: the 14 tuning parameters of Table 2.1, phase-level map/reduce task
execution driven by *really executing* the user's map/reduce functions over
sampled synthetic records, and wave-based slot scheduling.
"""

from .cluster import ClusterSpec, CostRates, WorkerNode, ec2_cluster
from .config import (
    CONFIGURATION_SPACE,
    PARAMETER_NAMES,
    JobConfiguration,
    ParameterSpec,
    default_configuration,
)
from .context import TaskContext
from .counters import FRAMEWORK_GROUP, Counters
from .dataset import DEFAULT_SPLIT_BYTES, Dataset, FunctionRecordSource, InputSplit
from .engine import HadoopEngine
from .faults import FaultModel, FaultyScheduleResult, schedule_with_faults
from .hdfs import BlockPlacement, LocalityStats, expected_locality, place_blocks
from .job import MapReduceJob, default_partitioner
from .tasks import (
    MAP_PHASES,
    REDUCE_PHASES,
    JobExecution,
    MapTaskExecution,
    ReduceTaskExecution,
)

__all__ = [
    "ClusterSpec",
    "CostRates",
    "WorkerNode",
    "ec2_cluster",
    "CONFIGURATION_SPACE",
    "PARAMETER_NAMES",
    "JobConfiguration",
    "ParameterSpec",
    "default_configuration",
    "TaskContext",
    "FRAMEWORK_GROUP",
    "Counters",
    "DEFAULT_SPLIT_BYTES",
    "Dataset",
    "FunctionRecordSource",
    "InputSplit",
    "HadoopEngine",
    "FaultModel",
    "FaultyScheduleResult",
    "schedule_with_faults",
    "BlockPlacement",
    "LocalityStats",
    "expected_locality",
    "place_blocks",
    "MapReduceJob",
    "default_partitioner",
    "MAP_PHASES",
    "REDUCE_PHASES",
    "JobExecution",
    "MapTaskExecution",
    "ReduceTaskExecution",
]
