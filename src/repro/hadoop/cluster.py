"""Cluster model: nodes, task slots, memory, and per-node cost rates.

The paper evaluates on 16 Amazon EC2 ``c1.medium`` nodes (1 master + 15
workers, 2 map slots and 2 reduce slots each, 300 MB task heaps).  We model a
cluster as a set of worker nodes with IO/CPU/network cost rates drawn around
cluster-wide base rates.  Per-task utilization noise reproduces the
heterogeneity the paper leans on: *cost factors* measured from two samples of
the same job differ, while *data flow statistics* do not (§4.1.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["CostRates", "WorkerNode", "ClusterSpec", "ec2_cluster"]


@dataclass(frozen=True)
class CostRates:
    """Cost rates for one node, in the units of Table 4.2.

    IO and network rates are in nanoseconds per byte; CPU rates are in
    nanoseconds per record of framework overhead (user function cost is
    measured by actually running the function, see the engines).
    """

    read_hdfs_ns_per_byte: float
    write_hdfs_ns_per_byte: float
    read_local_ns_per_byte: float
    write_local_ns_per_byte: float
    network_ns_per_byte: float
    cpu_ns_per_record: float
    compress_ns_per_byte: float
    decompress_ns_per_byte: float

    def scaled(self, factor: float) -> "CostRates":
        """Return rates uniformly scaled by *factor* (utilization noise)."""
        return CostRates(
            read_hdfs_ns_per_byte=self.read_hdfs_ns_per_byte * factor,
            write_hdfs_ns_per_byte=self.write_hdfs_ns_per_byte * factor,
            read_local_ns_per_byte=self.read_local_ns_per_byte * factor,
            write_local_ns_per_byte=self.write_local_ns_per_byte * factor,
            network_ns_per_byte=self.network_ns_per_byte * factor,
            cpu_ns_per_record=self.cpu_ns_per_record * factor,
            compress_ns_per_byte=self.compress_ns_per_byte * factor,
            decompress_ns_per_byte=self.decompress_ns_per_byte * factor,
        )


#: Base rates loosely calibrated to a c1.medium-era node: ~60 MB/s HDFS
#: streaming reads, ~50 MB/s HDFS writes (pipelined replication), faster local
#: disk, ~1 Gb/s shared network, and low per-record framework overhead.
_DEFAULT_BASE_RATES = CostRates(
    read_hdfs_ns_per_byte=16.0,
    write_hdfs_ns_per_byte=25.0,
    read_local_ns_per_byte=9.0,
    write_local_ns_per_byte=12.0,
    network_ns_per_byte=22.0,
    cpu_ns_per_record=350.0,
    # Gzip-era codec rates (~33 MB/s compressing, ~100 MB/s decompressing
    # on one c1.medium core): compression is a real trade-off, not a free
    # win — blindly enabling it can hurt CPU-bound jobs, which is how the
    # RBO's compression rule misfires (Fig 6.3, inverted index).
    compress_ns_per_byte=30.0,
    decompress_ns_per_byte=10.0,
)


@dataclass(frozen=True)
class WorkerNode:
    """One TaskTracker/DataNode machine."""

    node_id: int
    map_slots: int
    reduce_slots: int
    task_heap_bytes: int
    base_rates: CostRates
    #: Log-normal sigma of per-task utilization noise on this node.
    utilization_sigma: float

    def sample_rates(self, rng: np.random.Generator) -> CostRates:
        """Draw effective cost rates for one task execution on this node.

        Transient co-located load hits each resource differently — a
        neighbour's shuffle saturates the NIC without touching the disks —
        so disk, network, and CPU draw *independent* log-normal factors.
        This per-task noise is the source of the cost-factor variance that
        makes cost factors unsuitable as primary matching features
        (§4.1.1).
        """
        disk = float(rng.lognormal(mean=0.0, sigma=self.utilization_sigma))
        net = float(rng.lognormal(mean=0.0, sigma=self.utilization_sigma))
        cpu = float(rng.lognormal(mean=0.0, sigma=self.utilization_sigma))
        rates = self.base_rates
        return CostRates(
            read_hdfs_ns_per_byte=rates.read_hdfs_ns_per_byte * disk,
            write_hdfs_ns_per_byte=rates.write_hdfs_ns_per_byte * disk,
            read_local_ns_per_byte=rates.read_local_ns_per_byte * disk,
            write_local_ns_per_byte=rates.write_local_ns_per_byte * disk,
            network_ns_per_byte=rates.network_ns_per_byte * net,
            cpu_ns_per_record=rates.cpu_ns_per_record * cpu,
            compress_ns_per_byte=rates.compress_ns_per_byte * cpu,
            decompress_ns_per_byte=rates.decompress_ns_per_byte * cpu,
        )


@dataclass(frozen=True)
class ClusterSpec:
    """A Hadoop cluster: a set of worker nodes plus one master.

    The master (JobTracker/NameNode) does not run tasks and is not modelled
    beyond scheduling; worker nodes provide map and reduce slots.
    """

    workers: tuple[WorkerNode, ...]
    name: str = "cluster"

    def __post_init__(self) -> None:
        if not self.workers:
            raise ValueError("a cluster needs at least one worker node")

    @property
    def num_workers(self) -> int:
        return len(self.workers)

    @property
    def total_map_slots(self) -> int:
        return sum(node.map_slots for node in self.workers)

    @property
    def total_reduce_slots(self) -> int:
        return sum(node.reduce_slots for node in self.workers)

    @property
    def task_heap_bytes(self) -> int:
        """Heap available to a single task JVM (uniform across workers)."""
        return self.workers[0].task_heap_bytes

    def node_for_task(self, task_index: int, rng: np.random.Generator) -> WorkerNode:
        """Pick the node a task lands on.

        Placement is uniform at random, as data-local scheduling over
        randomly placed HDFS blocks is statistically uniform.
        """
        del task_index  # placement is independent of the task index
        return self.workers[int(rng.integers(0, len(self.workers)))]


def ec2_cluster(
    num_workers: int = 15,
    map_slots_per_node: int = 2,
    reduce_slots_per_node: int = 2,
    task_heap_mb: int = 300,
    base_rates: CostRates = _DEFAULT_BASE_RATES,
    utilization_sigma: float = 0.06,
    node_skew_sigma: float = 0.08,
    seed: int = 7,
) -> ClusterSpec:
    """Build the paper's evaluation cluster (§6: 15 workers, 2+2 slots).

    Args:
        num_workers: worker (TaskTracker) count; the paper uses 15.
        map_slots_per_node: map slots per worker; the paper uses 2.
        reduce_slots_per_node: reduce slots per worker; the paper uses 2.
        task_heap_mb: per-task JVM heap; the paper uses 300 MB.
        base_rates: cluster-wide base cost rates.
        utilization_sigma: per-task log-normal utilization noise.
        node_skew_sigma: permanent per-node rate skew (hardware variation).
        seed: RNG seed for the per-node skew draw.

    Returns:
        A :class:`ClusterSpec` with heterogeneous but fixed node rates.
    """
    rng = np.random.default_rng(seed)
    workers = []
    for node_id in range(num_workers):
        skew = float(rng.lognormal(mean=0.0, sigma=node_skew_sigma))
        workers.append(
            WorkerNode(
                node_id=node_id,
                map_slots=map_slots_per_node,
                reduce_slots=reduce_slots_per_node,
                task_heap_bytes=task_heap_mb * 1024 * 1024,
                base_rates=base_rates.scaled(skew),
                utilization_sigma=utilization_sigma,
            )
        )
    return ClusterSpec(workers=tuple(workers), name=f"ec2-{num_workers}w")
