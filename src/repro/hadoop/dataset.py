"""Datasets and input splits.

A :class:`Dataset` has a *nominal* size (e.g. the paper's 35 GB Wikipedia
corpus) that drives split counts, wave counts and shuffle volumes, decoupled
from the much smaller number of records actually *materialized* per split for
executing the user functions.  A :class:`RecordSource` deterministically
generates the sample records of any split from the dataset seed, so the same
(dataset, split) pair always yields identical records — the simulator's
analogue of immutable HDFS blocks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Protocol, Sequence

import numpy as np

from .records import pair_size

__all__ = [
    "RecordSource",
    "Dataset",
    "InputSplit",
    "FunctionRecordSource",
    "DEFAULT_SPLIT_BYTES",
]

DEFAULT_SPLIT_BYTES = 64 * 1024 * 1024  # classic HDFS block size


class RecordSource(Protocol):
    """Deterministic generator of the sample records of one input split."""

    def generate(
        self, split_index: int, rng: np.random.Generator
    ) -> Sequence[tuple[Any, Any]]:
        """Materialize the sample key-value records of split *split_index*."""
        ...


@dataclass(frozen=True)
class InputSplit:
    """One HDFS split: an index plus its nominal byte extent."""

    dataset_name: str
    index: int
    nominal_bytes: int


@dataclass(frozen=True)
class Dataset:
    """A named input dataset with nominal sizing and a record source.

    Attributes:
        name: dataset identifier, e.g. ``"wikipedia-35gb"``.
        nominal_bytes: the size the dataset *represents* (drives split and
            wave counts); the paper's 35 GB corpus occupies 571 splits.
        source: deterministic per-split record generator.
        split_bytes: HDFS split size; 64 MB unless overridden.
        seed: base seed; split ``i`` derives its RNG from ``(seed, i)``.
    """

    name: str
    nominal_bytes: int
    source: RecordSource
    split_bytes: int = DEFAULT_SPLIT_BYTES
    seed: int = 13

    def __post_init__(self) -> None:
        if self.nominal_bytes <= 0:
            raise ValueError("nominal_bytes must be positive")
        if self.split_bytes <= 0:
            raise ValueError("split_bytes must be positive")

    @property
    def num_splits(self) -> int:
        """Number of input splits, hence the number of map tasks."""
        return max(1, math.ceil(self.nominal_bytes / self.split_bytes))

    def splits(self) -> list[InputSplit]:
        """All input splits; the last split may be short."""
        result = []
        remaining = self.nominal_bytes
        for index in range(self.num_splits):
            extent = min(self.split_bytes, remaining)
            result.append(InputSplit(self.name, index, extent))
            remaining -= extent
        return result

    def split(self, index: int) -> InputSplit:
        """The split at *index* (supports the sampler's random choices)."""
        if not 0 <= index < self.num_splits:
            raise IndexError(f"split {index} out of range for {self.name}")
        extent = min(self.split_bytes, self.nominal_bytes - index * self.split_bytes)
        return InputSplit(self.name, index, extent)

    def materialize(self, split_index: int) -> list[tuple[Any, Any]]:
        """Generate the sample records of one split, deterministically."""
        rng = np.random.default_rng((self.seed, split_index))
        records = list(self.source.generate(split_index, rng))
        if not records:
            raise ValueError(
                f"record source for {self.name} produced an empty split"
            )
        return records

    def sample_split_bytes(self, records: Sequence[tuple[Any, Any]]) -> int:
        """Serialized size of materialized sample records of one split."""
        return sum(pair_size(key, value) for key, value in records)


@dataclass(frozen=True)
class FunctionRecordSource:
    """Adapt a plain function ``f(split_index, rng) -> records`` to a source."""

    fn: Callable[[int, np.random.Generator], Sequence[tuple[Any, Any]]]

    def generate(
        self, split_index: int, rng: np.random.Generator
    ) -> Sequence[tuple[Any, Any]]:
        return self.fn(split_index, rng)
