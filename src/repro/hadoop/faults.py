"""Failure injection and straggler/speculative-execution modelling.

MapReduce's fault tolerance is part of why the paper's tuning rules exist
at all: the Appendix-B reducer rule keeps 10% of the reduce slots free
*because* failed reduce tasks must re-execute somewhere, and §2.1 leans on
blocking execution + independent tasks for seamless recovery.  This module
adds both mechanisms on top of the scheduler:

- **Task failures**: each task attempt fails independently with a small
  probability; a failed attempt wastes a configurable fraction of its
  duration, then the task re-runs (possibly failing again).
- **Stragglers + speculation**: a slow task attempt (utilization noise
  already produces them) can be speculatively duplicated once a wave is
  mostly done; the earliest finisher wins, reproducing Hadoop's
  speculative execution at the fidelity runtime modelling needs.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

__all__ = ["FaultModel", "FaultyScheduleResult", "schedule_with_faults"]


@dataclass(frozen=True)
class FaultModel:
    """Failure and speculation parameters.

    Attributes:
        task_failure_probability: chance one task attempt fails.
        wasted_fraction: fraction of the attempt's duration spent before
            the failure is detected (work thrown away).
        max_attempts: give up (job failure) after this many attempts.
        speculative_execution: whether slow attempts get backups.
        speculation_threshold: an attempt is a straggler if its duration
            exceeds this multiple of the wave's median.
    """

    task_failure_probability: float = 0.02
    wasted_fraction: float = 0.5
    max_attempts: int = 4
    speculative_execution: bool = True
    speculation_threshold: float = 1.5

    def __post_init__(self) -> None:
        if not 0 <= self.task_failure_probability < 1:
            raise ValueError("failure probability must be in [0, 1)")
        if not 0 <= self.wasted_fraction <= 1:
            raise ValueError("wasted_fraction must be in [0, 1]")
        if self.max_attempts < 1:
            raise ValueError("need at least one attempt")
        if self.speculation_threshold <= 0:
            raise ValueError("speculation_threshold must be positive")


@dataclass(frozen=True)
class FaultyScheduleResult:
    """Timeline of a task population under failures and speculation."""

    finish_times: tuple[float, ...]
    makespan: float
    failures: int
    speculative_attempts: int
    wasted_seconds: float


def _attempt_duration(
    base: float, model: FaultModel, rng: np.random.Generator
) -> tuple[float, int, float]:
    """Total time until one task commits, failures included.

    Returns (total duration, failures, wasted seconds).
    """
    failures = 0
    total = 0.0
    wasted = 0.0
    for attempt in range(model.max_attempts):
        if attempt == model.max_attempts - 1:
            # Hadoop would fail the job; the last attempt is forced good
            # so the simulation keeps a defined runtime.
            total += base
            return total, failures, wasted
        if rng.random() < model.task_failure_probability:
            lost = base * model.wasted_fraction
            total += lost
            wasted += lost
            failures += 1
            continue
        total += base
        return total, failures, wasted
    return total, failures, wasted


def schedule_with_faults(
    durations: list[float],
    num_slots: int,
    model: FaultModel,
    rng: np.random.Generator,
) -> FaultyScheduleResult:
    """List-schedule tasks under the fault model.

    Speculation approximation: any attempt longer than
    ``speculation_threshold`` x the population median runs a backup at the
    median duration (on the spare capacity the Appendix-B rule reserves),
    and the earlier finisher commits — Hadoop's backup-task behaviour at
    wave granularity.
    """
    if num_slots <= 0:
        raise ValueError("need at least one slot")
    if not durations:
        return FaultyScheduleResult((), 0.0, 0, 0, 0.0)

    median = float(np.median(durations))
    slots = [0.0] * min(num_slots, len(durations))
    heapq.heapify(slots)

    finishes: list[float] = []
    failures = 0
    speculative = 0
    wasted = 0.0
    for base in durations:
        duration, task_failures, task_wasted = _attempt_duration(base, model, rng)
        failures += task_failures
        wasted += task_wasted
        if (
            model.speculative_execution
            and duration > model.speculation_threshold * median
        ):
            backup, backup_failures, backup_wasted = _attempt_duration(
                median, model, rng
            )
            failures += backup_failures
            wasted += backup_wasted + min(duration, backup)
            speculative += 1
            duration = min(duration, backup)
        start = heapq.heappop(slots)
        finish = start + duration
        finishes.append(finish)
        heapq.heappush(slots, finish)

    return FaultyScheduleResult(
        finish_times=tuple(finishes),
        makespan=max(finishes),
        failures=failures,
        speculative_attempts=speculative,
        wasted_seconds=wasted,
    )
