"""HadoopEngine: the simulator façade.

``HadoopEngine.run_job`` executes an MR job — really executes the user's
map/reduce/combine callables over materialized sample records, then
extrapolates volumes to the dataset's nominal size and prices every task's
phases on the cluster model.  Measurements (the expensive part: running user
code) are cached per (job, dataset, split), so re-running the same job under
a different configuration only re-prices the pipeline arithmetic, exactly
like re-submitting a job to a real cluster re-uses the same input data.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Any, Iterable, Sequence

import numpy as np

from ..observability import (
    SIM_SECONDS_BUCKETS,
    MetricsRegistry,
    Tracer,
    get_registry,
    get_tracer,
)
from .cluster import ClusterSpec
from .config import JobConfiguration
from .counters import Counters
from .dataset import Dataset
from .job import MapReduceJob
from .mapper_engine import (
    MapSampleMeasurement,
    measure_map_sample,
    partition_fractions,
    simulate_map_task,
)
from .reducer_engine import (
    ReduceSampleMeasurement,
    measure_reduce_from_pairs,
    simulate_reduce_task,
)
from .scheduler import schedule_job
from .tasks import JobExecution, MapTaskExecution, ReduceTaskExecution

__all__ = ["HadoopEngine"]

#: Relative slowdown of a profiled task (dynamic instrumentation cost).
DEFAULT_PROFILING_OVERHEAD = 0.10


def _job_key(job: MapReduceJob, dataset: Dataset) -> tuple:
    params = tuple(sorted((str(k), repr(v)) for k, v in job.params.items()))
    return (job.name, params, dataset.name)


class HadoopEngine:
    """Simulated Hadoop cluster executing MapReduce jobs.

    Args:
        cluster: the cluster model tasks run on.
        representative_splits: number of distinct splits whose sample
            records are materialized and run through the user functions;
            remaining map tasks reuse these measurements round-robin (their
            *cost rates* still vary per task/node).
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        representative_splits: int = 3,
        locality_aware: bool = False,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        measurement_workers: int = 1,
    ) -> None:
        self.cluster = cluster
        self.representative_splits = max(1, representative_splits)
        #: Threads used to measure uncached representative splits in
        #: parallel; 1 keeps measurement fully sequential.
        self.measurement_workers = max(1, measurement_workers)
        #: When True, HDFS block placement is modelled and map tasks that
        #: the locality-aware scheduler could not run node-local pay the
        #: remote-read penalty on their READ phase.
        self.locality_aware = locality_aware
        #: Observability sinks; None falls back to the module defaults.
        self.registry = registry
        self.tracer = tracer
        self._map_cache: dict[tuple, MapSampleMeasurement] = {}
        self._reduce_cache: dict[tuple, ReduceSampleMeasurement] = {}

    # ------------------------------------------------------------------
    # Measurement layer
    # ------------------------------------------------------------------
    def measure_split(
        self, job: MapReduceJob, dataset: Dataset, split_index: int
    ) -> MapSampleMeasurement:
        """Measured map behaviour of one split (cached)."""
        key = (*_job_key(job, dataset), split_index)
        registry = get_registry(self.registry)
        measurement = self._map_cache.get(key)
        if measurement is None:
            registry.counter(
                "hadoop_engine_map_cache_misses_total",
                "map sample measurements computed (cache misses)",
            ).inc()
            measurement = measure_map_sample(job, dataset, split_index)
            self._map_cache[key] = measurement
        else:
            registry.counter(
                "hadoop_engine_map_cache_hits_total",
                "map sample measurements served from cache",
            ).inc()
        return measurement

    def representative_indices(self, dataset: Dataset) -> list[int]:
        """Evenly spaced split indices used as measurement representatives."""
        count = min(self.representative_splits, dataset.num_splits)
        if count == 1:
            return [0]
        positions = np.linspace(0, dataset.num_splits - 1, count)
        return sorted({int(round(p)) for p in positions})

    def map_measurements(
        self, job: MapReduceJob, dataset: Dataset
    ) -> list[MapSampleMeasurement]:
        """Measurements of all representative splits, in index order.

        When ``measurement_workers > 1`` and several splits are not yet
        cached, the uncached splits are measured concurrently; results are
        per-split deterministic, so the list is identical either way.
        """
        indices = self.representative_indices(dataset)
        if self.measurement_workers > 1:
            uncached = [
                index
                for index in indices
                if (*_job_key(job, dataset), index) not in self._map_cache
            ]
            if len(uncached) > 1:
                with ThreadPoolExecutor(
                    max_workers=min(self.measurement_workers, len(uncached)),
                    thread_name_prefix="split-measure",
                ) as pool:
                    list(
                        pool.map(
                            lambda index: self.measure_split(job, dataset, index),
                            uncached,
                        )
                    )
        return [
            self.measure_split(job, dataset, index) for index in indices
        ]

    def reduce_measurement(
        self, job: MapReduceJob, dataset: Dataset, combined: bool
    ) -> ReduceSampleMeasurement:
        """Measured reduce behaviour over the union of sample map outputs."""
        key = (*_job_key(job, dataset), "reduce", combined)
        registry = get_registry(self.registry)
        measurement = self._reduce_cache.get(key)
        if measurement is None:
            registry.counter(
                "hadoop_engine_reduce_cache_misses_total",
                "reduce sample measurements computed (cache misses)",
            ).inc()
            pairs: list[tuple[Any, Any]] = []
            for map_measurement in self.map_measurements(job, dataset):
                pairs.extend(map_measurement.intermediate_pairs(combined))
            measurement = measure_reduce_from_pairs(job, pairs)
            self._reduce_cache[key] = measurement
        else:
            registry.counter(
                "hadoop_engine_reduce_cache_hits_total",
                "reduce sample measurements served from cache",
            ).inc()
        return measurement

    # ------------------------------------------------------------------
    # Execution layer
    # ------------------------------------------------------------------
    def run_job(
        self,
        job: MapReduceJob,
        dataset: Dataset,
        config: JobConfiguration | None = None,
        map_task_ids: Sequence[int] | None = None,
        profile: bool = False,
        profiling_overhead: float = DEFAULT_PROFILING_OVERHEAD,
        seed: int = 0,
    ) -> JobExecution:
        """Execute *job* on *dataset* under *config*.

        Args:
            map_task_ids: if given, only these map tasks run (the Starfish
                sampler's mode of operation — other input splits are
                dropped and the reducers process only the sampled output).
            profile: whether tasks run with the profiler attached, which
                inflates their phase times by *profiling_overhead*.
            seed: seed for node placement and utilization noise.

        Returns:
            A :class:`JobExecution` with per-task phase breakdowns and the
            scheduled job runtime.
        """
        if config is None:
            config = JobConfiguration()
        registry = get_registry(self.registry)
        tracer = get_tracer(self.tracer)
        with tracer.span(
            "hadoop.run_job", job=job.name, dataset=dataset.name, seed=seed
        ):
            execution = self._run_job_inner(
                job, dataset, config, map_task_ids, profile,
                profiling_overhead, seed, registry, tracer,
            )
        registry.counter(
            "hadoop_engine_jobs_total", "jobs executed by the engine"
        ).inc()
        registry.histogram(
            "hadoop_engine_job_runtime_seconds",
            "simulated job runtimes",
            buckets=SIM_SECONDS_BUCKETS,
        ).observe(execution.runtime_seconds)
        return execution

    def _run_job_inner(
        self,
        job: MapReduceJob,
        dataset: Dataset,
        config: JobConfiguration,
        map_task_ids: Sequence[int] | None,
        profile: bool,
        profiling_overhead: float,
        seed: int,
        registry: MetricsRegistry,
        tracer: Tracer,
    ) -> JobExecution:
        rng = np.random.default_rng(seed)

        splits = dataset.splits()
        if map_task_ids is None:
            executed_ids = list(range(len(splits)))
            sampled = False
        else:
            executed_ids = sorted(set(map_task_ids))
            for task_id in executed_ids:
                if not 0 <= task_id < len(splits):
                    raise IndexError(f"map task {task_id} out of range")
            sampled = True

        measurements = self.map_measurements(job, dataset)
        combined = config.use_combiner and job.has_combiner
        num_partitions = max(1, config.num_reduce_tasks) if job.has_reducer else 0

        fractions_cache = {}
        if num_partitions:
            for i, measurement in enumerate(measurements):
                fractions_cache[i] = partition_fractions(
                    measurement, job, num_partitions, combined
                )
        else:
            zero = (np.zeros(1), np.zeros(1))
            fractions_cache = {i: zero for i in range(len(measurements))}

        map_tasks: list[MapTaskExecution] = []
        for task_id in executed_ids:
            rep = task_id % len(measurements)
            node = self.cluster.node_for_task(task_id, rng)
            task = simulate_map_task(
                task_id=task_id,
                split=splits[task_id],
                measurement=measurements[rep],
                job=job,
                config=config,
                node=node,
                rng=rng,
                fractions=fractions_cache[rep],
                profiled=profile,
                profiling_overhead=profiling_overhead,
            )
            map_tasks.append(task)

        if self.locality_aware and map_tasks:
            self._apply_locality_penalty(map_tasks, dataset, rng)

        reduce_tasks: list[ReduceTaskExecution] = []
        if job.has_reducer and num_partitions:
            reduce_measurement = self.reduce_measurement(job, dataset, combined)
            shuffle_bytes = np.zeros(num_partitions)
            shuffle_records = np.zeros(num_partitions)
            for task in map_tasks:
                shuffle_bytes += task.partition_bytes
                shuffle_records += task.partition_records
            for partition in range(num_partitions):
                node = self.cluster.node_for_task(partition, rng)
                reduce_tasks.append(
                    simulate_reduce_task(
                        task_id=len(map_tasks) + partition,
                        partition=partition,
                        shuffle_bytes=float(shuffle_bytes[partition]),
                        shuffle_records=float(shuffle_records[partition]),
                        measurement=reduce_measurement,
                        num_map_tasks=len(map_tasks),
                        config=config,
                        node=node,
                        rng=rng,
                        profiled=profile,
                        profiling_overhead=profiling_overhead,
                    )
                )

        schedule = schedule_job(
            map_tasks,
            reduce_tasks,
            self.cluster.total_map_slots,
            self.cluster.total_reduce_slots,
            config,
            registry=registry,
        )
        self._record_schedule_trace(
            registry, tracer, map_tasks, reduce_tasks, schedule
        )

        counters = Counters()
        for task in map_tasks:
            counters.merge(task.counters)
        for task in reduce_tasks:
            counters.merge(task.counters)

        return JobExecution(
            job_name=job.name,
            dataset_name=dataset.name,
            input_bytes=sum(splits[i].nominal_bytes for i in executed_ids),
            map_tasks=map_tasks,
            reduce_tasks=reduce_tasks,
            runtime_seconds=schedule.runtime_seconds,
            counters=counters,
            sampled=sampled,
        )

    def _record_schedule_trace(
        self,
        registry: MetricsRegistry,
        tracer: Tracer,
        map_tasks: list[MapTaskExecution],
        reduce_tasks: list[ReduceTaskExecution],
        schedule,
    ) -> None:
        """Emit simulated-time spans and task histograms for one schedule.

        Everything recorded here lives on the *simulated* clock, so the
        trace of a seeded run is deterministic (the property tests rely
        on that).
        """
        map_hist = registry.histogram(
            "hadoop_engine_map_task_seconds",
            "simulated map task durations",
            buckets=SIM_SECONDS_BUCKETS,
        )
        for task in map_tasks:
            map_hist.observe(task.duration)
        reduce_hist = registry.histogram(
            "hadoop_engine_reduce_task_seconds",
            "simulated reduce task durations",
            buckets=SIM_SECONDS_BUCKETS,
        )
        for task in reduce_tasks:
            reduce_hist.observe(task.duration)
        registry.counter(
            "hadoop_engine_map_tasks_total", "map tasks simulated"
        ).inc(len(map_tasks))
        registry.counter(
            "hadoop_engine_reduce_tasks_total", "reduce tasks simulated"
        ).inc(len(reduce_tasks))

        if not tracer.enabled:
            return
        for task, finish in zip(map_tasks, schedule.map_finish_times):
            tracer.record_span(
                "hadoop.map_task",
                start=max(0.0, finish - task.duration),
                end=finish,
                attrs={"task_id": task.task_id, "node_id": task.node_id},
            )
        for task, finish in zip(reduce_tasks, schedule.reduce_finish_times):
            tracer.record_span(
                "hadoop.reduce_task",
                start=max(0.0, finish - task.duration),
                end=finish,
                attrs={"task_id": task.task_id, "partition": task.partition},
            )
        if map_tasks:
            tracer.record_span(
                "hadoop.phase.map", start=0.0, end=schedule.map_makespan,
                attrs={"tasks": len(map_tasks)},
            )
        if reduce_tasks:
            # The shuffle window: reducers start pulling at slowstart and
            # cannot finish before the last map output exists.
            tracer.record_span(
                "hadoop.phase.shuffle",
                start=schedule.slowstart_time,
                end=max(schedule.map_makespan, schedule.slowstart_time),
                attrs={"tasks": len(reduce_tasks)},
            )
            tracer.record_span(
                "hadoop.phase.reduce",
                start=schedule.slowstart_time,
                end=schedule.runtime_seconds,
                attrs={"tasks": len(reduce_tasks)},
            )

    def _apply_locality_penalty(
        self,
        map_tasks: list[MapTaskExecution],
        dataset: Dataset,
        rng: np.random.Generator,
    ) -> None:
        """Charge remote reads on the tasks locality scheduling misses.

        A remote read streams the block over the network instead of the
        local disks, so its READ phase is re-priced at network+disk rates.
        """
        from .hdfs import expected_locality, place_blocks

        placement = place_blocks(dataset.num_splits, self.cluster, seed=dataset.seed)
        stats = expected_locality(placement, self.cluster, seed=dataset.seed)
        remote_count = round(stats.remote_tasks / max(1, stats.total) * len(map_tasks))
        if remote_count <= 0:
            return
        remote_indices = rng.choice(len(map_tasks), size=remote_count, replace=False)
        for index in remote_indices:
            task = map_tasks[index]
            rates = task.rates
            penalty = (
                rates.network_ns_per_byte + rates.read_local_ns_per_byte
            ) / max(1e-9, rates.read_hdfs_ns_per_byte)
            task.phase_times["READ"] *= penalty

    def run_job_with_faults(
        self,
        job: MapReduceJob,
        dataset: Dataset,
        config: JobConfiguration | None = None,
        fault_model: "FaultModel | None" = None,
        seed: int = 0,
    ) -> tuple[JobExecution, "FaultyScheduleResult", "FaultyScheduleResult | None"]:
        """Execute *job* under task failures and speculative execution.

        Returns the fault-free execution record plus the fault-adjusted
        map-side and reduce-side schedules; the execution's
        ``runtime_seconds`` is inflated by the serial delay failures add
        on each side.
        """
        from .faults import FaultModel, schedule_with_faults
        from .scheduler import _list_schedule

        if fault_model is None:
            fault_model = FaultModel()
        registry = get_registry(self.registry)
        tracer = get_tracer(self.tracer)
        with tracer.span(
            "hadoop.run_job_with_faults", job=job.name, dataset=dataset.name
        ):
            execution = self.run_job(job, dataset, config, seed=seed)
            rng = np.random.default_rng((seed, 0xFA17))

            map_durations = [t.duration for t in execution.map_tasks]
            map_slots = self.cluster.total_map_slots
            faulty_map = schedule_with_faults(
                map_durations, map_slots, fault_model, rng
            )
            base_map = max(_list_schedule(map_durations, map_slots), default=0.0)
            delay = faulty_map.makespan - base_map

            faulty_reduce = None
            if execution.reduce_tasks:
                reduce_durations = [t.duration for t in execution.reduce_tasks]
                reduce_slots = self.cluster.total_reduce_slots
                faulty_reduce = schedule_with_faults(
                    reduce_durations, reduce_slots, fault_model, rng
                )
                base_reduce = max(
                    _list_schedule(reduce_durations, reduce_slots), default=0.0
                )
                delay += faulty_reduce.makespan - base_reduce

            execution.runtime_seconds += max(0.0, delay)

        registry.counter(
            "hadoop_engine_faulty_jobs_total", "jobs run under the fault model"
        ).inc()
        failures = faulty_map.failures + (
            faulty_reduce.failures if faulty_reduce else 0
        )
        speculative = faulty_map.speculative_attempts + (
            faulty_reduce.speculative_attempts if faulty_reduce else 0
        )
        registry.counter(
            "hadoop_engine_task_failures_total", "injected task failures"
        ).inc(failures)
        registry.counter(
            "hadoop_engine_speculative_attempts_total",
            "speculative task attempts launched",
        ).inc(speculative)
        registry.histogram(
            "hadoop_engine_fault_delay_seconds",
            "serial delay added by failures and speculation",
            buckets=SIM_SECONDS_BUCKETS,
        ).observe(max(0.0, delay))
        return execution, faulty_map, faulty_reduce

    def clear_caches(self) -> None:
        """Drop all cached measurements (e.g. after dataset mutation)."""
        get_registry(self.registry).counter(
            "hadoop_engine_cache_clears_total", "measurement-cache invalidations"
        ).inc()
        self._map_cache.clear()
        self._reduce_cache.clear()
