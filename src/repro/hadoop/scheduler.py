"""Wave-based slot scheduler.

The JobTracker assigns map tasks to free map slots and reduce tasks to free
reduce slots.  We model this with greedy list scheduling over slot
availability times, which reproduces Hadoop's wave structure: with 30 map
slots and 571 map tasks, maps run in ~20 waves; reducers start once the
``mapred.reduce.slowstart.completed.maps`` fraction of maps has finished,
overlap their shuffle with the remaining maps, and cannot finish shuffling
before the last map output they depend on exists.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

from ..observability import MetricsRegistry, get_registry
from .config import JobConfiguration
from .tasks import MapTaskExecution, ReduceTaskExecution

__all__ = ["ScheduleResult", "schedule_job"]


@dataclass(frozen=True)
class ScheduleResult:
    """Timeline of one job execution."""

    map_finish_times: tuple[float, ...]
    reduce_finish_times: tuple[float, ...]
    map_makespan: float
    runtime_seconds: float
    slowstart_time: float


def _list_schedule(durations: list[float], num_slots: int, start: float = 0.0) -> list[float]:
    """Greedy list scheduling; returns each task's finish time."""
    if num_slots <= 0:
        raise ValueError("need at least one slot")
    slots = [start] * min(num_slots, max(1, len(durations)))
    heapq.heapify(slots)
    finishes = []
    for duration in durations:
        free_at = heapq.heappop(slots)
        finish = free_at + duration
        finishes.append(finish)
        heapq.heappush(slots, finish)
    return finishes


def _record_schedule_metrics(
    registry: MetricsRegistry | None,
    result: ScheduleResult,
    map_tasks: list[MapTaskExecution],
    reduce_tasks: list[ReduceTaskExecution],
    map_slots: int,
    reduce_slots: int,
) -> None:
    """Wave-count and slot-occupancy gauges for one scheduled job.

    Occupancy is busy-slot-time over available-slot-time within the phase
    window, i.e. how well the wave structure packs the slots.
    """
    registry = get_registry(registry)
    registry.gauge(
        "hadoop_scheduler_map_waves", "map waves of the last scheduled job"
    ).set(math.ceil(len(map_tasks) / map_slots) if map_tasks else 0)
    registry.gauge(
        "hadoop_scheduler_reduce_waves",
        "reduce waves of the last scheduled job",
    ).set(math.ceil(len(reduce_tasks) / reduce_slots) if reduce_tasks else 0)

    map_busy = sum(t.duration for t in map_tasks)
    map_window = map_slots * result.map_makespan
    registry.gauge(
        "hadoop_scheduler_map_slot_occupancy",
        "busy map-slot time / available map-slot time, last job",
    ).set(map_busy / map_window if map_window > 0 else 0.0)

    reduce_busy = sum(t.duration for t in reduce_tasks)
    reduce_window = reduce_slots * (result.runtime_seconds - result.slowstart_time)
    registry.gauge(
        "hadoop_scheduler_reduce_slot_occupancy",
        "busy reduce-slot time / available reduce-slot time, last job",
    ).set(reduce_busy / reduce_window if reduce_window > 0 else 0.0)


def schedule_job(
    map_tasks: list[MapTaskExecution],
    reduce_tasks: list[ReduceTaskExecution],
    map_slots: int,
    reduce_slots: int,
    config: JobConfiguration,
    registry: MetricsRegistry | None = None,
) -> ScheduleResult:
    """Compute the job timeline from per-task phase durations.

    Reduce tasks of the first wave start at the slowstart point and overlap
    their SHUFFLE phase with the map tail; a reducer's shuffle cannot
    complete before the map makespan.  Later reduce waves start when slots
    free up, by which time all map outputs exist.
    """
    map_finishes = _list_schedule([t.duration for t in map_tasks], map_slots)
    map_makespan = max(map_finishes, default=0.0)

    if not reduce_tasks:
        result = ScheduleResult(
            map_finish_times=tuple(map_finishes),
            reduce_finish_times=(),
            map_makespan=map_makespan,
            runtime_seconds=map_makespan,
            slowstart_time=map_makespan,
        )
        _record_schedule_metrics(
            registry, result, map_tasks, reduce_tasks, map_slots, reduce_slots
        )
        return result

    # Time when the slowstart fraction of maps has completed.
    ordered = sorted(map_finishes)
    threshold_index = min(
        len(ordered) - 1,
        max(0, int(round(config.reduce_slowstart * len(ordered))) - 1),
    )
    slowstart_time = ordered[threshold_index] if config.reduce_slowstart > 0 else 0.0

    slots = [slowstart_time] * min(reduce_slots, len(reduce_tasks))
    heapq.heapify(slots)
    reduce_finishes = []
    for task in reduce_tasks:
        start = heapq.heappop(slots)
        setup_end = start + task.phase_times.get("SETUP", 0.0)
        shuffle_end = setup_end + task.phase_times.get("SHUFFLE", 0.0)
        # The final map output only exists at map_makespan; shuffles that
        # would finish earlier stall until then.
        shuffle_end = max(shuffle_end, map_makespan)
        rest = sum(
            task.phase_times.get(phase, 0.0)
            for phase in ("SORT", "REDUCE", "WRITE", "CLEANUP")
        )
        finish = shuffle_end + rest
        reduce_finishes.append(finish)
        heapq.heappush(slots, finish)

    runtime = max(max(reduce_finishes), map_makespan)
    result = ScheduleResult(
        map_finish_times=tuple(map_finishes),
        reduce_finish_times=tuple(reduce_finishes),
        map_makespan=map_makespan,
        runtime_seconds=runtime,
        slowstart_time=slowstart_time,
    )
    _record_schedule_metrics(
        registry, result, map_tasks, reduce_tasks, map_slots, reduce_slots
    )
    return result
