"""HDFS block placement and data-locality modelling.

The engine's default assumption — task placement uniform at random with a
single HDFS read rate — hides a real Hadoop mechanism: the JobTracker
prefers scheduling a map task on a node holding one of its split's block
replicas, because a *local* read streams from disk while a *remote* read
crosses the network.  This module models the NameNode's placement map
(default 3 replicas per block, random placement like HDFS's
non-rack-aware default) and computes locality statistics the engine uses
to price READ phases: with R replicas on N nodes and S free slots per
wave, the probability a task runs node-local follows from how many waves
deep the scheduler has to look.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .cluster import ClusterSpec

__all__ = ["BlockPlacement", "LocalityStats", "place_blocks", "expected_locality"]

DEFAULT_REPLICATION = 3


@dataclass(frozen=True)
class BlockPlacement:
    """The NameNode's map: block (split) index -> replica holders."""

    num_blocks: int
    replication: int
    #: ``replicas[i]`` is the tuple of node ids holding block i.
    replicas: tuple[tuple[int, ...], ...]

    def holders(self, block: int) -> tuple[int, ...]:
        return self.replicas[block]

    def is_local(self, block: int, node_id: int) -> bool:
        return node_id in self.replicas[block]

    def blocks_on(self, node_id: int) -> list[int]:
        return [
            block
            for block, holders in enumerate(self.replicas)
            if node_id in holders
        ]


def place_blocks(
    num_blocks: int,
    cluster: ClusterSpec,
    replication: int = DEFAULT_REPLICATION,
    seed: int = 0,
) -> BlockPlacement:
    """Place blocks with HDFS's default random replica choice."""
    if num_blocks < 0:
        raise ValueError("num_blocks must be non-negative")
    nodes = cluster.num_workers
    replication = min(replication, nodes)
    rng = np.random.default_rng(seed)
    replicas = tuple(
        tuple(int(n) for n in rng.choice(nodes, size=replication, replace=False))
        for __ in range(num_blocks)
    )
    return BlockPlacement(
        num_blocks=num_blocks, replication=replication, replicas=replicas
    )


@dataclass(frozen=True)
class LocalityStats:
    """Measured locality of one greedy, locality-aware schedule."""

    local_tasks: int
    remote_tasks: int

    @property
    def total(self) -> int:
        return self.local_tasks + self.remote_tasks

    @property
    def local_fraction(self) -> float:
        return self.local_tasks / self.total if self.total else 1.0


def expected_locality(
    placement: BlockPlacement,
    cluster: ClusterSpec,
    seed: int = 0,
) -> LocalityStats:
    """Simulate Hadoop's locality-aware wave scheduling.

    Greedy model: each wave fills every map slot; a slot on node *n*
    first takes an unscheduled block with a replica on *n*, else steals a
    remote one (the classic locality/throughput trade-off).  Returns how
    many tasks ran local versus remote — what the engine needs to weight
    local-disk versus network read rates.
    """
    rng = np.random.default_rng(seed)
    pending: set[int] = set(range(placement.num_blocks))
    by_node: dict[int, list[int]] = {
        worker.node_id: [] for worker in cluster.workers
    }
    for block, holders in enumerate(placement.replicas):
        for node in holders:
            by_node[node].append(block)

    slots = [
        worker.node_id
        for worker in cluster.workers
        for __ in range(worker.map_slots)
    ]

    local = 0
    remote = 0
    while pending:
        for node in slots:
            if not pending:
                break
            candidates = [b for b in by_node[node] if b in pending]
            if candidates:
                choice = candidates[int(rng.integers(0, len(candidates)))]
                pending.discard(choice)
                local += 1
            else:
                choice = min(pending)
                pending.discard(choice)
                remote += 1
    return LocalityStats(local_tasks=local, remote_tasks=remote)
