"""Figure 4.5: phase-time similarity of word co-occurrence and bigram
relative frequency on the same 35 GB corpus.

The composite-profile rationale: with a window of 2, the two jobs push
nearly identical volumes through every phase, so one job's profile prices
the other's execution well — the motivating example of Chapter 1.
"""

from __future__ import annotations

from ..hadoop.config import JobConfiguration
from ..hadoop.tasks import MAP_PHASES, REDUCE_PHASES
from ..workloads.datasets import wikipedia_35gb
from ..workloads.jobs import bigram_relative_frequency_job, cooccurrence_pairs_job
from .common import ExperimentContext
from .result import ExperimentResult

__all__ = ["run"]


def run(ctx: ExperimentContext | None = None, seed: int = 0) -> ExperimentResult:
    """Regenerate Figure 4.5: per-task phase times of the two jobs."""
    if ctx is None:
        ctx = ExperimentContext.create(seed)
    wiki = wikipedia_35gb()
    config = JobConfiguration()

    rows = []
    for job in (cooccurrence_pairs_job(window=2), bigram_relative_frequency_job()):
        execution = ctx.engine.run_job(job, wiki, config, seed=seed)
        map_totals = execution.map_phase_totals()
        reduce_totals = execution.reduce_phase_totals()
        maps = max(1, execution.num_map_tasks)
        reduces = max(1, execution.num_reduce_tasks)
        row = [job.name]
        row += [round(map_totals[p] / maps, 2) for p in MAP_PHASES if p not in ("SETUP", "CLEANUP")]
        row += [round(reduce_totals[p] / reduces, 2) for p in REDUCE_PHASES if p not in ("SETUP", "CLEANUP")]
        rows.append(row)

    map_headers = [f"map:{p}" for p in MAP_PHASES if p not in ("SETUP", "CLEANUP")]
    reduce_headers = [f"red:{p}" for p in REDUCE_PHASES if p not in ("SETUP", "CLEANUP")]
    return ExperimentResult(
        name="Figure 4.5",
        title="Phase times: co-occurrence ≈ bigram relative frequency (avg s/task)",
        headers=["job"] + map_headers + reduce_headers,
        rows=rows,
        notes="Expected shape: every phase within a small factor of its counterpart.",
    )
